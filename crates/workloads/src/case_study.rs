//! The case-study setup of Sec. VI: SYN and AVP localization running
//! concurrently, traced over repeated runs.

use crate::avp::{avp_localization_app_with_condition};
use crate::syn::syn_app;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_core::{synthesize, Dag};
use rtms_ros2::{Ros2World, WorldBuilder};
use rtms_trace::Nanos;

/// Number of CPU cores of the paper's testbed (AMD Ryzen 9 3900X: 12
/// physical cores).
pub const TESTBED_CORES: usize = 12;

/// Builds the concurrent SYN + AVP world on the testbed machine.
///
/// `seed` controls the workload randomness; `syn_scale` sets SYN's
/// constant computational load for this run (the paper changes it across
/// runs to vary the interference on AVP).
///
/// # Panics
///
/// Panics if `syn_scale` is not positive (validated by [`syn_app`]).
pub fn case_study_world(seed: u64, syn_scale: f64) -> Ros2World {
    case_study_world_with_condition(seed, syn_scale, 1.0)
}

/// [`case_study_world`] under a specific run condition (see
/// [`crate::avp::avp_calibration_with_condition`]).
pub fn case_study_world_with_condition(
    seed: u64,
    syn_scale: f64,
    condition: f64,
) -> Ros2World {
    WorldBuilder::new(TESTBED_CORES)
        .seed(seed)
        .app(avp_localization_app_with_condition(condition))
        .app(syn_app(syn_scale))
        .build()
        .expect("case-study apps are valid")
}

/// Traces one run of `duration` and synthesizes its timing model
/// (one full pass of the Fig. 1 pipeline).
pub fn run_and_synthesize(world: &mut Ros2World, duration: Nanos) -> Dag {
    let trace = world.trace_run(duration);
    synthesize(&trace)
}

/// The per-run variation of the case study: SYN's load scale and the AVP
/// run condition of one run in a multi-run experiment.
///
/// Precomputing these (see [`case_study_run_conditions`]) is what lets a
/// parallel harness hand each worker thread a self-contained run recipe
/// while drawing the condition randomness in the exact sequential order the
/// paper's experiment shape defines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCondition {
    /// SYN's computational load scale for this run (0.5× .. 1.5×).
    pub syn_scale: f64,
    /// The AVP run condition (see
    /// [`crate::avp::avp_calibration_with_condition`]).
    pub condition: f64,
}

/// The run conditions of the paper's experiment shape, in run order: SYN's
/// load scale cycles between 0.5× and 1.5×, and the AVP condition is drawn
/// from an RNG seeded by `base_seed` — so the full multi-run experiment is
/// reproducible from (`runs`, `base_seed`) alone.
pub fn case_study_run_conditions(runs: usize, base_seed: u64) -> Vec<RunCondition> {
    let mut conditions = StdRng::seed_from_u64(base_seed ^ 0xc0ffee);
    (0..runs)
        .map(|i| RunCondition {
            syn_scale: 0.5 + (i as f64 % 11.0) / 10.0, // 0.5 .. 1.5
            condition: conditions.gen_range(0.0..=1.0),
        })
        .collect()
}

/// Builds the world of run `index` of a multi-run case-study experiment:
/// seeded `base_seed + index`, under the given [`RunCondition`].
pub fn case_study_world_for_run(
    base_seed: u64,
    index: usize,
    cond: RunCondition,
) -> Ros2World {
    case_study_world_with_condition(base_seed + index as u64, cond.syn_scale, cond.condition)
}

/// The paper's experiment shape: `runs` independent runs of `duration`
/// each, a DAG synthesized per run (deployment option (ii) of Fig. 2).
/// SYN's load scale varies per run between 0.5× and 1.5×.
///
/// Returns the per-run DAGs, ready for merging or convergence studies.
/// (This is the sequential reference path; `rtms-bench`'s `Harness` fans
/// the same runs out across threads with identical results.)
pub fn synthesize_runs(runs: usize, duration: Nanos, base_seed: u64) -> Vec<Dag> {
    case_study_run_conditions(runs, base_seed)
        .into_iter()
        .enumerate()
        .map(|(i, cond)| {
            let mut world = case_study_world_for_run(base_seed, i, cond);
            run_and_synthesize(&mut world, duration)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::merge_dags;

    #[test]
    fn one_short_run_produces_a_model() {
        let mut world = case_study_world(1, 1.0);
        let dag = run_and_synthesize(&mut world, Nanos::from_secs(2));
        assert!(dag.is_acyclic());
        // AVP alone contributes 9 vertices (2 drivers + cb1..cb6 + `&`);
        // SYN contributes 19 more once all interactions have occurred.
        assert!(dag.vertices().len() >= 9, "got {} vertices", dag.vertices().len());
        // cb6 is present and annotated.
        let cb6 = dag
            .vertices()
            .iter()
            .find(|v| v.node == "p2d_ndt_localizer_node")
            .expect("cb6 vertex");
        assert!(cb6.stats.count() > 0);
    }

    #[test]
    fn multiple_runs_merge() {
        let dags = synthesize_runs(3, Nanos::from_secs(1), 7);
        assert_eq!(dags.len(), 3);
        let merged = merge_dags(dags.clone());
        assert!(merged.is_acyclic());
        // Merged stats have at least as many samples as any single run.
        let single_max = dags[0]
            .vertices()
            .iter()
            .map(|v| v.stats.count())
            .max()
            .unwrap_or(0);
        let merged_max =
            merged.vertices().iter().map(|v| v.stats.count()).max().unwrap_or(0);
        assert!(merged_max >= 2 * single_max.min(1));
    }
}
