//! Seeded random application generator.
//!
//! The paper validates its synthesis framework on two fixed workloads (SYN
//! and AVP localization); this module turns that fixed reproduction into a
//! broad validation surface by generating *arbitrary* ROS2 applications —
//! random node counts, timer/subscriber/service/client mixes, topic fan-in
//! and fan-out, and `message_filters` sync junctions — that are **valid by
//! construction** and **deterministic per seed**.
//!
//! Construction is layered so the resulting communication graph is always
//! acyclic and every callback is eventually driven by a timer:
//!
//! 1. *Timers* publish fresh topics and are the only activity roots. With
//!    some probability a timer additionally publishes an already-existing
//!    topic, creating multi-publisher fan-in (an OR junction in the model).
//! 2. *Subscribers* consume topics already in the pool (timer topics or
//!    topics published by earlier subscribers) and publish only fresh
//!    topics — edges always point from earlier to later creations, so no
//!    cycles can form. Several subscribers may pick the same topic
//!    (fan-out).
//! 3. *Services* pair a server callback with a client callback placed in
//!    the node of a randomly chosen caller (a timer or subscriber), which
//!    gains a `CallService` output.
//! 4. *Sync junctions* group output-free subscribers of one node into a
//!    `message_filters` synchronizer publishing a fresh topic, optionally
//!    consumed by a dedicated sink subscriber in another node.
//!
//! Every name is prefixed `g{seed}_` (topics and services `/g{seed}/...`),
//! so applications generated from *distinct* seeds can be co-deployed in
//! one world without name or service collisions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_ros2::{AppBuilder, AppSpec, NodeId, WorkModel};
use rtms_trace::Nanos;

/// Tuning knobs of the generator. All `(min, max)` pairs are inclusive
/// ranges sampled uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub nodes: (usize, usize),
    /// Number of timers (the activity roots; at least 1 is enforced).
    pub timers: (usize, usize),
    /// Number of chained subscribers.
    pub subscribers: (usize, usize),
    /// Number of service/client pairs.
    pub services: (usize, usize),
    /// Number of attempted sync junctions (skipped when no node has two
    /// free subscribers left).
    pub sync_junctions: (usize, usize),
    /// Probability that a timer also publishes an existing topic
    /// (multi-publisher fan-in, an OR junction in the model).
    pub fan_in_prob: f64,
    /// Probability that a subscriber publishes a fresh topic, extending the
    /// processing chain.
    pub chain_prob: f64,
    /// Timer period range in milliseconds.
    pub period_ms: (u64, u64),
    /// Per-callback mean work range in milliseconds (each callback gets a
    /// uniform work model drawn from this range).
    pub work_ms: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            nodes: (2, 5),
            timers: (1, 3),
            subscribers: (2, 6),
            services: (0, 2),
            sync_junctions: (0, 1),
            fan_in_prob: 0.3,
            chain_prob: 0.5,
            period_ms: (50, 200),
            work_ms: (0.1, 1.5),
        }
    }
}

impl GeneratorConfig {
    /// A configuration scaled for stress experiments: roughly `factor`
    /// times the default entity counts.
    pub fn scaled(factor: usize) -> GeneratorConfig {
        let f = factor.max(1);
        GeneratorConfig {
            nodes: (2 * f, 5 * f),
            timers: (f, 3 * f),
            subscribers: (2 * f, 6 * f),
            services: (0, 2 * f),
            sync_junctions: (0, f),
            ..GeneratorConfig::default()
        }
    }
}

/// The full callback plan of one generated callback, before emission
/// through [`AppBuilder`].
struct CbPlan {
    node: usize,
    name: String,
    kind: CbKind,
    work: WorkModel,
    publishes: Vec<String>,
    calls: Vec<String>,
}

enum CbKind {
    Timer { period: Nanos },
    Subscriber { topic: String },
    Service { service: String },
    Client { service: String },
}

/// Generates a valid application from `seed`.
///
/// The same `(seed, config)` always yields the same [`AppSpec`]; distinct
/// seeds yield applications that can share one world (all names are
/// seed-prefixed).
///
/// # Panics
///
/// Panics if `config` contains an empty range (`min > max`) or a
/// probability outside `[0, 1]`. Never panics on any valid configuration:
/// the layered construction cannot produce an invalid wiring.
pub fn generate_app(seed: u64, config: &GeneratorConfig) -> AppSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_4a95);
    let p = format!("g{seed}");

    let n_nodes = rng.gen_range(config.nodes.0..=config.nodes.1).max(1);
    let n_timers = rng.gen_range(config.timers.0..=config.timers.1).max(1);
    let n_subs = rng.gen_range(config.subscribers.0..=config.subscribers.1);
    let n_services = rng.gen_range(config.services.0..=config.services.1);
    let n_syncs = rng.gen_range(config.sync_junctions.0..=config.sync_junctions.1);

    let work = |rng: &mut StdRng| {
        let a = rng.gen_range(config.work_ms.0..=config.work_ms.1);
        let b = rng.gen_range(config.work_ms.0..=config.work_ms.1);
        WorkModel::uniform_millis(a.min(b), a.max(b))
    };

    let mut plans: Vec<CbPlan> = Vec::new();
    // Topics with at least one publisher; subscribers only draw from here.
    let mut topic_pool: Vec<String> = Vec::new();

    // 1. Timers: activity roots publishing fresh topics, with optional
    //    fan-in onto existing ones.
    for t in 0..n_timers {
        let topic = format!("/{p}/t{t}");
        let mut publishes = vec![topic.clone()];
        if !topic_pool.is_empty() && rng.gen_bool(config.fan_in_prob) {
            let existing = topic_pool[rng.gen_range(0..topic_pool.len())].clone();
            publishes.push(existing);
        }
        topic_pool.push(topic);
        plans.push(CbPlan {
            node: rng.gen_range(0..n_nodes),
            name: format!("{p}_t{t}"),
            kind: CbKind::Timer {
                period: Nanos::from_millis(
                    rng.gen_range(config.period_ms.0..=config.period_ms.1).max(1),
                ),
            },
            work: work(&mut rng),
            publishes,
            calls: Vec::new(),
        });
    }

    // 2. Subscribers: consume pooled topics, publish only fresh ones —
    //    edges point from earlier to later creations, so no cycles.
    for s in 0..n_subs {
        let topic = topic_pool[rng.gen_range(0..topic_pool.len())].clone();
        let mut publishes = Vec::new();
        if rng.gen_bool(config.chain_prob) {
            let fresh = format!("/{p}/s{s}");
            publishes.push(fresh.clone());
            topic_pool.push(fresh);
        }
        plans.push(CbPlan {
            node: rng.gen_range(0..n_nodes),
            name: format!("{p}_s{s}"),
            kind: CbKind::Subscriber { topic },
            work: work(&mut rng),
            publishes,
            calls: Vec::new(),
        });
    }

    // 3. Services: a server plus a client co-located with a random caller.
    for v in 0..n_services {
        let service = format!("/{p}/sv{v}");
        let caller = rng.gen_range(0..plans.len());
        let caller_node = plans[caller].node;
        let client_name = format!("{p}_cl{v}");
        plans[caller].calls.push(client_name.clone());
        plans.push(CbPlan {
            node: rng.gen_range(0..n_nodes),
            name: format!("{p}_sv{v}"),
            kind: CbKind::Service { service: service.clone() },
            work: work(&mut rng),
            publishes: Vec::new(),
            calls: Vec::new(),
        });
        plans.push(CbPlan {
            node: caller_node,
            name: client_name,
            kind: CbKind::Client { service },
            work: work(&mut rng),
            publishes: Vec::new(),
            calls: Vec::new(),
        });
    }

    // 4. Sync junctions over output-free subscribers of one node, with an
    //    optional sink subscriber consuming the fused topic.
    let mut sync_groups: Vec<(usize, String, Vec<String>, String)> = Vec::new();
    let mut in_sync: Vec<bool> = plans.iter().map(|_| false).collect();
    for g in 0..n_syncs {
        // Free members: subscribers with no outputs, not yet synchronized,
        // grouped by node.
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        for (i, cb) in plans.iter().enumerate() {
            let free = matches!(cb.kind, CbKind::Subscriber { .. })
                && cb.publishes.is_empty()
                && cb.calls.is_empty()
                && !in_sync[i];
            if free {
                per_node[cb.node].push(i);
            }
        }
        let Some(members) = per_node.iter().find(|m| m.len() >= 2) else { break };
        let take = members.len().min(2 + rng.gen_range(0..=1usize));
        let chosen: Vec<usize> = members[..take].to_vec();
        for &i in &chosen {
            in_sync[i] = true;
        }
        let fused = format!("/{p}/sync{g}");
        let node = plans[chosen[0]].node;
        let names = chosen.iter().map(|&i| plans[i].name.clone()).collect();
        if rng.gen_bool(0.5) {
            plans.push(CbPlan {
                node: rng.gen_range(0..n_nodes),
                name: format!("{p}_sink{g}"),
                kind: CbKind::Subscriber { topic: fused.clone() },
                work: work(&mut rng),
                publishes: Vec::new(),
                calls: Vec::new(),
            });
            // Keep `in_sync` aligned with `plans`; the sink is a free
            // subscriber and may join a later junction.
            in_sync.push(false);
        }
        sync_groups.push((node, format!("{p}_ms{g}"), names, fused));
    }

    // Emit the plan through the validating builder.
    let mut app = AppBuilder::new(format!("{p}_app"));
    let node_ids: Vec<NodeId> = (0..n_nodes).map(|i| app.node(format!("{p}_n{i}"))).collect();
    for cb in &plans {
        let node = node_ids[cb.node];
        let mut handle = match &cb.kind {
            CbKind::Timer { period } => app.timer(node, &cb.name, *period, cb.work),
            CbKind::Subscriber { topic } => app.subscriber(node, &cb.name, topic, cb.work),
            CbKind::Service { service } => app.service(node, &cb.name, service, cb.work),
            CbKind::Client { service } => app.client(node, &cb.name, service, cb.work),
        };
        for topic in &cb.publishes {
            handle = handle.publishes(topic);
        }
        for client in &cb.calls {
            handle = handle.calls(client);
        }
    }
    for (node, name, members, fused) in sync_groups {
        app.sync_group(node_ids[node], name, members, [fused]);
    }
    app.build().expect("generated wiring is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_ros2::CallbackSpec;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        assert_eq!(generate_app(42, &cfg), generate_app(42, &cfg));
        assert_ne!(generate_app(42, &cfg), generate_app(43, &cfg));
    }

    #[test]
    fn always_has_a_timer_root() {
        let cfg = GeneratorConfig::default();
        for seed in 0..20 {
            let app = generate_app(seed, &cfg);
            let timers = app
                .nodes
                .iter()
                .flat_map(|n| &n.callbacks)
                .filter(|cb| matches!(cb, CallbackSpec::Timer { .. }))
                .count();
            assert!(timers >= 1, "seed {seed} produced no timers");
        }
    }

    #[test]
    fn distinct_seeds_coexist_in_one_world() {
        let cfg = GeneratorConfig::default();
        let world = rtms_ros2::WorldBuilder::new(4)
            .seed(1)
            .app(generate_app(100, &cfg))
            .app(generate_app(101, &cfg))
            .build();
        assert!(world.is_ok(), "co-deployment failed: {:?}", world.err());
    }

    #[test]
    fn scaled_config_grows_entity_counts() {
        let cfg = GeneratorConfig::scaled(4);
        assert!(cfg.nodes.1 > GeneratorConfig::default().nodes.1);
        let app = generate_app(7, &cfg);
        assert!(app.nodes.len() >= cfg.nodes.0);
    }

    #[test]
    fn multi_junction_configs_generate_cleanly() {
        // Regression: configs allowing several sync junctions used to
        // panic when a sink subscriber grew `plans` past `in_sync`.
        for scale in 2..=5 {
            let cfg = GeneratorConfig::scaled(scale);
            for seed in 0..10 {
                let _ = generate_app(seed, &cfg);
            }
        }
    }
}
