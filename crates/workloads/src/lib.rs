//! Workloads of the paper's case study (Sec. VI).
//!
//! - [`syn`]: the SYN synthetic application — six ROS2 nodes covering every
//!   scenario of Fig. 3a (same-type callbacks within a node, mixed-type
//!   nodes, multi-subscriber topics, a service invoked from two different
//!   callers, and `message_filters` data synchronization), with an OR
//!   junction where two timers publish the same topic.
//! - [`avp`]: the Autoware Autonomous Valet Parking localization pipeline
//!   of Fig. 3b — two LIDAR filter nodes feeding a synchronized fusion
//!   node, a voxel-grid downsampler, and the NDT localizer — with
//!   execution-time distributions calibrated to Table II.
//! - [`case_study`]: both applications running concurrently on a machine
//!   modeled after the paper's testbed, plus run-repetition helpers.
//! - [`generator`]: a seeded random application generator producing valid
//!   [`rtms_ros2::AppSpec`]s of arbitrary shape — the input to scaling
//!   experiments and property suites beyond the paper's two workloads.
//! - [`faults`]: a fault-scenario layer on top of the generator — random
//!   applications plus a seeded [`rtms_ros2::FaultPlan`] and the
//!   ground-truth fault list, for monitoring/detection experiments.
//! - [`corpus`]: the fixed matrix of small seeded workloads behind the
//!   committed replay corpus (`tests/corpus/` at the repo root).

pub mod avp;
pub mod case_study;
pub mod corpus;
pub mod faults;
pub mod generator;
pub mod syn;

pub use avp::{
    avp_calibration_with_condition, avp_localization_app, avp_localization_app_with_condition,
    avp_table2_calibration, AVP_CALLBACKS,
};
pub use case_study::{
    case_study_run_conditions, case_study_world, case_study_world_for_run,
    case_study_world_with_condition, run_and_synthesize, synthesize_runs, RunCondition,
};
pub use corpus::{CorpusCase, WorldProfile, CORPUS_CASES};
pub use faults::{
    generate_fault_scenario, monitor_run, monitoring_app_config, ExpectedAlert, FaultScenario,
    FaultScenarioConfig, InjectedFault,
};
pub use generator::{generate_app, GeneratorConfig};
pub use syn::{syn_app, SYN_EDGE_COUNT, SYN_VERTEX_COUNT};
