//! The golden replay corpus: the fixed matrix of small seeded workloads
//! whose recorded traces are committed under `tests/corpus/` at the repo
//! root.
//!
//! Each case names a tiny world — a seed, an app count, a run length, a
//! segment length — that the `record` experiment binary (with
//! `corpus=<dir>`) traces into a binary segment file. The committed
//! corpus pins two things at once:
//!
//! - **the wire format**: decoding a years-old file must still work
//!   byte-for-byte (any codec change that breaks it needs a version
//!   bump, see `docs/TRACE_FORMAT.md`);
//! - **the synthesis semantics**: the model digest of each replayed file
//!   is committed in `MANIFEST.json`, so a behavioural change to the
//!   synthesis pipeline shows up as a digest mismatch even if the codec
//!   is untouched.
//!
//! The matrix is deliberately small (one simulated second per case, a
//! few KB per file) but varied: single- and multi-app worlds, segment
//! lengths from 50 ms (many small segments) to 250 ms (few large ones),
//! and multi-threaded-executor worlds (`mt-*`) that pin the interleaved
//! schedules callback groups produce.

use serde::{DeError, Deserialize, Serialize, Value};

/// Which construction recipe a bench world uses — the scenario axis of
/// the corpus matrix and of recorded segment files.
///
/// Serialized as a kebab-case string inside a file's meta frame; writers
/// omit the field entirely for the [`WorldProfile::Standard`] default,
/// so recordings of standard worlds stay byte-identical to those made
/// before profiles existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WorldProfile {
    /// Single-threaded executors, reliable QoS, the default generator
    /// mix.
    #[default]
    Standard,
    /// Multi-threaded executors with callback groups
    /// (`GeneratorConfig::multi_threaded`).
    MultiThreaded,
    /// Default applications over degraded QoS: best-effort drops,
    /// bounded reorder, latency jitter.
    Lossy,
    /// Heavy-tailed bursty publishers in the mix
    /// (`GeneratorConfig::bursty`).
    Bursty,
}

impl WorldProfile {
    /// Whether this is the [`WorldProfile::Standard`] profile (used by
    /// writers to omit the field from serialized meta frames).
    pub fn is_standard(&self) -> bool {
        *self == WorldProfile::Standard
    }

    /// The kebab-case wire name of the profile.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorldProfile::Standard => "standard",
            WorldProfile::MultiThreaded => "multi-threaded",
            WorldProfile::Lossy => "lossy",
            WorldProfile::Bursty => "bursty",
        }
    }

    /// Parses a wire name written by [`WorldProfile::as_str`].
    pub fn parse(s: &str) -> Option<WorldProfile> {
        match s {
            "standard" => Some(WorldProfile::Standard),
            "multi-threaded" => Some(WorldProfile::MultiThreaded),
            "lossy" => Some(WorldProfile::Lossy),
            "bursty" => Some(WorldProfile::Bursty),
            _ => None,
        }
    }
}

// Manual impls: the vendored serde derive supports no rename attributes,
// and the profile must serialize as its kebab-case wire name.
impl Serialize for WorldProfile {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for WorldProfile {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => {
                WorldProfile::parse(s).ok_or_else(|| DeError::unknown_variant("WorldProfile", s))
            }
            other => Err(DeError::expected("string", other)),
        }
    }
}

/// One corpus case: the parameters of a recorded world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusCase {
    /// Case name; the recorded file is `<name>.seg`.
    pub name: &'static str,
    /// Simulated seconds recorded.
    pub secs: u64,
    /// Generated applications co-deployed.
    pub apps: u64,
    /// World seed.
    pub seed: u64,
    /// Segment length in simulated milliseconds.
    pub segment_ms: u64,
    /// World construction recipe.
    pub profile: WorldProfile,
}

impl CorpusCase {
    /// The corpus file name of this case, `<name>.seg`.
    pub fn file_name(&self) -> String {
        format!("{}.seg", self.name)
    }
}

/// The fixed corpus matrix. Append-only by convention: adding a case is
/// cheap, changing an existing one silently retires the regression it
/// carried.
pub const CORPUS_CASES: [CorpusCase; 12] = [
    CorpusCase { name: "app-a", secs: 1, apps: 1, seed: 11, segment_ms: 250, profile: WorldProfile::Standard },
    CorpusCase { name: "app-b", secs: 1, apps: 1, seed: 12, segment_ms: 250, profile: WorldProfile::Standard },
    CorpusCase { name: "app-c", secs: 1, apps: 1, seed: 13, segment_ms: 250, profile: WorldProfile::Standard },
    CorpusCase { name: "app-d", secs: 1, apps: 1, seed: 14, segment_ms: 250, profile: WorldProfile::Standard },
    CorpusCase { name: "app-e", secs: 1, apps: 1, seed: 15, segment_ms: 100, profile: WorldProfile::Standard },
    CorpusCase { name: "app-f", secs: 1, apps: 1, seed: 16, segment_ms: 100, profile: WorldProfile::Standard },
    CorpusCase { name: "app-g", secs: 1, apps: 1, seed: 17, segment_ms: 50, profile: WorldProfile::Standard },
    CorpusCase { name: "app-h", secs: 1, apps: 1, seed: 18, segment_ms: 50, profile: WorldProfile::Standard },
    CorpusCase { name: "duo-a", secs: 1, apps: 2, seed: 21, segment_ms: 250, profile: WorldProfile::Standard },
    CorpusCase { name: "duo-b", secs: 1, apps: 2, seed: 22, segment_ms: 50, profile: WorldProfile::Standard },
    CorpusCase { name: "mt-a", secs: 1, apps: 1, seed: 31, segment_ms: 250, profile: WorldProfile::MultiThreaded },
    CorpusCase { name: "mt-b", secs: 1, apps: 2, seed: 32, segment_ms: 100, profile: WorldProfile::MultiThreaded },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_names_are_unique_file_stems() {
        let mut names: Vec<&str> = CORPUS_CASES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS_CASES.len());
        assert_eq!(CORPUS_CASES[0].file_name(), "app-a.seg");
    }

    #[test]
    fn profile_serde_is_kebab_case_with_standard_default() {
        assert_eq!(
            serde_json::to_string(&WorldProfile::MultiThreaded).expect("ser"),
            "\"multi-threaded\""
        );
        assert_eq!(
            serde_json::from_str::<WorldProfile>("\"lossy\"").expect("de"),
            WorldProfile::Lossy
        );
        assert_eq!(WorldProfile::default(), WorldProfile::Standard);
        assert!(WorldProfile::Standard.is_standard());
        assert!(!WorldProfile::Bursty.is_standard());
    }

    #[test]
    fn matrix_covers_multi_threaded_worlds() {
        assert!(CORPUS_CASES.iter().any(|c| c.profile == WorldProfile::MultiThreaded));
    }

    #[test]
    fn cases_stay_cheap_to_record() {
        for c in CORPUS_CASES {
            assert!(c.secs <= 2, "{}: corpus cases must stay tiny", c.name);
            assert!(c.apps <= 2, "{}: corpus cases must stay tiny", c.name);
            assert!(c.segment_ms >= 50 && c.segment_ms <= 250, "{}", c.name);
        }
    }
}
