//! The golden replay corpus: the fixed matrix of small seeded workloads
//! whose recorded traces are committed under `tests/corpus/` at the repo
//! root.
//!
//! Each case names a tiny world — a seed, an app count, a run length, a
//! segment length — that the `record` experiment binary (with
//! `corpus=<dir>`) traces into a binary segment file. The committed
//! corpus pins two things at once:
//!
//! - **the wire format**: decoding a years-old file must still work
//!   byte-for-byte (any codec change that breaks it needs a version
//!   bump, see `docs/TRACE_FORMAT.md`);
//! - **the synthesis semantics**: the model digest of each replayed file
//!   is committed in `MANIFEST.json`, so a behavioural change to the
//!   synthesis pipeline shows up as a digest mismatch even if the codec
//!   is untouched.
//!
//! The matrix is deliberately small (one simulated second per case, a
//! few KB per file) but varied: single- and multi-app worlds, segment
//! lengths from 50 ms (many small segments) to 250 ms (few large ones).

/// One corpus case: the parameters of a recorded world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusCase {
    /// Case name; the recorded file is `<name>.seg`.
    pub name: &'static str,
    /// Simulated seconds recorded.
    pub secs: u64,
    /// Generated applications co-deployed.
    pub apps: u64,
    /// World seed.
    pub seed: u64,
    /// Segment length in simulated milliseconds.
    pub segment_ms: u64,
}

impl CorpusCase {
    /// The corpus file name of this case, `<name>.seg`.
    pub fn file_name(&self) -> String {
        format!("{}.seg", self.name)
    }
}

/// The fixed corpus matrix. Append-only by convention: adding a case is
/// cheap, changing an existing one silently retires the regression it
/// carried.
pub const CORPUS_CASES: [CorpusCase; 10] = [
    CorpusCase { name: "app-a", secs: 1, apps: 1, seed: 11, segment_ms: 250 },
    CorpusCase { name: "app-b", secs: 1, apps: 1, seed: 12, segment_ms: 250 },
    CorpusCase { name: "app-c", secs: 1, apps: 1, seed: 13, segment_ms: 250 },
    CorpusCase { name: "app-d", secs: 1, apps: 1, seed: 14, segment_ms: 250 },
    CorpusCase { name: "app-e", secs: 1, apps: 1, seed: 15, segment_ms: 100 },
    CorpusCase { name: "app-f", secs: 1, apps: 1, seed: 16, segment_ms: 100 },
    CorpusCase { name: "app-g", secs: 1, apps: 1, seed: 17, segment_ms: 50 },
    CorpusCase { name: "app-h", secs: 1, apps: 1, seed: 18, segment_ms: 50 },
    CorpusCase { name: "duo-a", secs: 1, apps: 2, seed: 21, segment_ms: 250 },
    CorpusCase { name: "duo-b", secs: 1, apps: 2, seed: 22, segment_ms: 50 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_names_are_unique_file_stems() {
        let mut names: Vec<&str> = CORPUS_CASES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CORPUS_CASES.len());
        assert_eq!(CORPUS_CASES[0].file_name(), "app-a.seg");
    }

    #[test]
    fn cases_stay_cheap_to_record() {
        for c in CORPUS_CASES {
            assert!(c.secs <= 2, "{}: corpus cases must stay tiny", c.name);
            assert!(c.apps <= 2, "{}: corpus cases must stay tiny", c.name);
            assert!(c.segment_ms >= 50 && c.segment_ms <= 250, "{}", c.name);
        }
    }
}
