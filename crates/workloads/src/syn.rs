//! The SYN synthetic application (Fig. 3a).
//!
//! Six nodes exercising every structural feature the framework must
//! identify (Sec. VI, scenarios (i)–(v)):
//!
//! | node         | callbacks |
//! |--------------|-----------|
//! | `syn_mixed`  | timer `T1` → `/t1`; subscriber `SC5` ⊂ `/clp3`; service `SV3` = `/sv3` |
//! | `syn_timers` | timer `T2` → `/clp3`; timer `T3` → `/t3`, `/clp3`; subscriber `SC6` ⊂ `/f3` |
//! | `syn_chain`  | `SC1` ⊂ `/t1` calls `CL1`; client `CL1` (`/sv1`) → `/f1`; `SC3` ⊂ `/t3` calls `CL3`; client `CL3` (`/sv3`) |
//! | `syn_servers`| service `SV1` = `/sv1`; service `SV2` = `/sv2` → `/f2` |
//! | `syn_clients`| `SC4` ⊂ `/clp3` calls `CL2`; client `CL2` (`/sv2`) calls `CL4`; client `CL4` (`/sv3`) |
//! | `syn_fusion` | `SC2_1` ⊂ `/f1` (sync); `SC2_2` ⊂ `/f2` (sync); synchronizer → `/f3` |
//!
//! Properties covered: (i) same-type callbacks within a node (T2/T3,
//! SV1/SV2, CL2/CL4, SC1/SC3); (ii) a node mixing timer, subscriber and
//! service (`syn_mixed`); (iii) `/clp3` subscribed by SC4 *and* SC5;
//! (iv) `/sv3` invoked from two different callers (SC3 via CL3, CL2 via
//! CL4) — the model must show **two** SV3 vertices; (v) `/f1`+`/f2`
//! synchronized into `/f3` via an `&` junction. T2 and T3 both publishing
//! `/clp3` creates OR junctions at SC4 and SC5.

use rtms_ros2::{AppBuilder, AppSpec, WorkModel};
use rtms_trace::Nanos;

/// Vertices the synthesized SYN model must contain: 17 callback entries
/// (the `/sv3` service splits into two) plus one `&` junction.
pub const SYN_VERTEX_COUNT: usize = 19;

/// Edges the synthesized SYN model must contain.
pub const SYN_EDGE_COUNT: usize = 19;

/// Builds the SYN application. `scale` multiplies every callback's
/// constant computational load — the paper uses "a constant computational
/// load for a single run" and varies it across runs to create varying
/// interference for AVP.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive.
pub fn syn_app(scale: f64) -> AppSpec {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    let w = |ms: f64| WorkModel::constant_millis(ms * scale);
    let mut app = AppBuilder::new("syn");

    let mixed = app.node("syn_mixed");
    app.timer(mixed, "T1", Nanos::from_millis(100), w(1.0)).publishes("/t1");
    app.subscriber(mixed, "SC5", "/clp3", w(0.5));
    app.service(mixed, "SV3", "/sv3", w(1.5));

    let timers = app.node("syn_timers");
    app.timer(timers, "T2", Nanos::from_millis(80), w(0.8)).publishes("/clp3");
    app.timer(timers, "T3", Nanos::from_millis(120), w(0.6))
        .publishes("/t3")
        .publishes("/clp3");
    app.subscriber(timers, "SC6", "/f3", w(0.4));

    let chain = app.node("syn_chain");
    app.subscriber(chain, "SC1", "/t1", w(0.9)).calls("CL1");
    app.client(chain, "CL1", "/sv1", w(0.7)).publishes("/f1");
    app.subscriber(chain, "SC3", "/t3", w(0.8)).calls("CL3");
    app.client(chain, "CL3", "/sv3", w(0.3));

    let servers = app.node("syn_servers");
    app.service(servers, "SV1", "/sv1", w(1.2));
    app.service(servers, "SV2", "/sv2", w(1.0)).publishes("/f2");

    let clients = app.node("syn_clients");
    app.subscriber(clients, "SC4", "/clp3", w(0.6)).calls("CL2");
    app.client(clients, "CL2", "/sv2", w(0.5)).calls("CL4");
    app.client(clients, "CL4", "/sv3", w(0.4));

    let fusion = app.node("syn_fusion");
    app.subscriber(fusion, "SC2_1", "/f1", w(0.5));
    app.subscriber(fusion, "SC2_2", "/f2", w(0.5));
    app.sync_group(fusion, "MS1", ["SC2_1", "SC2_2"], ["/f3"]);

    app.build().expect("SYN wiring is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_ros2::CallbackSpec;

    #[test]
    fn builds_with_six_nodes() {
        let app = syn_app(1.0);
        assert_eq!(app.nodes.len(), 6);
        let total_cbs: usize = app.nodes.iter().map(|n| n.callbacks.len()).sum();
        assert_eq!(total_cbs, 17);
    }

    #[test]
    fn sv3_has_two_distinct_call_paths() {
        let app = syn_app(1.0);
        let sv3_clients: Vec<&str> = app
            .nodes
            .iter()
            .flat_map(|n| &n.callbacks)
            .filter_map(|cb| match cb {
                CallbackSpec::Client { name, service, .. } if service == "/sv3" => {
                    Some(name.as_str())
                }
                _ => None,
            })
            .collect();
        assert_eq!(sv3_clients.len(), 2, "two clients of /sv3: {sv3_clients:?}");
    }

    #[test]
    fn clp3_has_two_subscribers_and_two_publishers() {
        let app = syn_app(1.0);
        let subs = app
            .nodes
            .iter()
            .flat_map(|n| &n.callbacks)
            .filter(|cb| matches!(cb, CallbackSpec::Subscriber { topic, .. } if topic == "/clp3"))
            .count();
        assert_eq!(subs, 2);
        let pubs = app
            .nodes
            .iter()
            .flat_map(|n| &n.callbacks)
            .filter(|cb| {
                cb.outputs().iter().any(
                    |o| matches!(o, rtms_ros2::OutputAction::Publish(t) if t == "/clp3"),
                )
            })
            .count();
        assert_eq!(pubs, 2);
    }

    #[test]
    fn scale_multiplies_load() {
        let a = syn_app(1.0);
        let b = syn_app(2.0);
        let work = |app: &AppSpec| match &app.nodes[0].callbacks[0] {
            CallbackSpec::Timer { work, .. } => work.mean(),
            _ => panic!("T1 first"),
        };
        assert_eq!(work(&b).as_nanos(), 2 * work(&a).as_nanos());
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = syn_app(0.0);
    }
}
