//! The AVP LIDAR-based localization pipeline (Fig. 3b, Table II).
//!
//! Autoware's Autonomous Valet Parking localization demo: raw point clouds
//! from the rear and front VLP-16 LIDARs (10 Hz) are filtered and
//! transformed in two separate nodes, synchronized and fused in a fusion
//! node, downsampled by a voxel grid, and fed to an NDT localizer that
//! outputs the vehicle pose.
//!
//! The paper's testbed used real sensor data; here each callback's
//! execution-time distribution is calibrated so that its (BCET, ACET,
//! WCET) triple matches the measurements of Table II — the substitution
//! documented in DESIGN.md. Two 10 Hz driver timers stand in for the LIDAR
//! hardware.

use rtms_ros2::{AppBuilder, AppSpec, WorkModel};
use rtms_trace::Nanos;

/// `(callback, node, BCET ms, ACET ms, WCET ms)` — Table II of the paper.
pub const AVP_CALLBACKS: [(&str, &str, f64, f64, f64); 6] = [
    ("cb1", "filter_transform_vlp16_rear", 13.82, 17.1, 19.82),
    ("cb2", "filter_transform_vlp16_front", 23.31, 27.07, 30.5),
    ("cb3", "point_cloud_fusion", 0.41, 3.1, 3.97),
    ("cb4", "point_cloud_fusion", 0.38, 0.62, 3.36),
    ("cb5", "voxel_grid_cloud_node", 6.58, 8.47, 13.36),
    ("cb6", "p2d_ndt_localizer_node", 2.78, 25.64, 60.93),
];

/// The calibrated work model of one Table II callback.
pub fn avp_table2_calibration(callback: &str) -> Option<WorkModel> {
    avp_calibration_with_condition(callback, 1.0)
}

/// Calibrated work model under a run *condition* in `[0, 1]`: the tail of
/// the distribution (WCET) shrinks to `min + (max-min) * (0.9 + 0.1 *
/// condition)` while BCET and ACET stay fixed. Models the run-to-run
/// variability of the paper's testbed (driving scenario, cache/DDS state,
/// interfering SYN load): worst cases only materialize in unfavourable
/// runs, which is why Fig. 4's mWCET estimate keeps growing over the first
/// ~23 runs while mBCET/mACET barely move.
///
/// # Panics
///
/// Panics if `condition` is outside `[0, 1]`.
pub fn avp_calibration_with_condition(callback: &str, condition: f64) -> Option<WorkModel> {
    assert!((0.0..=1.0).contains(&condition), "condition must be in [0, 1]");
    let f = 0.9 + 0.1 * condition;
    AVP_CALLBACKS
        .iter()
        .find(|(name, ..)| *name == callback)
        .map(|&(_, _, b, a, w)| WorkModel::bounded_millis(b, a, b + (w - b) * f))
}

/// Builds the AVP localization application, including the two 10 Hz LIDAR
/// driver timers that stand in for the sensor hardware. Equivalent to
/// [`avp_localization_app_with_condition`] with the most unfavourable
/// condition (full Table II tails).
pub fn avp_localization_app() -> AppSpec {
    avp_localization_app_with_condition(1.0)
}

/// Builds the AVP localization application under a given run condition
/// (see [`avp_calibration_with_condition`]).
pub fn avp_localization_app_with_condition(condition: f64) -> AppSpec {
    let cal = |cb: &str| {
        avp_calibration_with_condition(cb, condition).expect("calibrated callback")
    };
    let mut app = AppBuilder::new("avp_localization");

    let rear_drv = app.node("lidar_rear_driver");
    app.timer(rear_drv, "lidar_rear_pub", Nanos::from_millis(100), WorkModel::constant_millis(0.05))
        .publishes("/lidar_rear/points_raw");
    let front_drv = app.node("lidar_front_driver");
    app.timer(front_drv, "lidar_front_pub", Nanos::from_millis(100), WorkModel::constant_millis(0.05))
        .publishes("/lidar_front/points_raw");

    let rear = app.node("filter_transform_vlp16_rear");
    app.subscriber(rear, "cb1", "/lidar_rear/points_raw", cal("cb1"))
        .publishes("/lidar_rear/points_filtered");
    let front = app.node("filter_transform_vlp16_front");
    app.subscriber(front, "cb2", "/lidar_front/points_raw", cal("cb2"))
        .publishes("/lidar_front/points_filtered");

    let fusion = app.node("point_cloud_fusion");
    app.subscriber(fusion, "cb3", "/lidar_rear/points_filtered", cal("cb3"));
    app.subscriber(fusion, "cb4", "/lidar_front/points_filtered", cal("cb4"));
    app.sync_group(fusion, "fusion_sync", ["cb3", "cb4"], ["/lidars/points_fused"]);

    let voxel = app.node("voxel_grid_cloud_node");
    app.subscriber(voxel, "cb5", "/lidars/points_fused", cal("cb5"))
        .publishes("/lidars/points_fused_downsampled");

    let ndt = app.node("p2d_ndt_localizer_node");
    app.subscriber(ndt, "cb6", "/lidars/points_fused_downsampled", cal("cb6"))
        .publishes("/localization/ndt_pose");

    app.build().expect("AVP wiring is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_nodes_including_drivers() {
        let app = avp_localization_app();
        assert_eq!(app.nodes.len(), 7);
    }

    #[test]
    fn calibration_matches_table_ii() {
        for (cb, _, b, a, w) in AVP_CALLBACKS {
            let model = avp_table2_calibration(cb).expect("calibrated");
            let (min, max) = model.support();
            assert_eq!(min, Nanos::from_millis_f64(b));
            assert_eq!(max, Nanos::from_millis_f64(w));
            assert_eq!(model.mean(), Nanos::from_millis_f64(a));
        }
        assert!(avp_table2_calibration("cb7").is_none());
    }

    #[test]
    fn fusion_node_synchronizes_cb3_cb4() {
        let app = avp_localization_app();
        let fusion = app
            .nodes
            .iter()
            .find(|n| n.name == "point_cloud_fusion")
            .expect("fusion node");
        assert_eq!(fusion.sync_groups.len(), 1);
        assert_eq!(fusion.sync_groups[0].members, vec!["cb3", "cb4"]);
        assert_eq!(fusion.sync_groups[0].outputs, vec!["/lidars/points_fused"]);
    }

    #[test]
    fn condition_scales_only_the_tail() {
        let full = avp_calibration_with_condition("cb6", 1.0).expect("cb6");
        let mild = avp_calibration_with_condition("cb6", 0.0).expect("cb6");
        assert_eq!(full.support().0, mild.support().0, "BCET unchanged");
        assert_eq!(full.mean(), mild.mean(), "ACET unchanged");
        assert!(mild.support().1 < full.support().1, "WCET tail shrinks");
        let shrink = mild.support().1.as_millis_f64() / full.support().1.as_millis_f64();
        assert!(shrink > 0.88 && shrink < 0.95, "about 10% tail reduction: {shrink}");
    }

    #[test]
    #[should_panic]
    fn condition_out_of_range_rejected() {
        let _ = avp_calibration_with_condition("cb1", 1.5);
    }

    #[test]
    fn cb2_average_load_is_about_27_percent() {
        // Sanity of the paper's remark: cb2 averages 27.07 ms at 10 Hz,
        // i.e. a 27% processor load.
        let (_, _, _, acet, _) = AVP_CALLBACKS[1];
        let load = acet / 100.0;
        assert!((load - 0.27).abs() < 0.01);
    }
}
