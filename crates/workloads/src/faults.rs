//! Fault-scenario generation: applications that misbehave on schedule,
//! with ground truth.
//!
//! Builds on [`crate::generator`]: generate a valid random application,
//! then pick fault targets from its spec and produce the matching
//! [`rtms_ros2::FaultPlan`] *and* the ground-truth list of injected faults
//! — which callback, which vertex merge key, when, and which alert kind a
//! correct monitor must raise. The triple `(AppSpec, FaultPlan,
//! Vec<InjectedFault>)` is everything a detection experiment needs to
//! compute precision, recall, and detection latency.
//!
//! Target selection is deliberately conservative so ground truth stays
//! *checkable*:
//!
//! - slowdowns hit timers or subscribers that make no service calls, so
//!   the faulted vertex's merge key is computable from the spec alone;
//! - timer stutters hit timers whose period is short enough that the
//!   stuttered cadence still yields start-gap samples within one
//!   observation window ([`FaultScenarioConfig::stutter_max_period`]);
//! - publisher mutes hit timers whose published topic someone subscribes
//!   to, so the structural change is observable downstream;
//! - message drops hit brisk timers that are the *sole* publisher of a
//!   topic some eligible subscriber consumes, so the starved arrival rate
//!   at that subscriber is unambiguous evidence of transport loss
//!   ([`FaultScenarioConfig::drop_max_period`] keeps the healthy rate
//!   high enough to be judged within one observation window).

use crate::generator::{generate_app, GeneratorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_core::SynthesisSession;
use rtms_monitor::{Alert, AlertKind, Baseline, Monitor};
use rtms_ros2::{AppSpec, CallbackSpec, FaultKind, FaultPlan, FaultSpec, OutputAction, Ros2World};
use rtms_trace::Nanos;
use serde::{Deserialize, Serialize};

/// The alert kind a correct monitor raises for an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpectedAlert {
    /// Execution-time drift (from a [`FaultKind::Slowdown`]).
    ExecDrift,
    /// Period drift (from a [`FaultKind::TimerStutter`]).
    PeriodDrift,
    /// Structural change (from a [`FaultKind::MutePublisher`]).
    TopologyChange,
    /// Starved subscriber arrival rate (from a [`FaultKind::MessageDrop`]
    /// on the upstream publisher).
    MessageLoss,
}

/// Ground truth for one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// The faulted callback's name.
    pub callback: String,
    /// The node it belongs to.
    pub node: String,
    /// The merge key of the healthy vertex the fault degrades (as
    /// [`rtms_core::DagVertex::merge_key`] computes it).
    pub vertex_key: String,
    /// Merge keys of subscriber vertices transitively fed by the faulted
    /// callback's publications. A mute starves them, a stutter slows
    /// them, so alerts naming these keys are *propagation* of this fault,
    /// not false positives.
    pub downstream_keys: Vec<String>,
    /// Activation instant.
    pub at: Nanos,
    /// The injected fault.
    pub fault: FaultKind,
    /// The alert kind a correct monitor must raise.
    pub expected: ExpectedAlert,
}

impl InjectedFault {
    /// Whether `alert` detects this fault *with the correct kind*: the
    /// expected alert kind on the faulted vertex, its propagation cone
    /// (for period drift), or — for topology changes — a diff mentioning
    /// the faulted timer or anything it feeds.
    pub fn is_detected_by(&self, alert: &Alert) -> bool {
        match (&alert.kind, self.expected) {
            (AlertKind::ExecDrift { key, .. }, ExpectedAlert::ExecDrift) => {
                key == &self.vertex_key
            }
            (AlertKind::PeriodDrift { key, .. }, ExpectedAlert::PeriodDrift) => {
                key == &self.vertex_key || self.downstream_keys.contains(key)
            }
            (AlertKind::TopologyChange { diff }, ExpectedAlert::TopologyChange) => {
                let prefix = format!("{}|timer|", self.node);
                let mentions = |k: &String| {
                    k == &self.vertex_key
                        || k.starts_with(&prefix)
                        || self.downstream_keys.contains(k)
                };
                diff.added_vertices.iter().any(mentions)
                    || diff.missing_vertices.iter().any(mentions)
                    || diff
                        .added_edges
                        .iter()
                        .chain(diff.missing_edges.iter())
                        .any(|e| mentions(&e.from) || mentions(&e.to))
            }
            (AlertKind::MessageLoss { key, .. }, ExpectedAlert::MessageLoss) => {
                // The loss is observed where messages fail to arrive: at
                // the subscribers the dropping publisher feeds.
                self.downstream_keys.contains(key)
            }
            _ => false,
        }
    }

    /// Whether `alert` is attributable to this fault at all: a correct
    /// detection ([`InjectedFault::is_detected_by`]) or a known
    /// propagation effect — a load spike on the node a slowdown degrades.
    /// Alerts no injected fault accounts for are false positives.
    pub fn accounts_for(&self, alert: &Alert) -> bool {
        if self.is_detected_by(alert) {
            return true;
        }
        match (&alert.kind, self.expected) {
            (AlertKind::LoadSpike { node, .. }, ExpectedAlert::ExecDrift) => {
                self.vertex_key.starts_with(&format!("{node}|"))
            }
            // A stuttered or muted upstream also *starves* its consumers:
            // a 2.2x stutter leaves ~45% of the healthy rate, right at the
            // loss bound, and a mute's activation window still delivers a
            // sub-bound trickle. Loss alerts inside the propagation cone
            // are attribution, not false positives.
            (
                AlertKind::MessageLoss { key, .. },
                ExpectedAlert::PeriodDrift | ExpectedAlert::TopologyChange,
            ) => self.downstream_keys.contains(key),
            // Heavy transport loss can empty a consumer's window outright,
            // which the monitor reports as structure going missing.
            (AlertKind::TopologyChange { diff }, ExpectedAlert::MessageLoss) => {
                let mentions =
                    |k: &String| k == &self.vertex_key || self.downstream_keys.contains(k);
                diff.added_vertices.iter().any(mentions)
                    || diff.missing_vertices.iter().any(mentions)
                    || diff
                        .added_edges
                        .iter()
                        .chain(diff.missing_edges.iter())
                        .any(|e| mentions(&e.from) || mentions(&e.to))
            }
            _ => false,
        }
    }
}

/// Drives a world through the standard monitoring flow: the first
/// `baseline_segments` trace segments feed one cumulative
/// [`SynthesisSession`] whose model becomes the healthy [`Baseline`];
/// every later segment (up to `total_segments`) is synthesized into a
/// per-window snapshot — a fresh session sharing the learned node-name
/// map — and fed to a [`Monitor`]. Returns the monitor and every raised
/// alert tagged with the global segment index that triggered it.
///
/// This is the harness behind the `monitoring` experiment binary and the
/// monitor's property suites; sharing it keeps their scoring identical.
///
/// # Panics
///
/// Panics unless `0 < baseline_segments < total_segments`.
pub fn monitor_run(
    world: &mut Ros2World,
    segment: Nanos,
    baseline_segments: usize,
    total_segments: usize,
) -> (Monitor, Vec<(usize, Alert)>) {
    assert!(
        baseline_segments > 0 && baseline_segments < total_segments,
        "need 0 < baseline_segments ({baseline_segments}) < total_segments ({total_segments})"
    );
    let mut baseline_session = SynthesisSession::new();
    let mut monitor: Option<Monitor> = None;
    let mut alerts: Vec<(usize, Alert)> = Vec::new();
    let total = Nanos::from_nanos(segment.as_nanos() * total_segments as u64);
    world.trace_segments(total, segment, |seg| {
        if seg.index() < baseline_segments {
            baseline_session.feed_segment(seg);
            if seg.index() == baseline_segments - 1 {
                monitor = Some(Monitor::new(Baseline::from_dag(&baseline_session.model())));
            }
        } else {
            let mut window = SynthesisSession::with_names(baseline_session.names().clone());
            window.feed_segment(seg);
            let snapshot = window.model();
            let m = monitor.as_mut().expect("baseline precedes monitoring");
            for alert in m.observe(&snapshot, segment) {
                alerts.push((seg.index(), alert));
            }
        }
    });
    (monitor.expect("baseline_segments > 0"), alerts)
}

/// A generated application together with its fault plan and ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// The (healthy) application description.
    pub app: AppSpec,
    /// The faults to attach via
    /// [`rtms_ros2::WorldBuilder::fault_plan`](rtms_ros2::WorldBuilder).
    pub plan: FaultPlan,
    /// One entry per injected fault, in injection order.
    pub truth: Vec<InjectedFault>,
}

/// Tuning knobs of [`generate_fault_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenarioConfig {
    /// Configuration for the underlying application generator.
    pub app: GeneratorConfig,
    /// Number of faults to inject (best effort: fewer if the generated
    /// application offers fewer eligible targets).
    pub faults: usize,
    /// Activation instants are drawn uniformly from this window.
    pub window: (Nanos, Nanos),
    /// Slowdown factor range (inclusive).
    pub slowdown_factor: (f64, f64),
    /// Timer-stutter factor range (inclusive).
    pub stutter_factor: (f64, f64),
    /// Only timers with a period up to this are stutter targets, so the
    /// stuttered cadence still produces start gaps inside one observation
    /// window.
    pub stutter_max_period: Nanos,
    /// Message-drop probability range (inclusive). Kept well above the
    /// monitor's loss threshold complement so the surviving rate is
    /// unambiguously below the bound, and below 1 so the stream thins
    /// rather than vanishes.
    pub drop_prob: (f64, f64),
    /// Only timers with a period up to this are message-drop targets, so
    /// the starved subscriber's healthy arrival rate predicts enough
    /// messages per observation window to be judged for loss.
    pub drop_max_period: Nanos,
}

impl FaultScenarioConfig {
    /// A configuration injecting `faults` faults activating inside
    /// `window`, with the application shape of [`monitoring_app_config`]
    /// and detection-friendly default factors.
    pub fn new(faults: usize, window: (Nanos, Nanos)) -> FaultScenarioConfig {
        FaultScenarioConfig {
            app: monitoring_app_config(),
            faults,
            window,
            slowdown_factor: (5.0, 7.0),
            stutter_factor: (2.0, 2.2),
            stutter_max_period: Nanos::from_millis(125),
            drop_prob: (0.65, 0.8),
            drop_max_period: Nanos::from_millis(80),
        }
    }
}

/// The application shape used by monitoring experiments and suites:
/// briskly firing callbacks (20–80 ms timer periods), so every callback
/// produces enough samples per observation window for envelope capture
/// and per-window drift judgment.
pub fn monitoring_app_config() -> GeneratorConfig {
    GeneratorConfig {
        period_ms: (20, 80),
        work_ms: (0.1, 1.0),
        ..GeneratorConfig::default()
    }
}

/// A fault target candidate scraped from the spec.
struct Candidate {
    node: String,
    name: String,
    is_timer: bool,
    period: Nanos,
    vertex_key: String,
    /// Subscribed topic (empty for timers).
    topic: String,
    /// Plain published topics (what a mute silences).
    publishes: Vec<String>,
}

/// The names of callbacks transitively fed by `topics` — everything a
/// mute of those topics starves (or a stutter slows): subscribers of the
/// topics, whatever *they* publish, and the outputs of any synchronizer
/// one of them belongs to.
fn fed_by(app: &AppSpec, topics: &[String]) -> std::collections::BTreeSet<String> {
    use std::collections::BTreeSet;
    let mut topics: BTreeSet<String> = topics.iter().cloned().collect();
    let mut callbacks: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut grew = false;
        for node in &app.nodes {
            for cb in &node.callbacks {
                let CallbackSpec::Subscriber { name, topic, outputs, .. } = cb else { continue };
                if !topics.contains(topic) || callbacks.contains(name) {
                    continue;
                }
                callbacks.insert(name.clone());
                grew = true;
                for out in outputs {
                    if let OutputAction::Publish(t) = out {
                        grew |= topics.insert(t.clone());
                    }
                }
            }
            for group in &node.sync_groups {
                // A synchronizer fires only when every member has fresh
                // data: one starved member starves its outputs.
                if group.members.iter().any(|m| callbacks.contains(m)) {
                    for t in &group.outputs {
                        grew |= topics.insert(t.clone());
                    }
                }
            }
        }
        if !grew {
            return callbacks;
        }
    }
}

/// Generates an application plus a seeded fault plan and its ground truth.
///
/// Deterministic per `(seed, config)`. The number of injected faults is
/// `min(config.faults, eligible targets)` — each callback is faulted at
/// most once, and fault kinds rotate slowdown → stutter → mute → message
/// drop, skipping kinds with no remaining eligible target.
pub fn generate_fault_scenario(seed: u64, config: &FaultScenarioConfig) -> FaultScenario {
    let app = generate_app(seed, &config.app);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_ca5e);

    // Scrape candidates whose healthy vertex merge key is computable from
    // the spec: timers and subscribers that make no service calls.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut subscribed: Vec<&str> = Vec::new();
    for node in &app.nodes {
        for cb in &node.callbacks {
            if let CallbackSpec::Subscriber { topic, .. } = cb {
                subscribed.push(topic);
            }
        }
    }
    for node in &app.nodes {
        for cb in &node.callbacks {
            let calls_service =
                cb.outputs().iter().any(|o| matches!(o, OutputAction::CallService { .. }));
            if calls_service {
                continue;
            }
            let publishes: Vec<String> = cb
                .outputs()
                .iter()
                .filter_map(|o| match o {
                    OutputAction::Publish(t) => Some(t.clone()),
                    OutputAction::CallService { .. } => None,
                })
                .collect();
            match cb {
                CallbackSpec::Timer { name, period, .. } => {
                    let mut outs = publishes.clone();
                    outs.sort();
                    candidates.push(Candidate {
                        node: node.name.clone(),
                        name: name.clone(),
                        is_timer: true,
                        period: *period,
                        vertex_key: format!("{}|timer|{}", node.name, outs.join(",")),
                        topic: String::new(),
                        publishes,
                    });
                }
                CallbackSpec::Subscriber { name, topic, .. } => {
                    candidates.push(Candidate {
                        node: node.name.clone(),
                        name: name.clone(),
                        is_timer: false,
                        period: Nanos::ZERO,
                        vertex_key: format!("{}|subscriber|{}", node.name, topic),
                        topic: topic.clone(),
                        publishes,
                    });
                }
                _ => {}
            }
        }
    }

    let uniform = |rng: &mut StdRng, (lo, hi): (f64, f64)| {
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..=hi)
        }
    };
    let draw_at = |rng: &mut StdRng| {
        let (lo, hi) = config.window;
        if lo >= hi {
            lo
        } else {
            Nanos::from_nanos(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
        }
    };

    // How many writers each topic has (callback publications and
    // synchronizer outputs alike). A message drop is only detectable at a
    // subscriber whose topic has exactly one writer — otherwise the other
    // writers keep the arrival rate above the loss bound.
    let mut writers: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for node in &app.nodes {
        for cb in &node.callbacks {
            for out in cb.outputs() {
                if let OutputAction::Publish(t) = out {
                    *writers.entry(t.as_str()).or_insert(0) += 1;
                }
            }
        }
        for group in &node.sync_groups {
            for t in &group.outputs {
                *writers.entry(t.as_str()).or_insert(0) += 1;
            }
        }
    }

    let mut used: Vec<bool> = candidates.iter().map(|_| false).collect();
    // Callbacks perturbed downstream of an already-chosen mute/stutter:
    // not eligible as further targets (a starved callback cannot exhibit
    // its own detectable drift).
    let mut perturbed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut plan = FaultPlan::new();
    let mut truth: Vec<InjectedFault> = Vec::new();
    let kinds = [
        ExpectedAlert::ExecDrift,
        ExpectedAlert::PeriodDrift,
        ExpectedAlert::TopologyChange,
        ExpectedAlert::MessageLoss,
    ];
    // Start the kind rotation at a seed-dependent offset so scenarios with
    // few faults still cover all kinds across a seed sweep.
    let mut kind_cursor = (seed % kinds.len() as u64) as usize;
    while truth.len() < config.faults {
        // Rotate through the kinds until one still has an eligible target.
        let mut chosen: Option<(usize, ExpectedAlert)> = None;
        for probe in 0..kinds.len() {
            let expected = kinds[(kind_cursor + probe) % kinds.len()];
            let eligible: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(i, c)| {
                    if used[*i] || perturbed.contains(&c.name) {
                        return false;
                    }
                    let independent = || {
                        // The fault's propagation cone must not touch an
                        // already-chosen target.
                        let cone = fed_by(&app, &c.publishes);
                        truth.iter().all(|t| !cone.contains(&t.callback))
                    };
                    match expected {
                        ExpectedAlert::ExecDrift => true,
                        ExpectedAlert::PeriodDrift => {
                            c.is_timer
                                && c.period <= config.stutter_max_period
                                && independent()
                        }
                        ExpectedAlert::TopologyChange => {
                            c.is_timer
                                && c.publishes
                                    .iter()
                                    .any(|t| subscribed.iter().any(|s| s == t))
                                && independent()
                        }
                        ExpectedAlert::MessageLoss => {
                            c.is_timer
                                && c.period <= config.drop_max_period
                                && c.publishes.iter().any(|t| {
                                    writers.get(t.as_str()) == Some(&1)
                                        && candidates
                                            .iter()
                                            .any(|d| !d.is_timer && d.topic == *t)
                                })
                                && independent()
                        }
                    }
                })
                .map(|(i, _)| i)
                .collect();
            if !eligible.is_empty() {
                chosen = Some((eligible[rng.gen_range(0..eligible.len())], expected));
                kind_cursor = (kind_cursor + probe + 1) % kinds.len();
                break;
            }
        }
        let Some((idx, expected)) = chosen else { break };
        used[idx] = true;
        let c = &candidates[idx];
        let at = draw_at(&mut rng);
        let fault = match expected {
            ExpectedAlert::ExecDrift => {
                FaultKind::Slowdown { factor: uniform(&mut rng, config.slowdown_factor) }
            }
            ExpectedAlert::PeriodDrift => {
                FaultKind::TimerStutter { factor: uniform(&mut rng, config.stutter_factor) }
            }
            ExpectedAlert::TopologyChange => FaultKind::MutePublisher,
            ExpectedAlert::MessageLoss => {
                FaultKind::MessageDrop { prob: uniform(&mut rng, config.drop_prob) }
            }
        };
        let downstream = match expected {
            ExpectedAlert::ExecDrift => std::collections::BTreeSet::new(),
            _ => fed_by(&app, &c.publishes),
        };
        let downstream_keys: Vec<String> = candidates
            .iter()
            .filter(|d| downstream.contains(&d.name))
            .map(|d| d.vertex_key.clone())
            .collect();
        perturbed.extend(downstream.iter().cloned());
        plan.push(FaultSpec { callback: c.name.clone(), at, kind: fault.clone() });
        truth.push(InjectedFault {
            callback: c.name.clone(),
            node: c.node.clone(),
            vertex_key: c.vertex_key.clone(),
            downstream_keys,
            at,
            fault,
            expected,
        });
    }

    FaultScenario { app, plan, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_ros2::WorldBuilder;

    fn cfg() -> FaultScenarioConfig {
        FaultScenarioConfig::new(3, (Nanos::from_secs(1), Nanos::from_secs(2)))
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_fault_scenario(11, &cfg()), generate_fault_scenario(11, &cfg()));
        assert_ne!(
            generate_fault_scenario(11, &cfg()).truth,
            generate_fault_scenario(12, &cfg()).truth
        );
    }

    #[test]
    fn plans_build_valid_worlds() {
        for seed in 0..20 {
            let s = generate_fault_scenario(seed, &cfg());
            assert!(!s.truth.is_empty(), "seed {seed}: no eligible fault target");
            let world = WorldBuilder::new(2)
                .seed(seed)
                .app(s.app.clone())
                .fault_plan(s.plan.clone())
                .build();
            assert!(world.is_ok(), "seed {seed}: {:?}", world.err());
        }
    }

    #[test]
    fn truth_matches_plan_and_constraints() {
        for seed in 0..20 {
            let s = generate_fault_scenario(seed, &cfg());
            assert_eq!(s.plan.faults().len(), s.truth.len());
            for (spec, t) in s.plan.faults().iter().zip(&s.truth) {
                assert_eq!(spec.callback, t.callback);
                assert_eq!(spec.at, t.at);
                assert!(t.at >= Nanos::from_secs(1) && t.at <= Nanos::from_secs(2));
                match (&t.fault, t.expected) {
                    (FaultKind::Slowdown { factor }, ExpectedAlert::ExecDrift) => {
                        assert!(*factor >= 5.0 && *factor <= 7.0)
                    }
                    (FaultKind::TimerStutter { factor }, ExpectedAlert::PeriodDrift) => {
                        assert!(*factor >= 2.0 && *factor <= 2.2)
                    }
                    (FaultKind::MutePublisher, ExpectedAlert::TopologyChange) => {}
                    (FaultKind::MessageDrop { prob }, ExpectedAlert::MessageLoss) => {
                        assert!(*prob >= 0.65 && *prob <= 0.8)
                    }
                    other => panic!("fault/expectation mismatch: {other:?}"),
                }
                assert!(
                    t.vertex_key.starts_with(&format!("{}|", t.node)),
                    "key {} must be rooted at node {}",
                    t.vertex_key,
                    t.node
                );
            }
            // No callback faulted twice.
            let mut names: Vec<&str> = s.truth.iter().map(|t| t.callback.as_str()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), s.truth.len());
        }
    }

    #[test]
    fn vertex_keys_exist_in_healthy_model() {
        // The ground-truth merge keys must match what synthesis actually
        // produces for the healthy application.
        for seed in 0..5 {
            let s = generate_fault_scenario(seed, &cfg());
            let mut world =
                WorldBuilder::new(2).seed(seed).app(s.app.clone()).build().expect("valid");
            let trace = world.trace_run(Nanos::from_secs(1));
            let dag = rtms_core::synthesize(&trace);
            let keys: Vec<String> = dag.vertices().iter().map(|v| v.merge_key()).collect();
            for t in &s.truth {
                assert!(
                    keys.contains(&t.vertex_key),
                    "seed {seed}: ground-truth key {} not in model keys {keys:?}",
                    t.vertex_key
                );
            }
        }
    }
}
