//! The merge algebra behind the fleet's hierarchical aggregation.
//!
//! The fleet service merges per-tenant models eagerly on each shard (in
//! tenant *completion* order — racy) and then merges the shard
//! accumulators (in shard index order), canonicalizing only the final
//! result. That is byte-identical to a flat merge of the same models only
//! if [`merge_dag_refs`] + [`Dag::canonicalize`] is associative and
//! order-independent over real synthesized models — including models
//! whose canonical callback labels carry `~n` collision suffixes (two
//! same-kind callbacks of one node on the same input), where a
//! window-order-dependent labeling would silently cross-wire vertices.
//!
//! This suite pins both properties over a population of 100+ models
//! synthesized from generated applications (rotating the fleet's image
//! shapes: standard, multi-threaded, bursty, service-heavy) plus the
//! paper's SYN case-study app at several scales. Debug builds shrink the
//! population; release (the CI sweep mode) covers the full count.

use rtms_core::{merge_dag_refs, Dag, SynthesisSession};
use rtms_ros2::WorldBuilder;
use rtms_trace::{Nanos, TraceSegment};
use rtms_workloads::{generate_app, syn_app, GeneratorConfig};

/// Population size: 104 models in release, a smaller smoke in debug.
const MODELS: usize = if cfg!(debug_assertions) { 16 } else { 104 };

fn json(dag: &Dag) -> String {
    serde_json::to_string(dag).expect("model serializes")
}

/// Merges `dags` in iteration order and canonicalizes — the fleet's
/// aggregation step, reduced to its algebra.
fn canonical_merge<'a, I: IntoIterator<Item = &'a Dag>>(dags: I) -> Dag {
    let mut merged = merge_dag_refs(dags);
    merged.canonicalize();
    merged
}

/// Synthesizes one model per population slot: three generator shapes and
/// a service-heavy variant in rotation, with every eighth slot running
/// the SYN case-study app instead of a generated one.
fn population() -> Vec<Dag> {
    (0..MODELS)
        .map(|i| {
            let seed = i as u64;
            let app = if i % 8 == 7 {
                syn_app(1.0 + (i / 8) as f64 * 0.5)
            } else {
                let base = GeneratorConfig::default();
                let cfg = match i % 4 {
                    0 => base,
                    1 => GeneratorConfig { workers: (2, 3), ..base },
                    2 => GeneratorConfig { bursts: (1, 2), ..base },
                    _ => GeneratorConfig { services: (2, 4), ..base },
                };
                generate_app(seed, &cfg)
            };
            let mut world = WorldBuilder::new(4)
                .seed(seed ^ 0x51ab)
                .app(app)
                .build()
                .expect("population app deploys");
            let trace = world.trace_run(Nanos::from_millis(400));
            rtms_core::synthesize(&trace)
        })
        .collect()
}

#[test]
fn merge_is_associative_and_order_independent() {
    let models = population();
    let reference = json(&canonical_merge(&models));

    // The property must be exercised on colliding labels, not just clean
    // ones: the population is seeded so some models carry `~n` suffixes.
    assert!(
        reference.contains('~'),
        "population produced no ~n label collisions; the suffix-stability \
         half of this test is vacuous"
    );

    // Shard-then-global grouping, the fleet topology: shard-local eager
    // merges (not canonicalized, exactly like `rtms-fleet`'s shard
    // workers) followed by one cross-shard merge.
    for shards in [2, 3, 5, 13] {
        let mut groups: Vec<Vec<&Dag>> = vec![Vec::new(); shards];
        for (i, m) in models.iter().enumerate() {
            groups[i % shards].push(m);
        }
        let locals: Vec<Dag> =
            groups.iter().filter(|g| !g.is_empty()).map(|g| merge_dag_refs(g.iter().copied())).collect();
        assert_eq!(
            json(&canonical_merge(&locals)),
            reference,
            "shard-then-global merge diverged from the flat merge at {shards} shards"
        );
    }

    // Order independence: reversed, and a strided permutation (7 is
    // coprime to both population sizes, so the stride visits every model).
    assert_eq!(
        json(&canonical_merge(models.iter().rev())),
        reference,
        "reversed merge order diverged"
    );
    let strided: Vec<&Dag> = (0..models.len()).map(|i| &models[(i * 7) % models.len()]).collect();
    assert_eq!(
        json(&canonical_merge(strided.iter().copied())),
        reference,
        "strided merge order diverged"
    );

    // Pairwise associativity on owned accumulators: (a ⊔ b) ⊔ c and
    // a ⊔ (b ⊔ c) canonicalize identically.
    let (a, b, c) = (&models[0], &models[1], &models[2]);
    let mut ab = a.clone();
    ab.merge(b);
    ab.merge(c);
    ab.canonicalize();
    let mut bc = b.clone();
    bc.merge(c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    a_bc.canonicalize();
    assert_eq!(json(&ab), json(&a_bc), "pairwise merge is not associative");
    assert_eq!(json(&ab), json(&canonical_merge([a, b, c])), "fold disagrees with merge_dag_refs");
}

/// `~n` collision suffixes are assigned in callback-ID order, not
/// observation order, so models extracted from *different windows of one
/// run* label the same callback identically — merging window models then
/// folds colliding-label vertices instead of cross-wiring them. Pinned
/// the way the fleet exercises it: per-window models (named from the
/// first window's INIT events, as shard workers do) must merge to the
/// same canonical key set as the full-run model, and the windowed merge
/// must be grouping-independent like any other.
#[test]
fn tilde_labels_stable_across_windows_of_one_run() {
    // Seed 27's default-config app carries two label collisions (probed;
    // the assert below keeps that from rotting silently).
    let app = generate_app(27, &GeneratorConfig::default());
    let mut world =
        WorldBuilder::new(4).seed(27 ^ 0x51ab).app(app).build().expect("app deploys");
    let mut segments: Vec<TraceSegment> = Vec::new();
    world.trace_segments_sequential(Nanos::from_millis(1_200), Nanos::from_millis(300), |seg| {
        segments.push(std::mem::take(seg));
    });
    assert_eq!(segments.len(), 4);

    // Full-run model: one session over every segment (streaming equals
    // batch, pinned by the streaming_equivalence suite).
    let mut full_session = SynthesisSession::new();
    for seg in &segments {
        full_session.feed_segment(seg);
    }
    full_session.flush();
    let full = {
        let mut m = full_session.model();
        m.canonicalize();
        m
    };
    let full_keys: Vec<String> = full.vertices().iter().map(|v| v.merge_key()).collect();
    assert!(
        full_keys.iter().any(|k| k.contains('~')),
        "seed 27 no longer produces label collisions; re-probe for a seed that does"
    );

    // Per-window models, named like fleet shard windows: node names come
    // from the first window's session (INIT events only appear there).
    let names = std::sync::Arc::clone(full_session.names());
    let windows: Vec<Dag> = segments
        .iter()
        .map(|seg| {
            let mut s = SynthesisSession::with_names(std::sync::Arc::clone(&names));
            s.feed_segment(seg);
            s.flush();
            s.model()
        })
        .collect();

    // Stable labels mean the merged windows cover exactly the full-run
    // key set — a window-order-dependent `~n` assignment would leak extra
    // keys (the same callback labeled two ways) into the union.
    let merged = canonical_merge(&windows);
    let merged_keys: Vec<String> = merged.vertices().iter().map(|v| v.merge_key()).collect();
    assert_eq!(merged_keys, full_keys, "windowed merge re-labeled vertices");

    // And the windowed merge obeys the same grouping independence.
    let reference = json(&merged);
    let mut first_half = merge_dag_refs(&windows[..2]);
    first_half.merge(&merge_dag_refs(&windows[2..]));
    first_half.canonicalize();
    assert_eq!(json(&first_half), reference, "window grouping changed the merged bytes");
    assert_eq!(json(&canonical_merge(windows.iter().rev())), reference);
}
