//! Full-world differential suite: the indexed scheduler/executor engine
//! against the pre-refactor reference engine, across the generated-app
//! population.
//!
//! One hundred generated applications (a dozen under debug assertions)
//! rotate through all four generator presets — standard, multi-threaded,
//! bursty, and city — and periodically add a fault plan or a lossy
//! best-effort QoS spec on top. For every case the *entire trace* (sched
//! and ROS event streams alike) must serialize byte-identically between
//! the two engines: every corpus digest and trained model in the repo
//! rests on this stream, so "close enough" is not a property we can test
//! for.

use rtms_ros2::{QosSpec, WorldBuilder};
use rtms_trace::Nanos;
use rtms_workloads::{
    generate_app, generate_fault_scenario, FaultScenarioConfig, GeneratorConfig,
};

/// One differential case: the app source, world shape, and horizon.
struct Case {
    seed: u64,
    preset: &'static str,
    cpus: usize,
    horizon: Nanos,
    lossy: bool,
    faulted: bool,
    wakeups: bool,
}

fn build_trace(case: &Case, reference: bool) -> String {
    let (app, plan) = if case.faulted {
        let scenario = generate_fault_scenario(
            case.seed,
            &FaultScenarioConfig::new(3, (Nanos::from_millis(30), Nanos::from_millis(120))),
        );
        (scenario.app, Some(scenario.plan))
    } else {
        let config = match case.preset {
            "standard" => GeneratorConfig::default(),
            "multi-threaded" => GeneratorConfig::multi_threaded(),
            "bursty" => GeneratorConfig::bursty(),
            "city" => GeneratorConfig::city(),
            other => panic!("unknown preset {other}"),
        };
        (generate_app(case.seed, &config), None)
    };
    let mut b = WorldBuilder::new(case.cpus).seed(case.seed ^ 0xd1ff).app(app);
    if reference {
        b = b.reference_engine();
    }
    if case.lossy {
        b = b.qos(QosSpec {
            drop_prob: 0.05,
            reorder_bound: 2,
            jitter: Nanos::from_micros(20),
        });
    }
    if case.wakeups {
        b = b.record_wakeups();
    }
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut world = b.build().expect("generated app deploys");
    let trace = world.trace_run(case.horizon);
    assert!(!trace.is_empty(), "seed {} produced an empty trace", case.seed);
    serde_json::to_string(&trace).expect("trace serializes")
}

#[test]
fn indexed_engine_matches_reference_across_presets() {
    let cases = if cfg!(debug_assertions) { 12 } else { 100 };
    let presets = ["standard", "multi-threaded", "bursty", "city"];
    for i in 0..cases {
        let preset = presets[i % presets.len()];
        let case = Case {
            seed: 1_000 + i as u64 * 37,
            preset,
            // Rotate the machine size so both engines see idle cores,
            // saturated cores, and heavy preemption.
            cpus: [1usize, 2, 4, 8][i % 4],
            // The city preset is two orders of magnitude bigger; a shorter
            // horizon keeps the suite brisk while still crossing thousands
            // of scheduling decisions.
            horizon: if preset == "city" {
                Nanos::from_millis(120)
            } else {
                Nanos::from_millis(300)
            },
            lossy: i % 3 == 0,
            faulted: i % 5 == 0,
            wakeups: i % 2 == 0,
        };
        let indexed = build_trace(&case, false);
        let reference = build_trace(&case, true);
        assert_eq!(
            indexed, reference,
            "engines diverged: case {i} (preset {preset}, seed {}, cpus {}, lossy {}, faulted {})",
            case.seed, case.cpus, case.lossy, case.faulted
        );
    }
}
