//! Streaming/batch equivalence over generated applications.
//!
//! For any segmentation of the same event stream, a `SynthesisSession` fed
//! the segments must produce a model *byte-identical* (compared as
//! serialized JSON) to batch `synthesize` on the whole trace — including
//! one-event segments, which put every instance window, service
//! interaction, and execution-time measurement across a boundary. The
//! batch entry point itself is additionally pinned against the original
//! per-node extraction pipeline (`extract_callbacks`), which is kept as an
//! independent reference implementation.

use proptest::prelude::*;
use rtms_core::{extract_callbacks, node_name_map, synthesize, Dag, SynthesisSession};
use rtms_ros2::WorldBuilder;
use rtms_trace::{split_by_events, Nanos, Trace, TraceSegment};
use rtms_workloads::{generate_app, GeneratorConfig};

fn json(dag: &Dag) -> String {
    serde_json::to_string(dag).expect("model serializes")
}

/// The original batch pipeline — per-node extraction over a private event
/// index — as the reference the session-backed path must reproduce.
fn reference_model(trace: &Trace) -> Dag {
    let lists: Vec<_> = trace
        .ros_pids()
        .into_iter()
        .map(|pid| (pid, extract_callbacks(pid, trace)))
        .filter(|(_, list)| !list.is_empty())
        .collect();
    Dag::from_cblists(&lists, &node_name_map(trace))
}

/// The zero-copy contract of the owned ingestion path: a plain topic's
/// name allocation — created once by the tracer side — is the *same*
/// `Arc<str>` after traveling sink → session → model. No event payload is
/// cloned on the way.
#[test]
fn topic_name_arcs_survive_sink_to_session_to_dag() {
    use rtms_trace::{
        CallbackId, CallbackKind, EventSink, Pid, RosEvent, RosPayload, SourceTimestamp, Topic,
    };
    use std::sync::Arc;

    let in_topic = Topic::plain("/camera/points");
    let out_topic = Topic::plain("/fused/points");
    let in_name = Arc::clone(in_topic.name_arc());
    let out_name = Arc::clone(out_topic.name_arc());

    // Producer side: events pushed through the EventSink interface, as a
    // perf-buffer drain would.
    let mut session = SynthesisSession::new();
    let pid = Pid::new(4);
    session.push_ros(RosEvent::new(
        Nanos::from_millis(0),
        pid,
        RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
    ));
    session.push_ros(RosEvent::new(
        Nanos::from_millis(0),
        pid,
        RosPayload::TakeData {
            callback: CallbackId::new(1),
            topic: in_topic,
            src_ts: SourceTimestamp::new(7),
        },
    ));
    session.push_ros(RosEvent::new(
        Nanos::from_millis(1),
        pid,
        RosPayload::DdsWrite { topic: out_topic, src_ts: SourceTimestamp::new(8) },
    ));
    session.push_ros(RosEvent::new(
        Nanos::from_millis(2),
        pid,
        RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
    ));
    // A downstream consumer of /fused/points on another node, reading the
    // sample the first callback published — the same `Topic` value, as a
    // real drain would deliver it.
    let downstream = Pid::new(5);
    session.push_ros(RosEvent::new(
        Nanos::from_millis(3),
        downstream,
        RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
    ));
    session.push_ros(RosEvent::new(
        Nanos::from_millis(3),
        downstream,
        RosPayload::TakeData {
            callback: CallbackId::new(2),
            topic: Topic::plain(Arc::clone(&out_name)),
            src_ts: SourceTimestamp::new(8),
        },
    ));
    session.push_ros(RosEvent::new(
        Nanos::from_millis(4),
        downstream,
        RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
    ));
    session.flush();

    // Both names reach the callback record without a copy ...
    let lists = session.callback_lists();
    let (_, list) = lists.iter().find(|(p, _)| *p == pid).expect("producer node");
    let entry = &list.entries()[0];
    assert!(Arc::ptr_eq(entry.in_topic.as_ref().expect("in topic"), &in_name));
    assert!(Arc::ptr_eq(&entry.out_topics[0], &out_name));

    // ... and on into the model: undecorated topics share the allocation
    // end to end — vertices and the connecting edge alike.
    let dag = session.model();
    let producer = dag
        .vertices()
        .iter()
        .find(|v| v.in_topic.as_deref() == Some("/camera/points"))
        .expect("producer vertex");
    assert!(Arc::ptr_eq(producer.in_topic.as_ref().expect("in topic"), &in_name));
    assert!(Arc::ptr_eq(&producer.out_topics[0], &out_name));
    assert_eq!(dag.edges().len(), 1, "producer feeds the downstream subscriber");
    assert!(Arc::ptr_eq(&dag.edges()[0].topic, &out_name));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// 100 generated scenarios: batch equals the reference pipeline, and
    /// the session equals batch for several segment sizes.
    #[test]
    fn session_fed_segments_matches_batch(seed in 0u64..1_000_000) {
        let app = generate_app(seed, &GeneratorConfig::default());
        let mut world = WorldBuilder::new(8)
            .seed(seed ^ 0x57ee)
            .app(app)
            .build()
            .expect("generated app deploys");
        let trace = world.trace_run(Nanos::from_millis(600));
        prop_assert!(!trace.is_empty(), "seed {seed} produced an empty trace");

        let batch = json(&synthesize(&trace));
        prop_assert_eq!(
            &batch,
            &json(&reference_model(&trace)),
            "session-backed batch diverged from the reference pipeline (seed {})",
            seed
        );

        for per_segment in [1usize, 13, 256] {
            let mut session = SynthesisSession::new();
            for segment in split_by_events(&trace, per_segment) {
                session.feed_segment(&segment);
            }
            prop_assert_eq!(
                &batch,
                &json(&session.model()),
                "streamed model diverged at segment size {} (seed {})",
                per_segment,
                seed
            );
        }
    }

    /// Every segment-flow path hands over the same segments in the same
    /// order: the recycled-slab SPSC pipeline and the adaptive default
    /// (whichever implementation it picks for this machine) are pinned
    /// byte-identical to the forced-sequential reference — segments and
    /// synthesized model alike — across the generated-app population, for
    /// both segment granularities.
    #[test]
    fn trace_segments_paths_byte_identical(seed in 0u64..1_000_000) {
        #[derive(Clone, Copy, Debug)]
        enum Path { Sequential, Pipelined, Default }
        let app = || generate_app(seed, &GeneratorConfig::default());
        for segment_ms in [40u64, 200] {
            let collect = |path: Path| {
                let mut world = WorldBuilder::new(8)
                    .seed(seed ^ 0x5e9)
                    .app(app())
                    .build()
                    .expect("generated app deploys");
                let mut segments: Vec<TraceSegment> = Vec::new();
                let mut session = SynthesisSession::new();
                let total = Nanos::from_millis(600);
                let seg = Nanos::from_millis(segment_ms);
                let consume = |segments: &mut Vec<TraceSegment>,
                               session: &mut SynthesisSession,
                               segment: &mut TraceSegment| {
                    session.feed_segment(segment);
                    segments.push(std::mem::take(segment));
                };
                match path {
                    Path::Sequential => world.trace_segments_sequential(total, seg, |s| {
                        consume(&mut segments, &mut session, s);
                    }),
                    Path::Pipelined => world.trace_segments_pipelined(total, seg, |s| {
                        consume(&mut segments, &mut session, s);
                    }),
                    Path::Default => world.trace_segments(total, seg, |s| {
                        consume(&mut segments, &mut session, s);
                    }),
                }
                let model = json(&session.model());
                (segments, model)
            };
            let (seq_segments, seq_model) = collect(Path::Sequential);
            let seq_json = serde_json::to_string(&seq_segments).expect("segments serialize");
            for path in [Path::Pipelined, Path::Default] {
                let (segments, model) = collect(path);
                prop_assert_eq!(
                    &seq_json,
                    &serde_json::to_string(&segments).expect("segments serialize"),
                    "{:?} segments diverged from sequential at {} ms (seed {})",
                    path,
                    segment_ms,
                    seed
                );
                prop_assert_eq!(
                    &seq_model,
                    &model,
                    "{:?} model diverged from sequential at {} ms (seed {})",
                    path,
                    segment_ms,
                    seed
                );
            }
        }
    }
}
