//! Streaming/batch equivalence over generated applications.
//!
//! For any segmentation of the same event stream, a `SynthesisSession` fed
//! the segments must produce a model *byte-identical* (compared as
//! serialized JSON) to batch `synthesize` on the whole trace — including
//! one-event segments, which put every instance window, service
//! interaction, and execution-time measurement across a boundary. The
//! batch entry point itself is additionally pinned against the original
//! per-node extraction pipeline (`extract_callbacks`), which is kept as an
//! independent reference implementation.

use proptest::prelude::*;
use rtms_core::{extract_callbacks, node_name_map, synthesize, Dag, SynthesisSession};
use rtms_ros2::WorldBuilder;
use rtms_trace::{split_by_events, Nanos, Trace};
use rtms_workloads::{generate_app, GeneratorConfig};

fn json(dag: &Dag) -> String {
    serde_json::to_string(dag).expect("model serializes")
}

/// The original batch pipeline — per-node extraction over a private event
/// index — as the reference the session-backed path must reproduce.
fn reference_model(trace: &Trace) -> Dag {
    let lists: Vec<_> = trace
        .ros_pids()
        .into_iter()
        .map(|pid| (pid, extract_callbacks(pid, trace)))
        .filter(|(_, list)| !list.is_empty())
        .collect();
    Dag::from_cblists(&lists, &node_name_map(trace))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// 100 generated scenarios: batch equals the reference pipeline, and
    /// the session equals batch for several segment sizes.
    #[test]
    fn session_fed_segments_matches_batch(seed in 0u64..1_000_000) {
        let app = generate_app(seed, &GeneratorConfig::default());
        let mut world = WorldBuilder::new(8)
            .seed(seed ^ 0x57ee)
            .app(app)
            .build()
            .expect("generated app deploys");
        let trace = world.trace_run(Nanos::from_millis(600));
        prop_assert!(!trace.is_empty(), "seed {seed} produced an empty trace");

        let batch = json(&synthesize(&trace));
        prop_assert_eq!(
            &batch,
            &json(&reference_model(&trace)),
            "session-backed batch diverged from the reference pipeline (seed {})",
            seed
        );

        for per_segment in [1usize, 13, 256] {
            let mut session = SynthesisSession::new();
            for segment in split_by_events(&trace, per_segment) {
                session.feed_segment(&segment);
            }
            prop_assert_eq!(
                &batch,
                &json(&session.model()),
                "streamed model diverged at segment size {} (seed {})",
                per_segment,
                seed
            );
        }
    }
}
