//! Property suite over *generated* applications: any scenario the seeded
//! generator produces must build, trace, and synthesize without panics,
//! and the synthesized model must honor the structural invariants the
//! paper's framework guarantees.
//!
//! Invariants asserted per generated scenario:
//!
//! - the app builds and a world deploys it (validity by construction);
//! - every spec'd callback executes within the observation window and
//!   every traced callback appears in the synthesized DAG (coverage);
//! - the DAG is acyclic, AND junctions are consistent with the spec'd
//!   sync groups (one per fired group, ≥ 2 synchronizer-member
//!   predecessors from the junction's own node), and OR-marked vertices
//!   really have multiple upstream publishers (junction consistency).

use proptest::prelude::*;
use rtms_core::{synthesize, Dag, VertexKind};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::{generate_app, GeneratorConfig};

/// Deploys the seed's generated app, traces it for 2 s, and synthesizes.
fn trace_and_synthesize(seed: u64) -> (rtms_ros2::Ros2World, Dag) {
    let app = generate_app(seed, &GeneratorConfig::default());
    let mut world = WorldBuilder::new(8)
        .seed(seed ^ 0xeb1f)
        .app(app)
        .build()
        .expect("generated app deploys");
    let trace = world.trace_run(Nanos::from_secs(2));
    let dag = synthesize(&trace);
    (world, dag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// 100 generated scenarios build, trace, and synthesize; every traced
    /// callback appears in the model and junctions are spec-consistent.
    #[test]
    fn generated_scenarios_synthesize_with_coverage(seed in 0u64..1_000_000) {
        let app = generate_app(seed, &GeneratorConfig::default());
        let (world, dag) = trace_and_synthesize(seed);
        prop_assert!(dag.is_acyclic());

        // Coverage 1: every spec'd callback executed at least once in 2 s
        // (everything is ultimately driven by ≤ 200 ms timers).
        let truth = world.ground_truth();
        for node in &app.nodes {
            for cb in &node.callbacks {
                let id = truth.id_of(cb.name()).expect("registered");
                prop_assert!(
                    truth.instances_of(id).next().is_some(),
                    "callback {} of seed {seed} never executed",
                    cb.name()
                );
            }
        }

        // Coverage 2: every traced callback appears in the DAG — for each
        // executed callback there is a vertex of its node and kind.
        for id in truth.callback_ids() {
            if truth.instances_of(id).next().is_none() {
                continue;
            }
            let info = truth.info(id).expect("registered");
            prop_assert!(
                dag.vertices().iter().any(|v| {
                    v.node == info.node && v.kind == VertexKind::Callback(info.kind)
                }),
                "traced callback {} ({:?} in {}) missing from the DAG of seed {seed}",
                info.name, info.kind, info.node
            );
        }

        // Junction consistency: one AND junction per fired sync group,
        // fed by ≥ 2 synchronizer members of the junction's own node.
        let spec_groups: usize = app.nodes.iter().map(|n| n.sync_groups.len()).sum();
        let junctions: Vec<_> = dag
            .vertex_ids()
            .filter(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
            .collect();
        prop_assert_eq!(junctions.len(), spec_groups, "seed {}", seed);
        for j in junctions {
            let vert = dag.vertex(j);
            let preds = dag.predecessors(j);
            prop_assert!(preds.len() >= 2, "junction with < 2 members, seed {}", seed);
            for p in preds {
                let member = dag.vertex(p);
                prop_assert!(member.is_sync_member, "non-sync predecessor, seed {}", seed);
                prop_assert_eq!(&member.node, &vert.node, "cross-node junction, seed {}", seed);
            }
        }

        // OR-marked vertices really have fan-in: at least two distinct
        // publishers upstream.
        for v in dag.vertex_ids() {
            if dag.vertex(v).or_junction {
                prop_assert!(
                    dag.predecessors(v).len() >= 2,
                    "OR-marked vertex without fan-in, seed {}",
                    seed
                );
            }
        }
    }
}

/// The generator's determinism carries through the whole pipeline: the
/// same seed yields byte-identical synthesized models.
#[test]
fn same_seed_same_model() {
    let (_, a) = trace_and_synthesize(4242);
    let (_, b) = trace_and_synthesize(4242);
    assert_eq!(a.to_dot(), b.to_dot());
}
