//! Allocation-lean construction of `Arc<str>` by concatenation.
//!
//! The topic decorations of Algorithm 1 (`/sv3Request` + `#cb:0x2a`) and
//! the service topic names (`/sv3` + `Request`) are string concatenations
//! on per-event paths. `format!` materializes a `String` (one heap
//! allocation, plus formatter machinery) that is immediately copied into
//! the final `Arc<str>` (a second allocation). The helpers here assemble
//! the bytes in a reused thread-local scratch buffer instead, so each call
//! performs exactly the one allocation the `Arc` itself needs.

use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    static SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn with_scratch(parts: &[&str]) -> Arc<str> {
    SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        buf.clear();
        buf.reserve(parts.iter().map(|p| p.len()).sum());
        for part in parts {
            buf.push_str(part);
        }
        Arc::from(buf.as_str())
    })
}

/// Concatenates two string slices into a freshly allocated `Arc<str>`.
///
/// # Example
///
/// ```
/// let name = rtms_util::concat2("/sv3", "Request");
/// assert_eq!(&*name, "/sv3Request");
/// ```
pub fn concat2(a: &str, b: &str) -> Arc<str> {
    with_scratch(&[a, b])
}

/// Concatenates three string slices into a freshly allocated `Arc<str>`.
///
/// # Example
///
/// ```
/// let decorated = rtms_util::concat3("/sv3Request", "#", "cb:0x2a");
/// assert_eq!(&*decorated, "/sv3Request#cb:0x2a");
/// ```
pub fn concat3(a: &str, b: &str, c: &str) -> Arc<str> {
    with_scratch(&[a, b, c])
}

/// Concatenates two string slices and a formatted tail into a freshly
/// allocated `Arc<str>`, formatting straight into the scratch buffer — no
/// intermediate `value.to_string()` allocation.
///
/// # Example
///
/// ```
/// let decorated =
///     rtms_util::concat2_fmt("/sv3Request", "#", format_args!("cb:{:#x}", 42));
/// assert_eq!(&*decorated, "/sv3Request#cb:0x2a");
/// ```
pub fn concat2_fmt(a: &str, b: &str, tail: std::fmt::Arguments<'_>) -> Arc<str> {
    use std::fmt::Write as _;
    SCRATCH.with(|scratch| {
        let mut buf = scratch.borrow_mut();
        buf.clear();
        buf.reserve(a.len() + b.len());
        buf.push_str(a);
        buf.push_str(b);
        buf.write_fmt(tail).expect("writing to a String cannot fail");
        Arc::from(buf.as_str())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenations_match_format() {
        assert_eq!(&*concat2("/a", "Request"), "/aRequest");
        assert_eq!(&*concat3("/a", "#", "cb:0x1"), "/a#cb:0x1");
        assert_eq!(&*concat2("", ""), "");
        assert_eq!(&*concat3("", "x", ""), "x");
    }

    #[test]
    fn results_are_independent_allocations() {
        let a = concat2("/t", "1");
        let b = concat2("/t", "1");
        assert_eq!(a, b);
        assert!(!Arc::ptr_eq(&a, &b), "each call allocates its own Arc");
        // The scratch buffer reuse must not leak earlier content.
        let long = concat2("/a-rather-long-topic-name", "/suffix");
        let short = concat2("/b", "");
        assert_eq!(&*short, "/b");
        assert_eq!(&*long, "/a-rather-long-topic-name/suffix");
    }

    #[test]
    fn usable_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let s = concat3("/t", "#", &i.to_string());
                    assert_eq!(&*s, format!("/t#{i}").as_str());
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
    }
}
