//! A hand-rolled lock-free single-producer/single-consumer ring.
//!
//! This is the concurrency backbone of the pipelined trace→synthesis hot
//! path (`Ros2World::trace_segments_pipelined`): one producer thread hands
//! filled trace-segment slabs to one consumer thread, and a second ring
//! running in the opposite direction recycles the emptied slabs back. The
//! design follows the classic bounded SPSC queue (Lamport's ring, with the
//! cache-line padding and acquire/release protocol popularized by
//! crossbeam and rigtorp's `SPSCQueue`):
//!
//! - a fixed power-of-two slot array, indexed by free-running `head`
//!   (consumer) and `tail` (producer) counters masked into the array;
//! - `head` and `tail` live on their own cache lines so the producer and
//!   consumer never false-share;
//! - the producer publishes a slot with a `Release` store of `tail`; the
//!   consumer observes it with an `Acquire` load, and vice versa for
//!   `head` — the only synchronization on the steady-state path. No lock,
//!   no CAS, no RMW: each counter has exactly one writer;
//! - when the ring is *full* the producer spins briefly then yields
//!   ([`Producer::push`]); when it is *empty* the consumer spins briefly
//!   then parks the thread ([`Consumer::pop_wait`]) — parking costs a
//!   syscall, so it is reserved for genuinely idle periods, and the
//!   producer unparks it only when the flag says someone is asleep.
//!
//! The memory-ordering argument, the capacity choice for the pipeline,
//! and the slab lifecycle are documented in `docs/PERFORMANCE.md`
//! ("Pipeline internals").

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

/// Pads and aligns a value to 128 bytes — two cache lines, covering the
/// adjacent-line prefetcher of modern x86 cores (the same choice crossbeam
/// makes). `head` and `tail` each get their own padded slot so a store by
/// one side never invalidates the line the other side spins on.
#[repr(align(128))]
struct CachePadded<T>(T);

/// How many spins before the producer yields the timeslice when the ring
/// is full, or the consumer parks when it is empty. Segments arrive every
/// few tens of microseconds on the bench scenarios; a short spin bridges
/// the common gap without burning a core when the other side stalls.
const SPINS: u32 = 2000;

/// How many `yield_now` rounds the consumer donates after the spin budget
/// before actually parking. A yield is one scheduler hop; a park/unpark
/// round trip is two syscalls plus the waiter mutex, so it is reserved
/// for genuinely idle stretches that a few timeslice donations don't
/// bridge.
pub(crate) const YIELDS: u32 = 32;

/// The effective spin budget for this machine. Spinning only helps when
/// the other side can make progress *concurrently* — on a single-core
/// machine every spin burns the exact timeslice the peer needs to catch
/// up, so the budget collapses to zero there and both sides go straight
/// to yield (and, for the consumer, park). Shared with the sharded
/// multi-producer lanes of [`crate::mpsc`], which wait the same way.
pub(crate) fn spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPINS,
        _ => 0,
    })
}

/// The shared ring state. `Producer` and `Consumer` each hold an `Arc`.
struct Ring<T> {
    /// Slot array; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, for masking free-running counters.
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Set when either side is dropped, so the other stops waiting.
    closed: AtomicBool,
    /// True while the consumer is parked in [`Consumer::pop_wait`]. The
    /// producer only pays the unpark syscall when this says someone is
    /// actually asleep.
    parked: AtomicBool,
    /// The consumer's thread handle, registered before parking. A mutex is
    /// fine here: the slot is only touched on the park/unpark *cold* path,
    /// never on the steady-state push/pop path.
    waiter: Mutex<Option<Thread>>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other thread (ownership transfer, like a channel), so `Send` on `T` is
// all that is required. The slot array is shared, hence both bounds.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn is_empty_relaxed(&self) -> bool {
        self.head.0.load(Ordering::Relaxed) == self.tail.0.load(Ordering::Acquire)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop every element still in flight. We
        // have exclusive access (`&mut self`), so plain loads suffice.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            let slot = self.slots[i & self.mask].get();
            // SAFETY: slots in `head..tail` were written by the producer
            // and not yet consumed; each is dropped exactly once here.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// Creates a bounded SPSC ring with at least `capacity` slots (rounded up
/// to the next power of two) and returns its two endpoints.
///
/// Each endpoint is `Send` but not `Clone`: exactly one thread produces
/// and exactly one consumes — that single-ownership is what lets the ring
/// run on two atomic counters with no CAS loop.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Example
///
/// ```
/// let (mut tx, mut rx) = rtms_util::spsc::ring::<u32>(4);
/// tx.try_push(7).unwrap();
/// assert_eq!(rx.try_pop(), Some(7));
/// assert_eq!(rx.try_pop(), None);
/// ```
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let len = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        slots,
        mask: len - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        parked: AtomicBool::new(false),
        waiter: Mutex::new(None),
    });
    (Producer { ring: Arc::clone(&ring) }, Consumer { ring })
}

/// The producing endpoint of a [`ring`].
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The consuming endpoint of a [`ring`].
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Producer<T> {
    /// Attempts to push without blocking. Returns the value back if the
    /// ring is full or the consumer is gone.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let ring = &*self.ring;
        if ring.closed.load(Ordering::Relaxed) {
            return Err(PushError::Disconnected(value));
        }
        let tail = ring.tail.0.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release store of `head`: it
        // guarantees the consumer is fully done *reading* the slot we are
        // about to overwrite before we write it.
        let head = ring.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > ring.mask {
            return Err(PushError::Full(value));
        }
        let slot = ring.slots[tail & ring.mask].get();
        // SAFETY: `tail - head <= mask` means this slot is unoccupied, and
        // only this (single) producer writes slots.
        unsafe { (*slot).write(value) };
        // Release publishes the slot write; the consumer's Acquire load of
        // `tail` makes the element visible.
        ring.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        self.wake_consumer();
        Ok(())
    }

    /// Pushes, spinning briefly and then yielding the timeslice while the
    /// ring is full — the producer of the trace pipeline would otherwise
    /// just be collecting a segment the consumer has no room for yet.
    /// Returns the value back only if the consumer disconnected.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let budget = spin_budget();
        let mut value = value;
        let mut spins = 0u32;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            if spins < budget {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // On a loaded box the consumer may simply not be scheduled;
                // donate the timeslice instead of burning it.
                std::thread::yield_now();
            }
        }
    }

    /// Unparks the consumer if (and only if) it declared itself parked.
    /// `swap` ensures exactly one side clears the flag, so a parked
    /// consumer is never left sleeping after a push (the unpark token
    /// covers the race where it is just about to park).
    fn wake_consumer(&self) {
        if self.ring.parked.swap(false, Ordering::AcqRel) {
            if let Some(thread) = self.ring.waiter.lock().expect("waiter lock").as_ref() {
                thread.unpark();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        // A consumer parked on an empty ring must observe the disconnect.
        self.wake_consumer();
    }
}

impl<T> Consumer<T> {
    /// Whether the producing endpoint was dropped. Elements pushed before
    /// the disconnect may still be in the ring: a `true` here plus a
    /// subsequent empty [`Consumer::try_pop`] means the stream is truly
    /// drained (the producer closes *after* its final push, with release
    /// ordering, so observing the close with acquire ordering makes every
    /// prior push visible).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Attempts to pop without blocking. `None` means the ring is
    /// currently empty (the producer may still be alive).
    pub fn try_pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        // Acquire pairs with the producer's Release store of `tail`,
        // making the slot contents written before it visible.
        let tail = ring.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = ring.slots[head & ring.mask].get();
        // SAFETY: `head != tail` means this slot holds an element the
        // producer published; only this (single) consumer reads slots.
        let value = unsafe { (*slot).assume_init_read() };
        // Release hands the now-empty slot back to the producer.
        ring.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Pops, spinning briefly and then *parking* the thread while the ring
    /// is empty. Returns `None` only when the producer disconnected and
    /// the ring is drained — the pipeline's termination signal.
    ///
    /// Parking costs a full scheduler round trip, so it only happens after
    /// the spin budget is exhausted; segments normally arrive well inside
    /// it. The park protocol is the standard flag dance: declare
    /// `parked`, re-check the ring (the producer may have pushed between
    /// our last look and the flag store), then sleep. The producer's
    /// `swap(false)` + unpark covers the remaining window, because
    /// `Thread::unpark` on a not-yet-parked thread makes the next `park`
    /// return immediately.
    pub fn pop_wait(&mut self) -> Option<T> {
        let budget = spin_budget();
        loop {
            // Fast path, bounded spin, then a few donated timeslices —
            // graduated backoff, ending in a real park only when the
            // producer is genuinely quiet.
            let mut spins = 0u32;
            loop {
                if let Some(value) = self.try_pop() {
                    return Some(value);
                }
                if self.ring.closed.load(Ordering::Acquire) {
                    // Disconnected: report empty only after a final pop
                    // attempt above saw nothing.
                    return self.try_pop();
                }
                if spins >= budget + YIELDS {
                    break;
                }
                spins += 1;
                if spins > budget {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            // Slow path: park until the producer pushes or disconnects.
            *self.ring.waiter.lock().expect("waiter lock") = Some(std::thread::current());
            self.ring.parked.store(true, Ordering::Release);
            // Re-check after declaring: a push that missed our flag store
            // must be observed here, or we would sleep on a non-empty ring.
            if !self.ring.is_empty_relaxed() || self.ring.closed.load(Ordering::Acquire) {
                self.ring.parked.store(false, Ordering::Release);
                continue;
            }
            while self.ring.parked.load(Ordering::Acquire)
                && self.ring.is_empty_relaxed()
                && !self.ring.closed.load(Ordering::Acquire)
            {
                std::thread::park();
            }
            self.ring.parked.store(false, Ordering::Release);
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Tell a producer spinning on a full ring that nobody will drain.
        self.ring.closed.store(true, Ordering::Release);
    }
}

/// Why a [`Producer::try_push`] did not take the value.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Every slot is occupied; the consumer has not caught up.
    Full(T),
    /// The consumer endpoint was dropped; no push can ever succeed again.
    Disconnected(T),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (mut tx, mut rx) = ring::<u32>(3);
        // Rounded to 4: four pushes fit, the fifth reports Full.
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(PushError::Full(99)));
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ring::<u32>(0);
    }

    #[test]
    fn fifo_across_many_wraps() {
        let (mut tx, mut rx) = ring::<u64>(2);
        let mut next_out = 0u64;
        for i in 0..1000u64 {
            tx.try_push(i).unwrap();
            if i % 2 == 1 {
                assert_eq!(rx.try_pop(), Some(next_out));
                assert_eq!(rx.try_pop(), Some(next_out + 1));
                next_out += 2;
            }
        }
    }

    #[test]
    fn consumer_drop_fails_pushes() {
        let (mut tx, rx) = ring::<u32>(2);
        drop(rx);
        assert_eq!(tx.try_push(1), Err(PushError::Disconnected(1)));
        assert_eq!(tx.push(2), Err(2));
    }

    #[test]
    fn producer_drop_drains_then_disconnects() {
        let (mut tx, mut rx) = ring::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop_wait(), Some(1));
        assert_eq!(rx.pop_wait(), Some(2));
        assert_eq!(rx.pop_wait(), None, "drained + disconnected");
    }

    #[test]
    fn in_flight_elements_dropped_with_ring() {
        #[derive(Debug)]
        struct CountsDrops(Arc<AtomicU64>);
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let (mut tx, mut rx) = ring::<CountsDrops>(4);
        for _ in 0..3 {
            tx.try_push(CountsDrops(Arc::clone(&drops))).unwrap();
        }
        drop(rx.try_pop());
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::Relaxed), 3, "ring drop frees in-flight slots");
    }

    /// Loom-style interleaving coverage, hand-rolled: a real producer and
    /// consumer thread hammer a tiny ring so head/tail wrap thousands of
    /// times, with the consumer alternating between spinning (`try_pop`)
    /// and parking (`pop_wait`) to exercise both protocols. The FIFO
    /// assertion catches any ordering bug; the tiny capacity maximizes
    /// full/empty boundary transitions where the bugs live. Runs under
    /// plain `cargo test` too, so the atomics paths are exercised with
    /// debug assertions on.
    #[test]
    fn two_thread_stress_fifo_exact() {
        const N: u64 = if cfg!(debug_assertions) { 20_000 } else { 200_000 };
        for capacity in [1usize, 2, 8] {
            let (mut tx, mut rx) = ring::<u64>(capacity);
            let consumer = std::thread::spawn(move || {
                let mut expected = 0u64;
                loop {
                    // Alternate wait styles to interleave park/unpark with
                    // pure spinning.
                    // Try the non-blocking path first on most iterations
                    // (exercising the pure-spin protocol), falling back to
                    // pop_wait — which also detects disconnect — on a miss.
                    let popped = if expected.is_multiple_of(3) { None } else { rx.try_pop() };
                    let value = match popped.or_else(|| rx.pop_wait()) {
                        Some(v) => v,
                        None => break,
                    };
                    assert_eq!(value, expected, "FIFO order violated");
                    expected += 1;
                }
                expected
            });
            for i in 0..N {
                tx.push(i).expect("consumer alive");
            }
            drop(tx);
            let consumed = consumer.join().expect("consumer panicked");
            assert_eq!(consumed, N, "every element consumed exactly once (cap {capacity})");
        }
    }

    /// The reverse-ring pattern of the trace pipeline: data ring one way,
    /// free ring the other, buffers recycled end to end. Pins that a
    /// bounded number of buffers circulates without loss or duplication.
    #[test]
    fn paired_rings_recycle_buffers() {
        const ROUNDS: u64 = if cfg!(debug_assertions) { 10_000 } else { 100_000 };
        let (mut data_tx, mut data_rx) = ring::<Vec<u64>>(4);
        let (mut free_tx, mut free_rx) = ring::<Vec<u64>>(8);
        let consumer = std::thread::spawn(move || {
            let mut seen = 0u64;
            while let Some(mut buf) = data_rx.pop_wait() {
                assert_eq!(buf.as_slice(), &[seen], "payload mismatch");
                seen += 1;
                buf.clear();
                // The free ring is larger than every buffer in flight, so
                // returning a slab can never fail.
                free_tx.try_push(buf).expect("free ring never full");
            }
            seen
        });
        let mut allocated = 0u32;
        for i in 0..ROUNDS {
            let mut buf = free_rx.try_pop().unwrap_or_else(|| {
                allocated += 1;
                Vec::new()
            });
            buf.push(i);
            data_tx.push(buf).expect("consumer alive");
        }
        drop(data_tx);
        assert_eq!(consumer.join().expect("consumer ok"), ROUNDS);
        assert!(allocated <= 6, "warmup allocates at most in-flight buffers: {allocated}");
    }

    #[test]
    fn pop_wait_parks_and_recovers() {
        // Force the consumer through the park path by delaying the
        // producer well past any spin budget.
        let (mut tx, mut rx) = ring::<u32>(2);
        let consumer = std::thread::spawn(move || rx.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(50));
        tx.try_push(42).unwrap();
        assert_eq!(consumer.join().expect("no panic"), Some(42));
    }
}
