//! Sharded multi-producer/single-consumer lanes built from SPSC rings.
//!
//! A shard worker of the fleet ingestion service (`rtms-fleet`) consumes
//! trace segments from *many* producer threads. Rather than paying for a
//! CAS-based MPSC queue, the ingress keeps the PR 8 lock-free discipline:
//! **one [`crate::spsc`] ring per producer** (a *lane*), so every slot
//! transfer stays a single-writer/single-reader acquire/release pair, and
//! the consumer drains the lanes round-robin. The only added
//! synchronization is a shared park/unpark flag so an idle consumer can
//! sleep across all of its lanes at once instead of spinning on each.
//!
//! Lanes are bounded like the underlying rings: a producer whose lane is
//! full waits in [`LaneSender::send`] (spin, then yield), which is the
//! natural backpressure of a shard that cannot keep up. Dropping a sender
//! closes its lane; [`LaneReceiver::recv`] returns `None` once **every**
//! lane is closed *and* drained — the pool's termination signal.
//!
//! The same primitive runs in both directions of the fleet pipeline:
//! forward (producers → shard) moving filled segment slabs, and reverse
//! (shard → producer) recycling the emptied slabs, where the receiver
//! only ever uses the non-blocking [`LaneReceiver::try_recv`].

use crate::spsc::{self, Consumer, Producer, PushError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

/// The shared sleep flag: one per lane *group*, covering all lanes of one
/// receiver. Producers on any lane use it to wake the parked consumer.
struct Wake {
    /// True while the receiver is parked in [`LaneReceiver::recv`].
    parked: AtomicBool,
    /// The receiver's thread handle, registered before parking. Only
    /// touched on the park/unpark cold path, so a mutex is fine.
    waiter: Mutex<Option<Thread>>,
}

impl Wake {
    /// Unparks the receiver if (and only if) it declared itself parked.
    /// `swap` lets exactly one caller pay the unpark syscall, and the
    /// unpark token covers the race with a receiver just about to park.
    fn wake_receiver(&self) {
        if self.parked.swap(false, Ordering::AcqRel) {
            if let Some(thread) = self.waiter.lock().expect("waiter lock").as_ref() {
                thread.unpark();
            }
        }
    }
}

/// Creates a group of `producers` bounded SPSC lanes feeding one
/// receiver; each lane holds at least `capacity` elements (rounded up to
/// a power of two by the underlying ring). Returns one [`LaneSender`] per
/// producer — each is `Send` and owned by exactly one producing thread —
/// and the single [`LaneReceiver`].
///
/// # Panics
///
/// Panics if `producers` or `capacity` is zero.
///
/// # Example
///
/// ```
/// let (mut senders, mut rx) = rtms_util::mpsc::lanes::<u32>(2, 4);
/// senders[0].send(7).unwrap();
/// senders[1].send(8).unwrap();
/// drop(senders);
/// let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
/// got.sort();
/// assert_eq!(got, [7, 8]);
/// assert_eq!(rx.recv(), None, "all lanes closed and drained");
/// ```
pub fn lanes<T>(producers: usize, capacity: usize) -> (Vec<LaneSender<T>>, LaneReceiver<T>) {
    assert!(producers > 0, "lane group needs at least one producer");
    let wake = Arc::new(Wake { parked: AtomicBool::new(false), waiter: Mutex::new(None) });
    let mut senders = Vec::with_capacity(producers);
    let mut consumers = Vec::with_capacity(producers);
    for _ in 0..producers {
        let (tx, rx) = spsc::ring::<T>(capacity);
        senders.push(LaneSender { inner: Some(tx), wake: Arc::clone(&wake) });
        consumers.push(rx);
    }
    (senders, LaneReceiver { lanes: consumers, cursor: 0, wake })
}

/// The producing endpoint of one lane of a [`lanes`] group.
pub struct LaneSender<T> {
    /// `Some` until drop; taken first so the lane's close is published
    /// before the receiver is woken to observe it.
    inner: Option<Producer<T>>,
    wake: Arc<Wake>,
}

impl<T> LaneSender<T> {
    /// Sends, spinning briefly and then yielding while the lane is full
    /// (shard backpressure). Returns the value back only if the receiver
    /// disconnected.
    pub fn send(&mut self, value: T) -> Result<(), T> {
        let result = self.inner.as_mut().expect("sender alive until drop").push(value);
        if result.is_ok() {
            self.wake.wake_receiver();
        }
        result
    }

    /// Attempts to send without blocking. Returns the value back inside
    /// the error if the lane is full or the receiver is gone.
    pub fn try_send(&mut self, value: T) -> Result<(), PushError<T>> {
        let result = self.inner.as_mut().expect("sender alive until drop").try_push(value);
        if result.is_ok() {
            self.wake.wake_receiver();
        }
        result
    }
}

impl<T> Drop for LaneSender<T> {
    fn drop(&mut self) {
        // Close the lane (the ring producer's drop publishes `closed`)
        // *before* waking, so a parked receiver re-checking its lanes
        // observes the disconnect rather than parking again.
        self.inner = None;
        self.wake.wake_receiver();
    }
}

/// The consuming endpoint of a [`lanes`] group: drains all lanes
/// round-robin, sleeping across the whole group when every lane is empty.
pub struct LaneReceiver<T> {
    lanes: Vec<Consumer<T>>,
    /// Next lane to poll — advanced past each hit so a busy lane cannot
    /// starve the others.
    cursor: usize,
    wake: Arc<Wake>,
}

impl<T> LaneReceiver<T> {
    /// Number of lanes in the group.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Attempts to receive without blocking, polling each lane at most
    /// once starting after the last hit. `None` means every lane is
    /// currently empty (producers may still be alive).
    pub fn try_recv(&mut self) -> Option<T> {
        let n = self.lanes.len();
        for i in 0..n {
            let lane = (self.cursor + i) % n;
            if let Some(value) = self.lanes[lane].try_pop() {
                self.cursor = (lane + 1) % n;
                return Some(value);
            }
        }
        None
    }

    /// Whether every lane's producer has disconnected. Elements may still
    /// be in flight; see [`LaneReceiver::recv`] for the drained check.
    pub fn all_closed(&self) -> bool {
        self.lanes.iter().all(Consumer::is_closed)
    }

    /// Receives, spinning briefly, then yielding, then parking the thread
    /// while every lane is empty — the same graduated backoff as
    /// [`crate::spsc::Consumer::pop_wait`], but across the whole group.
    /// Returns `None` only when every lane is closed *and* drained.
    pub fn recv(&mut self) -> Option<T> {
        let budget = spsc::spin_budget();
        loop {
            let mut spins = 0u32;
            loop {
                if let Some(value) = self.try_recv() {
                    return Some(value);
                }
                if self.all_closed() {
                    // The close is published after the final push, so one
                    // more scan after observing it settles drained-ness.
                    return self.try_recv();
                }
                if spins >= budget + spsc::YIELDS {
                    break;
                }
                spins += 1;
                if spins > budget {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            // Slow path: declare the park, then re-check every lane — a
            // send that missed the flag store must be observed here, or
            // the receiver would sleep on a non-empty group.
            *self.wake.waiter.lock().expect("waiter lock") = Some(std::thread::current());
            self.wake.parked.store(true, Ordering::Release);
            if let Some(value) = self.try_recv() {
                self.wake.parked.store(false, Ordering::Release);
                return Some(value);
            }
            if self.all_closed() {
                self.wake.parked.store(false, Ordering::Release);
                return self.try_recv();
            }
            // A spurious or racing wakeup just re-enters the spin loop;
            // correctness never depends on *why* park returned.
            std::thread::park();
            self.wake.parked.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_drains_all_lanes() {
        let (mut senders, mut rx) = lanes::<u64>(3, 4);
        for (i, tx) in senders.iter_mut().enumerate() {
            tx.send(i as u64 * 10).unwrap();
            tx.send(i as u64 * 10 + 1).unwrap();
        }
        let mut got: Vec<u64> = std::iter::from_fn(|| rx.try_recv()).collect();
        got.sort_unstable();
        assert_eq!(got, [0, 1, 10, 11, 20, 21]);
        assert_eq!(rx.lane_count(), 3);
        assert!(!rx.all_closed());
    }

    #[test]
    fn per_lane_fifo_is_preserved() {
        let (mut senders, mut rx) = lanes::<(usize, u64)>(2, 8);
        for v in 0..4u64 {
            senders[0].send((0, v)).unwrap();
            senders[1].send((1, v)).unwrap();
        }
        let mut next = [0u64; 2];
        while let Some((lane, v)) = rx.try_recv() {
            assert_eq!(v, next[lane], "FIFO broken within lane {lane}");
            next[lane] += 1;
        }
        assert_eq!(next, [4, 4]);
    }

    #[test]
    fn recv_returns_none_after_close_and_drain() {
        let (mut senders, mut rx) = lanes::<u32>(2, 2);
        senders[0].send(1).unwrap();
        senders[1].send(2).unwrap();
        drop(senders);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
        assert!(rx.all_closed());
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "stays terminated");
    }

    #[test]
    fn receiver_drop_fails_sends() {
        let (mut senders, rx) = lanes::<u32>(1, 2);
        drop(rx);
        assert_eq!(senders[0].send(5), Err(5));
        assert!(matches!(senders[0].try_send(6), Err(PushError::Disconnected(6))));
    }

    #[test]
    fn full_lane_reports_backpressure() {
        let (mut senders, mut rx) = lanes::<u32>(1, 2);
        senders[0].try_send(1).unwrap();
        senders[0].try_send(2).unwrap();
        assert!(matches!(senders[0].try_send(3), Err(PushError::Full(3))));
        assert_eq!(rx.try_recv(), Some(1));
        senders[0].try_send(3).unwrap();
    }

    #[test]
    fn recv_parks_and_recovers() {
        let (mut senders, mut rx) = lanes::<u32>(2, 2);
        let receiver = std::thread::spawn(move || rx.recv());
        // Well past any spin budget, so the receiver is truly parked.
        std::thread::sleep(std::time::Duration::from_millis(50));
        senders[1].send(42).unwrap();
        assert_eq!(receiver.join().expect("no panic"), Some(42));
    }

    /// The fleet ingress shape: P producer threads hammer one receiver,
    /// which must see every element exactly once and each lane's stream
    /// in order.
    #[test]
    fn multi_producer_stress_exact_delivery() {
        const PRODUCERS: usize = 4;
        const N: u64 = if cfg!(debug_assertions) { 5_000 } else { 50_000 };
        let (senders, mut rx) = lanes::<(usize, u64)>(PRODUCERS, 4);
        let receiver = std::thread::spawn(move || {
            let mut next = [0u64; PRODUCERS];
            while let Some((lane, v)) = rx.recv() {
                assert_eq!(v, next[lane], "lane {lane} out of order");
                next[lane] += 1;
            }
            next
        });
        let producers: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(lane, mut tx)| {
                std::thread::spawn(move || {
                    for v in 0..N {
                        tx.send((lane, v)).expect("receiver alive");
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer ok");
        }
        let counts = receiver.join().expect("receiver ok");
        assert_eq!(counts, [N; PRODUCERS], "every element delivered exactly once");
    }

    /// Both directions at once, as the fleet pipeline runs them: data
    /// lanes forward, a free lane backward recycling buffers, with the
    /// backward receiver polled non-blockingly.
    #[test]
    fn reverse_lanes_recycle_buffers() {
        const ROUNDS: u64 = if cfg!(debug_assertions) { 2_000 } else { 20_000 };
        let (mut data_tx, mut data_rx) = lanes::<Vec<u64>>(1, 4);
        let (mut free_tx, mut free_rx) = lanes::<Vec<u64>>(1, 8);
        let consumer = std::thread::spawn(move || {
            let mut seen = 0u64;
            while let Some(mut buf) = data_rx.recv() {
                assert_eq!(buf.as_slice(), &[seen]);
                seen += 1;
                buf.clear();
                let _ = free_tx[0].try_send(buf);
            }
            seen
        });
        let mut allocated = 0u32;
        for i in 0..ROUNDS {
            let mut buf = free_rx.try_recv().unwrap_or_else(|| {
                allocated += 1;
                Vec::new()
            });
            buf.push(i);
            data_tx[0].send(buf).expect("consumer alive");
        }
        drop(data_tx);
        assert_eq!(consumer.join().expect("consumer ok"), ROUNDS);
        assert!(allocated <= 6, "steady state reuses recycled buffers: {allocated}");
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn zero_producers_rejected() {
        let _ = lanes::<u32>(0, 4);
    }
}
