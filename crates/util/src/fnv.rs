//! FNV-1a 64-bit hashing.
//!
//! A tiny, dependency-free, stable content hash — the fingerprint the
//! replay-corpus regression suite pins synthesized models with. Unlike
//! [`crate::FxHasher`] (fast but explicitly unstable across versions),
//! FNV-1a is a fixed published algorithm: a digest written into a corpus
//! manifest today must still verify years from now, on any platform.

/// The FNV-1a 64-bit offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64.
///
/// # Example
///
/// ```
/// assert_eq!(rtms_util::fnv1a_64(b""), 0xcbf29ce484222325);
/// assert_eq!(rtms_util::fnv1a_64(b"foobar"), 0x85944171f73967e8);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV1A_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
