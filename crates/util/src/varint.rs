//! LEB128 variable-length integer encoding.
//!
//! The binary trace codec (`rtms_trace::codec`) packs the small integers
//! that dominate an event record — PIDs, callback IDs, dictionary indices,
//! nanosecond timestamps — as unsigned LEB128 varints: seven value bits per
//! byte, the high bit flagging continuation, least-significant group first.
//! Signed values (scheduling priorities) go through the ZigZag mapping
//! first so that small negative numbers stay short.
//!
//! Decoding is written for hostile input: a truncated or over-long
//! encoding returns `None` instead of panicking or wrapping, and a `u64`
//! varint is rejected after its maximal ten bytes — the "oversized varint"
//! class of corruption the trace-format robustness suite pins down.

/// Maximum encoded length of a `u64` varint: ⌈64 / 7⌉ bytes.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `buf` as an unsigned LEB128 varint (1–10 bytes).
///
/// The encoding is canonical: no redundant trailing zero groups are
/// emitted, so equal values always produce equal bytes — the property the
/// codec's byte-identical round-trip suite relies on.
#[inline]
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        buf.push((value as u8) | 0x80);
        value >>= 7;
    }
    buf.push(value as u8);
}

/// Appends a `u32` as an unsigned varint (shorthand for
/// [`write_u64`]).
#[inline]
pub fn write_u32(buf: &mut Vec<u8>, value: u32) {
    write_u64(buf, u64::from(value));
}

/// Appends a signed value as a ZigZag-mapped unsigned varint, so values
/// near zero of either sign encode in one byte.
#[inline]
pub fn write_i64(buf: &mut Vec<u8>, value: i64) {
    write_u64(buf, zigzag(value));
}

/// Decodes an unsigned LEB128 varint from the start of `bytes`.
///
/// Returns the value and the number of bytes consumed, or `None` if the
/// input is truncated (every byte has the continuation bit set), longer
/// than [`MAX_VARINT_LEN`] bytes, or overflows a `u64` in its final group
/// — never panics, never reads past the encoding.
#[inline]
pub fn read_u64(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    for (i, &b) in bytes.iter().take(MAX_VARINT_LEN).enumerate() {
        let group = u64::from(b & 0x7f);
        // The tenth byte may only carry the single remaining value bit.
        if i == MAX_VARINT_LEN - 1 && b > 0x01 {
            return None;
        }
        value |= group << (7 * i);
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None
}

/// Decodes a `u32` varint; values that need more than 32 bits are
/// rejected, like any other malformed input.
#[inline]
pub fn read_u32(bytes: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = read_u64(bytes)?;
    Some((u32::try_from(v).ok()?, n))
}

/// Decodes a ZigZag-mapped signed varint (the inverse of [`write_i64`]).
#[inline]
pub fn read_i64(bytes: &[u8]) -> Option<(i64, usize)> {
    let (v, n) = read_u64(bytes)?;
    Some((unzigzag(v), n))
}

/// The ZigZag mapping: 0, -1, 1, -2, … → 0, 1, 2, 3, …
#[inline]
pub const fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// The inverse ZigZag mapping.
#[inline]
pub const fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Encoded length of `value` as an unsigned varint, without encoding it.
#[inline]
pub const fn len_u64(value: u64) -> usize {
    // significant-bit count rounded up to whole 7-bit groups, branch-free.
    ((64 - (value | 1).leading_zeros()) as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), len_u64(v), "len_u64 must agree for {v}");
        let (back, n) = read_u64(&buf).expect("decodes");
        assert_eq!((back, n), (v, buf.len()), "round trip for {v}");
    }

    #[test]
    fn round_trips_across_group_boundaries() {
        for v in [
            0,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn one_byte_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0x7f);
        assert_eq!(buf, [0x7f]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert_eq!(read_u64(&[]), None);
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[0xff, 0xff]), None);
    }

    #[test]
    fn oversized_varint_is_rejected() {
        // Eleven continuation bytes: longer than any valid u64 encoding.
        assert_eq!(read_u64(&[0x80; 11]), None);
        // Exactly ten bytes, but the last group carries more than the one
        // bit a u64 has left: an overflowing encoding.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert_eq!(read_u64(&overflow), None);
        // The maximal legal encoding still decodes.
        let mut max = [0xffu8; 10];
        max[9] = 0x01;
        assert_eq!(read_u64(&max), Some((u64::MAX, 10)));
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, n) = read_u64(&buf).expect("decodes");
        assert_eq!((v, n), (300, 2));
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf), Some((v, buf.len())));
        }
    }

    #[test]
    fn u32_decode_rejects_wide_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert_eq!(read_u32(&buf), None);
        let mut ok = Vec::new();
        write_u32(&mut ok, u32::MAX);
        assert_eq!(read_u32(&ok), Some((u32::MAX, ok.len())));
    }
}
