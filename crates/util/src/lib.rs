//! Dependency-free utilities shared by the hot paths of the workspace.
//!
//! Two things live here, both in service of the "as fast as the hardware
//! allows" goal (see `docs/PERFORMANCE.md`):
//!
//! - [`fx`] — a vendored-style FxHash implementation and the
//!   [`FxHashMap`]/[`FxHashSet`] aliases built on it. The per-event maps of
//!   the synthesis pipeline key on small integers ([`u64`] source
//!   timestamps, PIDs); SipHash's DoS resistance buys nothing there and
//!   costs a measurable fraction of the per-event budget.
//! - [`arcstr`] — building `Arc<str>` values by concatenation without the
//!   intermediate `String` that `format!` materializes on every call.
//! - [`varint`] — LEB128 variable-length integers (plus the ZigZag
//!   mapping), the packing primitive of the binary trace codec in
//!   `rtms_trace::codec`.
//! - [`fnv`] — FNV-1a 64, the *stable* content hash the replay corpus
//!   pins model digests with (FxHash is free to change; a committed
//!   digest is not).
//! - [`spsc`] — a hand-rolled lock-free single-producer/single-consumer
//!   ring (cache-line-padded atomic head/tail over a power-of-two slot
//!   array) that carries trace-segment slabs between the collector and
//!   synthesis threads of the pipelined path.
//! - [`mpsc`] — sharded multi-producer lanes built from one [`spsc`]
//!   ring per producer plus a shared park/unpark flag; the ingress
//!   queue of a fleet shard worker (`rtms-fleet`).
//! - [`slab`] — a tiny object pool with a lifetime-allocation counter,
//!   the producer-side front of the segment-slab freelist.
//!
//! Like the `vendor/` crates, everything is hand-rolled against the
//! published algorithm (FxHash is the Firefox/rustc hash, LEB128 is the
//! DWARF/protobuf varint) rather than pulled from the registry — this
//! workspace builds offline.

#![warn(missing_docs)]

pub mod arcstr;
pub mod fnv;
pub mod fx;
pub mod mpsc;
pub mod slab;
pub mod spsc;
pub mod varint;

pub use arcstr::{concat2, concat2_fmt, concat3};
pub use fnv::fnv1a_64;
pub use mpsc::{lanes, LaneReceiver, LaneSender};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use slab::SlabPool;
pub use spsc::{ring, Consumer, Producer, PushError};
