//! FxHash: the non-cryptographic hash used by rustc and Firefox.
//!
//! The algorithm folds each input word into the state with a rotate, an
//! xor, and a multiply by a constant derived from the golden ratio. It is
//! several times cheaper than SipHash (the `std` default) for the small
//! keys that dominate this workspace — `u64` source timestamps, PIDs,
//! callback IDs — at the cost of DoS resistance, which is irrelevant for
//! maps keyed by trace-internal values.
//!
//! Hand-rolled against the published algorithm (see `rustc-hash`) because
//! this workspace builds offline; behaviour is pinned by the tests below.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, as used by rustc's FxHash for 64-bit
/// state.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher.
///
/// # Example
///
/// ```
/// use rtms_util::FxHashMap;
///
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(17, "seventeen");
/// assert_eq!(m.get(&17), Some(&"seventeen"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let word = u64::from_ne_bytes(bytes[..8].try_into().expect("8 bytes"));
            self.add_to_hash(word);
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let word = u32::from_ne_bytes(bytes[..4].try_into().expect("4 bytes"));
            self.add_to_hash(u64::from(word));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let word = u16::from_ne_bytes(bytes[..2].try_into().expect("2 bytes"));
            self.add_to_hash(u64::from(word));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s; plugs into any
/// `HashMap`/`HashSet` as the hasher parameter.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using FxHash. Drop-in for `std::collections::HashMap` on
/// hot paths keyed by trace-internal values; construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using FxHash; construct with `FxHashSet::default()`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of("abc"), hash_of("abd"));
        assert_eq!(hash_of("hello world"), hash_of("hello world"));
    }

    #[test]
    fn byte_stream_invariance_not_required_but_stable() {
        // Same bytes written in one call hash identically across calls.
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef!");
        let mut b = FxHasher::default();
        b.write(b"0123456789abcdef!");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i as usize);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(map.get(&(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))), Some(&(i as usize)));
        }
        let mut set: FxHashSet<&str> = FxHashSet::default();
        assert!(set.insert("x"));
        assert!(!set.insert("x"));
    }

    #[test]
    fn all_write_widths_feed_the_state() {
        let mut h = FxHasher::default();
        let zero = h.finish();
        h.write_u8(1);
        let one = h.finish();
        assert_ne!(zero, one);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        assert_ne!(one, h.finish());
    }
}
