//! A trivial object pool for reusable buffers ("slabs").
//!
//! The pipelined trace path recycles `TraceSegment` buffers through a
//! reverse [`crate::spsc`] ring; this pool is the producer-side front for
//! that freelist. It lazily allocates while the pipeline warms up and
//! counts lifetime allocations, so benches can assert the steady state
//! allocates nothing (the count stops growing once enough slabs are in
//! flight to cover the ring depth).

/// A pool of spare reusable buffers with a lifetime-allocation counter.
///
/// ```
/// let mut pool = rtms_util::slab::SlabPool::new();
/// let buf: Vec<u8> = pool.take_with(Vec::new);
/// assert_eq!(pool.allocated(), 1);
/// pool.put(buf);
/// let _again: Vec<u8> = pool.take_with(Vec::new);
/// assert_eq!(pool.allocated(), 1, "second take reuses the spare");
/// ```
#[derive(Debug)]
pub struct SlabPool<T> {
    spares: Vec<T>,
    allocated: u64,
}

impl<T> Default for SlabPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlabPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self { spares: Vec::new(), allocated: 0 }
    }

    /// Takes a spare slab, or builds a fresh one with `make` (counted in
    /// [`allocated`](Self::allocated)) when none is available.
    pub fn take_with(&mut self, make: impl FnOnce() -> T) -> T {
        match self.spares.pop() {
            Some(slab) => slab,
            None => {
                self.allocated += 1;
                make()
            }
        }
    }

    /// Returns a slab to the pool for reuse.
    pub fn put(&mut self, slab: T) {
        self.spares.push(slab);
    }

    /// How many slabs [`take_with`](Self::take_with) had to build over the
    /// pool's lifetime. Flat across a steady-state window ⇒ the window ran
    /// entirely on recycled slabs.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// How many spare slabs are currently parked in the pool.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_allocates_once() {
        let mut pool = SlabPool::new();
        for round in 0..100 {
            let mut buf: Vec<u32> = pool.take_with(Vec::new);
            buf.push(round);
            buf.clear();
            pool.put(buf);
        }
        assert_eq!(pool.allocated(), 1);
        assert_eq!(pool.spares(), 1);
    }

    #[test]
    fn concurrent_takes_allocate_up_to_depth() {
        let mut pool = SlabPool::new();
        let a: Vec<u8> = pool.take_with(Vec::new);
        let b: Vec<u8> = pool.take_with(Vec::new);
        assert_eq!(pool.allocated(), 2, "two in flight, two allocs");
        pool.put(a);
        pool.put(b);
        let _c: Vec<u8> = pool.take_with(Vec::new);
        let _d: Vec<u8> = pool.take_with(Vec::new);
        assert_eq!(pool.allocated(), 2, "depth covered, no further allocs");
    }

    #[test]
    fn capacity_survives_recycling() {
        let mut pool = SlabPool::new();
        let mut buf: Vec<u64> = pool.take_with(Vec::new);
        buf.extend(0..1024);
        let cap = buf.capacity();
        buf.clear();
        pool.put(buf);
        let again: Vec<u64> = pool.take_with(Vec::new);
        assert!(again.capacity() >= cap, "recycled slab keeps its storage");
    }
}
