//! Reusable [`ThreadLogic`] implementations: scripted op sequences for
//! tests and periodic background load for interference experiments.

use crate::logic::{Op, SimCtx, ThreadLogic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_trace::Nanos;
use std::collections::VecDeque;

/// Plays back a fixed sequence of operations, then exits.
///
/// # Example
///
/// ```
/// use rtms_sched::{Op, ScriptedLogic};
/// use rtms_trace::Nanos;
///
/// let logic = ScriptedLogic::new(vec![
///     Op::Compute(Nanos::from_millis(1)),
///     Op::sleep_until(Nanos::from_millis(5)),
///     Op::Compute(Nanos::from_millis(2)),
/// ]);
/// # let _ = logic;
/// ```
#[derive(Debug, Default)]
pub struct ScriptedLogic {
    ops: VecDeque<Op>,
}

impl ScriptedLogic {
    /// Creates a scripted logic from a list of operations. `Op::Exit` is
    /// implied at the end.
    pub fn new(ops: impl IntoIterator<Item = Op>) -> Self {
        ScriptedLogic { ops: ops.into_iter().collect() }
    }
}

impl ThreadLogic for ScriptedLogic {
    fn next_op(&mut self, _ctx: &mut SimCtx<'_>) -> Op {
        self.ops.pop_front().unwrap_or(Op::Exit)
    }
}

/// A periodic busy thread: every `period`, computes for a duration drawn
/// uniformly from `[min_exec, max_exec]`.
///
/// Used as the interfering background load of the paper's experiments:
/// the SYN callbacks use "a constant computational load for a single run"
/// that is varied across runs, and the filtering experiment (Sec. III-B)
/// needs non-ROS2 threads generating `sched_switch` noise.
#[derive(Debug)]
pub struct PeriodicLoad {
    period: Nanos,
    min_exec: Nanos,
    max_exec: Nanos,
    next_release: Nanos,
    rng: StdRng,
}

impl PeriodicLoad {
    /// Creates a periodic load with execution time drawn from
    /// `[min_exec, max_exec]` each period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `min_exec > max_exec`.
    pub fn new(period: Nanos, min_exec: Nanos, max_exec: Nanos, seed: u64) -> Self {
        assert!(period > Nanos::ZERO, "period must be positive");
        assert!(min_exec <= max_exec, "min_exec must not exceed max_exec");
        PeriodicLoad {
            period,
            min_exec,
            max_exec,
            next_release: Nanos::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a constant-execution-time periodic load.
    pub fn constant(period: Nanos, exec: Nanos, seed: u64) -> Self {
        PeriodicLoad::new(period, exec, exec, seed)
    }

    fn sample_exec(&mut self) -> Nanos {
        if self.min_exec == self.max_exec {
            self.min_exec
        } else {
            Nanos::from_nanos(
                self.rng.gen_range(self.min_exec.as_nanos()..=self.max_exec.as_nanos()),
            )
        }
    }
}

impl ThreadLogic for PeriodicLoad {
    fn next_op(&mut self, ctx: &mut SimCtx<'_>) -> Op {
        if ctx.now() >= self.next_release {
            self.next_release += self.period;
            Op::Compute(self.sample_exec())
        } else {
            Op::sleep_until(self.next_release)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Affinity, SimulatorBuilder};
    use rtms_trace::Priority;

    #[test]
    fn scripted_logic_runs_to_completion() {
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "s",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![
                Op::Compute(Nanos::from_millis(1)),
                Op::sleep_until(Nanos::from_millis(5)),
                Op::Compute(Nanos::from_millis(2)),
            ])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(3));
        assert!(!sim.is_alive(pid));
    }

    #[test]
    fn periodic_load_utilization() {
        // 2ms every 10ms on a dedicated core => 20% utilization.
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "load",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(PeriodicLoad::constant(Nanos::from_millis(10), Nanos::from_millis(2), 1)),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(100));
        // Releases at 0,10,...,90 => 10 jobs of 2ms.
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(20));
        assert!(sim.is_alive(pid));
    }

    #[test]
    fn periodic_load_randomized_within_bounds() {
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "load",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(PeriodicLoad::new(
                Nanos::from_millis(10),
                Nanos::from_millis(1),
                Nanos::from_millis(3),
                42,
            )),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(100));
        let t = sim.cpu_time(pid).as_millis_f64();
        assert!((10.0..=30.0).contains(&t), "cpu time {t}ms outside [10,30]ms");
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = PeriodicLoad::constant(Nanos::ZERO, Nanos::from_millis(1), 0);
    }
}
