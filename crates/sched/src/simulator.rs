//! The discrete-event scheduler engine.

use crate::logic::{Op, SimCtx, ThreadLogic};
use rtms_trace::{Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// A CPU affinity mask over up to 64 cores.
///
/// # Example
///
/// ```
/// use rtms_sched::Affinity;
/// use rtms_trace::Cpu;
///
/// let a = Affinity::only(Cpu::new(2));
/// assert!(a.allows(Cpu::new(2)));
/// assert!(!a.allows(Cpu::new(0)));
/// assert!(Affinity::all().allows(Cpu::new(63)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affinity(u64);

impl Affinity {
    /// Allows every core.
    pub const fn all() -> Affinity {
        Affinity(u64::MAX)
    }

    /// Pins to a single core.
    pub fn only(cpu: Cpu) -> Affinity {
        assert!(cpu.index() < 64, "affinity supports up to 64 cores");
        Affinity(1 << cpu.index())
    }

    /// Builds a mask from an iterator of cores.
    pub fn from_cpus<I: IntoIterator<Item = Cpu>>(cpus: I) -> Affinity {
        let mut mask = 0u64;
        for cpu in cpus {
            assert!(cpu.index() < 64, "affinity supports up to 64 cores");
            mask |= 1 << cpu.index();
        }
        assert!(mask != 0, "affinity must allow at least one core");
        Affinity(mask)
    }

    /// Whether this mask allows `cpu`.
    pub fn allows(self, cpu: Cpu) -> bool {
        cpu.index() < 64 && self.0 & (1 << cpu.index()) != 0
    }
}

impl Default for Affinity {
    fn default() -> Self {
        Affinity::all()
    }
}

impl fmt::Display for Affinity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "affinity:{:#x}", self.0)
    }
}

/// Receiver of scheduler tracepoint events, the integration point for the
/// kernel tracer of `rtms-ebpf`.
pub trait SchedSink {
    /// Called for every `sched_switch`/`sched_wakeup` the simulated kernel
    /// generates, in chronological order.
    fn on_sched_event(&mut self, event: &SchedEvent);
}

impl<T: SchedSink> SchedSink for Rc<RefCell<T>> {
    fn on_sched_event(&mut self, event: &SchedEvent) {
        self.borrow_mut().on_sched_event(event);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    Running(Cpu),
    Blocked,
    Dead,
}

struct Thread {
    pid: Pid,
    name: String,
    prio: Priority,
    affinity: Affinity,
    state: RunState,
    /// CPU work left in the current `Compute` op; `None` means the logic
    /// must be asked for a new op at next dispatch.
    remaining: Option<Nanos>,
    /// When the thread was last put on a CPU (valid while Running).
    dispatched_at: Nanos,
    /// Bumped at every deschedule to invalidate in-flight timer events.
    gen: u64,
    /// Latched wakeup (signal arrived while not blocked).
    pending_wake: bool,
    /// FIFO tiebreak among equal priorities (reference engine only; the
    /// indexed runqueue encodes this order positionally).
    ready_seq: u64,
    /// Runqueue bucket for this thread's priority (0 = highest), assigned
    /// at build time from the distinct spawned priorities.
    bucket: u32,
    /// Whether any *other* spawned thread has priority >= this one's. When
    /// false, the slice-check contender test can never succeed, so arming
    /// the check is elided entirely (see `arm_slice`).
    contended: bool,
    /// Last CPU the thread ran on (for wakeup event attribution).
    last_cpu: Cpu,
    cpu_time: Nanos,
    logic: Option<Box<dyn ThreadLogic>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// The running thread's current `Compute` finishes.
    OpComplete { pid: Pid, gen: u64 },
    /// Round-robin timeslice check.
    SliceCheck { cpu: Cpu, pid: Pid, gen: u64 },
    /// A scheduled (timed) wakeup fires.
    WakeAt { pid: Pid },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    time: Nanos,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Which scheduling core drives the event loop.
///
/// Both engines emit byte-identical `SchedEvent` streams; the reference
/// engine exists as a living oracle for the differential suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Priority-bucketed runqueue, dirty-gated rebalance, per-CPU virtual
    /// slice slots. The default.
    Indexed,
    /// The pre-indexing algorithm: linear ready-list scans, an
    /// unconditional clone+sort rebalance after every event, and slice
    /// checks armed through the event heap.
    Reference,
}

/// A pending round-robin slice check, held out of the event heap in a
/// per-CPU slot. `seq` comes from the same counter as heap events, so
/// comparing `(time, seq)` against the heap top reproduces the exact pop
/// order the heap-armed reference engine sees.
#[derive(Debug, Clone, Copy)]
struct SliceSlot {
    time: Nanos,
    seq: u64,
    pid: Pid,
    gen: u64,
}

/// Priority-indexed FIFO runqueue: one `VecDeque` of thread indices per
/// distinct priority (bucket 0 is the highest priority), plus a bitmask of
/// non-empty buckets so scans skip empty levels in O(words).
///
/// Within a bucket, push order is ready order — threads are pushed exactly
/// where the reference engine assigns a fresh monotonic `ready_seq`, so
/// FIFO-within-bucket reproduces `(prio desc, ready_seq asc)` selection
/// without any per-thread sequence numbers.
struct RunQueue {
    buckets: Vec<VecDeque<u32>>,
    mask: Vec<u64>,
    len: usize,
}

impl RunQueue {
    fn new(num_buckets: usize) -> Self {
        RunQueue {
            buckets: vec![VecDeque::new(); num_buckets],
            mask: vec![0u64; num_buckets.div_ceil(64).max(1)],
            len: 0,
        }
    }

    fn push(&mut self, bucket: usize, thread: u32) {
        self.buckets[bucket].push_back(thread);
        self.mask[bucket / 64] |= 1 << (bucket % 64);
        self.len += 1;
    }

    fn remove_at(&mut self, bucket: usize, pos: usize) -> u32 {
        let t = self.buckets[bucket].remove(pos).expect("runqueue position valid");
        if self.buckets[bucket].is_empty() {
            self.mask[bucket / 64] &= !(1 << (bucket % 64));
        }
        self.len -= 1;
        t
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the first non-empty bucket at or after `from`.
    fn first_from(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.mask.len() {
            return None;
        }
        let mut word = self.mask[w] & !((1u64 << (from % 64)) - 1);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.mask.len() {
                return None;
            }
            word = self.mask[w];
        }
    }
}

/// Counters describing the work the discrete-event engine performed.
///
/// Snapshot them with [`Simulator::stats`]; all counters are cumulative
/// since the simulator was built. `rebalance_skipped / events` measures how
/// often the dirty gate saved a scheduling pass, and `stale_pops / events`
/// tracks heap churn from invalidated timer events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed by the main loop (heap pops plus virtual slice
    /// slots fired).
    pub events: u64,
    /// Events pushed onto the binary heap.
    pub heap_pushes: u64,
    /// Popped events that were stale (the thread was descheduled after the
    /// event was armed) and did nothing.
    pub stale_pops: u64,
    /// Round-robin slice checks armed (slot writes, or heap pushes on the
    /// reference engine).
    pub slice_arms: u64,
    /// Slice-check arms elided because no other thread can ever contend at
    /// the running thread's priority or above.
    pub slice_suppressed: u64,
    /// Scheduling passes that actually ran.
    pub rebalance_runs: u64,
    /// Scheduling passes skipped because the ready/running sets were
    /// unchanged since the last pass.
    pub rebalance_skipped: u64,
    /// Context switches emitted.
    pub switches: u64,
}

/// Builds a [`Simulator`]: configure core count and timeslice, then spawn
/// threads.
pub struct SimulatorBuilder {
    cpus: usize,
    timeslice: Nanos,
    first_pid: u32,
    threads: Vec<Thread>,
    reference: bool,
}

impl SimulatorBuilder {
    /// Creates a builder for a machine with `cpus` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or greater than 64.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0 && cpus <= 64, "cpus must be in 1..=64");
        SimulatorBuilder {
            cpus,
            timeslice: Nanos::from_millis(1),
            first_pid: 1000,
            threads: Vec::new(),
            reference: false,
        }
    }

    /// Selects the pre-indexing reference engine: linear ready-list scans,
    /// an unconditional rebalance after every event, and slice checks armed
    /// through the event heap.
    ///
    /// The emitted `SchedEvent` stream is byte-identical to the default
    /// indexed engine — the differential suites use this path as the
    /// oracle the optimized engine is pinned against.
    pub fn reference_engine(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Sets the round-robin timeslice among equal-priority threads
    /// (default 1 ms).
    pub fn timeslice(mut self, slice: Nanos) -> Self {
        assert!(slice > Nanos::ZERO, "timeslice must be positive");
        self.timeslice = slice;
        self
    }

    /// The PID the next [`SimulatorBuilder::spawn`] call will assign.
    /// PIDs are handed out sequentially, so callers that need to know a
    /// thread's identity before constructing its logic (e.g. to register
    /// message readers) can rely on this.
    pub fn next_pid(&self) -> Pid {
        Pid::new(self.first_pid + self.threads.len() as u32)
    }

    /// Spawns a thread and returns its PID. Threads start runnable at time
    /// zero.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        prio: Priority,
        affinity: Affinity,
        logic: Box<dyn ThreadLogic>,
    ) -> Pid {
        let pid = Pid::new(self.first_pid + self.threads.len() as u32);
        self.threads.push(Thread {
            pid,
            name: name.into(),
            prio,
            affinity,
            state: RunState::Runnable,
            remaining: None,
            dispatched_at: Nanos::ZERO,
            gen: 0,
            pending_wake: false,
            ready_seq: 0,
            bucket: 0,
            contended: true,
            last_cpu: Cpu::new(0),
            cpu_time: Nanos::ZERO,
            logic: Some(logic),
        });
        pid
    }

    /// Finalizes the machine.
    pub fn build(self) -> Simulator {
        let cpus = self.cpus;
        let mut threads = self.threads;
        // The distinct spawned priorities, highest first, define the
        // runqueue buckets. Priorities are fixed for a thread's lifetime,
        // so this mapping never changes after build.
        let mut bucket_prios: Vec<Priority> = threads.iter().map(|t| t.prio).collect();
        bucket_prios.sort_by_key(|&p| Reverse(p));
        bucket_prios.dedup();
        let mut bucket_counts = vec![0u32; bucket_prios.len()];
        for t in &mut threads {
            let b = bucket_prios.iter().position(|&p| p == t.prio).expect("prio has a bucket");
            t.bucket = b as u32;
            bucket_counts[b] += 1;
        }
        // A thread is uncontended when no other thread has priority >= its
        // own: nothing can ever preempt it at a slice boundary, so slice
        // checks need not be armed for it. Affinity is ignored here — that
        // only makes the flag conservative.
        for t in &mut threads {
            t.contended = t.bucket > 0 || bucket_counts[t.bucket as usize] > 1;
        }
        let engine = if self.reference { Engine::Reference } else { Engine::Indexed };
        let mut ready_ctr = 0u64;
        let mut ready = Vec::new();
        let mut runqueue = RunQueue::new(bucket_prios.len());
        for (i, t) in threads.iter_mut().enumerate() {
            match engine {
                Engine::Indexed => runqueue.push(t.bucket as usize, i as u32),
                Engine::Reference => {
                    t.ready_seq = ready_ctr;
                    ready_ctr += 1;
                    ready.push(t.pid);
                }
            }
        }
        Simulator {
            now: Nanos::ZERO,
            first_pid: self.first_pid,
            threads,
            running: vec![None; cpus],
            last_running: vec![Pid::IDLE; cpus],
            ready,
            runqueue,
            bucket_prios,
            slice_slots: vec![None; cpus],
            dirty: true,
            engine,
            queue: BinaryHeap::new(),
            seq: 0,
            ready_ctr,
            timeslice: self.timeslice,
            record: true,
            events: Vec::new(),
            sinks: Vec::new(),
            busy: vec![Nanos::ZERO; cpus],
            switch_count: 0,
            stats: SimStats::default(),
        }
    }
}

/// The simulated multi-core machine.
///
/// Drive it with [`Simulator::run_until`]; collect the scheduler event
/// stream with [`Simulator::sched_events`] or attach a [`SchedSink`] (the
/// kernel tracer) with [`Simulator::add_sink`].
pub struct Simulator {
    now: Nanos,
    first_pid: u32,
    threads: Vec<Thread>,
    running: Vec<Option<Pid>>,
    /// Per-CPU thread observed at the last event flush, for diff-based
    /// `sched_switch` emission.
    last_running: Vec<Pid>,
    /// Ready list of the reference engine (unused by the indexed engine).
    ready: Vec<Pid>,
    /// Priority-bucketed ready queue of the indexed engine.
    runqueue: RunQueue,
    /// Priority of each runqueue bucket (descending), for the preemption
    /// early-out.
    bucket_prios: Vec<Priority>,
    /// Per-CPU pending slice check (indexed engine; never in the heap).
    slice_slots: Vec<Option<SliceSlot>>,
    /// Set whenever the ready or running sets change; a scheduling pass is
    /// only needed while this holds (indexed engine).
    dirty: bool,
    engine: Engine,
    queue: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    ready_ctr: u64,
    timeslice: Nanos,
    record: bool,
    events: Vec<SchedEvent>,
    sinks: Vec<Box<dyn SchedSink>>,
    busy: Vec<Nanos>,
    switch_count: u64,
    stats: SimStats,
}

impl Simulator {
    /// The current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of simulated cores.
    pub fn cpu_count(&self) -> usize {
        self.running.len()
    }

    /// Disables in-memory recording of scheduler events (sinks still fire).
    pub fn set_recording(&mut self, record: bool) {
        self.record = record;
    }

    /// Attaches a scheduler-event sink (e.g. the eBPF kernel tracer).
    pub fn add_sink(&mut self, sink: Box<dyn SchedSink>) {
        self.sinks.push(sink);
    }

    /// All recorded scheduler events (the unfiltered "firehose").
    pub fn sched_events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Takes ownership of the recorded scheduler events, leaving none.
    pub fn take_sched_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Total CPU time consumed by `pid` so far.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned on this simulator.
    pub fn cpu_time(&self, pid: Pid) -> Nanos {
        self.threads[self.index(pid)].cpu_time
    }

    /// Total busy time of `cpu` so far.
    pub fn busy_time(&self, cpu: Cpu) -> Nanos {
        self.busy[cpu.index()]
    }

    /// The display name the thread was spawned with.
    pub fn thread_name(&self, pid: Pid) -> &str {
        &self.threads[self.index(pid)].name
    }

    /// The thread's scheduling priority.
    pub fn thread_priority(&self, pid: Pid) -> Priority {
        self.threads[self.index(pid)].prio
    }

    /// PIDs of all spawned threads.
    pub fn pids(&self) -> Vec<Pid> {
        self.threads.iter().map(|t| t.pid).collect()
    }

    /// Whether the thread has not exited.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.threads[self.index(pid)].state != RunState::Dead
    }

    /// Number of context switches performed so far.
    pub fn switch_count(&self) -> u64 {
        self.switch_count
    }

    /// A snapshot of the engine's work counters (cumulative since build).
    pub fn stats(&self) -> SimStats {
        SimStats { switches: self.switch_count, ..self.stats }
    }

    /// Runs the simulation up to (and including) time `until`.
    ///
    /// May be called repeatedly with increasing deadlines; time never moves
    /// backwards.
    pub fn run_until(&mut self, until: Nanos) {
        match self.engine {
            Engine::Indexed => self.run_until_indexed(until),
            Engine::Reference => self.run_until_reference(until),
        }
        // Account partial runtimes up to the horizon.
        self.now = until.max(self.now);
        for cpu in 0..self.running.len() {
            if let Some(pid) = self.running[cpu] {
                self.account_runtime(pid);
            }
        }
    }

    fn run_until_indexed(&mut self, until: Nanos) {
        // Initial placement of the ready threads spawned at build time
        // (dirty holds after build; on a resume of a stable machine the
        // pass is skipped).
        self.rebalance_if_dirty();

        loop {
            // The next event is the min of `(time, seq)` over the heap top
            // and the per-CPU virtual slice slots. Slot seqs come from the
            // same counter as heap seqs, so this is exactly the pop order
            // of the reference engine's single heap.
            let heap_key = self.queue.peek().map(|&Reverse(ev)| (ev.time, ev.seq));
            let mut slot_best: Option<(Nanos, u64, usize)> = None;
            for (c, slot) in self.slice_slots.iter().enumerate() {
                if let Some(s) = slot {
                    if slot_best.is_none_or(|(t, q, _)| (s.time, s.seq) < (t, q)) {
                        slot_best = Some((s.time, s.seq, c));
                    }
                }
            }
            let use_slot = match (heap_key, slot_best) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some((ht, hs)), Some((st, ss, _))) => (st, ss) < (ht, hs),
            };
            if use_slot {
                let (time, _, c) = slot_best.expect("slot chosen");
                if time > until {
                    break;
                }
                debug_assert!(time >= self.now, "slice slots must be monotonic");
                self.now = time;
                let slot = self.slice_slots[c].take().expect("slot present");
                self.stats.events += 1;
                self.on_slice_check_indexed(Cpu::new(c as u16), slot.pid, slot.gen);
            } else {
                let (time, _) = heap_key.expect("heap top chosen");
                if time > until {
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("heap top present");
                debug_assert!(ev.time >= self.now, "event queue must be monotonic");
                self.now = ev.time;
                self.stats.events += 1;
                match ev.kind {
                    EvKind::OpComplete { pid, gen } => self.on_op_complete(pid, gen),
                    EvKind::WakeAt { pid } => self.wake_request(pid),
                    EvKind::SliceCheck { cpu, pid, gen } => {
                        self.on_slice_check_indexed(cpu, pid, gen)
                    }
                }
            }
            self.rebalance_if_dirty();
        }
    }

    fn run_until_reference(&mut self, until: Nanos) {
        // Initial placement of the ready threads spawned at build time.
        self.stats.rebalance_runs += 1;
        self.rebalance_reference();
        self.flush_switches();

        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            self.queue.pop();
            debug_assert!(ev.time >= self.now, "event queue must be monotonic");
            self.now = ev.time;
            self.stats.events += 1;
            match ev.kind {
                EvKind::OpComplete { pid, gen } => self.on_op_complete(pid, gen),
                EvKind::WakeAt { pid } => self.wake_request(pid),
                EvKind::SliceCheck { cpu, pid, gen } => self.on_slice_check_reference(cpu, pid, gen),
            }
            self.stats.rebalance_runs += 1;
            self.rebalance_reference();
            self.flush_switches();
        }
    }

    // ---- internals -----------------------------------------------------

    fn index(&self, pid: Pid) -> usize {
        let idx = (pid.get() - self.first_pid) as usize;
        assert!(idx < self.threads.len(), "unknown pid {pid}");
        idx
    }

    fn push_event(&mut self, time: Nanos, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.heap_pushes += 1;
        self.queue.push(Reverse(Ev { time, seq, kind }));
    }

    /// Puts a runnable thread on the ready structure of the active engine.
    /// Every caller is a ready-set mutation, so the dirty flag is raised
    /// here.
    fn make_ready(&mut self, idx: usize) {
        self.dirty = true;
        match self.engine {
            Engine::Indexed => {
                let bucket = self.threads[idx].bucket as usize;
                self.runqueue.push(bucket, idx as u32);
            }
            Engine::Reference => {
                self.threads[idx].ready_seq = self.ready_ctr;
                self.ready_ctr += 1;
                self.ready.push(self.threads[idx].pid);
            }
        }
    }

    fn emit(&mut self, event: SchedEvent) {
        for sink in &mut self.sinks {
            sink.on_sched_event(&event);
        }
        if self.record {
            self.events.push(event);
        }
    }

    fn account_runtime(&mut self, pid: Pid) {
        let idx = self.index(pid);
        let (ran, cpu) = match self.threads[idx].state {
            RunState::Running(cpu) => (self.now - self.threads[idx].dispatched_at, cpu),
            _ => return,
        };
        self.threads[idx].cpu_time += ran;
        self.threads[idx].dispatched_at = self.now;
        self.busy[cpu.index()] += ran;
    }

    pub(crate) fn wake_request(&mut self, pid: Pid) {
        let idx = self.index(pid);
        match self.threads[idx].state {
            RunState::Blocked => {
                self.threads[idx].state = RunState::Runnable;
                self.make_ready(idx);
                let ev = SchedEvent::wakeup(
                    self.now,
                    self.threads[idx].last_cpu,
                    pid,
                    self.threads[idx].prio,
                );
                self.emit(ev);
            }
            RunState::Running(_) | RunState::Runnable => {
                self.threads[idx].pending_wake = true;
            }
            RunState::Dead => {}
        }
    }

    pub(crate) fn schedule_wake(&mut self, pid: Pid, at: Nanos) {
        let at = at.max(self.now);
        self.push_event(at, EvKind::WakeAt { pid });
    }

    fn on_op_complete(&mut self, pid: Pid, gen: u64) {
        let idx = self.index(pid);
        if self.threads[idx].gen != gen || !matches!(self.threads[idx].state, RunState::Running(_))
        {
            self.stats.stale_pops += 1;
            return; // stale: the thread was descheduled in the meantime
        }
        self.account_runtime(pid);
        self.threads[idx].remaining = None;
        self.run_logic(pid);
    }

    fn on_slice_check_reference(&mut self, cpu: Cpu, pid: Pid, gen: u64) {
        let idx = self.index(pid);
        if self.running[cpu.index()] != Some(pid) || self.threads[idx].gen != gen {
            self.stats.stale_pops += 1;
            return; // stale
        }
        let my_prio = self.threads[idx].prio;
        let contender = self
            .ready
            .iter()
            .any(|&r| {
                let ri = self.index(r);
                self.threads[ri].prio >= my_prio && self.threads[ri].affinity.allows(cpu)
            });
        if contender {
            self.preempt(pid);
        } else {
            let slice = self.timeslice;
            self.stats.slice_arms += 1;
            self.push_event(self.now + slice, EvKind::SliceCheck { cpu, pid, gen });
        }
    }

    fn on_slice_check_indexed(&mut self, cpu: Cpu, pid: Pid, gen: u64) {
        let idx = self.index(pid);
        if self.running[cpu.index()] != Some(pid) || self.threads[idx].gen != gen {
            self.stats.stale_pops += 1;
            return; // stale
        }
        let bucket = self.threads[idx].bucket as usize;
        if self.has_contender_for(bucket, cpu) {
            self.preempt(pid);
        } else {
            self.arm_slice(cpu, pid, gen);
        }
    }

    /// Whether any ready thread in buckets `0..=max_bucket` (i.e. with
    /// priority >= the bucket's priority) may run on `cpu`.
    fn has_contender_for(&self, max_bucket: usize, cpu: Cpu) -> bool {
        let mut b = self.runqueue.first_from(0);
        while let Some(bi) = b {
            if bi > max_bucket {
                return false;
            }
            if self.runqueue.buckets[bi]
                .iter()
                .any(|&t| self.threads[t as usize].affinity.allows(cpu))
            {
                return true;
            }
            b = self.runqueue.first_from(bi + 1);
        }
        false
    }

    /// Arms the round-robin slice check for `pid` on `cpu` in the per-CPU
    /// slot (indexed engine).
    ///
    /// The seq bump happens at exactly the position where the reference
    /// engine pushes its `SliceCheck` heap event, so every event keeps a
    /// literally identical `(time, seq)` key. For an uncontended thread the
    /// reference engine would re-arm forever without ever preempting, so
    /// both the check and its seq bump are elided — dropping entries from
    /// the push sequence shifts later seqs uniformly and preserves the
    /// relative order of everything that remains.
    fn arm_slice(&mut self, cpu: Cpu, pid: Pid, gen: u64) {
        let idx = self.index(pid);
        if !self.threads[idx].contended {
            self.stats.slice_suppressed += 1;
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.stats.slice_arms += 1;
        self.slice_slots[cpu.index()] =
            Some(SliceSlot { time: self.now + self.timeslice, seq, pid, gen });
    }

    /// Removes `pid` from its CPU. `target` must be `Runnable` (preemption /
    /// slice rotation), `Blocked`, or `Dead`.
    fn deschedule(&mut self, pid: Pid, target: RunState) {
        let idx = self.index(pid);
        let cpu = match self.threads[idx].state {
            RunState::Running(cpu) => cpu,
            _ => panic!("deschedule of a non-running thread"),
        };
        self.account_runtime(pid);
        self.threads[idx].state = target;
        self.threads[idx].gen += 1;
        self.threads[idx].last_cpu = cpu;
        self.running[cpu.index()] = None;
        // Any armed slice check for this CPU is stale now (the gen bump
        // above guarantees it would no-op); drop it so the pop loop never
        // sees it.
        self.slice_slots[cpu.index()] = None;
        self.dirty = true;
        if target == RunState::Runnable {
            self.make_ready(idx);
        }
    }

    /// Picks the highest-priority ready thread allowed on `cpu` (FIFO among
    /// equals) and removes it from the ready list (reference engine).
    fn pop_ready_for_reference(&mut self, cpu: Cpu) -> Option<Pid> {
        let mut best: Option<(Priority, u64, usize)> = None;
        for (i, &pid) in self.ready.iter().enumerate() {
            let t = &self.threads[self.index(pid)];
            if !t.affinity.allows(cpu) {
                continue;
            }
            let key = (t.prio, t.ready_seq);
            match best {
                None => best = Some((key.0, key.1, i)),
                Some((bp, bs, _)) if key.0 > bp || (key.0 == bp && key.1 < bs) => {
                    best = Some((key.0, key.1, i))
                }
                _ => {}
            }
        }
        best.map(|(_, _, i)| self.ready.swap_remove(i))
    }

    /// Picks the highest-priority ready thread allowed on `cpu` (FIFO among
    /// equals) and removes it from the runqueue (indexed engine): scan
    /// non-empty buckets highest-priority-first, front-to-back within a
    /// bucket, and take the first thread whose affinity allows `cpu`.
    fn pop_ready_for_indexed(&mut self, cpu: Cpu) -> Option<Pid> {
        let mut b = self.runqueue.first_from(0);
        while let Some(bi) = b {
            let hit = self.runqueue.buckets[bi]
                .iter()
                .position(|&t| self.threads[t as usize].affinity.allows(cpu));
            if let Some(pos) = hit {
                let t = self.runqueue.remove_at(bi, pos);
                return Some(self.threads[t as usize].pid);
            }
            b = self.runqueue.first_from(bi + 1);
        }
        None
    }

    fn dispatch(&mut self, pid: Pid, cpu: Cpu) {
        let idx = self.index(pid);
        debug_assert_eq!(self.threads[idx].state, RunState::Runnable);
        self.threads[idx].state = RunState::Running(cpu);
        self.threads[idx].dispatched_at = self.now;
        self.threads[idx].gen += 1;
        self.threads[idx].last_cpu = cpu;
        let gen = self.threads[idx].gen;
        self.running[cpu.index()] = Some(pid);
        match self.threads[idx].remaining {
            Some(rem) => {
                self.push_event(self.now + rem, EvKind::OpComplete { pid, gen });
                self.arm_slice_for_engine(cpu, pid, gen);
            }
            None => {
                self.run_logic(pid);
                // `run_logic` may have blocked/exited the thread; only arm
                // the slice timer if it is still on the CPU.
                if self.running[cpu.index()] == Some(pid) {
                    let gen = self.threads[self.index(pid)].gen;
                    self.arm_slice_for_engine(cpu, pid, gen);
                }
            }
        }
    }

    fn arm_slice_for_engine(&mut self, cpu: Cpu, pid: Pid, gen: u64) {
        match self.engine {
            Engine::Indexed => self.arm_slice(cpu, pid, gen),
            Engine::Reference => {
                let slice = self.timeslice;
                self.stats.slice_arms += 1;
                self.push_event(self.now + slice, EvKind::SliceCheck { cpu, pid, gen });
            }
        }
    }

    /// Asks the thread's logic for operations until one takes time.
    /// The thread must currently be running.
    fn run_logic(&mut self, pid: Pid) {
        let idx = self.index(pid);
        let mut logic = self.threads[idx].logic.take().expect("logic present");
        loop {
            let op = logic.next_op(&mut SimCtx { sim: self, pid });
            let idx = self.index(pid);
            match op {
                Op::Compute(d) => {
                    let gen = self.threads[idx].gen;
                    self.threads[idx].remaining = Some(d);
                    self.push_event(self.now + d, EvKind::OpComplete { pid, gen });
                    break;
                }
                Op::Block { until } => {
                    if self.threads[idx].pending_wake {
                        self.threads[idx].pending_wake = false;
                        continue; // signal already arrived: re-poll
                    }
                    self.threads[idx].remaining = None;
                    self.deschedule(pid, RunState::Blocked);
                    if let Some(deadline) = until {
                        self.push_event(deadline.max(self.now), EvKind::WakeAt { pid });
                    }
                    break;
                }
                Op::Exit => {
                    self.threads[idx].remaining = None;
                    self.deschedule(pid, RunState::Dead);
                    break;
                }
            }
        }
        let idx = self.index(pid);
        self.threads[idx].logic = Some(logic);
    }

    /// Runs a scheduling pass only when the ready or running sets changed
    /// since the last one, then emits the switch diff (indexed engine).
    ///
    /// The invariant making the skip exact: whenever `dirty` is false the
    /// assignment is stable — every mutation of the ready set
    /// (`make_ready`) or the running set (`deschedule`) raises the flag,
    /// and a rebalance of a stable state is a no-op (so is its switch
    /// flush, since `running` only changes under the flag).
    fn rebalance_if_dirty(&mut self) {
        if !self.dirty {
            self.stats.rebalance_skipped += 1;
            return;
        }
        self.stats.rebalance_runs += 1;
        self.rebalance_indexed();
        self.flush_switches();
        // Cleared *after* the pass: dispatches and preemptions inside it
        // re-raise the flag, but the loop only exits once the assignment
        // is stable again.
        self.dirty = false;
    }

    /// One scheduling pass over the indexed runqueue: fill idle CPUs, then
    /// resolve preemptions, until the assignment is stable. Candidate order
    /// (priority desc, FIFO among equals) matches the reference engine's
    /// sorted-snapshot scan exactly.
    fn rebalance_indexed(&mut self) {
        loop {
            let mut changed = false;
            // Fill idle CPUs.
            if !self.runqueue.is_empty() {
                for c in 0..self.running.len() {
                    if self.running[c].is_none() {
                        if let Some(pid) = self.pop_ready_for_indexed(Cpu::new(c as u16)) {
                            self.dispatch(pid, Cpu::new(c as u16));
                            changed = true;
                        }
                    }
                }
            }
            // Preemption early-out: a victim must be a *running* thread
            // with priority strictly below some ready thread's, so if the
            // best ready priority does not exceed the lowest running
            // priority there is nothing to scan.
            let best_ready = self.runqueue.first_from(0);
            let preemptable = match best_ready {
                None => false,
                Some(b) => {
                    let best_prio = self.bucket_prios[b];
                    self.running.iter().flatten().any(|&run| {
                        self.threads[self.index(run)].prio < best_prio
                    })
                }
            };
            if preemptable {
                // Scan candidates in (prio desc, FIFO) order: non-empty
                // buckets ascending, front-to-back within each.
                let mut found: Option<(usize, usize, Pid, Cpu)> = None;
                let mut b = best_ready;
                'outer: while let Some(bi) = b {
                    for (pos, &t) in self.runqueue.buckets[bi].iter().enumerate() {
                        let prio = self.threads[t as usize].prio;
                        let affinity = self.threads[t as usize].affinity;
                        let mut victim: Option<(Priority, Cpu)> = None;
                        for c in 0..self.running.len() {
                            let cpu = Cpu::new(c as u16);
                            if !affinity.allows(cpu) {
                                continue;
                            }
                            if let Some(run) = self.running[c] {
                                let rp = self.threads[self.index(run)].prio;
                                if rp < prio && victim.is_none_or(|(vp, _)| rp < vp) {
                                    victim = Some((rp, cpu));
                                }
                            }
                        }
                        if let Some((_, cpu)) = victim {
                            found = Some((bi, pos, self.threads[t as usize].pid, cpu));
                            break 'outer;
                        }
                    }
                    b = self.runqueue.first_from(bi + 1);
                }
                if let Some((bi, pos, pid, cpu)) = found {
                    let run = self.running[cpu.index()].expect("victim running");
                    // `preempt` pushes the victim to the *back* of its
                    // bucket, so the candidate's position is still valid.
                    self.preempt(run);
                    self.runqueue.remove_at(bi, pos);
                    self.dispatch(pid, cpu);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One scheduling pass: fill idle CPUs, then resolve preemptions, until
    /// the assignment is stable (reference engine).
    fn rebalance_reference(&mut self) {
        loop {
            let mut changed = false;
            // Fill idle CPUs.
            for c in 0..self.running.len() {
                if self.running[c].is_none() {
                    if let Some(pid) = self.pop_ready_for_reference(Cpu::new(c as u16)) {
                        self.dispatch(pid, Cpu::new(c as u16));
                        changed = true;
                    }
                }
            }
            // Preemption: find a ready thread strictly higher-priority than
            // the lowest-priority running thread on an allowed CPU.
            let mut ready_sorted: Vec<Pid> = self.ready.clone();
            ready_sorted.sort_by_key(|&p| {
                let t = &self.threads[self.index(p)];
                (Reverse(t.prio), t.ready_seq)
            });
            'outer: for pid in ready_sorted {
                let (prio, affinity) = {
                    let t = &self.threads[self.index(pid)];
                    (t.prio, t.affinity)
                };
                let mut victim: Option<(Priority, Cpu)> = None;
                for c in 0..self.running.len() {
                    let cpu = Cpu::new(c as u16);
                    if !affinity.allows(cpu) {
                        continue;
                    }
                    if let Some(run) = self.running[c] {
                        let rp = self.threads[self.index(run)].prio;
                        if rp < prio && victim.is_none_or(|(vp, _)| rp < vp) {
                            victim = Some((rp, cpu));
                        }
                    }
                }
                if let Some((_, cpu)) = victim {
                    let run = self.running[cpu.index()].expect("victim running");
                    self.preempt(run);
                    // Remove `pid` from the ready list and dispatch it.
                    let pos = self
                        .ready
                        .iter()
                        .position(|&p| p == pid)
                        .expect("ready thread in list");
                    self.ready.swap_remove(pos);
                    self.dispatch(pid, cpu);
                    changed = true;
                    break 'outer;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Preempts a running thread, preserving its remaining work.
    fn preempt(&mut self, pid: Pid) {
        let idx = self.index(pid);
        if let (RunState::Running(_), Some(rem)) =
            (self.threads[idx].state, self.threads[idx].remaining)
        {
            let ran = self.now - self.threads[idx].dispatched_at;
            self.threads[idx].remaining = Some(rem.saturating_sub(ran));
        }
        self.deschedule(pid, RunState::Runnable);
    }

    /// Emits diff-based `sched_switch` events after a scheduling pass.
    fn flush_switches(&mut self) {
        for c in 0..self.running.len() {
            let current = self.running[c].unwrap_or(Pid::IDLE);
            let prev = self.last_running[c];
            if current == prev {
                continue;
            }
            let (prev_prio, prev_state) = if prev.is_idle() {
                (Priority::NORMAL, ThreadState::Runnable)
            } else {
                let t = &self.threads[self.index(prev)];
                let st = match t.state {
                    RunState::Runnable | RunState::Running(_) => ThreadState::Runnable,
                    RunState::Blocked => ThreadState::Sleeping,
                    RunState::Dead => ThreadState::Dead,
                };
                (t.prio, st)
            };
            let next_prio = if current.is_idle() {
                Priority::NORMAL
            } else {
                self.threads[self.index(current)].prio
            };
            let ev = SchedEvent::switch(
                self.now,
                Cpu::new(c as u16),
                prev,
                prev_prio,
                prev_state,
                current,
                next_prio,
            );
            self.emit(ev);
            self.switch_count += 1;
            self.last_running[c] = current;
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("cpus", &self.running.len())
            .field("threads", &self.threads.len())
            .field("switches", &self.switch_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::ScriptedLogic;
    use rtms_trace::SchedEventKind;

    fn compute(ms: u64) -> Op {
        Op::Compute(Nanos::from_millis(ms))
    }

    #[test]
    fn single_thread_runs_and_exits() {
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "t",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(10));
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(5));
        assert!(!sim.is_alive(pid));
        // switch to thread, switch to idle
        assert!(sim.switch_count() >= 2);
    }

    #[test]
    fn two_threads_share_one_core() {
        let mut b = SimulatorBuilder::new(1);
        let a = b.spawn(
            "a",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(4)])),
        );
        let c = b.spawn(
            "b",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(4)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(a), Nanos::from_millis(4));
        assert_eq!(sim.cpu_time(c), Nanos::from_millis(4));
        // Total work 8ms on one core: busy time is exactly 8ms.
        assert_eq!(sim.busy_time(Cpu::new(0)), Nanos::from_millis(8));
    }

    #[test]
    fn round_robin_interleaves_equal_priorities() {
        // Two 10ms jobs, 1ms timeslice on one core: both should finish
        // around t=20ms, interleaved (not FIFO: first would finish at 10ms,
        // second at 20ms; under RR the first finishes at ~19ms).
        let mut b = SimulatorBuilder::new(1);
        let a = b.spawn(
            "a",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(10)])),
        );
        let c = b.spawn(
            "b",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(10)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(15));
        // At 15ms, both have run roughly half the time each.
        let ta = sim.cpu_time(a).as_millis_f64();
        let tb = sim.cpu_time(c).as_millis_f64();
        assert!((ta - 7.5).abs() <= 1.0, "a ran {ta}ms, want ~7.5");
        assert!((tb - 7.5).abs() <= 1.0, "b ran {tb}ms, want ~7.5");
        assert!(sim.switch_count() > 10, "RR must context-switch repeatedly");
    }

    #[test]
    fn higher_priority_preempts() {
        let mut b = SimulatorBuilder::new(1);
        let low = b.spawn(
            "low",
            Priority::new(1),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(10)])),
        );
        let high = b.spawn(
            "high",
            Priority::new(5),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![
                Op::sleep_until(Nanos::from_millis(2)),
                compute(3),
            ])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(high), Nanos::from_millis(3));
        assert_eq!(sim.cpu_time(low), Nanos::from_millis(10));
        // High thread ran [2,5); low thread must have been preempted, so it
        // finishes at 13ms, not 10ms. Check via the final switch to idle.
        let last_low_switch = sim
            .sched_events()
            .iter()
            .filter_map(|e| match &e.kind {
                SchedEventKind::Switch { prev_pid, prev_state, .. }
                    if *prev_pid == low && *prev_state == ThreadState::Dead =>
                {
                    Some(e.time)
                }
                _ => None,
            })
            .next_back()
            .expect("low thread exits");
        assert_eq!(last_low_switch, Nanos::from_millis(13));
    }

    #[test]
    fn affinity_is_respected() {
        let mut b = SimulatorBuilder::new(2);
        let pinned = b.spawn(
            "pinned",
            Priority::NORMAL,
            Affinity::only(Cpu::new(1)),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(10));
        assert_eq!(sim.cpu_time(pinned), Nanos::from_millis(5));
        assert_eq!(sim.busy_time(Cpu::new(0)), Nanos::ZERO);
        assert_eq!(sim.busy_time(Cpu::new(1)), Nanos::from_millis(5));
        // Every switch event involving the pinned thread names cpu1.
        for e in sim.sched_events() {
            if e.prev_pid() == Some(pinned) || e.next_pid() == Some(pinned) {
                assert_eq!(e.cpu, Cpu::new(1));
            }
        }
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let mut b = SimulatorBuilder::new(2);
        let a = b.spawn(
            "a",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        let c = b.spawn(
            "b",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(5));
        // Both finish by t=5ms: they ran concurrently.
        assert_eq!(sim.cpu_time(a), Nanos::from_millis(5));
        assert_eq!(sim.cpu_time(c), Nanos::from_millis(5));
    }

    #[test]
    fn block_and_timed_wake() {
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "sleeper",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![
                compute(1),
                Op::sleep_until(Nanos::from_millis(8)),
                compute(1),
            ])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(2));
        // A wakeup event fires at t=8ms.
        let wake = sim
            .sched_events()
            .iter()
            .find(|e| matches!(e.kind, SchedEventKind::Wakeup { pid: p, .. } if p == pid))
            .expect("wakeup recorded");
        assert_eq!(wake.time, Nanos::from_millis(8));
    }

    /// A thread that wakes a sleeping partner mid-run.
    struct Waker {
        target: Pid,
        step: u8,
    }
    impl ThreadLogic for Waker {
        fn next_op(&mut self, ctx: &mut SimCtx<'_>) -> Op {
            self.step += 1;
            match self.step {
                1 => Op::Compute(Nanos::from_millis(3)),
                2 => {
                    ctx.wake(self.target);
                    Op::Compute(Nanos::from_millis(1))
                }
                _ => Op::Exit,
            }
        }
    }

    #[test]
    fn cross_thread_wake() {
        let mut b = SimulatorBuilder::new(2);
        let sleeper = b.spawn(
            "sleeper",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![Op::block(), compute(2)])),
        );
        let waker =
            b.spawn("waker", Priority::NORMAL, Affinity::all(), Box::new(Waker { target: sleeper, step: 0 }));
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(sleeper), Nanos::from_millis(2));
        assert_eq!(sim.cpu_time(waker), Nanos::from_millis(4));
        let wake = sim
            .sched_events()
            .iter()
            .find(|e| matches!(e.kind, SchedEventKind::Wakeup { pid: p, .. } if p == sleeper))
            .expect("wakeup recorded");
        assert_eq!(wake.time, Nanos::from_millis(3));
    }

    #[test]
    fn pending_wake_prevents_lost_signal() {
        // Waker signals the sleeper before the sleeper blocks: the block
        // must return immediately rather than hang forever.
        let mut b = SimulatorBuilder::new(1);
        // Waker runs first (spawned first, same priority, FIFO) and wakes
        // the sleeper while the sleeper has not yet blocked.
        struct EarlyWaker {
            target: Pid,
            done: bool,
        }
        impl ThreadLogic for EarlyWaker {
            fn next_op(&mut self, ctx: &mut SimCtx<'_>) -> Op {
                if self.done {
                    Op::Exit
                } else {
                    self.done = true;
                    ctx.wake(self.target);
                    Op::Compute(Nanos::from_millis(2))
                }
            }
        }
        // Spawn the sleeper second so the waker must signal before the
        // sleeper has ever run. PIDs are sequential (`next_pid`), so the
        // sleeper — the second spawn — gets next_pid() + 1.
        let sleeper_pid = Pid::new(b.next_pid().get() + 1);
        let waker = b.spawn(
            "waker",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(EarlyWaker { target: sleeper_pid, done: false }),
        );
        let sleeper = b.spawn(
            "sleeper",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![Op::block(), compute(1)])),
        );
        assert_eq!(sleeper, sleeper_pid);
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        assert_eq!(sim.cpu_time(waker), Nanos::from_millis(2));
        assert_eq!(sim.cpu_time(sleeper), Nanos::from_millis(1), "signal must not be lost");
    }

    #[test]
    fn switch_stream_is_consistent() {
        // Per CPU, the prev of each switch equals the next of the previous
        // switch on that CPU (diff-based emission guarantees continuity).
        let mut b = SimulatorBuilder::new(2);
        for i in 0..4 {
            b.spawn(
                format!("t{i}"),
                Priority::NORMAL,
                Affinity::all(),
                Box::new(ScriptedLogic::new(vec![
                    compute(3),
                    Op::sleep_until(Nanos::from_millis(10 + i)),
                    compute(2),
                ])),
            );
        }
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(40));
        let mut current: Vec<Pid> = vec![Pid::IDLE; 2];
        let mut prev_time = Nanos::ZERO;
        for e in sim.sched_events() {
            assert!(e.time >= prev_time, "events must be chronological");
            prev_time = e.time;
            if let SchedEventKind::Switch { prev_pid, next_pid, .. } = &e.kind {
                assert_eq!(
                    *prev_pid,
                    current[e.cpu.index()],
                    "switch continuity broken at {}",
                    e.time
                );
                assert_ne!(prev_pid, next_pid, "degenerate switch");
                current[e.cpu.index()] = *next_pid;
            }
        }
    }

    #[test]
    fn run_until_is_resumable() {
        let mut b = SimulatorBuilder::new(1);
        let pid = b.spawn(
            "t",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(10)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(4));
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(4));
        sim.run_until(Nanos::from_millis(12));
        assert_eq!(sim.cpu_time(pid), Nanos::from_millis(10));
    }

    #[test]
    fn affinity_helpers() {
        let a = Affinity::from_cpus([Cpu::new(0), Cpu::new(3)]);
        assert!(a.allows(Cpu::new(0)));
        assert!(!a.allows(Cpu::new(1)));
        assert!(a.allows(Cpu::new(3)));
        assert_eq!(Affinity::default(), Affinity::all());
    }

    #[test]
    #[should_panic]
    fn zero_cpus_rejected() {
        let _ = SimulatorBuilder::new(0);
    }

    /// Builds the same 3-priority, mixed-affinity machine twice — indexed
    /// and reference — and pins the full event streams against each other.
    fn mixed_machine(b: &mut SimulatorBuilder) {
        for i in 0..6u64 {
            let prio = Priority::new((i % 3) as i32);
            let affinity = if i % 2 == 0 {
                Affinity::all()
            } else {
                Affinity::only(Cpu::new((i % 2) as u16))
            };
            b.spawn(
                format!("t{i}"),
                prio,
                affinity,
                Box::new(ScriptedLogic::new(vec![
                    compute(2 + i % 3),
                    Op::sleep_until(Nanos::from_millis(8 + i)),
                    compute(3),
                    Op::sleep_until(Nanos::from_millis(20 + 2 * i)),
                    compute(1),
                ])),
            );
        }
    }

    #[test]
    fn indexed_engine_matches_reference_stream() {
        let mut bi = SimulatorBuilder::new(2);
        mixed_machine(&mut bi);
        let mut indexed = bi.build();
        indexed.run_until(Nanos::from_millis(60));

        let mut br = SimulatorBuilder::new(2).reference_engine();
        mixed_machine(&mut br);
        let mut reference = br.build();
        reference.run_until(Nanos::from_millis(60));

        assert_eq!(indexed.sched_events(), reference.sched_events());
        assert_eq!(indexed.switch_count(), reference.switch_count());
        for pid in indexed.pids() {
            assert_eq!(indexed.cpu_time(pid), reference.cpu_time(pid));
        }
    }

    #[test]
    fn stats_track_engine_work() {
        let mut b = SimulatorBuilder::new(1);
        for i in 0..2 {
            b.spawn(
                format!("t{i}"),
                Priority::NORMAL,
                Affinity::all(),
                Box::new(ScriptedLogic::new(vec![compute(10)])),
            );
        }
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(30));
        let stats = sim.stats();
        assert!(stats.events > 0, "events must be counted");
        assert!(stats.heap_pushes > 0, "op completions go through the heap");
        assert!(stats.slice_arms > 0, "equal priorities arm slice checks");
        assert!(
            stats.rebalance_skipped > 0,
            "slice re-arms must not trigger scheduling passes"
        );
        assert_eq!(stats.switches, sim.switch_count());
        // Two equal-priority threads: nothing is suppressed.
        assert_eq!(stats.slice_suppressed, 0);
    }

    #[test]
    fn lone_top_priority_thread_suppresses_slice_checks() {
        // One thread strictly above everything else: its slice checks can
        // never find a contender, so none are armed for it.
        let mut b = SimulatorBuilder::new(1);
        b.spawn(
            "top",
            Priority::new(9),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        b.spawn(
            "low",
            Priority::new(1),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(5)])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(20));
        let stats = sim.stats();
        assert!(stats.slice_suppressed > 0, "top thread's arms are elided");
        assert!(stats.slice_arms > 0, "low thread still arms (top outranks it)");
    }

    #[test]
    fn sink_receives_events() {
        #[derive(Default)]
        struct Counter(usize);
        impl SchedSink for Counter {
            fn on_sched_event(&mut self, _event: &SchedEvent) {
                self.0 += 1;
            }
        }
        let counter = Rc::new(RefCell::new(Counter::default()));
        let mut b = SimulatorBuilder::new(1);
        b.spawn(
            "t",
            Priority::NORMAL,
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![compute(1)])),
        );
        let mut sim = b.build();
        sim.add_sink(Box::new(Rc::clone(&counter)));
        sim.run_until(Nanos::from_millis(5));
        assert_eq!(counter.borrow().0, sim.sched_events().len());
        assert!(counter.borrow().0 > 0);
    }
}
