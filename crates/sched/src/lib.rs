//! Discrete-event multi-core preemptive OS scheduler simulator.
//!
//! This crate is the *kernel substrate* of the reproduction: the paper's
//! kernel tracer consumes `sched_switch` events from Linux 5.4, and
//! Algorithm 2 reconstructs callback execution times from them. Here, a
//! [`Simulator`] plays the role of that kernel: it schedules threads over a
//! configurable number of CPU cores with fixed priorities, round-robin
//! time-slicing among equal priorities, CPU affinity, preemption, blocking
//! and wakeups — and emits exactly the `sched_switch`/`sched_wakeup` event
//! stream (as [`rtms_trace::SchedEvent`]) that the real tracepoints would.
//!
//! Thread behaviour is supplied through the [`ThreadLogic`] trait: whenever
//! a thread finishes its current operation the simulator asks the logic for
//! the next [`Op`] — compute for some CPU time, block (optionally with a
//! timeout), or exit. The ROS2 executor simulator in `rtms-ros2` implements
//! `ThreadLogic` on top of this.
//!
//! # Example
//!
//! ```
//! use rtms_sched::{Affinity, Op, SimulatorBuilder, SimCtx, ThreadLogic};
//! use rtms_trace::{Nanos, Priority};
//!
//! struct Once(bool);
//! impl ThreadLogic for Once {
//!     fn next_op(&mut self, _ctx: &mut SimCtx<'_>) -> Op {
//!         if self.0 { Op::Exit } else { self.0 = true; Op::Compute(Nanos::from_millis(1)) }
//!     }
//! }
//!
//! let mut builder = SimulatorBuilder::new(2);
//! let pid = builder.spawn("worker", Priority::NORMAL, Affinity::all(), Box::new(Once(false)));
//! let mut sim = builder.build();
//! sim.run_until(Nanos::from_millis(10));
//! assert_eq!(sim.cpu_time(pid), Nanos::from_millis(1));
//! ```

pub mod loadgen;
pub mod logic;
pub mod simulator;

pub use loadgen::{PeriodicLoad, ScriptedLogic};
pub use logic::{Op, SimCtx, ThreadLogic};
pub use simulator::{Affinity, SchedSink, SimStats, Simulator, SimulatorBuilder};
