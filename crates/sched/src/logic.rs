//! The thread-behaviour interface: [`Op`], [`ThreadLogic`], [`SimCtx`].

use crate::simulator::Simulator;
use rtms_trace::{Nanos, Pid};

/// The next operation a thread wants to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Burn `0` or more nanoseconds of CPU time. The thread stays runnable
    /// and may be preempted and migrated while the work is in progress; the
    /// simulator guarantees the *accumulated* CPU time equals the request.
    Compute(Nanos),
    /// Block until woken by [`SimCtx::wake`]/[`SimCtx::wake_at`], or until
    /// the absolute deadline `until` (if given) passes — whichever comes
    /// first. This models a ROS2 executor waiting on its wait-set with a
    /// timer-derived timeout.
    ///
    /// Wakeups are *condition-variable like*: logic must tolerate spurious
    /// wakeups (re-check its queues and block again).
    Block {
        /// Absolute time at which to wake up regardless of signals.
        until: Option<Nanos>,
    },
    /// Terminate the thread.
    Exit,
}

impl Op {
    /// Convenience constructor: block with no timeout.
    pub fn block() -> Op {
        Op::Block { until: None }
    }

    /// Convenience constructor: sleep until an absolute instant.
    pub fn sleep_until(deadline: Nanos) -> Op {
        Op::Block { until: Some(deadline) }
    }
}

/// Behaviour of one simulated thread.
///
/// The simulator calls [`ThreadLogic::next_op`] whenever the thread needs a
/// new operation: at first dispatch, after a `Compute` finishes, and after
/// every wakeup from `Block`. The call happens *on the thread's own CPU at
/// the current simulated instant*; any side effects the logic performs
/// through [`SimCtx`] (waking other threads, scheduling future wakeups) are
/// instantaneous middleware actions.
pub trait ThreadLogic {
    /// Returns the thread's next operation.
    fn next_op(&mut self, ctx: &mut SimCtx<'_>) -> Op;
}

/// The simulation context handed to [`ThreadLogic::next_op`].
///
/// Exposes the current time and the two cross-thread effects a middleware
/// layer needs: immediate wakeups (message delivered now) and scheduled
/// wakeups (message will arrive after a communication latency).
pub struct SimCtx<'a> {
    pub(crate) sim: &'a mut Simulator,
    pub(crate) pid: Pid,
}

impl SimCtx<'_> {
    /// The current simulated time.
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// The PID of the thread whose logic is running.
    pub fn self_pid(&self) -> Pid {
        self.pid
    }

    /// Wakes `pid` now. If the target is blocked it becomes runnable (a
    /// `sched_wakeup` event is emitted); if it is running or already
    /// runnable the wakeup is latched so the target's next `Block` returns
    /// immediately instead of losing the signal.
    pub fn wake(&mut self, pid: Pid) {
        self.sim.wake_request(pid);
    }

    /// Schedules a wakeup of `pid` at absolute time `at` (clamped to now if
    /// already past). Models e.g. DDS delivery latency: publish now, the
    /// subscriber's executor wakes when the sample lands in its reader.
    pub fn wake_at(&mut self, pid: Pid, at: Nanos) {
        self.sim.schedule_wake(pid, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        assert_eq!(Op::block(), Op::Block { until: None });
        assert_eq!(
            Op::sleep_until(Nanos::from_millis(5)),
            Op::Block { until: Some(Nanos::from_millis(5)) }
        );
    }
}
