//! Property-based tests of the scheduler simulator: conservation laws and
//! event-stream invariants under randomized workloads.

use proptest::prelude::*;
use rtms_sched::{Affinity, Op, ScriptedLogic, SimulatorBuilder};
use rtms_trace::{Nanos, Pid, Priority, SchedEventKind};

#[derive(Debug, Clone)]
struct ThreadPlan {
    prio: i32,
    ops: Vec<(u64, u64)>, // (compute us, subsequent sleep us)
}

fn arb_plan() -> impl Strategy<Value = ThreadPlan> {
    (
        0i32..3,
        proptest::collection::vec((1u64..5_000, 0u64..5_000), 1..6),
    )
        .prop_map(|(prio, ops)| ThreadPlan { prio, ops })
}

fn build(plans: &[ThreadPlan], cpus: usize) -> (rtms_sched::Simulator, Vec<(Pid, Nanos)>) {
    let mut b = SimulatorBuilder::new(cpus);
    let mut expect = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let mut ops = Vec::new();
        let mut total = Nanos::ZERO;
        let mut wall = Nanos::ZERO;
        for &(c, s) in &plan.ops {
            let c = Nanos::from_micros(c);
            ops.push(Op::Compute(c));
            total += c;
            wall += c;
            if s > 0 {
                wall += Nanos::from_micros(s);
                ops.push(Op::sleep_until(wall));
            }
        }
        let pid = b.spawn(
            format!("t{i}"),
            Priority::new(plan.prio),
            Affinity::all(),
            Box::new(ScriptedLogic::new(ops)),
        );
        expect.push((pid, total));
    }
    (b.build(), expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every thread eventually receives exactly the CPU time it asked for,
    /// regardless of contention, priorities, or sleep patterns.
    #[test]
    fn cpu_time_conservation(plans in proptest::collection::vec(arb_plan(), 1..6), cpus in 1usize..4) {
        let (mut sim, expect) = build(&plans, cpus);
        // Generous horizon: total work + total sleep is far below 1s.
        sim.run_until(Nanos::from_secs(2));
        for (pid, total) in expect {
            prop_assert_eq!(sim.cpu_time(pid), total, "thread {} shortchanged", pid);
            prop_assert!(!sim.is_alive(pid), "thread {} should have exited", pid);
        }
    }

    /// Busy time per core equals the sum of thread runtimes (work is never
    /// double-counted or lost across cores).
    #[test]
    fn busy_time_conservation(plans in proptest::collection::vec(arb_plan(), 1..6), cpus in 1usize..4) {
        let (mut sim, expect) = build(&plans, cpus);
        sim.run_until(Nanos::from_secs(2));
        let total_thread: u64 = expect.iter().map(|(p, _)| sim.cpu_time(*p).as_nanos()).sum();
        let total_busy: u64 = (0..cpus)
            .map(|c| sim.busy_time(rtms_trace::Cpu::new(c as u16)).as_nanos())
            .sum();
        prop_assert_eq!(total_thread, total_busy);
    }

    /// The sched_switch stream is per-CPU continuous: the `prev` of each
    /// switch equals the `next` of the previous switch on the same CPU,
    /// and timestamps never go backwards.
    #[test]
    fn switch_stream_continuity(plans in proptest::collection::vec(arb_plan(), 1..6), cpus in 1usize..4) {
        let (mut sim, _) = build(&plans, cpus);
        sim.run_until(Nanos::from_secs(2));
        let mut current = vec![Pid::IDLE; cpus];
        let mut prev_time = Nanos::ZERO;
        for ev in sim.sched_events() {
            prop_assert!(ev.time >= prev_time);
            prev_time = ev.time;
            if let SchedEventKind::Switch { prev_pid, next_pid, .. } = &ev.kind {
                prop_assert_eq!(*prev_pid, current[ev.cpu.index()]);
                prop_assert_ne!(prev_pid, next_pid);
                current[ev.cpu.index()] = *next_pid;
            }
        }
    }

    /// A strictly higher-priority thread is never left waiting while a
    /// lower-priority thread occupies a core it may use: at every switch
    /// instant, the next thread's priority is at least that of any thread
    /// woken earlier and still waiting. (Weak form: the highest-priority
    /// thread in the system finishes no later than it would alone.)
    #[test]
    fn high_priority_unimpeded_on_own_core(work_us in 100u64..5_000) {
        let mut b = SimulatorBuilder::new(1);
        let low = b.spawn(
            "low",
            Priority::new(0),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![Op::Compute(Nanos::from_millis(50))])),
        );
        let high = b.spawn(
            "high",
            Priority::new(5),
            Affinity::all(),
            Box::new(ScriptedLogic::new(vec![Op::Compute(Nanos::from_micros(work_us))])),
        );
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(100));
        // High preempts immediately at t=0 and runs to completion.
        let done = sim
            .sched_events()
            .iter()
            .find(|e| matches!(&e.kind,
                SchedEventKind::Switch { prev_pid, .. } if *prev_pid == high))
            .expect("high thread switched out")
            .time;
        prop_assert_eq!(done, Nanos::from_micros(work_us));
        prop_assert_eq!(sim.cpu_time(low), Nanos::from_millis(50));
    }
}
