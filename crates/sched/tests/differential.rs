//! Indexed-vs-reference engine differential suite.
//!
//! The indexed engine (bucketed runqueue, dirty-driven rebalance, virtual
//! slice slots) must emit a `SchedEvent` stream *byte-identical* to the
//! pre-refactor engine, which is kept selectable via
//! [`SimulatorBuilder::reference_engine`] exactly for this comparison.
//! Randomized machines cover contended priorities, mixed affinities,
//! sleeping/waking scripts, and long-lived periodic load.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_sched::{Affinity, Op, PeriodicLoad, ScriptedLogic, Simulator, SimulatorBuilder};
use rtms_trace::{Cpu, Nanos, Priority};

/// Spawns a seed-determined machine: a few scripted threads with random
/// priorities, affinities, and compute/sleep scripts, plus one periodic
/// load thread that outlives the horizon. Both engines get the same seed,
/// so they see identical op sequences.
fn spawn_machine(seed: u64, cpus: usize, b: &mut SimulatorBuilder) {
    let mut rng = StdRng::seed_from_u64(seed);
    let threads = rng.gen_range(2..=8usize);
    for t in 0..threads {
        // A narrow priority range keeps several threads in one bucket, so
        // round-robin slicing and FIFO order inside a bucket are exercised.
        let prio = Priority::new(rng.gen_range(0..3));
        let affinity = if rng.gen_bool(0.3) {
            Affinity::only(Cpu::new(rng.gen_range(0..cpus) as u16))
        } else {
            Affinity::all()
        };
        let ops = rng.gen_range(2..=6usize);
        let mut script = Vec::with_capacity(ops);
        let mut wake = Nanos::ZERO;
        for _ in 0..ops {
            if rng.gen_bool(0.6) {
                script.push(Op::Compute(Nanos::from_micros(rng.gen_range(100..=4_000))));
            } else {
                wake += Nanos::from_micros(rng.gen_range(500..=6_000));
                script.push(Op::sleep_until(wake));
            }
        }
        b.spawn(format!("t{t}"), prio, affinity, Box::new(ScriptedLogic::new(script)));
    }
    b.spawn(
        "load",
        Priority::new(0),
        Affinity::all(),
        Box::new(PeriodicLoad::new(
            Nanos::from_millis(3),
            Nanos::from_micros(200),
            Nanos::from_micros(1_500),
            seed ^ 0x10ad,
        )),
    );
}

fn run(seed: u64, cpus: usize, reference: bool) -> Simulator {
    let mut b = SimulatorBuilder::new(cpus);
    if reference {
        b = b.reference_engine();
    }
    spawn_machine(seed, cpus, &mut b);
    let mut sim = b.build();
    sim.run_until(Nanos::from_millis(40));
    sim
}

fn assert_identical(indexed: &Simulator, reference: &Simulator, seed: u64) {
    assert_eq!(
        indexed.sched_events(),
        reference.sched_events(),
        "sched stream diverged (seed {seed})"
    );
    assert_eq!(indexed.switch_count(), reference.switch_count(), "seed {seed}");
    for pid in indexed.pids() {
        assert_eq!(indexed.cpu_time(pid), reference.cpu_time(pid), "seed {seed}");
        assert_eq!(indexed.is_alive(pid), reference.is_alive(pid), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random machines on 1/2/4 cores: the two engines are event-for-event
    /// identical, including switch counts and per-thread CPU accounting.
    #[test]
    fn engines_agree_on_random_machines(seed in 0u64..1_000_000) {
        for cpus in [1usize, 2, 4] {
            let indexed = run(seed, cpus, false);
            let reference = run(seed, cpus, true);
            assert_identical(&indexed, &reference, seed);
        }
    }
}

/// More cores than runnable threads: rebalance fills idle CPUs without any
/// preemption, and slice suppression kicks in for uncontended buckets.
#[test]
fn engines_agree_when_cores_outnumber_threads() {
    for seed in [3u64, 17, 92] {
        let indexed = run(seed, 8, false);
        let reference = run(seed, 8, true);
        assert_identical(&indexed, &reference, seed);
    }
}

/// A single-priority pile-up on one core: pure round-robin, the worst case
/// for slice-check traffic and FIFO-order preservation.
#[test]
fn engines_agree_on_single_bucket_round_robin() {
    let build = |reference: bool| {
        let mut b = SimulatorBuilder::new(1);
        if reference {
            b = b.reference_engine();
        }
        for t in 0..5u64 {
            b.spawn(
                format!("rr{t}"),
                Priority::NORMAL,
                Affinity::all(),
                Box::new(ScriptedLogic::new(vec![
                    Op::Compute(Nanos::from_millis(2 + t % 2)),
                    Op::sleep_until(Nanos::from_millis(12)),
                    Op::Compute(Nanos::from_millis(1)),
                ])),
            );
        }
        let mut sim = b.build();
        sim.run_until(Nanos::from_millis(30));
        sim
    };
    assert_identical(&build(false), &build(true), 0);
}
