//! Behavioural tests for fault injection: the simulated application must
//! actually misbehave from the activation instant on, and only then.

use rtms_ros2::{
    AppBuilder, AppSpec, FaultKind, FaultPlan, FaultSpec, WorkModel, WorldBuilder, WorldError,
};
use rtms_trace::Nanos;

/// Timer T publishes /t every 50 ms; subscriber S consumes it.
fn chain_app() -> AppSpec {
    let mut app = AppBuilder::new("faulty");
    let n1 = app.node("producer");
    app.timer(n1, "T", Nanos::from_millis(50), WorkModel::constant_millis(1.0)).publishes("/t");
    let n2 = app.node("consumer");
    app.subscriber(n2, "S", "/t", WorkModel::constant_millis(1.0));
    app.build().expect("valid app")
}

fn plan(callback: &str, at_ms: u64, kind: FaultKind) -> FaultPlan {
    [FaultSpec { callback: callback.to_string(), at: Nanos::from_millis(at_ms), kind }]
        .into_iter()
        .collect()
}

#[test]
fn slowdown_scales_exec_time_from_activation() {
    let mut world = WorldBuilder::new(2)
        .seed(3)
        .app(chain_app())
        .fault_plan(plan("T", 2_000, FaultKind::Slowdown { factor: 5.0 }))
        .build()
        .expect("world builds");
    world.trace_run(Nanos::from_secs(4));
    let gt = world.ground_truth();
    let id = gt.id_of("T").expect("timer registered");
    let at = Nanos::from_millis(2_000);
    let (mut before, mut after) = (Vec::new(), Vec::new());
    for inst in gt.instances_of(id) {
        let dur = inst.end - inst.start;
        if inst.start < at {
            before.push(dur);
        } else {
            after.push(dur);
        }
    }
    assert!(!before.is_empty() && !after.is_empty());
    assert!(before.iter().all(|&d| d == Nanos::from_millis(1)), "healthy phase unscaled");
    assert!(after.iter().all(|&d| d == Nanos::from_millis(5)), "faulty phase scaled 5x");
}

#[test]
fn timer_stutter_stretches_period_from_activation() {
    let mut world = WorldBuilder::new(2)
        .seed(3)
        .app(chain_app())
        .fault_plan(plan("T", 2_000, FaultKind::TimerStutter { factor: 2.0 }))
        .build()
        .expect("world builds");
    world.trace_run(Nanos::from_secs(4));
    let gt = world.ground_truth();
    let id = gt.id_of("T").expect("timer registered");
    let starts: Vec<Nanos> = gt.instances_of(id).map(|i| i.start).collect();
    let gaps = |range: &dyn Fn(Nanos) -> bool| -> Vec<u64> {
        starts
            .windows(2)
            .filter(|w| range(w[0]))
            .map(|w| (w[1] - w[0]).as_nanos())
            .collect()
    };
    let at = Nanos::from_millis(2_000);
    let healthy = gaps(&|s| s + Nanos::from_millis(100) < at);
    let faulty = gaps(&|s| s >= at);
    assert!(healthy.iter().all(|&g| g == 50_000_000), "healthy gaps are the 50ms period");
    assert!(faulty.iter().all(|&g| g == 100_000_000), "stuttered gaps are doubled");
}

#[test]
fn mute_publisher_silences_downstream_subscriber() {
    let mut world = WorldBuilder::new(2)
        .seed(3)
        .app(chain_app())
        .fault_plan(plan("T", 2_000, FaultKind::MutePublisher))
        .build()
        .expect("world builds");
    world.trace_run(Nanos::from_secs(4));
    let gt = world.ground_truth();
    let timer = gt.id_of("T").expect("timer");
    let sub = gt.id_of("S").expect("subscriber");
    let at = Nanos::from_millis(2_000);
    // The timer keeps running through the fault...
    assert!(gt.instances_of(timer).any(|i| i.start >= at), "muted timer still executes");
    // ...but the subscriber saw data only before activation (plus the DDS
    // latency tail of the last pre-fault sample).
    let last_sub = gt.instances_of(sub).map(|i| i.start).max().expect("subscriber ran");
    assert!(gt.instances_of(sub).next().is_some(), "subscriber ran while healthy");
    assert!(
        last_sub < at + Nanos::from_millis(50),
        "no subscriber instance after the mute settled: last at {last_sub:?}"
    );
}

#[test]
fn fault_plan_validation() {
    let unknown = WorldBuilder::new(1)
        .app(chain_app())
        .fault_plan(plan("ghost", 0, FaultKind::MutePublisher))
        .build();
    assert_eq!(unknown.err(), Some(WorldError::UnknownFaultCallback("ghost".into())));

    let not_a_timer = WorldBuilder::new(1)
        .app(chain_app())
        .fault_plan(plan("S", 0, FaultKind::TimerStutter { factor: 2.0 }))
        .build();
    assert_eq!(not_a_timer.err(), Some(WorldError::StutterOnNonTimer("S".into())));

    let bad_factor = WorldBuilder::new(1)
        .app(chain_app())
        .fault_plan(plan("T", 0, FaultKind::Slowdown { factor: 0.0 }))
        .build();
    assert!(matches!(bad_factor.as_ref().err(), Some(WorldError::BadFaultFactor { .. })));
    // The message names the offending target, fault, and factor — enough
    // to fix a plan of dozens of faults from the error alone.
    let msg = bad_factor.expect_err("rejected").to_string();
    assert!(msg.contains("\"T\"") && msg.contains("0"), "{msg}");
    assert!(msg.to_lowercase().contains("slowdown"), "{msg}");

    // A stutter must stretch the period: sub-1 factors would shrink it
    // toward zero and stall the simulated clock.
    let shrinking_stutter = WorldBuilder::new(1)
        .app(chain_app())
        .fault_plan(plan("T", 0, FaultKind::TimerStutter { factor: 0.5 }))
        .build();
    assert!(matches!(shrinking_stutter.err(), Some(WorldError::BadFaultFactor { .. })));

    // Callback names are unique per app only; a cross-app collision makes
    // the fault target ambiguous.
    let mut other = AppBuilder::new("other");
    let n = other.node("other_node");
    other.timer(n, "T", Nanos::from_millis(70), WorkModel::constant_millis(1.0));
    let ambiguous = WorldBuilder::new(1)
        .app(chain_app())
        .app(other.build().expect("valid app"))
        .fault_plan(plan("T", 0, FaultKind::MutePublisher))
        .build();
    assert_eq!(ambiguous.err(), Some(WorldError::AmbiguousFaultCallback("T".into())));

    let healthy = WorldBuilder::new(1).app(chain_app()).build();
    assert!(healthy.is_ok(), "an empty plan never fails validation");
}

#[test]
fn faultless_run_is_identical_with_and_without_future_fault() {
    // A fault activating after the traced window must not perturb the run:
    // fault checks are pure reads until activation.
    let run = |plan: Option<FaultPlan>| {
        let mut b = WorldBuilder::new(2).seed(9).app(chain_app());
        if let Some(p) = plan {
            b = b.fault_plan(p);
        }
        let mut world = b.build().expect("world builds");
        let trace = world.trace_run(Nanos::from_secs(1));
        (trace.ros_events().len(), trace.sched_events().len())
    };
    let base = run(None);
    let gated = run(Some(plan("T", 600_000, FaultKind::Slowdown { factor: 9.0 })));
    assert_eq!(base, gated, "a fault far in the future must not change the traced window");
}
