//! End-to-end tests of the middleware simulator: the event streams it
//! produces must exhibit exactly the structure Algorithms 1 and 2 rely on.

use rtms_ros2::{AppBuilder, WorkModel, WorldBuilder};
use rtms_trace::{
    CallbackKind, Nanos, Pid, Probe, RosPayload, Topic, Trace,
};

fn pipeline_world(seed: u64) -> rtms_ros2::Ros2World {
    let mut app = AppBuilder::new("pipe");
    let talker = app.node("talker");
    app.timer(talker, "tick", Nanos::from_millis(100), WorkModel::constant_millis(2.0))
        .publishes("/chatter");
    let listener = app.node("listener");
    app.subscriber(listener, "on_chatter", "/chatter", WorkModel::constant_millis(1.0))
        .publishes("/processed");
    WorldBuilder::new(2).seed(seed).app(app.build().expect("valid")).build().expect("world")
}

#[test]
fn timer_subscriber_pipeline_produces_all_probe_events() {
    let mut world = pipeline_world(1);
    let trace = world.trace_run(Nanos::from_secs(1));

    let count = |probe: Probe| trace.ros_events().iter().filter(|e| e.probe() == probe).count();
    // 1 s at 100 ms period: instances released at 0,100,...,1000 ms — the
    // horizon is inclusive, so the 11th instance starts at exactly 1 s but
    // never completes.
    assert_eq!(count(Probe::P1), 2, "two nodes announced");
    assert_eq!(count(Probe::P2), 11, "timer starts");
    assert_eq!(count(Probe::P3), 11, "timer IDs");
    assert_eq!(count(Probe::P4), 10, "timer ends");
    // Each tick publishes /chatter; each delivery triggers the subscriber,
    // which publishes /processed => 20 dds_write events.
    assert_eq!(count(Probe::P16), 20, "dds writes");
    assert_eq!(count(Probe::P5), 10, "subscriber starts");
    assert_eq!(count(Probe::P6), 10, "takes");
    assert_eq!(count(Probe::P8), 10, "subscriber ends");
    assert!(!trace.sched_events().is_empty(), "kernel trace recorded");
}

#[test]
fn executor_never_overlaps_callbacks() {
    // Per node (PID), CallbackStart and CallbackEnd events must strictly
    // alternate: the single-threaded executor runs one callback at a time.
    let mut world = pipeline_world(2);
    let trace = world.trace_run(Nanos::from_secs(2));
    for pid in trace.ros_pids() {
        let mut depth = 0i32;
        for ev in trace.ros_events_for(pid) {
            match ev.payload {
                RosPayload::CallbackStart { .. } => {
                    depth += 1;
                    assert_eq!(depth, 1, "nested callback start on {pid}");
                }
                RosPayload::CallbackEnd { .. } => {
                    depth -= 1;
                    assert_eq!(depth, 0, "unbalanced callback end on {pid}");
                }
                _ => {}
            }
        }
    }
}

#[test]
fn take_event_matches_published_source_timestamp() {
    let mut world = pipeline_world(3);
    let trace = world.trace_run(Nanos::from_secs(1));
    let writes: Vec<_> = trace
        .ros_events()
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::DdsWrite { topic, src_ts } if topic.name() == "/chatter" => {
                Some(*src_ts)
            }
            _ => None,
        })
        .collect();
    let takes: Vec<_> = trace
        .ros_events()
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::TakeData { src_ts, .. } => Some(*src_ts),
            _ => None,
        })
        .collect();
    assert_eq!(writes, takes, "every take must carry the writer's srcTS");
}

#[test]
fn ground_truth_matches_event_windows() {
    let mut world = pipeline_world(4);
    let trace = world.trace_run(Nanos::from_secs(1));
    let gt = world.ground_truth();
    assert_eq!(gt.instances().len(), 20, "10 timer + 10 subscriber instances");
    // Ground-truth windows must match the start/end events in the trace.
    for rec in gt.instances() {
        let events = trace.ros_events_for(rec.pid);
        let has_start = events.iter().any(|e| {
            e.time == rec.start && matches!(e.payload, RosPayload::CallbackStart { .. })
        });
        let has_end = events
            .iter()
            .any(|e| e.time == rec.end && matches!(e.payload, RosPayload::CallbackEnd { .. }));
        assert!(has_start && has_end, "instance window not visible in the trace");
        assert!(rec.end - rec.start >= rec.issued, "elapsed >= issued CPU time");
    }
}

fn service_world(seed: u64) -> rtms_ros2::Ros2World {
    // Two caller nodes invoke the same service; the paper's P14 mechanism
    // must dispatch each response only in the requesting node.
    let mut app = AppBuilder::new("rpc");
    let a = app.node("caller_a");
    app.timer(a, "TA", Nanos::from_millis(100), WorkModel::constant_millis(1.0)).calls("CLA");
    app.client(a, "CLA", "/srv", WorkModel::constant_millis(1.0));
    let b = app.node("caller_b");
    app.timer(b, "TB", Nanos::from_millis(150), WorkModel::constant_millis(1.0)).calls("CLB");
    app.client(b, "CLB", "/srv", WorkModel::constant_millis(1.0));
    let s = app.node("server");
    app.service(s, "SV", "/srv", WorkModel::constant_millis(2.0));
    WorldBuilder::new(2).seed(seed).app(app.build().expect("valid")).build().expect("world")
}

#[test]
fn service_round_trip_with_two_clients() {
    let mut world = service_world(5);
    let trace = world.trace_run(Nanos::from_millis(600));
    // Callers A (period 100) and B (period 150) over 600 ms: 6 + 4 requests.
    let requests = trace
        .ros_events()
        .iter()
        .filter(|e| {
            matches!(&e.payload,
                RosPayload::DdsWrite { topic, .. } if topic.is_service_request())
        })
        .count();
    assert_eq!(requests, 10);
    let service_execs = trace.ros_events().iter().filter(|e| e.probe() == Probe::P9).count();
    assert_eq!(service_execs, 10, "server handles every request");

    // Every response fans out to BOTH clients: 10 responses * 2 readers
    // => 20 P13 take_response events ...
    let take_responses = trace.ros_events().iter().filter(|e| e.probe() == Probe::P13).count();
    assert_eq!(take_responses, 20);
    // ... but P14 dispatches exactly half of them.
    let dispatched = trace
        .ros_events()
        .iter()
        .filter(
            |e| matches!(e.payload, RosPayload::ClientDispatch { will_dispatch: true }),
        )
        .count();
    let skipped = trace
        .ros_events()
        .iter()
        .filter(
            |e| matches!(e.payload, RosPayload::ClientDispatch { will_dispatch: false }),
        )
        .count();
    assert_eq!(dispatched, 10);
    assert_eq!(skipped, 10);

    // Ground truth: 10 dispatched client instances total across both nodes.
    let gt = world.ground_truth();
    let client_instances = gt
        .instances()
        .iter()
        .filter(|r| {
            gt.info(r.callback).map(|i| i.kind == CallbackKind::Client).unwrap_or(false)
        })
        .count();
    assert_eq!(client_instances, 10);
}

#[test]
fn sync_group_fires_only_when_all_inputs_fresh() {
    // Fast source /a at 100 ms, slow source /b at 200 ms, synchronized:
    // output fires once per /b sample (the scarcer input).
    let mut app = AppBuilder::new("sync");
    let s1 = app.node("src_a");
    app.timer(s1, "TA", Nanos::from_millis(100), WorkModel::constant_millis(1.0))
        .publishes("/a");
    let s2 = app.node("src_b");
    app.timer(s2, "TB", Nanos::from_millis(200), WorkModel::constant_millis(1.0))
        .publishes("/b");
    let f = app.node("fusion");
    app.subscriber(f, "SA", "/a", WorkModel::constant_millis(0.5));
    app.subscriber(f, "SB", "/b", WorkModel::constant_millis(0.5));
    app.sync_group(f, "MS", ["SA", "SB"], ["/fused"]);
    let sink = app.node("sink");
    app.subscriber(sink, "SF", "/fused", WorkModel::constant_millis(0.2));

    let mut world =
        WorldBuilder::new(2).seed(6).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(1));

    let fused_writes = trace
        .ros_events()
        .iter()
        .filter(|e| {
            matches!(&e.payload,
                RosPayload::DdsWrite { topic, .. } if topic.name() == "/fused")
        })
        .count();
    // /b published at 0,200,...,800 => 5 fusions over 1 s.
    assert_eq!(fused_writes, 5, "sync output rate follows the slow input");

    // Both member callbacks are marked as sync subscribers via P7.
    let sync_marks = trace.ros_events().iter().filter(|e| e.probe() == Probe::P7).count();
    let sa_execs = 10; // /a deliveries
    let sb_execs = 5;
    assert_eq!(sync_marks, sa_execs + sb_execs, "every sync-member take is P7-marked");

    // The fused output reaches the sink.
    let sink_takes = trace
        .ros_events()
        .iter()
        .filter(|e| {
            matches!(&e.payload,
                RosPayload::TakeData { topic, .. } if topic.name() == "/fused")
        })
        .count();
    assert_eq!(sink_takes, 5);
}

#[test]
fn pid_filter_keeps_kernel_trace_focused() {
    // With heavy non-ROS2 background load, the exported kernel trace must
    // be much smaller than the full firehose.
    let mut app = AppBuilder::new("small");
    let n = app.node("solo");
    app.timer(n, "T", Nanos::from_millis(50), WorkModel::constant_millis(1.0));
    let mut world = WorldBuilder::new(2)
        .seed(7)
        .app(app.build().expect("valid"))
        .background_load(Nanos::from_millis(2), Nanos::from_micros(500), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(3), Nanos::from_micros(500), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(5), Nanos::from_micros(500), Nanos::from_millis(2))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));
    let (seen, exported) = world.kernel_filter_stats();
    assert!(seen > 0 && exported > 0);
    assert!(
        exported * 3 <= seen,
        "filtering must cut the kernel trace by 3x or more: seen={seen} exported={exported}"
    );
    assert_eq!(exported as usize, trace.sched_events().len());
}

#[test]
fn trace_is_chronologically_sorted_and_serializable() {
    let mut world = pipeline_world(8);
    let trace = world.trace_run(Nanos::from_millis(500));
    let mut prev = Nanos::ZERO;
    for e in trace.ros_events() {
        assert!(e.time >= prev);
        prev = e.time;
    }
    let json = trace.to_json().expect("serialize");
    let back = Trace::from_json(&json).expect("deserialize");
    assert_eq!(&back, &trace);
}

#[test]
fn segmented_collection_equals_single_run() {
    // Fig. 2: stopping and restarting the runtime tracers between segments
    // must lose nothing while they are on.
    let mut world = pipeline_world(9);
    world.announce_nodes();
    world.start_runtime_tracers();
    world.run_for(Nanos::from_millis(500));
    let seg1 = world.collect_segment();
    world.run_for(Nanos::from_millis(500));
    let seg2 = world.collect_segment();
    world.stop_runtime_tracers();

    let mut merged = Trace::new();
    merged.merge(seg1);
    merged.merge(seg2);

    let mut reference = pipeline_world(9);
    let single = reference.trace_run(Nanos::from_secs(1));
    assert_eq!(merged.ros_events().len(), single.ros_events().len());
    assert_eq!(merged.sched_events().len(), single.sched_events().len());
}

#[test]
fn overhead_report_is_small_fraction_of_app_load() {
    let mut world = pipeline_world(10);
    let _ = world.trace_run(Nanos::from_secs(2));
    let report = world.overhead_report();
    assert!(report.total_firings > 0);
    assert!(report.avg_cores < 0.01, "probe cost must be well under 1% of a core");
    assert!(report.frac_of_app_load < 0.05, "probe cost must be a small fraction of app load");
    assert!(world.trace_volume_bytes() > 0);
}

#[test]
fn node_pids_are_exposed() {
    let world = pipeline_world(11);
    let talker = world.node_pid("talker").expect("talker pid");
    let listener = world.node_pid("listener").expect("listener pid");
    assert_ne!(talker, listener);
    assert_eq!(world.node_pid("ghost"), None);
    assert_eq!(world.node_pids().len(), 2);
    assert_ne!(talker, Pid::IDLE);
}

#[test]
fn dds_latency_delays_delivery() {
    let mut app = AppBuilder::new("lat");
    let t = app.node("t");
    app.timer(t, "T", Nanos::from_millis(100), WorkModel::constant_millis(1.0)).publishes("/x");
    let s = app.node("s");
    app.subscriber(s, "S", "/x", WorkModel::constant_millis(1.0));
    let mut world = WorldBuilder::new(2)
        .seed(12)
        .dds_latency(Nanos::from_millis(5))
        .app(app.build().expect("valid"))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_millis(300));
    // First publish at 1 ms (after 1 ms work); first take at >= 6 ms.
    let first_write = trace
        .ros_events()
        .iter()
        .find(|e| matches!(&e.payload, RosPayload::DdsWrite { topic, .. } if topic == &Topic::plain("/x")))
        .expect("write")
        .time;
    let first_take = trace
        .ros_events()
        .iter()
        .find(|e| matches!(&e.payload, RosPayload::TakeData { .. }))
        .expect("take")
        .time;
    assert!(first_take >= first_write + Nanos::from_millis(5));
}
