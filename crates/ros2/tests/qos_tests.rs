//! QoS degradation properties at the world level: bounded reorder is
//! really bounded, seeded lossy worlds are fully deterministic, and the
//! builder rejects misconfigured specs with messages naming the offending
//! setting.

use proptest::prelude::*;
use rtms_ros2::{AppBuilder, AppSpec, QosSpec, WorkModel, WorldBuilder, WorldError};
use rtms_trace::{Nanos, RosPayload};

/// A fast producer/consumer pair: enough traffic in one simulated second
/// to exercise drops, reorder windows, and jitter thousands of times.
fn pubsub_app() -> AppSpec {
    let mut app = AppBuilder::new("qos");
    let p = app.node("producer");
    app.timer(p, "T", Nanos::from_millis(2), WorkModel::constant_millis(0.1))
        .publishes("/data");
    let c = app.node("consumer");
    app.subscriber(c, "S", "/data", WorkModel::constant_millis(0.1));
    app.build().expect("valid app")
}

fn qos_world(seed: u64, qos: QosSpec) -> rtms_ros2::Ros2World {
    WorldBuilder::new(2)
        .seed(seed)
        .qos(qos)
        .app(pubsub_app())
        .build()
        .expect("world builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bounded reorder, observed end to end through the executor: a
    /// delivered sample is overtaken by at most `reorder_bound` samples
    /// written after it, for any seed, bound, and drop probability.
    #[test]
    fn bounded_reorder_delivery_never_violates_the_bound(
        seed in 0u64..10_000,
        bound in 1usize..5,
        drop_pct in 0u32..40,
    ) {
        let qos = QosSpec {
            drop_prob: f64::from(drop_pct) / 100.0,
            reorder_bound: bound,
            jitter: Nanos::from_micros(100),
        };
        let mut world = qos_world(seed, qos);
        let trace = world.trace_run(Nanos::from_secs(1));

        // Write order on /data is the ground truth sequence; the
        // subscriber's takes are the delivered sequence.
        let mut write_rank = std::collections::HashMap::new();
        let mut taken = Vec::new();
        for e in trace.ros_events() {
            match &e.payload {
                RosPayload::DdsWrite { topic, src_ts } if topic.name() == "/data" => {
                    let next = write_rank.len();
                    write_rank.insert(src_ts.get(), next);
                }
                RosPayload::TakeData { topic, src_ts, .. } if topic.name() == "/data" => {
                    taken.push(write_rank[&src_ts.get()]);
                }
                _ => {}
            }
        }
        prop_assert!(!taken.is_empty(), "subscriber must see traffic");
        prop_assert!(taken.len() <= write_rank.len());
        for (i, rank) in taken.iter().enumerate() {
            let overtakers = taken[..i].iter().filter(|r| *r > rank).count();
            prop_assert!(
                overtakers <= bound,
                "sample {rank} overtaken by {overtakers} later writes > bound {bound}"
            );
        }
        // Drops only ever thin the stream; with no drops nothing is lost.
        if drop_pct == 0 {
            prop_assert_eq!(taken.len(), write_rank.len(), "reorder alone must not lose samples");
        }
    }

    /// A seeded lossy world is fully deterministic: the same seed gives a
    /// byte-identical trace (every ROS event and every sched event), so
    /// degraded-QoS recordings replay exactly like reliable ones.
    #[test]
    fn seeded_qos_worlds_are_deterministic(seed in 0u64..10_000) {
        let qos = QosSpec {
            drop_prob: 0.2,
            reorder_bound: 3,
            jitter: Nanos::from_micros(300),
        };
        let run = || qos_world(seed, qos).trace_run(Nanos::from_secs(1));
        let a = run();
        let b = run();
        prop_assert_eq!(a.ros_events(), b.ros_events());
        prop_assert_eq!(a.sched_events(), b.sched_events());
    }
}

/// The explicit reliable spec is the default: `.qos(QosSpec::reliable())`
/// draws zero RNG and leaves the trace byte-identical to a world that
/// never mentioned QoS.
#[test]
fn reliable_spec_is_byte_identical_to_no_qos() {
    let with_qos = qos_world(7, QosSpec::reliable()).trace_run(Nanos::from_secs(1));
    let without = WorldBuilder::new(2)
        .seed(7)
        .app(pubsub_app())
        .build()
        .expect("world builds")
        .trace_run(Nanos::from_secs(1));
    assert_eq!(with_qos.ros_events(), without.ros_events());
    assert_eq!(with_qos.sched_events(), without.sched_events());
}

/// Misconfigured QoS specs are rejected at `build()`, and the errors name
/// the offending setting so the fix is obvious from the message alone.
#[test]
fn qos_spec_validation_names_the_offending_setting() {
    // Drop probability on a reliable (reorder bound 0) spec is a no-op
    // the builder refuses rather than silently ignoring.
    let noop = WorldBuilder::new(1)
        .qos(QosSpec { drop_prob: 0.25, reorder_bound: 0, jitter: Nanos::ZERO })
        .app(pubsub_app())
        .build();
    assert_eq!(noop.as_ref().err(), Some(&WorldError::QosDropOnReliableSpec { drop_prob: 0.25 }));
    let msg = noop.expect_err("rejected").to_string();
    assert!(msg.contains("0.25") && msg.contains("reorder bound 0"), "{msg}");

    // Probability 1.0 would drop *every* sample forever — outside [0, 1).
    let all_dropped = WorldBuilder::new(1)
        .qos(QosSpec { drop_prob: 1.0, reorder_bound: 2, jitter: Nanos::ZERO })
        .app(pubsub_app())
        .build();
    assert_eq!(
        all_dropped.as_ref().err(),
        Some(&WorldError::BadQosDropProbability { drop_prob: 1.0 })
    );
    assert!(all_dropped.expect_err("rejected").to_string().contains("outside [0, 1)"));

    // The valid corner: best-effort reorder with no drops at all.
    assert!(WorldBuilder::new(1)
        .qos(QosSpec { drop_prob: 0.0, reorder_bound: 1, jitter: Nanos::ZERO })
        .app(pubsub_app())
        .build()
        .is_ok());
}
