//! Property-based tests over *randomized application topologies*: for any
//! valid app the generator produces, the simulated stack must emit
//! well-formed event streams and the executor semantics must hold.

use proptest::prelude::*;
use rtms_ros2::{AppBuilder, AppSpec, WorkModel, WorldBuilder};
use rtms_trace::{Nanos, RosPayload};

/// A random pub/sub forest: `n_nodes` nodes, each with a timer publishing
/// its own topic, plus random subscribers wired to random topics (possibly
/// cross-node), some of which re-publish to their own derived topic.
#[derive(Debug, Clone)]
struct RandomApp {
    n_nodes: usize,
    /// (node, subscribed topic index, republish?)
    subscribers: Vec<(usize, usize, bool)>,
    periods_ms: Vec<u64>,
}

fn arb_app() -> impl Strategy<Value = RandomApp> {
    (2usize..6)
        .prop_flat_map(|n_nodes| {
            (
                Just(n_nodes),
                proptest::collection::vec(
                    (0..n_nodes, 0..n_nodes, any::<bool>()),
                    0..8,
                ),
                proptest::collection::vec(20u64..200, n_nodes),
            )
        })
        .prop_map(|(n_nodes, subscribers, periods_ms)| RandomApp {
            n_nodes,
            subscribers,
            periods_ms,
        })
}

fn build_app(spec: &RandomApp) -> AppSpec {
    let mut app = AppBuilder::new("random");
    let mut nodes = Vec::new();
    for i in 0..spec.n_nodes {
        let node = app.node(format!("n{i}"));
        app.timer(
            node,
            format!("t{i}"),
            Nanos::from_millis(spec.periods_ms[i]),
            WorkModel::uniform_millis(0.1, 1.0),
        )
        .publishes(format!("/src{i}"));
        nodes.push(node);
    }
    for (k, &(node, topic, republish)) in spec.subscribers.iter().enumerate() {
        let h = app.subscriber(
            nodes[node],
            format!("s{k}"),
            format!("/src{topic}"),
            WorkModel::uniform_millis(0.1, 0.8),
        );
        if republish {
            h.publishes(format!("/derived{k}"));
        }
    }
    app.build().expect("generated apps are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any topology: per-node callback start/end strictly alternate
    /// (single-threaded executor), every take carries a srcTS some write
    /// produced, and the synthesized model is acyclic with one vertex per
    /// active callback.
    #[test]
    fn random_topology_invariants(spec in arb_app(), seed in 0u64..1000, cpus in 1usize..5) {
        let mut world = WorldBuilder::new(cpus)
            .seed(seed)
            .app(build_app(&spec))
            .build()
            .expect("world builds");
        let trace = world.trace_run(Nanos::from_secs(1));

        // Executor non-overlap per node.
        for pid in trace.ros_pids() {
            let mut depth = 0i32;
            for ev in trace.ros_events_for(pid) {
                match ev.payload {
                    RosPayload::CallbackStart { .. } => {
                        depth += 1;
                        prop_assert_eq!(depth, 1);
                    }
                    RosPayload::CallbackEnd { .. } => {
                        depth -= 1;
                        prop_assert_eq!(depth, 0);
                    }
                    _ => {}
                }
            }
        }

        // Every taken srcTS was written, on the same topic.
        let writes: std::collections::HashSet<(String, u64)> = trace
            .ros_events()
            .iter()
            .filter_map(|e| match &e.payload {
                RosPayload::DdsWrite { topic, src_ts } => {
                    Some((topic.name().to_string(), src_ts.get()))
                }
                _ => None,
            })
            .collect();
        for e in trace.ros_events() {
            if let RosPayload::TakeData { topic, src_ts, .. } = &e.payload {
                prop_assert!(
                    writes.contains(&(topic.name().to_string(), src_ts.get())),
                    "take of unwritten sample on {topic}"
                );
            }
        }

        // Synthesis: acyclic, and bounded by the declared callback count.
        let dag = rtms_core::synthesize(&trace);
        prop_assert!(dag.is_acyclic());
        let declared = spec.n_nodes + spec.subscribers.len();
        prop_assert!(dag.vertices().len() <= declared);

        // Ground truth and Algorithm 2 agree on every instance.
        let gt = world.ground_truth();
        for rec in gt.instances() {
            let measured = rtms_core::execution_time(
                rec.start,
                rec.end,
                rec.pid,
                trace.sched_events(),
            );
            prop_assert_eq!(measured, rec.issued);
        }
    }

    /// The same seed gives the same trace (full determinism), and
    /// different seeds give the same *structure* after synthesis.
    #[test]
    fn determinism_and_structural_stability(spec in arb_app()) {
        let run = |seed: u64| {
            let mut world = WorldBuilder::new(2)
                .seed(seed)
                .app(build_app(&spec))
                .build()
                .expect("world builds");
            world.trace_run(Nanos::from_secs(1))
        };
        let a = run(5);
        let b = run(5);
        prop_assert_eq!(a.ros_events(), b.ros_events());
        prop_assert_eq!(a.sched_events().len(), b.sched_events().len());

        let c = run(6);
        let dag_a = rtms_core::synthesize(&a);
        let dag_c = rtms_core::synthesize(&c);
        prop_assert_eq!(dag_a.vertices().len(), dag_c.vertices().len());
        prop_assert_eq!(dag_a.edges().len(), dag_c.edges().len());
    }
}
