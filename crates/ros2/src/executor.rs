//! Node executors: single- and multi-threaded callback dispatch.
//!
//! A node's callbacks and synchronizers live in one shared `ExecCore`;
//! each executor worker thread is a [`NodeExecutor`] — a [`ThreadLogic`]
//! the kernel simulator polls via [`NodeExecutor::next_op`] — dispatching
//! callbacks from the core one at a time from start to end (the paper's
//! system model, Sec. II-A). A single-threaded executor is the one-worker
//! special case.
//!
//! Multi-threaded dispatch honours callback groups the way rclcpp does:
//! every mutually-exclusive group (including the node's implicit default
//! group) is *pinned* to one worker rank, which serializes its members
//! structurally; reentrant groups are claimable by any worker, so their
//! callback instances genuinely overlap in trace time. Pinning also makes
//! the differential oracle exact: when every callback belongs to a
//! mutually-exclusive group, the extra workers never claim work, never
//! emit runtime events, and the synthesized model is byte-identical to
//! the single-threaded executor's.
//!
//! The executor reports every traced middleware function to the attached
//! tracers at the exact simulated instants the real functions would run.

use crate::dds::ReaderId;
use crate::fault::CbFaults;
use crate::ground_truth::InstanceRecord;
use crate::work::WorkModel;
use crate::world::WorldState;
use rtms_ebpf::{FunctionArgs, FunctionCall, SrcTsRef};
use rtms_sched::{Op, SimCtx, ThreadLogic};
use rtms_trace::{CallbackId, Nanos, Pid, Topic};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Per-callback runtime state inside an executor.
#[derive(Debug)]
pub(crate) struct CbRuntime {
    pub(crate) id: CallbackId,
    pub(crate) work: WorkModel,
    pub(crate) outputs: Vec<ResolvedOutput>,
    pub(crate) detail: CbDetail,
    pub(crate) faults: CbFaults,
    /// Index into [`ExecCore::owner`]: 0 is the node's implicit
    /// mutually-exclusive default group, declared groups follow.
    pub(crate) group: usize,
}

#[derive(Debug)]
pub(crate) enum CbDetail {
    Timer {
        period: Nanos,
        next_fire: Nanos,
    },
    Subscriber {
        reader: ReaderId,
        topic: Topic,
        /// `(group index, member index)` when part of a synchronizer.
        sync: Option<(usize, usize)>,
    },
    Service {
        reader: ReaderId,
        response_topic: Topic,
    },
    Client {
        reader: ReaderId,
    },
}

/// An output action with topics resolved.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedOutput {
    Publish(Topic),
    /// Send a request: the response will be dispatched to `client_cb` of
    /// this node.
    CallService { client_cb: CallbackId, request_topic: Topic },
}

#[derive(Debug)]
pub(crate) struct SyncRuntime {
    pub(crate) filled: Vec<bool>,
    pub(crate) outputs: Vec<Topic>,
}

/// The per-node state shared by all of the node's executor workers.
#[derive(Debug)]
pub(crate) struct ExecCore {
    pub(crate) cbs: Vec<CbRuntime>,
    pub(crate) syncs: Vec<SyncRuntime>,
    /// Per callback group: the worker rank its mutually-exclusive
    /// dispatch is pinned to, or `None` for a reentrant group any worker
    /// may serve. Index 0 is the implicit default group.
    pub(crate) owner: Vec<Option<usize>>,
}

impl ExecCore {
    /// Whether the worker at `rank` may dispatch callback `cb`.
    fn claims(&self, rank: usize, cb: usize) -> bool {
        self.owner[self.cbs[cb].group].unwrap_or(rank) == rank
    }
}

/// The callback instance currently occupying an executor worker.
#[derive(Debug)]
struct Current {
    cb: usize,
    start: Nanos,
    issued: Nanos,
    /// For a service instance: the requester the response is addressed to.
    requester: Option<(Pid, CallbackId)>,
}

/// One executor worker thread of a node.
pub struct NodeExecutor {
    world: Rc<RefCell<WorldState>>,
    core: Rc<RefCell<ExecCore>>,
    rank: usize,
    /// The node's primary (reader-owning) pid: readers are registered
    /// under it, so every worker polls its due lists.
    poll_pid: Pid,
    current: Option<Current>,
    /// Scratch for the wakeups accumulated while finishing an instance,
    /// reused across instances so the publish path never allocates.
    wakes: Vec<(Pid, Nanos)>,
    /// Min-heap of `(next_fire, cb index)` over this worker's claimable
    /// timers. Entries a *different* worker advanced (reentrant groups) go
    /// stale — but `next_fire` only ever increases, so a stale entry
    /// surfaces early and is lazily repaired at the top; the true earliest
    /// deadline is never hidden. One entry per timer, always.
    timers: BinaryHeap<Reverse<(Nanos, usize)>>,
    /// `(reader id, cb index)` for this worker's claimable reader-backed
    /// callbacks, sorted by reader id — the map from the DDS router's due
    /// lists back to callbacks.
    reader_cb: Vec<(usize, usize)>,
    /// The DDS ready-list slot of `poll_pid`, cached at init (slots never
    /// move); `None` when the node has no readers at all, which skips the
    /// reader walk outright.
    dds_slot: Option<usize>,
    /// Lazily filled on the first poll (the core is fully built by then).
    init_done: bool,
    /// Use the pre-indexing full-scan polling loop (differential oracle).
    reference: bool,
}

impl NodeExecutor {
    pub(crate) fn new(
        world: Rc<RefCell<WorldState>>,
        core: Rc<RefCell<ExecCore>>,
        rank: usize,
        poll_pid: Pid,
        reference: bool,
    ) -> Self {
        NodeExecutor {
            world,
            core,
            rank,
            poll_pid,
            current: None,
            wakes: Vec::new(),
            timers: BinaryHeap::new(),
            reader_cb: Vec::new(),
            dds_slot: None,
            init_done: false,
            reference,
        }
    }

    /// Indexes the core's callbacks for this worker: claimable timers into
    /// the deadline heap, claimable readers into the reader→callback map.
    /// Claims are static after build (group pinning never changes), so
    /// non-claimable callbacks are filtered out here once.
    fn ensure_init(&mut self, core: &ExecCore) {
        if self.init_done {
            return;
        }
        self.init_done = true;
        for (i, cb) in core.cbs.iter().enumerate() {
            if !core.claims(self.rank, i) {
                continue;
            }
            match &cb.detail {
                CbDetail::Timer { next_fire, .. } => self.timers.push(Reverse((*next_fire, i))),
                CbDetail::Subscriber { reader, .. }
                | CbDetail::Service { reader, .. }
                | CbDetail::Client { reader } => self.reader_cb.push((reader.index(), i)),
            }
        }
        self.reader_cb.sort_unstable();
        self.dds_slot = self.world.borrow().dds.pid_slot(self.poll_pid);
    }

    /// Finishes the instance whose compute just completed: performs its
    /// output actions (publishes, service calls, the automatic service
    /// response, synchronizer output) and emits the callback-end event.
    fn finish(&mut self, ctx: &mut SimCtx<'_>, cur: Current) {
        let core_rc = Rc::clone(&self.core);
        let mut core = core_rc.borrow_mut();
        let core = &mut *core;
        let now = ctx.now();
        let pid = ctx.self_pid();
        // Accumulate wakeups in the executor's scratch buffer; publishes
        // append into it via `dds_write_into`, so finishing an instance
        // performs no allocation. The topic lists are iterated by
        // reference — `core` and the world are separate `RefCell`s, so
        // publishing while the core is borrowed is fine.
        let mut wakes = std::mem::take(&mut self.wakes);

        // Synchronizer bookkeeping: mark this member's slot; if the set is
        // complete, this (last-arriving) instance publishes the output.
        if let CbDetail::Subscriber { sync: Some((group, member)), .. } = core.cbs[cur.cb].detail {
            let fire = {
                let g = &mut core.syncs[group];
                g.filled[member] = true;
                g.filled.iter().all(|&f| f)
            };
            if fire {
                for topic in &core.syncs[group].outputs {
                    self.world.borrow_mut().dds_write_into(now, pid, topic, None, 0.0, &mut wakes);
                }
                let g = &mut core.syncs[group];
                g.filled.iter_mut().for_each(|f| *f = false);
            }
        }

        // Declared outputs. An active MutePublisher fault drops the topic
        // publications (the callback ran, its data never left); an active
        // MessageDrop fault loses each published copy with a probability.
        let muted = core.cbs[cur.cb].faults.muted(now);
        let extra_drop = core.cbs[cur.cb].faults.drop_prob(now);
        for out in &core.cbs[cur.cb].outputs {
            match out {
                ResolvedOutput::Publish(topic) => {
                    if muted {
                        continue;
                    }
                    self.world.borrow_mut().dds_write_into(
                        now,
                        pid,
                        topic,
                        None,
                        extra_drop,
                        &mut wakes,
                    );
                }
                ResolvedOutput::CallService { client_cb, request_topic } => {
                    self.world.borrow_mut().dds_write_into(
                        now,
                        pid,
                        request_topic,
                        Some((pid, *client_cb)),
                        0.0,
                        &mut wakes,
                    );
                }
            }
        }

        // A service responds to its caller.
        if let CbDetail::Service { response_topic, .. } = &core.cbs[cur.cb].detail {
            self.world.borrow_mut().dds_write_into(
                now,
                pid,
                response_topic,
                cur.requester,
                0.0,
                &mut wakes,
            );
        }

        // Callback-end probe (P4/P8/P11/P15).
        let end_args = match core.cbs[cur.cb].detail {
            CbDetail::Timer { .. } => FunctionArgs::ExecuteTimer,
            CbDetail::Subscriber { .. } => FunctionArgs::ExecuteSubscription,
            CbDetail::Service { .. } => FunctionArgs::ExecuteService,
            CbDetail::Client { .. } => FunctionArgs::ExecuteClient,
        };
        {
            let mut w = self.world.borrow_mut();
            w.call(FunctionCall::exit(now, pid, end_args));
            w.ground_truth.record(InstanceRecord {
                pid,
                callback: core.cbs[cur.cb].id,
                start: cur.start,
                end: now,
                issued: cur.issued,
            });
        }

        for &(target, at) in &wakes {
            ctx.wake_at(target, at);
        }
        wakes.clear();
        self.wakes = wakes;
    }

    fn begin_timer(&mut self, ctx: &mut SimCtx<'_>, core: &mut ExecCore, idx: usize) -> Op {
        let now = ctx.now();
        let pid = ctx.self_pid();
        let id = core.cbs[idx].id;
        let faults = core.cbs[idx].faults;
        if let CbDetail::Timer { period, next_fire } = &mut core.cbs[idx].detail {
            // An active TimerStutter fault stretches the cadence.
            *next_fire += faults.effective_period(now, *period);
        }
        let work = {
            let mut w = self.world.borrow_mut();
            w.call(FunctionCall::entry(now, pid, FunctionArgs::ExecuteTimer));
            w.call(FunctionCall::entry(now, pid, FunctionArgs::RclTimerCall { timer: id }));
            faults.apply_slowdown(now, core.cbs[idx].work.sample(&mut w.rng))
        };
        self.current = Some(Current { cb: idx, start: now, issued: work, requester: None });
        Op::Compute(work)
    }

    fn begin_subscriber(&mut self, ctx: &mut SimCtx<'_>, core: &mut ExecCore, idx: usize) -> Op {
        let now = ctx.now();
        let pid = ctx.self_pid();
        let id = core.cbs[idx].id;
        let (reader, topic, is_sync) = match &core.cbs[idx].detail {
            CbDetail::Subscriber { reader, topic, sync } => {
                (*reader, topic.clone(), sync.is_some())
            }
            _ => unreachable!("begin_subscriber on non-subscriber"),
        };
        let work = {
            let mut w = self.world.borrow_mut();
            let sample = w.dds.pop_due(reader, now).expect("checked due");
            w.call(FunctionCall::entry(now, pid, FunctionArgs::ExecuteSubscription));
            let addr = w.fresh_addr();
            w.call(FunctionCall::entry(
                now,
                pid,
                FunctionArgs::RmwTakeInt {
                    subscription: id,
                    topic: topic.clone(),
                    src_ts: SrcTsRef::pending(addr),
                },
            ));
            w.call(FunctionCall::exit(
                now,
                pid,
                FunctionArgs::RmwTakeInt {
                    subscription: id,
                    topic,
                    src_ts: SrcTsRef::resolved(addr, sample.src_ts),
                },
            ));
            if is_sync {
                w.call(FunctionCall::entry(now, pid, FunctionArgs::MessageFilterOp));
            }
            core.cbs[idx].faults.apply_slowdown(now, core.cbs[idx].work.sample(&mut w.rng))
        };
        self.current = Some(Current { cb: idx, start: now, issued: work, requester: None });
        Op::Compute(work)
    }

    fn begin_service(&mut self, ctx: &mut SimCtx<'_>, core: &mut ExecCore, idx: usize) -> Op {
        let now = ctx.now();
        let pid = ctx.self_pid();
        let id = core.cbs[idx].id;
        let reader = match &core.cbs[idx].detail {
            CbDetail::Service { reader, .. } => *reader,
            _ => unreachable!("begin_service on non-service"),
        };
        let (work, requester) = {
            let mut w = self.world.borrow_mut();
            let sample = w.dds.pop_due(reader, now).expect("checked due");
            w.call(FunctionCall::entry(now, pid, FunctionArgs::ExecuteService));
            let addr = w.fresh_addr();
            w.call(FunctionCall::entry(
                now,
                pid,
                FunctionArgs::RmwTakeRequest {
                    service: id,
                    topic: sample.topic.clone(),
                    src_ts: SrcTsRef::pending(addr),
                },
            ));
            w.call(FunctionCall::exit(
                now,
                pid,
                FunctionArgs::RmwTakeRequest {
                    service: id,
                    topic: sample.topic.clone(),
                    src_ts: SrcTsRef::resolved(addr, sample.src_ts),
                },
            ));
            (
                core.cbs[idx].faults.apply_slowdown(now, core.cbs[idx].work.sample(&mut w.rng)),
                sample.rpc_target,
            )
        };
        self.current = Some(Current { cb: idx, start: now, issued: work, requester });
        Op::Compute(work)
    }

    /// Handles an incoming service response. Returns `Some(op)` when the
    /// client callback is dispatched here (this node made the matching
    /// request), `None` when the response was addressed to another client
    /// — in which case only the P12/P13/P14/P15 events fire, with no work,
    /// exactly the pattern Alg. 1 discards via the P14 return value.
    fn begin_client(
        &mut self,
        ctx: &mut SimCtx<'_>,
        core: &mut ExecCore,
        idx: usize,
    ) -> Option<Op> {
        let now = ctx.now();
        let pid = ctx.self_pid();
        let id = core.cbs[idx].id;
        let reader = match &core.cbs[idx].detail {
            CbDetail::Client { reader } => *reader,
            _ => unreachable!("begin_client on non-client"),
        };
        let (work, dispatch) = {
            let mut w = self.world.borrow_mut();
            let sample = w.dds.pop_due(reader, now).expect("checked due");
            // Callback ids are globally unique, so matching the id alone
            // is exact — and unlike a pid comparison it stays correct on a
            // multi-threaded executor, where the response may be claimed
            // by a different worker than the one that sent the request.
            let dispatch = sample.rpc_target.is_some_and(|(_, cb)| cb == id);
            w.call(FunctionCall::entry(now, pid, FunctionArgs::ExecuteClient));
            let addr = w.fresh_addr();
            w.call(FunctionCall::entry(
                now,
                pid,
                FunctionArgs::RmwTakeResponse {
                    client: id,
                    topic: sample.topic.clone(),
                    src_ts: SrcTsRef::pending(addr),
                },
            ));
            w.call(FunctionCall::exit(
                now,
                pid,
                FunctionArgs::RmwTakeResponse {
                    client: id,
                    topic: sample.topic.clone(),
                    src_ts: SrcTsRef::resolved(addr, sample.src_ts),
                },
            ));
            w.call(FunctionCall::exit(
                now,
                pid,
                FunctionArgs::TakeTypeErasedResponse { ret: Some(dispatch) },
            ));
            if !dispatch {
                // Not our response: execute_client returns immediately.
                w.call(FunctionCall::exit(now, pid, FunctionArgs::ExecuteClient));
            }
            (
                core.cbs[idx].faults.apply_slowdown(now, core.cbs[idx].work.sample(&mut w.rng)),
                dispatch,
            )
        };
        if dispatch {
            self.current = Some(Current { cb: idx, start: now, issued: work, requester: None });
            Some(Op::Compute(work))
        } else {
            None
        }
    }

    /// Event-driven polling: visits only ready work. Expired timers come
    /// off the deadline heap, delivered samples off the DDS router's
    /// per-node due list. Matches the reference scan's dispatch order
    /// exactly: timers by `(next_fire, idx)` (the heap key), then readers
    /// in ascending reader-id order — which equals callback registration
    /// order, because readers are created in callback order at build.
    fn next_op_indexed(&mut self, ctx: &mut SimCtx<'_>) -> Op {
        let core_rc = Rc::clone(&self.core);
        loop {
            let mut core = core_rc.borrow_mut();
            let core = &mut *core;
            let now = ctx.now();
            self.ensure_init(core);
            // 1. Expired claimable timers, earliest deadline first. A top
            //    entry another worker advanced (reentrant group) is
            //    repaired in place; `next_fire` only grows, so stale
            //    entries are stale-low — they surface at the top before
            //    they could ever mask the true earliest deadline.
            while let Some(&Reverse((fire, idx))) = self.timers.peek() {
                let actual = match core.cbs[idx].detail {
                    CbDetail::Timer { next_fire, .. } => next_fire,
                    _ => unreachable!("non-timer in deadline heap"),
                };
                if fire != actual {
                    self.timers.pop();
                    self.timers.push(Reverse((actual, idx)));
                    continue;
                }
                if fire > now {
                    break;
                }
                self.timers.pop();
                let op = self.begin_timer(ctx, core, idx);
                let advanced = match core.cbs[idx].detail {
                    CbDetail::Timer { next_fire, .. } => next_fire,
                    _ => unreachable!("non-timer in deadline heap"),
                };
                self.timers.push(Reverse((advanced, idx)));
                return op;
            }
            // 2. Delivered samples for claimable callbacks, walking only
            //    the due list the DDS router maintains for this node.
            let mut client_handled = false;
            let mut started: Option<Op> = None;
            let mut cursor = None;
            while let Some(slot) = self.dds_slot {
                let next = {
                    let w = self.world.borrow();
                    w.dds.next_ready_due_at(slot, cursor, now)
                };
                let Some((rid, due)) = next else { break };
                cursor = Some(rid);
                // Workers share the node's due list; readers claimed by
                // another worker are simply absent from our map.
                let Ok(pos) = self.reader_cb.binary_search_by_key(&rid.index(), |&(r, _)| r)
                else {
                    continue;
                };
                let idx = self.reader_cb[pos].1;
                // Queued is not delivered: the head sample may still be
                // in DDS flight, in which case the reference scan skips
                // this callback too.
                if !due {
                    continue;
                }
                match core.cbs[idx].detail {
                    CbDetail::Subscriber { .. } => {
                        started = Some(self.begin_subscriber(ctx, core, idx));
                    }
                    CbDetail::Service { .. } => {
                        started = Some(self.begin_service(ctx, core, idx));
                    }
                    CbDetail::Client { .. } => match self.begin_client(ctx, core, idx) {
                        Some(op) => started = Some(op),
                        None => {
                            // Undispatched response consumed: rescan.
                            client_handled = true;
                        }
                    },
                    CbDetail::Timer { .. } => unreachable!("timers are not readers"),
                }
                if started.is_some() {
                    break;
                }
            }
            if let Some(op) = started {
                return op;
            }
            if client_handled {
                continue; // consumed a non-dispatched response; look again
            }
            // 3. Nothing ready: wait on the wait-set, bounded by the next
            //    claimable timer deadline — the heap top, which the repair
            //    loop above left accurate.
            return Op::Block { until: self.timers.peek().map(|&Reverse((fire, _))| fire) };
        }
    }

    /// The pre-indexing polling loop: a full scan over every callback for
    /// due timers, due samples, and the next deadline. Kept verbatim as
    /// the differential-testing oracle.
    fn next_op_reference(&mut self, ctx: &mut SimCtx<'_>) -> Op {
        let core_rc = Rc::clone(&self.core);
        loop {
            let mut core = core_rc.borrow_mut();
            let core = &mut *core;
            let now = ctx.now();
            // 1. Expired claimable timers, earliest deadline first.
            let due_timer = core
                .cbs
                .iter()
                .enumerate()
                .filter_map(|(i, cb)| match cb.detail {
                    CbDetail::Timer { next_fire, .. }
                        if next_fire <= now && core.claims(self.rank, i) =>
                    {
                        Some((next_fire, i))
                    }
                    _ => None,
                })
                .min();
            if let Some((_, idx)) = due_timer {
                return self.begin_timer(ctx, core, idx);
            }
            // 2. Delivered samples for claimable callbacks, in callback
            //    registration order.
            let mut client_handled = false;
            let mut started: Option<Op> = None;
            for idx in 0..core.cbs.len() {
                if !core.claims(self.rank, idx) {
                    continue;
                }
                let due = {
                    let w = self.world.borrow();
                    match &core.cbs[idx].detail {
                        CbDetail::Subscriber { reader, .. }
                        | CbDetail::Service { reader, .. }
                        | CbDetail::Client { reader } => w.dds.has_due(*reader, now),
                        CbDetail::Timer { .. } => false,
                    }
                };
                if !due {
                    continue;
                }
                match core.cbs[idx].detail {
                    CbDetail::Subscriber { .. } => {
                        started = Some(self.begin_subscriber(ctx, core, idx));
                    }
                    CbDetail::Service { .. } => {
                        started = Some(self.begin_service(ctx, core, idx));
                    }
                    CbDetail::Client { .. } => match self.begin_client(ctx, core, idx) {
                        Some(op) => started = Some(op),
                        None => {
                            // Undispatched response consumed: rescan.
                            client_handled = true;
                        }
                    },
                    CbDetail::Timer { .. } => unreachable!("timers handled above"),
                }
                if started.is_some() {
                    break;
                }
            }
            if let Some(op) = started {
                return op;
            }
            if client_handled {
                continue; // consumed a non-dispatched response; look again
            }
            // 3. Nothing ready: wait on the wait-set, bounded by the next
            //    claimable timer deadline. A worker pinned to no timers
            //    blocks until a sample wake arrives.
            let next_deadline = core
                .cbs
                .iter()
                .enumerate()
                .filter_map(|(i, cb)| match cb.detail {
                    CbDetail::Timer { next_fire, .. } if core.claims(self.rank, i) => {
                        Some(next_fire)
                    }
                    _ => None,
                })
                .min();
            return Op::Block { until: next_deadline };
        }
    }
}

impl ThreadLogic for NodeExecutor {
    fn next_op(&mut self, ctx: &mut SimCtx<'_>) -> Op {
        if let Some(cur) = self.current.take() {
            self.finish(ctx, cur);
        }
        if self.reference {
            self.next_op_reference(ctx)
        } else {
            self.next_op_indexed(ctx)
        }
    }
}
