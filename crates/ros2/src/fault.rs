//! Fault injection: making a simulated application misbehave on schedule.
//!
//! A [`FaultPlan`] attaches timed faults to named callbacks of the
//! applications in a world (via
//! [`WorldBuilder::fault_plan`](crate::WorldBuilder::fault_plan)). Faults
//! activate at a simulated instant and stay active for the rest of the
//! run, modeling the degradations a runtime monitor must catch:
//!
//! - [`FaultKind::Slowdown`] — every execution-time sample of the callback
//!   is scaled by a factor (a regression, a contended resource, thermal
//!   throttling);
//! - [`FaultKind::TimerStutter`] — a timer's period is scaled by a factor
//!   (a wedged clock source, a starved timer thread);
//! - [`FaultKind::MutePublisher`] — the callback still runs but its topic
//!   publications are dropped (a dead sensor feed, a broken QoS match);
//! - [`FaultKind::MessageDrop`] — each of the callback's published copies
//!   is independently lost in transport with a probability (a flaky radio
//!   link, a saturated DDS writer shedding best-effort samples).
//!
//! Faults change *behaviour*, never *tracing*: the tracers keep observing
//! whatever the faulty application actually does, which is exactly what
//! makes the resulting model drift detectable downstream.
//!
//! # Example
//!
//! ```
//! use rtms_ros2::{FaultKind, FaultPlan, FaultSpec};
//! use rtms_trace::Nanos;
//!
//! let mut plan = FaultPlan::new();
//! plan.push(FaultSpec {
//!     callback: "T1".to_string(),
//!     at: Nanos::from_secs(2),
//!     kind: FaultKind::Slowdown { factor: 5.0 },
//! });
//! assert_eq!(plan.faults().len(), 1);
//! ```

use rtms_trace::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What goes wrong when a fault activates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Every execution-time sample of the callback is multiplied by
    /// `factor` (> 1 slows the callback down).
    Slowdown {
        /// Execution-time scale factor.
        factor: f64,
    },
    /// The timer's period is multiplied by `factor` for every firing
    /// scheduled after activation. Only valid on timer callbacks, and the
    /// factor must be ≥ 1 — a stutter stretches the cadence; shrinking
    /// the period toward zero would stall the simulated clock.
    TimerStutter {
        /// Period scale factor (≥ 1).
        factor: f64,
    },
    /// The callback's declared topic publications are dropped. Service
    /// calls, service responses, and synchronizer outputs are unaffected —
    /// the fault models a dead *publisher*, not a dead callback.
    MutePublisher,
    /// Each copy of the callback's topic publications is independently
    /// lost in transport with probability `prob` (0 < prob ≤ 1). Unlike
    /// [`FaultKind::MutePublisher`] some samples still get through, so the
    /// monitor sees a *rate* anomaly rather than a vanished stream. The
    /// drop stacks on top of any QoS-level best-effort loss and applies
    /// even on a reliable QoS spec — an injected fault is precisely a
    /// violation of the configured reliability.
    MessageDrop {
        /// Per-copy loss probability (0 < prob ≤ 1).
        prob: f64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Slowdown { factor } => write!(f, "slowdown x{factor}"),
            FaultKind::TimerStutter { factor } => write!(f, "timer stutter x{factor}"),
            FaultKind::MutePublisher => write!(f, "mute publisher"),
            FaultKind::MessageDrop { prob } => write!(f, "message drop p={prob}"),
        }
    }
}

/// One timed fault on one named callback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Name of the target callback (as declared on the
    /// [`AppBuilder`](crate::AppBuilder)).
    pub callback: String,
    /// Activation instant; the fault stays active from here on.
    pub at: Nanos,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// An ordered collection of [`FaultSpec`]s for one world.
///
/// Multiple faults may target distinct callbacks; several faults on the
/// *same* callback are allowed as long as their kinds differ (one
/// slowdown, one stutter, one mute each at most — a later spec of the same
/// kind replaces the earlier one).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one fault.
    pub fn push(&mut self, fault: FaultSpec) {
        self.faults.push(fault);
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl FromIterator<FaultSpec> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = FaultSpec>>(iter: I) -> FaultPlan {
        FaultPlan { faults: iter.into_iter().collect() }
    }
}

/// Resolved per-callback fault switches, consulted by the executor on
/// every dispatch. `None` means the fault kind is not planned for this
/// callback.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CbFaults {
    /// `(activation, factor)` for execution-time scaling.
    pub(crate) slowdown: Option<(Nanos, f64)>,
    /// `(activation, factor)` for timer-period scaling.
    pub(crate) stutter: Option<(Nanos, f64)>,
    /// Activation instant for publication muting.
    pub(crate) mute: Option<Nanos>,
    /// `(activation, probability)` for per-copy publication loss.
    pub(crate) msg_drop: Option<(Nanos, f64)>,
}

impl CbFaults {
    /// Scales a sampled execution time if the slowdown is active at `now`.
    pub(crate) fn apply_slowdown(&self, now: Nanos, work: Nanos) -> Nanos {
        match self.slowdown {
            Some((at, factor)) if now >= at => work.scaled(factor),
            _ => work,
        }
    }

    /// The effective timer period at `now`.
    pub(crate) fn effective_period(&self, now: Nanos, period: Nanos) -> Nanos {
        match self.stutter {
            Some((at, factor)) if now >= at => period.scaled(factor),
            _ => period,
        }
    }

    /// Whether topic publications are muted at `now`.
    pub(crate) fn muted(&self, now: Nanos) -> bool {
        self.mute.is_some_and(|at| now >= at)
    }

    /// Extra per-copy loss probability for publications issued at `now`.
    pub(crate) fn drop_prob(&self, now: Nanos) -> f64 {
        match self.msg_drop {
            Some((at, prob)) if now >= at => prob,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_activate_at_time() {
        let f = CbFaults {
            slowdown: Some((Nanos::from_secs(1), 3.0)),
            stutter: Some((Nanos::from_secs(2), 2.0)),
            mute: Some(Nanos::from_secs(3)),
            msg_drop: None,
        };
        let ms = Nanos::from_millis;
        assert_eq!(f.apply_slowdown(ms(999), ms(2)), ms(2));
        assert_eq!(f.apply_slowdown(ms(1000), ms(2)), ms(6));
        assert_eq!(f.effective_period(ms(1999), ms(10)), ms(10));
        assert_eq!(f.effective_period(ms(2000), ms(10)), ms(20));
        assert!(!f.muted(ms(2999)));
        assert!(f.muted(ms(3000)));
        let none = CbFaults::default();
        assert_eq!(none.apply_slowdown(ms(5000), ms(2)), ms(2));
        assert_eq!(none.effective_period(ms(5000), ms(10)), ms(10));
        assert!(!none.muted(ms(5000)));
        assert_eq!(none.drop_prob(ms(5000)), 0.0);
    }

    #[test]
    fn message_drop_activates_at_time() {
        let f = CbFaults { msg_drop: Some((Nanos::from_secs(4), 0.7)), ..CbFaults::default() };
        assert_eq!(f.drop_prob(Nanos::from_millis(3999)), 0.0);
        assert_eq!(f.drop_prob(Nanos::from_secs(4)), 0.7);
        assert!(FaultKind::MessageDrop { prob: 0.7 }.to_string().contains("0.7"));
    }

    #[test]
    fn plan_collects_and_serializes() {
        let plan: FaultPlan = [
            FaultSpec {
                callback: "A".into(),
                at: Nanos::from_secs(1),
                kind: FaultKind::MutePublisher,
            },
            FaultSpec {
                callback: "B".into(),
                at: Nanos::from_secs(2),
                kind: FaultKind::TimerStutter { factor: 2.5 },
            },
        ]
        .into_iter()
        .collect();
        assert!(!plan.is_empty());
        let json = serde_json::to_string(&plan).expect("ser");
        let back: FaultPlan = serde_json::from_str(&json).expect("de");
        assert_eq!(plan, back);
        assert_eq!(FaultKind::MutePublisher.to_string(), "mute publisher");
        assert!(FaultKind::Slowdown { factor: 4.0 }.to_string().contains("x4"));
    }
}
