//! Ground truth the simulator knows about the application.
//!
//! The paper validates its measurement by "comparing the measured with the
//! designed execution times" of the SYN callbacks. The simulator can go
//! further: it records the exact CPU time it issued for every callback
//! instance, so tests can assert that Algorithm 2 reconstructs it *exactly*
//! from `sched_switch` events, under arbitrary preemption.

use rtms_trace::{CallbackId, CallbackKind, Nanos, Pid};
use std::collections::HashMap;

/// Static identity of one callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallbackInfo {
    /// Node the callback belongs to.
    pub node: String,
    /// Callback name from the [`crate::AppSpec`].
    pub name: String,
    /// Timer / subscriber / service / client.
    pub kind: CallbackKind,
}

/// One executed callback instance with the CPU time the simulator issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRecord {
    /// Executor thread.
    pub pid: Pid,
    /// The callback.
    pub callback: CallbackId,
    /// Instance start (the `execute_*` entry instant).
    pub start: Nanos,
    /// Instance end (the `execute_*` exit instant).
    pub end: Nanos,
    /// CPU time issued for the instance — the true execution time.
    pub issued: Nanos,
}

/// Registry of callback identities plus the per-instance issue log.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    registry: HashMap<CallbackId, CallbackInfo>,
    instances: Vec<InstanceRecord>,
}

impl GroundTruth {
    /// Creates an empty ground-truth store.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Registers a callback identity (done once at world build).
    pub fn register(&mut self, id: CallbackId, info: CallbackInfo) {
        self.registry.insert(id, info);
    }

    /// Records one completed instance.
    pub fn record(&mut self, record: InstanceRecord) {
        self.instances.push(record);
    }

    /// Identity of a callback, if registered.
    pub fn info(&self, id: CallbackId) -> Option<&CallbackInfo> {
        self.registry.get(&id)
    }

    /// Looks up a callback ID by its spec name.
    pub fn id_of(&self, name: &str) -> Option<CallbackId> {
        self.registry.iter().find(|(_, i)| i.name == name).map(|(id, _)| *id)
    }

    /// All recorded instances, in completion order.
    pub fn instances(&self) -> &[InstanceRecord] {
        &self.instances
    }

    /// Instances of one callback.
    pub fn instances_of(&self, id: CallbackId) -> impl Iterator<Item = &InstanceRecord> {
        self.instances.iter().filter(move |r| r.callback == id)
    }

    /// Total CPU time issued across all instances (the application load of
    /// the overhead experiment).
    pub fn total_issued(&self) -> Nanos {
        self.instances.iter().fold(Nanos::ZERO, |acc, r| acc + r.issued)
    }

    /// All registered callback IDs, sorted.
    pub fn callback_ids(&self) -> Vec<CallbackId> {
        let mut ids: Vec<CallbackId> = self.registry.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let mut gt = GroundTruth::new();
        let id = CallbackId::new(1);
        gt.register(
            id,
            CallbackInfo { node: "n".into(), name: "T1".into(), kind: CallbackKind::Timer },
        );
        gt.record(InstanceRecord {
            pid: Pid::new(1),
            callback: id,
            start: Nanos::ZERO,
            end: Nanos::from_millis(2),
            issued: Nanos::from_millis(2),
        });
        assert_eq!(gt.info(id).expect("registered").name, "T1");
        assert_eq!(gt.id_of("T1"), Some(id));
        assert_eq!(gt.instances_of(id).count(), 1);
        assert_eq!(gt.total_issued(), Nanos::from_millis(2));
        assert_eq!(gt.callback_ids(), vec![id]);
    }
}
