//! The attached tracer set and its wiring to the simulated kernel.

use rtms_ebpf::{map, FunctionCall, KernelTracer, PidFilterMap, Ros2InitTracer, Ros2RtTracer};
use rtms_sched::SchedSink;
use rtms_trace::SchedEvent;

/// The three tracers of Fig. 1, owned together so the world can start/stop
/// them per the deployment flow of Fig. 2.
#[derive(Debug)]
pub struct TracerSet {
    /// TR_IN — node initialization (P1).
    pub init: Ros2InitTracer,
    /// TR_RT — runtime middleware events (P2–P16).
    pub rt: Ros2RtTracer,
    /// TR_KN — scheduler events with PID filtering.
    pub kernel: KernelTracer,
}

impl TracerSet {
    /// Creates the tracer set with a shared PID-filter map (the paper's
    /// configuration: the kernel tracer filters on PIDs registered by the
    /// INIT tracer).
    ///
    /// # Panics
    ///
    /// Panics if any built-in program fails verification (a bug in this
    /// crate, not a runtime condition).
    pub fn new() -> Self {
        let filter = map::pid_filter_map();
        let init = Ros2InitTracer::new(filter.clone()).expect("P1 program verifies");
        let rt = Ros2RtTracer::new().expect("P2-P16 programs verify");
        let kernel = KernelTracer::new(Some(filter)).expect("sched_switch program verifies");
        TracerSet { init, rt, kernel }
    }

    /// Creates a tracer set that additionally records `sched_wakeup`
    /// events (the Sec. VII waiting-time extension).
    ///
    /// # Panics
    ///
    /// Panics if any built-in program fails verification.
    pub fn new_with_wakeups() -> Self {
        let filter = map::pid_filter_map();
        let init = Ros2InitTracer::new(filter.clone()).expect("P1 program verifies");
        let rt = Ros2RtTracer::new().expect("P2-P16 programs verify");
        let kernel = KernelTracer::new(Some(filter))
            .expect("sched_switch program verifies")
            .with_wakeups();
        TracerSet { init, rt, kernel }
    }

    /// Creates a tracer set whose kernel tracer exports *all* scheduler
    /// events (the unfiltered baseline of the Sec. III-B footprint
    /// experiment).
    ///
    /// # Panics
    ///
    /// Panics if any built-in program fails verification.
    pub fn new_unfiltered() -> Self {
        let filter = map::pid_filter_map();
        let init = Ros2InitTracer::new(filter).expect("P1 program verifies");
        let rt = Ros2RtTracer::new().expect("P2-P16 programs verify");
        let kernel = KernelTracer::new(None).expect("sched_switch program verifies");
        TracerSet { init, rt, kernel }
    }

    /// The shared PID-filter map.
    pub fn pid_filter(&self) -> &PidFilterMap {
        self.init.pid_filter()
    }

    /// Reports a middleware function call to the INIT and RT tracers.
    pub fn on_function(&mut self, call: &FunctionCall) {
        self.init.on_function(call);
        self.rt.on_function(call);
    }
}

impl Default for TracerSet {
    fn default() -> Self {
        TracerSet::new()
    }
}

impl SchedSink for TracerSet {
    fn on_sched_event(&mut self, event: &SchedEvent) {
        self.kernel.on_sched_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_ebpf::FunctionArgs;
    use rtms_trace::{Nanos, Pid};

    #[test]
    fn set_builds_and_shares_filter() {
        let mut set = TracerSet::new();
        set.init.start();
        set.on_function(&FunctionCall::entry(
            Nanos::ZERO,
            Pid::new(9),
            FunctionArgs::RmwCreateNode { node_name: "x".into() },
        ));
        assert!(set.pid_filter().contains(&Pid::new(9)));
    }

    #[test]
    fn sched_sink_forwards_to_kernel_tracer() {
        use rtms_trace::{Cpu, Priority, ThreadState};
        let mut set = TracerSet::new_unfiltered();
        set.kernel.start();
        set.on_sched_event(&SchedEvent::switch(
            Nanos::ZERO,
            Cpu::new(0),
            Pid::new(1),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(2),
            Priority::NORMAL,
        ));
        assert_eq!(set.kernel.exported(), 1);
    }
}
