//! The simulated DDS transport (Cyclone-DDS stand-in).
//!
//! Topics connect writers to readers; every write stamps a fresh source
//! timestamp (the `srcTS` the tracer extracts) and delivers a copy of the
//! sample into every matching reader's queue after the configured
//! transport latency. Service request/response routing rides on the same
//! mechanism, exactly as in ROS2 (Sec. II-A: "services are implemented
//! using topics").
//!
//! # QoS
//!
//! A [`QosSpec`] degrades delivery on *plain* topics (service traffic is
//! always reliable, matching the rclcpp default):
//!
//! - **best-effort drops** — each delivered copy is independently lost
//!   with `drop_prob` (only meaningful on a best-effort spec, i.e. with
//!   `reorder_bound >= 1`; the world builder rejects the no-op combination
//!   of a drop probability on a reliable spec);
//! - **bounded reorder** — a sample may be overtaken by at most
//!   `reorder_bound` samples written after it (per reader queue);
//! - **latency jitter** — each copy's arrival is delayed by an extra
//!   uniform amount in `[0, jitter]`.
//!
//! All QoS decisions come from the domain's own seeded RNG, so a seeded
//! world stays byte-for-byte deterministic, and a reliable spec (the
//! default) draws nothing at all — bit-identical to a QoS-less domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtms_trace::{CallbackId, Nanos, Pid, SourceTimestamp, Topic};
use rtms_util::FxHashMap;
use std::collections::VecDeque;

/// Quality-of-service knobs of a DDS domain, applied to plain topics.
///
/// The default spec is *reliable*: no drops, strict per-reader FIFO, no
/// jitter — byte-identical behaviour to a domain without QoS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    /// Probability that a delivered copy is lost (best-effort delivery).
    /// Drawn independently per `(write, reader)` pair. Only applied when
    /// `reorder_bound >= 1` marks the spec best-effort; the world builder
    /// rejects a drop probability on a reliable (bound 0) spec as a
    /// confusing no-op.
    pub drop_prob: f64,
    /// How many samples written *after* a sample may be delivered before
    /// it, per reader queue. `0` is strict FIFO (reliable ordering).
    pub reorder_bound: usize,
    /// Extra delivery latency, uniform in `[0, jitter]`, drawn per copy.
    pub jitter: Nanos,
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::reliable()
    }
}

impl QosSpec {
    /// The reliable spec: no drops, strict FIFO, no jitter.
    pub fn reliable() -> QosSpec {
        QosSpec { drop_prob: 0.0, reorder_bound: 0, jitter: Nanos::ZERO }
    }

    /// Whether this spec degrades nothing (the default).
    pub fn is_reliable(&self) -> bool {
        self.drop_prob == 0.0 && self.reorder_bound == 0 && self.jitter == Nanos::ZERO
    }
}

/// A sample sitting in (or delivered from) a reader queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The topic the sample was written to.
    pub topic: Topic,
    /// The source timestamp stamped at write time.
    pub src_ts: SourceTimestamp,
    /// When the sample becomes visible to the reader.
    pub arrival: Nanos,
    /// For service traffic: the client callback the response must be
    /// dispatched to (requests carry the *requester* here so the server can
    /// address its response).
    pub rpc_target: Option<(Pid, CallbackId)>,
}

/// Identifier of a reader within the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderId(usize);

impl ReaderId {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// A queued sample with its delivery rank: `rank = write seq + offset`
/// with `offset in [0, reorder_bound]`, so ordering by `(rank, seq)`
/// structurally bounds how many newer samples can overtake an older one.
#[derive(Debug)]
struct QueuedSample {
    rank: u64,
    sample: Sample,
}

#[derive(Debug)]
struct Reader {
    pid: Pid,
    // The subscribed topic is not stored here: routing goes through
    // `DdsDomain::topic_readers`, which holds it as the key.
    queue: VecDeque<QueuedSample>,
    /// Index of this reader's pid in [`DdsDomain::ready`].
    slot: usize,
}

/// The DDS domain: topic-based sample routing with delivery latency and
/// optional QoS degradation (see [`QosSpec`]).
///
/// # Example
///
/// ```
/// use rtms_ros2::DdsDomain;
/// use rtms_trace::{Nanos, Pid, Topic};
///
/// let mut dds = DdsDomain::new(Nanos::from_micros(50));
/// let reader = dds.create_reader(Pid::new(7), Topic::plain("/chatter"));
/// let (ts, wakes) = dds.write(Nanos::ZERO, Topic::plain("/chatter"), None);
/// assert_eq!(wakes, vec![(Pid::new(7), Nanos::from_micros(50))]);
/// // Not visible before the latency has elapsed.
/// assert!(dds.pop_due(reader, Nanos::ZERO).is_none());
/// let sample = dds.pop_due(reader, Nanos::from_micros(50)).expect("delivered");
/// assert_eq!(sample.src_ts, ts);
/// ```
#[derive(Debug)]
pub struct DdsDomain {
    latency: Nanos,
    qos: QosSpec,
    rng: StdRng,
    readers: Vec<Reader>,
    next_src_ts: u64,
    /// Per owning pid: the ids of this pid's readers currently holding at
    /// least one (possibly not-yet-arrived) sample, sorted ascending.
    /// Maintained by `write_lossy_into` (insert into empty queue) and
    /// `pop_due` (pop to empty), so executors visit only readers with
    /// work instead of scanning every callback.
    ready: Vec<Vec<u32>>,
    pid_slots: FxHashMap<Pid, usize>,
    /// Reader ids per topic, in registration (= id) order. `write_lossy_into`
    /// walks only a topic's own readers instead of scanning the whole
    /// domain per publish; registration order keeps the per-reader RNG
    /// draws (drop, jitter, reorder) in exactly the full-scan sequence.
    topic_readers: FxHashMap<Topic, Vec<u32>>,
}

impl DdsDomain {
    /// Creates a domain with a fixed transport latency and reliable QoS.
    pub fn new(latency: Nanos) -> Self {
        DdsDomain::with_qos(latency, QosSpec::reliable(), 0)
    }

    /// Creates a domain with a QoS spec and a seed for its (private)
    /// drop/reorder/jitter RNG. A reliable spec never draws from the RNG,
    /// so the seed is then irrelevant.
    pub fn with_qos(latency: Nanos, qos: QosSpec, seed: u64) -> Self {
        DdsDomain {
            latency,
            qos,
            rng: StdRng::seed_from_u64(seed),
            readers: Vec::new(),
            next_src_ts: 1,
            ready: Vec::new(),
            pid_slots: FxHashMap::default(),
            topic_readers: FxHashMap::default(),
        }
    }

    /// The configured transport latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// The configured QoS spec.
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// Registers a reader of `topic` owned by the executor thread `pid`.
    pub fn create_reader(&mut self, pid: Pid, topic: Topic) -> ReaderId {
        let next_slot = self.ready.len();
        let slot = *self.pid_slots.entry(pid).or_insert(next_slot);
        if slot == next_slot {
            self.ready.push(Vec::new());
        }
        let id = self.readers.len() as u32;
        self.topic_readers.entry(topic).or_default().push(id);
        self.readers.push(Reader { pid, queue: VecDeque::new(), slot });
        ReaderId(id as usize)
    }

    /// Writes a sample to `topic` at time `now`.
    ///
    /// Returns the stamped source timestamp and the list of
    /// `(reader thread, arrival time)` wakeups the caller must schedule.
    pub fn write(
        &mut self,
        now: Nanos,
        topic: Topic,
        rpc_target: Option<(Pid, CallbackId)>,
    ) -> (SourceTimestamp, Vec<(Pid, Nanos)>) {
        self.write_lossy(now, topic, rpc_target, 0.0)
    }

    /// Like [`DdsDomain::write`], with an additional per-copy drop
    /// probability stacked on top of the QoS drop probability — the hook a
    /// [`crate::FaultKind::MessageDrop`] fault injects through. The extra
    /// probability applies even on a reliable spec: an injected transport
    /// fault is precisely a *violation* of the configured reliability.
    pub fn write_lossy(
        &mut self,
        now: Nanos,
        topic: Topic,
        rpc_target: Option<(Pid, CallbackId)>,
        extra_drop: f64,
    ) -> (SourceTimestamp, Vec<(Pid, Nanos)>) {
        let mut wakes = Vec::new();
        let src_ts = self.write_lossy_into(now, &topic, rpc_target, extra_drop, &mut wakes);
        (src_ts, wakes)
    }

    /// The allocation-free core of [`DdsDomain::write_lossy`]: appends the
    /// `(reader thread, arrival time)` wakeups onto `wakes` instead of
    /// returning a fresh vector, so the per-publish hot path of the
    /// executors can reuse one scratch buffer across every instance.
    pub fn write_lossy_into(
        &mut self,
        now: Nanos,
        topic: &Topic,
        rpc_target: Option<(Pid, CallbackId)>,
        extra_drop: f64,
        wakes: &mut Vec<(Pid, Nanos)>,
    ) -> SourceTimestamp {
        let src_ts = SourceTimestamp::new(self.next_src_ts);
        let seq = self.next_src_ts;
        self.next_src_ts += 1;
        let base_arrival = now + self.latency;
        // QoS degrades plain topics only; service traffic stays reliable.
        let plain = !topic.is_service_request() && !topic.is_service_response();
        let best_effort = plain && self.qos.reorder_bound >= 1;
        let Some(ids) = self.topic_readers.get(topic) else {
            return src_ts; // no subscribers: the write still stamps a ts
        };
        for &ri in ids {
            let ri = ri as usize;
            let reader = &mut self.readers[ri];
            let mut drop_prob = extra_drop;
            if best_effort && self.qos.drop_prob > 0.0 {
                drop_prob = 1.0 - (1.0 - drop_prob) * (1.0 - self.qos.drop_prob);
            }
            if drop_prob > 0.0 && self.rng.gen_bool(drop_prob) {
                continue; // copy lost in transport: no sample, no wake
            }
            let mut arrival = base_arrival;
            if plain && self.qos.jitter > Nanos::ZERO {
                arrival += Nanos::from_nanos(self.rng.gen_range(0..=self.qos.jitter.as_nanos()));
            }
            let rank = if best_effort {
                seq + self.rng.gen_range(0..=self.qos.reorder_bound as u64)
            } else {
                seq
            };
            // Insert sorted by (rank, seq); seq strictly increases, so
            // scanning ranks from the back keeps the order stable.
            let q = &mut reader.queue;
            let was_empty = q.is_empty();
            let mut at = q.len();
            while at > 0 && q[at - 1].rank > rank {
                at -= 1;
            }
            q.insert(
                at,
                QueuedSample {
                    rank,
                    sample: Sample { topic: topic.clone(), src_ts, arrival, rpc_target },
                },
            );
            if was_empty {
                let list = &mut self.ready[reader.slot];
                let pos = list.binary_search(&(ri as u32)).unwrap_err();
                list.insert(pos, ri as u32);
            }
            wakes.push((reader.pid, arrival));
        }
        src_ts
    }

    /// Pops the front sample of `reader` if it has arrived by `now`.
    /// Delivery follows queue order (post-reorder), each sample gated by
    /// its own arrival time.
    pub fn pop_due(&mut self, reader: ReaderId, now: Nanos) -> Option<Sample> {
        let r = &mut self.readers[reader.0];
        match r.queue.front() {
            Some(front) if front.sample.arrival <= now => {
                let sample = r.queue.pop_front().map(|q| q.sample);
                if r.queue.is_empty() {
                    let list = &mut self.ready[r.slot];
                    let pos = list.binary_search(&(reader.0 as u32)).expect("drained reader listed");
                    list.remove(pos);
                }
                sample
            }
            _ => None,
        }
    }

    /// The lowest-id reader owned by `pid` currently holding at least one
    /// sample (arrived or still in flight), restricted to ids strictly
    /// greater than `after`.
    ///
    /// Reader ids are handed out in registration order, so for an executor
    /// whose readers were registered in callback order this walks due work
    /// in exactly the order a full callback scan would visit it — without
    /// touching the (typically empty) rest.
    pub fn next_ready_reader(&self, pid: Pid, after: Option<ReaderId>) -> Option<ReaderId> {
        let slot = *self.pid_slots.get(&pid)?;
        let list = &self.ready[slot];
        let start = match after {
            None => 0,
            Some(r) => match list.binary_search(&(r.0 as u32)) {
                Ok(pos) => pos + 1,
                Err(pos) => pos,
            },
        };
        list.get(start).map(|&r| ReaderId(r as usize))
    }

    /// The ready-list slot assigned to `pid`, if any reader was ever
    /// registered under it. Slots are assigned at reader creation and
    /// never move, so an executor may cache the result across polls —
    /// and skip the reader walk entirely for a node with no readers.
    pub fn pid_slot(&self, pid: Pid) -> Option<usize> {
        self.pid_slots.get(&pid).copied()
    }

    /// One slot-addressed polling step: the next ready reader strictly
    /// after `after`, paired with whether its front sample has arrived by
    /// `now`. Combines [`DdsDomain::next_ready_reader`] and
    /// [`DdsDomain::has_due`] so the executor's hot loop pays one domain
    /// borrow per visited reader instead of two.
    pub fn next_ready_due_at(
        &self,
        slot: usize,
        after: Option<ReaderId>,
        now: Nanos,
    ) -> Option<(ReaderId, bool)> {
        let list = &self.ready[slot];
        let start = match after {
            None => 0,
            Some(r) => match list.binary_search(&(r.0 as u32)) {
                Ok(pos) => pos + 1,
                Err(pos) => pos,
            },
        };
        let rid = ReaderId(*list.get(start)? as usize);
        Some((rid, self.has_due(rid, now)))
    }

    /// Whether `reader`'s front sample has arrived by `now`.
    pub fn has_due(&self, reader: ReaderId, now: Nanos) -> bool {
        self.readers[reader.0]
            .queue
            .front()
            .is_some_and(|s| s.sample.arrival <= now)
    }

    /// Arrival time of `reader`'s front sample, if any.
    pub fn next_arrival(&self, reader: ReaderId) -> Option<Nanos> {
        self.readers[reader.0].queue.front().map(|s| s.sample.arrival)
    }

    /// Current depth of a reader queue (including undelivered samples).
    pub fn queue_depth(&self, reader: ReaderId) -> usize {
        self.readers[reader.0].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> DdsDomain {
        DdsDomain::new(Nanos::from_micros(100))
    }

    #[test]
    fn fan_out_to_all_readers() {
        let mut dds = domain();
        let r1 = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let r2 = dds.create_reader(Pid::new(2), Topic::plain("/t"));
        let r3 = dds.create_reader(Pid::new(3), Topic::plain("/other"));
        let (_, wakes) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        assert_eq!(wakes.len(), 2);
        let t = Nanos::from_micros(100);
        assert!(dds.pop_due(r1, t).is_some());
        assert!(dds.pop_due(r2, t).is_some());
        assert!(dds.pop_due(r3, t).is_none());
    }

    #[test]
    fn src_ts_unique_and_increasing() {
        let mut dds = domain();
        let (a, _) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        let (b, _) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        assert!(b > a);
    }

    #[test]
    fn fifo_per_reader() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let (a, _) = dds.write(Nanos::from_nanos(0), Topic::plain("/t"), None);
        let (b, _) = dds.write(Nanos::from_nanos(1), Topic::plain("/t"), None);
        let t = Nanos::from_millis(1);
        assert_eq!(dds.pop_due(r, t).expect("first").src_ts, a);
        assert_eq!(dds.pop_due(r, t).expect("second").src_ts, b);
    }

    #[test]
    fn latency_gates_visibility() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        dds.write(Nanos::from_micros(10), Topic::plain("/t"), None);
        assert!(!dds.has_due(r, Nanos::from_micros(10)));
        assert!(dds.has_due(r, Nanos::from_micros(110)));
        assert_eq!(dds.next_arrival(r), Some(Nanos::from_micros(110)));
    }

    #[test]
    fn topic_kind_distinguishes_service_topics() {
        // A plain topic named like a request topic must not match the
        // service request reader.
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::service_request("/sv"));
        dds.write(Nanos::ZERO, Topic::plain("/svRequest"), None);
        assert_eq!(dds.queue_depth(r), 0);
        dds.write(Nanos::ZERO, Topic::service_request("/sv"), Some((Pid::new(9), CallbackId::new(1))));
        assert_eq!(dds.queue_depth(r), 1);
    }

    #[test]
    fn rpc_target_carried() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::service_response("/sv"));
        dds.write(
            Nanos::ZERO,
            Topic::service_response("/sv"),
            Some((Pid::new(42), CallbackId::new(7))),
        );
        let s = dds.pop_due(r, Nanos::from_secs(1)).expect("delivered");
        assert_eq!(s.rpc_target, Some((Pid::new(42), CallbackId::new(7))));
    }

    #[test]
    fn reliable_spec_is_default_and_detectable() {
        assert!(QosSpec::default().is_reliable());
        assert!(QosSpec::reliable().is_reliable());
        assert!(!QosSpec { drop_prob: 0.5, reorder_bound: 2, jitter: Nanos::ZERO }.is_reliable());
        assert_eq!(domain().qos(), QosSpec::reliable());
    }

    #[test]
    fn best_effort_drops_some_copies() {
        let qos = QosSpec { drop_prob: 0.5, reorder_bound: 1, jitter: Nanos::ZERO };
        let mut dds = DdsDomain::with_qos(Nanos::from_micros(100), qos, 7);
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let mut delivered = 0;
        for i in 0..200 {
            dds.write(Nanos::from_micros(i), Topic::plain("/t"), None);
        }
        while dds.pop_due(r, Nanos::from_secs(1)).is_some() {
            delivered += 1;
        }
        assert!(delivered > 50 && delivered < 150, "delivered {delivered} of 200");
    }

    #[test]
    fn drops_do_not_touch_service_traffic() {
        let qos = QosSpec { drop_prob: 1.0, reorder_bound: 4, jitter: Nanos::from_millis(1) };
        let mut dds = DdsDomain::with_qos(Nanos::from_micros(100), qos, 3);
        let rq = dds.create_reader(Pid::new(1), Topic::service_request("/sv"));
        let rs = dds.create_reader(Pid::new(2), Topic::service_response("/sv"));
        for i in 0..10 {
            dds.write(Nanos::from_micros(i), Topic::service_request("/sv"), None);
            dds.write(Nanos::from_micros(i), Topic::service_response("/sv"), None);
        }
        assert_eq!(dds.queue_depth(rq), 10, "requests are reliable");
        assert_eq!(dds.queue_depth(rs), 10, "responses are reliable");
        // Service arrivals carry no jitter either.
        assert_eq!(dds.next_arrival(rq), Some(Nanos::from_micros(100)));
    }

    #[test]
    fn extra_drop_applies_on_reliable_spec() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        for i in 0..100 {
            dds.write_lossy(Nanos::from_micros(i), Topic::plain("/t"), None, 0.7);
        }
        let depth = dds.queue_depth(r);
        assert!(depth < 70, "fault drops must thin the queue: {depth} of 100 kept");
        assert!(depth > 0, "some copies should survive");
    }

    #[test]
    fn reorder_respects_bound() {
        let bound = 3usize;
        let qos = QosSpec { drop_prob: 0.0, reorder_bound: bound, jitter: Nanos::ZERO };
        let mut dds = DdsDomain::with_qos(Nanos::from_micros(1), qos, 11);
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let mut written = Vec::new();
        for i in 0..500 {
            let (ts, _) = dds.write(Nanos::from_nanos(i), Topic::plain("/t"), None);
            written.push(ts);
        }
        let mut delivered = Vec::new();
        while let Some(s) = dds.pop_due(r, Nanos::from_secs(1)) {
            delivered.push(s.src_ts);
        }
        assert_eq!(delivered.len(), written.len());
        let mut reordered = 0usize;
        for (i, ts) in delivered.iter().enumerate() {
            let overtakers =
                delivered[..i].iter().filter(|earlier| *earlier > ts).count();
            assert!(overtakers <= bound, "sample overtaken by {overtakers} > bound {bound}");
            if overtakers > 0 {
                reordered += 1;
            }
        }
        assert!(reordered > 0, "a 500-sample run should reorder something");
    }

    #[test]
    fn jitter_delays_but_preserves_queue_order_gating() {
        let qos =
            QosSpec { drop_prob: 0.0, reorder_bound: 0, jitter: Nanos::from_micros(50) };
        let mut dds = DdsDomain::with_qos(Nanos::from_micros(100), qos, 5);
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let (_, wakes) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        let arrival = wakes[0].1;
        assert!(arrival >= Nanos::from_micros(100) && arrival <= Nanos::from_micros(150));
        assert!(!dds.has_due(r, Nanos::from_micros(99)));
        assert!(dds.has_due(r, arrival));
    }

    #[test]
    fn seeded_qos_is_deterministic() {
        let qos = QosSpec {
            drop_prob: 0.3,
            reorder_bound: 2,
            jitter: Nanos::from_micros(20),
        };
        let run = || {
            let mut dds = DdsDomain::with_qos(Nanos::from_micros(100), qos, 42);
            let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
            for i in 0..100 {
                dds.write(Nanos::from_micros(i), Topic::plain("/t"), None);
            }
            let mut out = Vec::new();
            while let Some(s) = dds.pop_due(r, Nanos::from_secs(1)) {
                out.push((s.src_ts, s.arrival));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
