//! The simulated DDS transport (Cyclone-DDS stand-in).
//!
//! Topics connect writers to readers; every write stamps a fresh source
//! timestamp (the `srcTS` the tracer extracts) and delivers a copy of the
//! sample into every matching reader's queue after the configured
//! transport latency. Service request/response routing rides on the same
//! mechanism, exactly as in ROS2 (Sec. II-A: "services are implemented
//! using topics").

use rtms_trace::{CallbackId, Nanos, Pid, SourceTimestamp, Topic};
use std::collections::VecDeque;

/// A sample sitting in (or delivered from) a reader queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The topic the sample was written to.
    pub topic: Topic,
    /// The source timestamp stamped at write time.
    pub src_ts: SourceTimestamp,
    /// When the sample becomes visible to the reader.
    pub arrival: Nanos,
    /// For service traffic: the client callback the response must be
    /// dispatched to (requests carry the *requester* here so the server can
    /// address its response).
    pub rpc_target: Option<(Pid, CallbackId)>,
}

/// Identifier of a reader within the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderId(usize);

#[derive(Debug)]
struct Reader {
    pid: Pid,
    topic: Topic,
    queue: VecDeque<Sample>,
}

/// The DDS domain: topic-based sample routing with delivery latency.
///
/// # Example
///
/// ```
/// use rtms_ros2::DdsDomain;
/// use rtms_trace::{Nanos, Pid, Topic};
///
/// let mut dds = DdsDomain::new(Nanos::from_micros(50));
/// let reader = dds.create_reader(Pid::new(7), Topic::plain("/chatter"));
/// let (ts, wakes) = dds.write(Nanos::ZERO, Topic::plain("/chatter"), None);
/// assert_eq!(wakes, vec![(Pid::new(7), Nanos::from_micros(50))]);
/// // Not visible before the latency has elapsed.
/// assert!(dds.pop_due(reader, Nanos::ZERO).is_none());
/// let sample = dds.pop_due(reader, Nanos::from_micros(50)).expect("delivered");
/// assert_eq!(sample.src_ts, ts);
/// ```
#[derive(Debug)]
pub struct DdsDomain {
    latency: Nanos,
    readers: Vec<Reader>,
    next_src_ts: u64,
}

impl DdsDomain {
    /// Creates a domain with a fixed transport latency.
    pub fn new(latency: Nanos) -> Self {
        DdsDomain { latency, readers: Vec::new(), next_src_ts: 1 }
    }

    /// The configured transport latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Registers a reader of `topic` owned by the executor thread `pid`.
    pub fn create_reader(&mut self, pid: Pid, topic: Topic) -> ReaderId {
        self.readers.push(Reader { pid, topic, queue: VecDeque::new() });
        ReaderId(self.readers.len() - 1)
    }

    /// Writes a sample to `topic` at time `now`.
    ///
    /// Returns the stamped source timestamp and the list of
    /// `(reader thread, arrival time)` wakeups the caller must schedule.
    pub fn write(
        &mut self,
        now: Nanos,
        topic: Topic,
        rpc_target: Option<(Pid, CallbackId)>,
    ) -> (SourceTimestamp, Vec<(Pid, Nanos)>) {
        let src_ts = SourceTimestamp::new(self.next_src_ts);
        self.next_src_ts += 1;
        let arrival = now + self.latency;
        let mut wakes = Vec::new();
        for reader in &mut self.readers {
            if reader.topic == topic {
                reader.queue.push_back(Sample {
                    topic: topic.clone(),
                    src_ts,
                    arrival,
                    rpc_target,
                });
                wakes.push((reader.pid, arrival));
            }
        }
        (src_ts, wakes)
    }

    /// Pops the oldest sample of `reader` that has arrived by `now`.
    pub fn pop_due(&mut self, reader: ReaderId, now: Nanos) -> Option<Sample> {
        let r = &mut self.readers[reader.0];
        match r.queue.front() {
            Some(front) if front.arrival <= now => r.queue.pop_front(),
            _ => None,
        }
    }

    /// Whether `reader` has a sample that has arrived by `now`.
    pub fn has_due(&self, reader: ReaderId, now: Nanos) -> bool {
        self.readers[reader.0]
            .queue
            .front()
            .is_some_and(|s| s.arrival <= now)
    }

    /// Earliest future arrival among `reader`'s queued samples, if any.
    pub fn next_arrival(&self, reader: ReaderId) -> Option<Nanos> {
        self.readers[reader.0].queue.front().map(|s| s.arrival)
    }

    /// Current depth of a reader queue (including undelivered samples).
    pub fn queue_depth(&self, reader: ReaderId) -> usize {
        self.readers[reader.0].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> DdsDomain {
        DdsDomain::new(Nanos::from_micros(100))
    }

    #[test]
    fn fan_out_to_all_readers() {
        let mut dds = domain();
        let r1 = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let r2 = dds.create_reader(Pid::new(2), Topic::plain("/t"));
        let r3 = dds.create_reader(Pid::new(3), Topic::plain("/other"));
        let (_, wakes) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        assert_eq!(wakes.len(), 2);
        let t = Nanos::from_micros(100);
        assert!(dds.pop_due(r1, t).is_some());
        assert!(dds.pop_due(r2, t).is_some());
        assert!(dds.pop_due(r3, t).is_none());
    }

    #[test]
    fn src_ts_unique_and_increasing() {
        let mut dds = domain();
        let (a, _) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        let (b, _) = dds.write(Nanos::ZERO, Topic::plain("/t"), None);
        assert!(b > a);
    }

    #[test]
    fn fifo_per_reader() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        let (a, _) = dds.write(Nanos::from_nanos(0), Topic::plain("/t"), None);
        let (b, _) = dds.write(Nanos::from_nanos(1), Topic::plain("/t"), None);
        let t = Nanos::from_millis(1);
        assert_eq!(dds.pop_due(r, t).expect("first").src_ts, a);
        assert_eq!(dds.pop_due(r, t).expect("second").src_ts, b);
    }

    #[test]
    fn latency_gates_visibility() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::plain("/t"));
        dds.write(Nanos::from_micros(10), Topic::plain("/t"), None);
        assert!(!dds.has_due(r, Nanos::from_micros(10)));
        assert!(dds.has_due(r, Nanos::from_micros(110)));
        assert_eq!(dds.next_arrival(r), Some(Nanos::from_micros(110)));
    }

    #[test]
    fn topic_kind_distinguishes_service_topics() {
        // A plain topic named like a request topic must not match the
        // service request reader.
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::service_request("/sv"));
        dds.write(Nanos::ZERO, Topic::plain("/svRequest"), None);
        assert_eq!(dds.queue_depth(r), 0);
        dds.write(Nanos::ZERO, Topic::service_request("/sv"), Some((Pid::new(9), CallbackId::new(1))));
        assert_eq!(dds.queue_depth(r), 1);
    }

    #[test]
    fn rpc_target_carried() {
        let mut dds = domain();
        let r = dds.create_reader(Pid::new(1), Topic::service_response("/sv"));
        dds.write(
            Nanos::ZERO,
            Topic::service_response("/sv"),
            Some((Pid::new(42), CallbackId::new(7))),
        );
        let s = dds.pop_due(r, Nanos::from_secs(1)).expect("delivered");
        assert_eq!(s.rpc_target, Some((Pid::new(42), CallbackId::new(7))));
    }
}
