//! ROS2 Foxy middleware simulator.
//!
//! Simulates the application-visible semantics of the ROS2 stack the paper
//! traces: nodes with single- or multi-threaded executors (one callback at
//! a time per worker, concurrency constrained by callback groups,
//! Sec. II-A), timers, subscriptions, services and clients implemented
//! over request/response topics, `message_filters`-style data
//! synchronization, and a Cyclone-DDS-like topic transport with delivery
//! latency and optional QoS degradation (best-effort drops, bounded
//! reorder, latency jitter).
//!
//! Every traced middleware function (`execute_*`, `rmw_take_*`,
//! `dds_write_impl`, …) is *called* — i.e. reported to the attached eBPF
//! tracers of `rtms-ebpf` as a [`rtms_ebpf::FunctionCall`] with the same
//! argument semantics as the real symbols, including the by-reference
//! source timestamp of the take functions. The executors run as
//! [`rtms_sched::ThreadLogic`] threads on the simulated kernel, so callback
//! execution is genuinely preemptible and `sched_switch` events interleave
//! with the middleware events exactly as on the paper's testbed.
//!
//! Entry points:
//! - describe an application with [`AppBuilder`],
//! - assemble machine + tracers + applications with [`WorldBuilder`],
//! - run and collect traces through [`Ros2World`].
//!
//! # Example
//!
//! ```
//! use rtms_ros2::{AppBuilder, WorkModel, WorldBuilder};
//! use rtms_trace::Nanos;
//!
//! let mut app = AppBuilder::new("demo");
//! let talker = app.node("talker");
//! app.timer(talker, "tick", Nanos::from_millis(100), WorkModel::constant_millis(2.0))
//!     .publishes("/chatter");
//! let listener = app.node("listener");
//! app.subscriber(listener, "on_chatter", "/chatter", WorkModel::constant_millis(1.0));
//! let spec = app.build()?;
//!
//! let mut world = WorldBuilder::new(2).seed(1).app(spec).build()?;
//! let trace = world.trace_run(rtms_trace::Nanos::from_secs(1));
//! assert!(!trace.ros_events().is_empty());
//! assert!(!trace.sched_events().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod dds;
pub mod executor;
pub mod fault;
pub mod ground_truth;
pub mod tracers;
pub mod work;
pub mod world;

pub use app::{
    AppBuilder, AppError, AppSpec, CallbackGroupSpec, CallbackSpec, GroupKind, NodeId, NodeSpec,
    OutputAction, SyncGroupSpec,
};
pub use dds::{DdsDomain, QosSpec, Sample};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use ground_truth::{CallbackInfo, GroundTruth, InstanceRecord};
pub use tracers::TracerSet;
pub use work::WorkModel;
pub use world::{Ros2World, WorldBuilder, WorldError};
