//! Application descriptions: nodes, callbacks, and their wiring.
//!
//! An [`AppSpec`] is the static description of a ROS2 application — what a
//! developer writes against `rclcpp`. The builder validates the wiring
//! (topic references, service/client pairing, synchronizer membership)
//! before the world assembles executors from it.

use crate::work::WorkModel;
use rtms_sched::Affinity;
use rtms_trace::{Nanos, Priority};
use std::fmt;

/// Handle to a node inside an [`AppBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// An output action a callback performs before it returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputAction {
    /// Publish a message on a plain topic.
    Publish(String),
    /// Send a request through the named client of the same node (the
    /// client's callback will handle the response).
    CallService {
        /// Name of a client callback declared in the same node.
        client: String,
    },
}

/// One callback of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum CallbackSpec {
    /// A periodic timer callback.
    Timer {
        /// Callback name (unique within the app).
        name: String,
        /// Invocation period.
        period: Nanos,
        /// Execution-time model.
        work: WorkModel,
        /// Actions performed at the end of each instance.
        outputs: Vec<OutputAction>,
    },
    /// A subscriber callback.
    Subscriber {
        /// Callback name.
        name: String,
        /// Subscribed topic.
        topic: String,
        /// Execution-time model.
        work: WorkModel,
        /// Actions performed at the end of each instance.
        outputs: Vec<OutputAction>,
    },
    /// A service callback (server side). The response publication is
    /// automatic; `outputs` lists any additional actions.
    Service {
        /// Callback name.
        name: String,
        /// Service name, e.g. `/sv1`.
        service: String,
        /// Execution-time model.
        work: WorkModel,
        /// Extra actions besides the response.
        outputs: Vec<OutputAction>,
    },
    /// A client callback (response handler).
    Client {
        /// Callback name.
        name: String,
        /// Service name this client calls.
        service: String,
        /// Execution-time model of the response handler.
        work: WorkModel,
        /// Actions performed at the end of each dispatched instance.
        outputs: Vec<OutputAction>,
    },
}

impl CallbackSpec {
    /// The callback's name.
    pub fn name(&self) -> &str {
        match self {
            CallbackSpec::Timer { name, .. }
            | CallbackSpec::Subscriber { name, .. }
            | CallbackSpec::Service { name, .. }
            | CallbackSpec::Client { name, .. } => name,
        }
    }

    /// The callback's output actions.
    pub fn outputs(&self) -> &[OutputAction] {
        match self {
            CallbackSpec::Timer { outputs, .. }
            | CallbackSpec::Subscriber { outputs, .. }
            | CallbackSpec::Service { outputs, .. }
            | CallbackSpec::Client { outputs, .. } => outputs,
        }
    }
}

/// A `message_filters` synchronizer: fires when fresh data has arrived on
/// every member subscriber; the last-arriving member publishes `outputs`
/// within its own callback instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncGroupSpec {
    /// Synchronizer name.
    pub name: String,
    /// Names of member subscriber callbacks (same node).
    pub members: Vec<String>,
    /// Topics published when the synchronizer fires.
    pub outputs: Vec<String>,
}

/// Dispatch policy of a callback group (rclcpp's two kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// At most one member instance runs at a time, even on a
    /// multi-threaded executor (the rclcpp default).
    MutuallyExclusive,
    /// Member instances may run concurrently on different worker threads.
    Reentrant,
}

/// A callback group within a node: the unit of concurrency control a
/// multi-threaded executor respects. Callbacks not assigned to any group
/// belong to the node's implicit mutually-exclusive default group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallbackGroupSpec {
    /// Group name.
    pub name: String,
    /// Dispatch policy.
    pub kind: GroupKind,
    /// Names of member callbacks (same node, each in at most one group).
    pub members: Vec<String>,
}

/// One ROS2 node: a set of callbacks dispatched by an executor with one
/// or more worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node name (unique within the app).
    pub name: String,
    /// Scheduling priority of the executor thread(s).
    pub priority: Priority,
    /// CPU affinity of the executor thread(s).
    pub affinity: Affinity,
    /// Worker threads of the node's executor (1 = the classic
    /// single-threaded executor).
    pub workers: usize,
    /// The node's callbacks, in registration order (the executor polls
    /// them in this order).
    pub callbacks: Vec<CallbackSpec>,
    /// Data synchronizers within this node.
    pub sync_groups: Vec<SyncGroupSpec>,
    /// Callback groups constraining multi-threaded dispatch.
    pub groups: Vec<CallbackGroupSpec>,
}

/// A validated application description.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// The nodes.
    pub nodes: Vec<NodeSpec>,
}

/// Errors detected while validating an application description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// Two callbacks (or nodes) share a name.
    DuplicateName(String),
    /// A `CallService` action references a client that does not exist in
    /// the same node.
    UnknownClient {
        /// The callback performing the action.
        callback: String,
        /// The missing client name.
        client: String,
    },
    /// A synchronizer member is not a subscriber callback of the node.
    BadSyncMember {
        /// The synchronizer.
        group: String,
        /// The offending member name.
        member: String,
    },
    /// A client calls a service no node serves.
    UnservedService {
        /// The client callback.
        client: String,
        /// The service name.
        service: String,
    },
    /// A callback group member is not a callback of the node.
    BadGroupMember {
        /// The callback group.
        group: String,
        /// The offending member name.
        member: String,
    },
    /// A callback is assigned to more than one callback group.
    DuplicateGroupMember(String),
    /// A node's executor was given zero worker threads.
    BadWorkerCount {
        /// The node.
        node: String,
    },
    /// The app has no nodes.
    Empty,
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            AppError::UnknownClient { callback, client } => {
                write!(f, "callback {callback:?} calls unknown client {client:?}")
            }
            AppError::BadSyncMember { group, member } => {
                write!(f, "sync group {group:?} member {member:?} is not a subscriber of the node")
            }
            AppError::UnservedService { client, service } => {
                write!(f, "client {client:?} calls service {service:?} which no node serves")
            }
            AppError::BadGroupMember { group, member } => {
                write!(f, "callback group {group:?} member {member:?} is not a callback of the node")
            }
            AppError::DuplicateGroupMember(m) => {
                write!(f, "callback {m:?} is assigned to more than one callback group")
            }
            AppError::BadWorkerCount { node } => {
                write!(f, "node {node:?} has an executor with zero workers")
            }
            AppError::Empty => write!(f, "application has no nodes"),
        }
    }
}

impl std::error::Error for AppError {}

/// Handle returned by callback-adding methods, for attaching outputs.
pub struct CallbackHandle<'a> {
    spec: &'a mut CallbackSpec,
}

impl CallbackHandle<'_> {
    /// Adds a topic publication to the callback's outputs.
    pub fn publishes(self, topic: impl Into<String>) -> Self {
        let topic = topic.into();
        match self.spec {
            CallbackSpec::Timer { outputs, .. }
            | CallbackSpec::Subscriber { outputs, .. }
            | CallbackSpec::Service { outputs, .. }
            | CallbackSpec::Client { outputs, .. } => {
                outputs.push(OutputAction::Publish(topic));
            }
        }
        self
    }

    /// Adds a service call (through the named client of the same node) to
    /// the callback's outputs.
    pub fn calls(self, client: impl Into<String>) -> Self {
        let client = client.into();
        match self.spec {
            CallbackSpec::Timer { outputs, .. }
            | CallbackSpec::Subscriber { outputs, .. }
            | CallbackSpec::Service { outputs, .. }
            | CallbackSpec::Client { outputs, .. } => {
                outputs.push(OutputAction::CallService { client });
            }
        }
        self
    }
}

/// Builder for [`AppSpec`].
///
/// # Example
///
/// ```
/// use rtms_ros2::{AppBuilder, WorkModel};
/// use rtms_trace::Nanos;
///
/// let mut app = AppBuilder::new("syn");
/// let n1 = app.node("n1");
/// app.timer(n1, "T1", Nanos::from_millis(100), WorkModel::constant_millis(1.0))
///     .publishes("/t1");
/// let n2 = app.node("n2");
/// app.subscriber(n2, "SC1", "/t1", WorkModel::constant_millis(2.0))
///     .calls("CL1");
/// app.client(n2, "CL1", "/sv1", WorkModel::constant_millis(0.5));
/// let n3 = app.node("n3");
/// app.service(n3, "SV1", "/sv1", WorkModel::constant_millis(3.0));
/// let spec = app.build()?;
/// assert_eq!(spec.nodes.len(), 3);
/// # Ok::<(), rtms_ros2::AppError>(())
/// ```
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
}

impl AppBuilder {
    /// Starts an application description.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder { name: name.into(), nodes: Vec::new() }
    }

    /// Adds a node with default priority, full affinity, and a
    /// single-threaded executor.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(NodeSpec {
            name: name.into(),
            priority: Priority::NORMAL,
            affinity: Affinity::all(),
            workers: 1,
            callbacks: Vec::new(),
            sync_groups: Vec::new(),
            groups: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Sets the executor thread priority of a node.
    pub fn set_priority(&mut self, node: NodeId, priority: Priority) {
        self.nodes[node.0].priority = priority;
    }

    /// Sets the executor thread affinity of a node.
    pub fn set_affinity(&mut self, node: NodeId, affinity: Affinity) {
        self.nodes[node.0].affinity = affinity;
    }

    /// Gives the node a multi-threaded executor with `workers` threads.
    /// Concurrency is still constrained by callback groups: callbacks not
    /// assigned to a [`GroupKind::Reentrant`] group keep serializing with
    /// the other members of their (possibly implicit) mutually-exclusive
    /// group.
    pub fn multi_threaded(&mut self, node: NodeId, workers: usize) {
        self.nodes[node.0].workers = workers;
    }

    /// Declares a callback group over callbacks of `node` (see
    /// [`GroupKind`]). Each callback may belong to at most one group;
    /// unassigned callbacks share the node's implicit mutually-exclusive
    /// default group.
    pub fn callback_group<M>(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        kind: GroupKind,
        members: impl IntoIterator<Item = M>,
    ) where
        M: Into<String>,
    {
        self.nodes[node.0].groups.push(CallbackGroupSpec {
            name: name.into(),
            kind,
            members: members.into_iter().map(Into::into).collect(),
        });
    }

    /// Adds a timer callback.
    pub fn timer(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        period: Nanos,
        work: WorkModel,
    ) -> CallbackHandle<'_> {
        assert!(period > Nanos::ZERO, "timer period must be positive");
        self.push(
            node,
            CallbackSpec::Timer { name: name.into(), period, work, outputs: Vec::new() },
        )
    }

    /// Adds a subscriber callback.
    pub fn subscriber(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        topic: impl Into<String>,
        work: WorkModel,
    ) -> CallbackHandle<'_> {
        self.push(
            node,
            CallbackSpec::Subscriber {
                name: name.into(),
                topic: topic.into(),
                work,
                outputs: Vec::new(),
            },
        )
    }

    /// Adds a service callback (server side).
    pub fn service(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        service: impl Into<String>,
        work: WorkModel,
    ) -> CallbackHandle<'_> {
        self.push(
            node,
            CallbackSpec::Service {
                name: name.into(),
                service: service.into(),
                work,
                outputs: Vec::new(),
            },
        )
    }

    /// Adds a client callback (response handler).
    pub fn client(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        service: impl Into<String>,
        work: WorkModel,
    ) -> CallbackHandle<'_> {
        self.push(
            node,
            CallbackSpec::Client {
                name: name.into(),
                service: service.into(),
                work,
                outputs: Vec::new(),
            },
        )
    }

    /// Declares a `message_filters` synchronizer over subscriber callbacks
    /// of `node`.
    pub fn sync_group<M, O>(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        members: impl IntoIterator<Item = M>,
        outputs: impl IntoIterator<Item = O>,
    ) where
        M: Into<String>,
        O: Into<String>,
    {
        self.nodes[node.0].sync_groups.push(SyncGroupSpec {
            name: name.into(),
            members: members.into_iter().map(Into::into).collect(),
            outputs: outputs.into_iter().map(Into::into).collect(),
        });
    }

    fn push(&mut self, node: NodeId, spec: CallbackSpec) -> CallbackHandle<'_> {
        let callbacks = &mut self.nodes[node.0].callbacks;
        callbacks.push(spec);
        CallbackHandle { spec: callbacks.last_mut().expect("just pushed") }
    }

    /// Validates and finalizes the description.
    ///
    /// # Errors
    ///
    /// Returns the first [`AppError`] found: duplicate names, dangling
    /// client references, invalid synchronizer members, or unserved
    /// services.
    pub fn build(self) -> Result<AppSpec, AppError> {
        if self.nodes.is_empty() {
            return Err(AppError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for n in &self.nodes {
            if !names.insert(n.name.clone()) {
                return Err(AppError::DuplicateName(n.name.clone()));
            }
        }
        let mut cb_names = std::collections::HashSet::new();
        for n in &self.nodes {
            for cb in &n.callbacks {
                if !cb_names.insert(cb.name().to_string()) {
                    return Err(AppError::DuplicateName(cb.name().to_string()));
                }
            }
        }
        // Services offered anywhere in the app.
        let served: std::collections::HashSet<&str> = self
            .nodes
            .iter()
            .flat_map(|n| n.callbacks.iter())
            .filter_map(|cb| match cb {
                CallbackSpec::Service { service, .. } => Some(service.as_str()),
                _ => None,
            })
            .collect();
        for n in &self.nodes {
            let clients: std::collections::HashMap<&str, &str> = n
                .callbacks
                .iter()
                .filter_map(|cb| match cb {
                    CallbackSpec::Client { name, service, .. } => {
                        Some((name.as_str(), service.as_str()))
                    }
                    _ => None,
                })
                .collect();
            for cb in &n.callbacks {
                for out in cb.outputs() {
                    if let OutputAction::CallService { client } = out {
                        match clients.get(client.as_str()) {
                            None => {
                                return Err(AppError::UnknownClient {
                                    callback: cb.name().to_string(),
                                    client: client.clone(),
                                })
                            }
                            Some(service) if !served.contains(service) => {
                                return Err(AppError::UnservedService {
                                    client: client.clone(),
                                    service: (*service).to_string(),
                                })
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
            for g in &n.sync_groups {
                for m in &g.members {
                    let is_sub = n.callbacks.iter().any(|cb| {
                        matches!(cb, CallbackSpec::Subscriber { name, .. } if name == m)
                    });
                    if !is_sub {
                        return Err(AppError::BadSyncMember {
                            group: g.name.clone(),
                            member: m.clone(),
                        });
                    }
                }
            }
            if n.workers == 0 {
                return Err(AppError::BadWorkerCount { node: n.name.clone() });
            }
            let mut grouped = std::collections::HashSet::new();
            for g in &n.groups {
                for m in &g.members {
                    if !n.callbacks.iter().any(|cb| cb.name() == m) {
                        return Err(AppError::BadGroupMember {
                            group: g.name.clone(),
                            member: m.clone(),
                        });
                    }
                    if !grouped.insert(m.clone()) {
                        return Err(AppError::DuplicateGroupMember(m.clone()));
                    }
                }
            }
        }
        Ok(AppSpec { name: self.name, nodes: self.nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> WorkModel {
        WorkModel::constant_millis(1.0)
    }

    #[test]
    fn valid_app_builds() {
        let mut app = AppBuilder::new("a");
        let n1 = app.node("n1");
        app.timer(n1, "T1", Nanos::from_millis(10), w()).publishes("/t1");
        let n2 = app.node("n2");
        app.subscriber(n2, "SC1", "/t1", w());
        let spec = app.build().expect("valid");
        assert_eq!(spec.nodes[0].callbacks.len(), 1);
        assert_eq!(spec.nodes[0].callbacks[0].outputs().len(), 1);
    }

    #[test]
    fn duplicate_node_name_rejected() {
        let mut app = AppBuilder::new("a");
        app.node("n");
        app.node("n");
        assert_eq!(app.build().unwrap_err(), AppError::DuplicateName("n".into()));
    }

    #[test]
    fn duplicate_callback_name_rejected() {
        let mut app = AppBuilder::new("a");
        let n1 = app.node("n1");
        app.timer(n1, "X", Nanos::from_millis(10), w());
        let n2 = app.node("n2");
        app.subscriber(n2, "X", "/t", w());
        assert_eq!(app.build().unwrap_err(), AppError::DuplicateName("X".into()));
    }

    #[test]
    fn unknown_client_rejected() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.timer(n, "T", Nanos::from_millis(10), w()).calls("nope");
        assert!(matches!(app.build().unwrap_err(), AppError::UnknownClient { .. }));
    }

    #[test]
    fn client_must_be_in_same_node() {
        let mut app = AppBuilder::new("a");
        let n1 = app.node("n1");
        app.timer(n1, "T", Nanos::from_millis(10), w()).calls("CL");
        let n2 = app.node("n2");
        app.client(n2, "CL", "/s", w());
        let n3 = app.node("n3");
        app.service(n3, "SV", "/s", w());
        assert!(matches!(app.build().unwrap_err(), AppError::UnknownClient { .. }));
    }

    #[test]
    fn unserved_service_rejected() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.timer(n, "T", Nanos::from_millis(10), w()).calls("CL");
        app.client(n, "CL", "/ghost", w());
        assert!(matches!(app.build().unwrap_err(), AppError::UnservedService { .. }));
    }

    #[test]
    fn sync_member_must_be_subscriber() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.timer(n, "T", Nanos::from_millis(10), w());
        app.sync_group(n, "MS", ["T"], ["/out"]);
        assert!(matches!(app.build().unwrap_err(), AppError::BadSyncMember { .. }));
    }

    #[test]
    fn empty_app_rejected() {
        assert_eq!(AppBuilder::new("a").build().unwrap_err(), AppError::Empty);
    }

    #[test]
    fn valid_sync_group() {
        let mut app = AppBuilder::new("a");
        let n = app.node("fusion");
        app.subscriber(n, "S1", "/a", w());
        app.subscriber(n, "S2", "/b", w());
        app.sync_group(n, "MS", ["S1", "S2"], ["/fused"]);
        let spec = app.build().expect("valid");
        assert_eq!(spec.nodes[0].sync_groups.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = AppError::UnknownClient { callback: "T".into(), client: "C".into() };
        assert!(e.to_string().contains("unknown client"));
        let e = AppError::BadGroupMember { group: "G".into(), member: "M".into() };
        assert!(e.to_string().contains("\"M\""));
        assert!(AppError::DuplicateGroupMember("X".into()).to_string().contains("\"X\""));
        assert!(AppError::BadWorkerCount { node: "n".into() }.to_string().contains("zero"));
    }

    #[test]
    fn valid_callback_groups() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.multi_threaded(n, 3);
        app.timer(n, "T1", Nanos::from_millis(10), w()).publishes("/t");
        app.timer(n, "T2", Nanos::from_millis(15), w());
        app.subscriber(n, "S1", "/t", w());
        app.callback_group(n, "re", GroupKind::Reentrant, ["T1", "T2"]);
        app.callback_group(n, "me", GroupKind::MutuallyExclusive, ["S1"]);
        let spec = app.build().expect("valid");
        assert_eq!(spec.nodes[0].workers, 3);
        assert_eq!(spec.nodes[0].groups.len(), 2);
    }

    #[test]
    fn group_member_must_exist() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.timer(n, "T", Nanos::from_millis(10), w());
        app.callback_group(n, "G", GroupKind::Reentrant, ["ghost"]);
        assert!(matches!(app.build().unwrap_err(), AppError::BadGroupMember { .. }));
    }

    #[test]
    fn group_membership_is_exclusive() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.timer(n, "T", Nanos::from_millis(10), w());
        app.callback_group(n, "G1", GroupKind::Reentrant, ["T"]);
        app.callback_group(n, "G2", GroupKind::MutuallyExclusive, ["T"]);
        assert_eq!(app.build().unwrap_err(), AppError::DuplicateGroupMember("T".into()));
    }

    #[test]
    fn zero_workers_rejected() {
        let mut app = AppBuilder::new("a");
        let n = app.node("n");
        app.multi_threaded(n, 0);
        app.timer(n, "T", Nanos::from_millis(10), w());
        assert_eq!(app.build().unwrap_err(), AppError::BadWorkerCount { node: "n".into() });
    }
}
