//! Assembling applications, machine, and tracers into a runnable world.

use crate::app::{AppSpec, CallbackSpec, GroupKind, OutputAction};
use crate::dds::{DdsDomain, QosSpec};
use crate::executor::{CbDetail, CbRuntime, ExecCore, NodeExecutor, ResolvedOutput, SyncRuntime};
use crate::fault::{CbFaults, FaultKind, FaultPlan};
use crate::ground_truth::{CallbackInfo, GroundTruth};
use crate::tracers::TracerSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtms_ebpf::{FunctionArgs, FunctionCall, OverheadModel, OverheadReport};
use rtms_sched::{Affinity, PeriodicLoad, SchedSink, Simulator, SimulatorBuilder};
use rtms_trace::{
    CallbackId, CallbackKind, CodecError, EventSink, Nanos, Pid, Priority, SchedEvent,
    SegmentWriter, Topic, Trace, TraceSegment,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Errors detected while assembling a world.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldError {
    /// Two nodes (possibly in different apps) offer the same service.
    DuplicateService(String),
    /// No application was added.
    NoApps,
    /// A fault targets a callback no application declares.
    UnknownFaultCallback(String),
    /// A fault targets a callback name declared by more than one
    /// application in this world (names are only unique per app), so the
    /// target is ambiguous.
    AmbiguousFaultCallback(String),
    /// A [`FaultKind::TimerStutter`] targets a non-timer callback.
    StutterOnNonTimer(String),
    /// A fault factor is invalid: not a finite positive number, a stutter
    /// factor below 1, or a message-drop probability outside `(0, 1]`.
    BadFaultFactor {
        /// The target callback.
        callback: String,
        /// The offending fault, so the message names what was misconfigured.
        kind: FaultKind,
        /// The offending factor.
        factor: f64,
    },
    /// The QoS spec sets a drop probability, but reorder bound 0 marks the
    /// spec reliable — a reliable transport never drops, so the setting
    /// would be a confusing no-op. Use `reorder_bound >= 1` to opt into
    /// best-effort delivery (bound 1 alone never reorders anything).
    QosDropOnReliableSpec {
        /// The drop probability that would have been ignored.
        drop_prob: f64,
    },
    /// A QoS drop probability outside `[0, 1)`.
    BadQosDropProbability {
        /// The offending probability.
        drop_prob: f64,
    },
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::DuplicateService(s) => write!(f, "service {s:?} offered twice"),
            WorldError::NoApps => write!(f, "world has no applications"),
            WorldError::UnknownFaultCallback(c) => {
                write!(f, "fault targets unknown callback {c:?}")
            }
            WorldError::AmbiguousFaultCallback(c) => {
                write!(f, "fault target {c:?} is declared by more than one application")
            }
            WorldError::StutterOnNonTimer(c) => {
                write!(f, "timer-stutter fault targets non-timer callback {c:?}")
            }
            WorldError::BadFaultFactor { callback, kind, factor } => {
                write!(f, "fault {kind} on {callback:?} has invalid factor {factor}")
            }
            WorldError::QosDropOnReliableSpec { drop_prob } => {
                write!(
                    f,
                    "QoS drop probability {drop_prob} with reorder bound 0 is a no-op: \
                     a reliable spec never drops (set reorder_bound >= 1 for best effort)"
                )
            }
            WorldError::BadQosDropProbability { drop_prob } => {
                write!(f, "QoS drop probability {drop_prob} is outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for WorldError {}

/// Mutable state shared by all executors: the DDS domain, the tracers, the
/// ground truth, and the workload RNG.
pub(crate) struct WorldState {
    pub(crate) dds: DdsDomain,
    pub(crate) tracers: TracerSet,
    pub(crate) ground_truth: GroundTruth,
    pub(crate) rng: StdRng,
    addr_ctr: u64,
    /// For multi-threaded nodes: primary (reader-owning) pid → all worker
    /// pids, rank order. Absent for single-threaded nodes.
    wake_fanout: HashMap<Pid, Vec<Pid>>,
    /// Scratch buffer for expanding reader wakeups through `wake_fanout`,
    /// reused across publishes so the fanout path stays allocation-free.
    fan_scratch: Vec<(Pid, Nanos)>,
}

impl WorldState {
    /// Reports a traced middleware function call.
    pub(crate) fn call(&mut self, call: FunctionCall) {
        self.tracers.on_function(&call);
    }

    /// A fresh fake stack address for a `srcTS` out-parameter.
    pub(crate) fn fresh_addr(&mut self) -> u64 {
        self.addr_ctr += 0x10;
        0x7fff_0000_0000 + self.addr_ctr
    }

    /// Writes a sample (emitting the P16 probe), appending the wakeups the
    /// caller must schedule onto `out`. `extra_drop` is the fault-injected
    /// per-copy loss probability stacked on top of the QoS one. Reader
    /// wakeups are fanned out to every worker of a multi-threaded reading
    /// node — which worker's wait-set returns first is exactly the
    /// scheduling race the real executor has.
    ///
    /// The out-parameter shape (instead of returning a vector) is what
    /// keeps the per-publish path of [`crate::NodeExecutor`] allocation
    /// free: every executor owns one scratch buffer that every publish of
    /// every instance appends into.
    pub(crate) fn dds_write_into(
        &mut self,
        now: Nanos,
        pid: Pid,
        topic: &Topic,
        rpc_target: Option<(Pid, CallbackId)>,
        extra_drop: f64,
        out: &mut Vec<(Pid, Nanos)>,
    ) {
        let start = out.len();
        let src_ts = self.dds.write_lossy_into(now, topic, rpc_target, extra_drop, out);
        self.tracers.on_function(&FunctionCall::entry(
            now,
            pid,
            FunctionArgs::DdsWriteImpl { topic: topic.clone(), src_ts },
        ));
        if self.wake_fanout.is_empty() {
            return;
        }
        // Expand multi-threaded readers into per-worker wakeups, reusing
        // the world's scratch to hold the unexpanded suffix.
        let mut scratch = std::mem::take(&mut self.fan_scratch);
        scratch.extend(out.drain(start..));
        for &(target, at) in &scratch {
            match self.wake_fanout.get(&target) {
                Some(workers) => out.extend(workers.iter().map(|&w| (w, at))),
                None => out.push((target, at)),
            }
        }
        scratch.clear();
        self.fan_scratch = scratch;
    }
}

/// Adapter giving the simulated kernel's tracepoint stream to the kernel
/// tracer.
struct KernelSink(Rc<RefCell<WorldState>>);

impl SchedSink for KernelSink {
    fn on_sched_event(&mut self, event: &SchedEvent) {
        self.0.borrow_mut().tracers.kernel.on_sched_event(event);
    }
}

/// Builder for a [`Ros2World`].
///
/// Configure the machine (cores, timeslice), the DDS latency, the workload
/// seed, the applications, and optional non-ROS2 background load, then call
/// [`WorldBuilder::build`].
pub struct WorldBuilder {
    cpus: usize,
    timeslice: Nanos,
    dds_latency: Nanos,
    qos: QosSpec,
    seed: u64,
    apps: Vec<AppSpec>,
    background: Vec<(Nanos, Nanos, Nanos)>,
    filtered_kernel: bool,
    record_wakeups: bool,
    faults: FaultPlan,
    reference_engine: bool,
}

impl WorldBuilder {
    /// Starts a world on a machine with `cpus` cores.
    pub fn new(cpus: usize) -> Self {
        WorldBuilder {
            cpus,
            timeslice: Nanos::from_millis(1),
            dds_latency: Nanos::from_micros(50),
            qos: QosSpec::reliable(),
            seed: 0,
            apps: Vec::new(),
            background: Vec::new(),
            filtered_kernel: true,
            record_wakeups: false,
            faults: FaultPlan::new(),
            reference_engine: false,
        }
    }

    /// Sets the round-robin timeslice.
    pub fn timeslice(mut self, slice: Nanos) -> Self {
        self.timeslice = slice;
        self
    }

    /// Sets the DDS transport latency (default 50 µs).
    pub fn dds_latency(mut self, latency: Nanos) -> Self {
        self.dds_latency = latency;
        self
    }

    /// Sets the DDS QoS spec (default reliable: no drops, strict FIFO, no
    /// jitter). Validated in [`WorldBuilder::build`]: the drop probability
    /// must lie in `[0, 1)` and requires `reorder_bound >= 1` (best-effort
    /// delivery) to take effect. The QoS RNG is seeded from the world
    /// seed, so degraded worlds stay deterministic.
    pub fn qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Seeds the workload RNG, making the run deterministic.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an application.
    pub fn app(mut self, app: AppSpec) -> Self {
        self.apps.push(app);
        self
    }

    /// Adds a non-ROS2 background thread: every `period` it computes for a
    /// duration uniform in `[min, max]`. These threads generate the
    /// `sched_switch` noise the kernel tracer's PID filter removes.
    pub fn background_load(mut self, period: Nanos, min: Nanos, max: Nanos) -> Self {
        self.background.push((period, min, max));
        self
    }

    /// Uses an *unfiltered* kernel tracer (the baseline of the Sec. III-B
    /// footprint experiment). Default is filtered, as in the paper.
    pub fn unfiltered_kernel_tracer(mut self) -> Self {
        self.filtered_kernel = false;
        self
    }

    /// Also records `sched_wakeup` events, enabling the waiting-time
    /// measurement of Sec. VII. Off by default, as in the paper.
    pub fn record_wakeups(mut self) -> Self {
        self.record_wakeups = true;
        self
    }

    /// Runs the world on the pre-indexing scheduler and executor paths
    /// (linear rebalance, heap-resident slice checks, full callback
    /// scans). The differential suites pin the indexed engine's event
    /// stream byte-identical to this one.
    pub fn reference_engine(mut self) -> Self {
        self.reference_engine = true;
        self
    }

    /// Attaches a fault plan: timed behaviour degradations of named
    /// callbacks (see [`crate::fault`]). Faults from repeated calls
    /// accumulate. Targets are validated in [`WorldBuilder::build`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        for fault in plan.faults() {
            self.faults.push(fault.clone());
        }
        self
    }

    /// Assembles the world.
    ///
    /// # Errors
    ///
    /// Returns [`WorldError::NoApps`] if no application was added, or
    /// [`WorldError::DuplicateService`] if two nodes offer the same
    /// service.
    pub fn build(self) -> Result<Ros2World, WorldError> {
        if self.apps.is_empty() {
            return Err(WorldError::NoApps);
        }
        // QoS sanity: the drop probability must be a probability (1.0 would
        // sever every degraded topic outright — model that as a MutePublisher
        // fault instead), and setting one on a reliable (reorder bound 0)
        // spec would be silently ignored, so reject the confusing no-op.
        if !(self.qos.drop_prob.is_finite() && (0.0..1.0).contains(&self.qos.drop_prob)) {
            return Err(WorldError::BadQosDropProbability { drop_prob: self.qos.drop_prob });
        }
        if self.qos.drop_prob > 0.0 && self.qos.reorder_bound == 0 {
            return Err(WorldError::QosDropOnReliableSpec { drop_prob: self.qos.drop_prob });
        }
        // Unique service check across the whole world.
        {
            let mut seen = std::collections::HashSet::new();
            for app in &self.apps {
                for node in &app.nodes {
                    for cb in &node.callbacks {
                        if let CallbackSpec::Service { service, .. } = cb {
                            if !seen.insert(service.clone()) {
                                return Err(WorldError::DuplicateService(service.clone()));
                            }
                        }
                    }
                }
            }
        }

        // Resolve the fault plan against the declared callbacks. Names are
        // only unique *per app*, so a name declared by several apps is an
        // ambiguous target and rejected rather than silently fanned out.
        let mut fault_map: HashMap<String, CbFaults> = HashMap::new();
        {
            let mut decls: HashMap<&str, (bool, usize)> = HashMap::new();
            for app in &self.apps {
                for node in &app.nodes {
                    for cb in &node.callbacks {
                        let d = decls
                            .entry(cb.name())
                            .or_insert((matches!(cb, CallbackSpec::Timer { .. }), 0));
                        d.1 += 1;
                    }
                }
            }
            for fault in self.faults.faults() {
                let Some(&(timer, count)) = decls.get(fault.callback.as_str()) else {
                    return Err(WorldError::UnknownFaultCallback(fault.callback.clone()));
                };
                if count > 1 {
                    return Err(WorldError::AmbiguousFaultCallback(fault.callback.clone()));
                }
                let check = |factor: f64, min: f64| {
                    if factor.is_finite() && factor >= min && factor > 0.0 {
                        Ok(factor)
                    } else {
                        Err(WorldError::BadFaultFactor {
                            callback: fault.callback.clone(),
                            kind: fault.kind.clone(),
                            factor,
                        })
                    }
                };
                let entry = fault_map.entry(fault.callback.clone()).or_default();
                match fault.kind {
                    FaultKind::Slowdown { factor } => {
                        entry.slowdown = Some((fault.at, check(factor, 0.0)?));
                    }
                    FaultKind::TimerStutter { factor } => {
                        if !timer {
                            return Err(WorldError::StutterOnNonTimer(fault.callback.clone()));
                        }
                        // A sub-1 factor would shrink the period toward
                        // zero and stall the simulated clock.
                        entry.stutter = Some((fault.at, check(factor, 1.0)?));
                    }
                    FaultKind::MutePublisher => entry.mute = Some(fault.at),
                    FaultKind::MessageDrop { prob } => {
                        // A probability of exactly 1 is allowed (total
                        // loss), but 0 would be a planned no-op.
                        if !(prob.is_finite() && prob > 0.0 && prob <= 1.0) {
                            return Err(WorldError::BadFaultFactor {
                                callback: fault.callback.clone(),
                                kind: fault.kind.clone(),
                                factor: prob,
                            });
                        }
                        entry.msg_drop = Some((fault.at, prob));
                    }
                }
            }
        }

        let tracers = match (self.filtered_kernel, self.record_wakeups) {
            (true, false) => TracerSet::new(),
            (true, true) => TracerSet::new_with_wakeups(),
            (false, _) => TracerSet::new_unfiltered(),
        };
        let world = Rc::new(RefCell::new(WorldState {
            // The QoS RNG gets its own stream, decorrelated from the
            // workload RNG so enabling QoS never perturbs execution-time
            // sampling (a reliable spec draws nothing from it at all).
            dds: DdsDomain::with_qos(
                self.dds_latency,
                self.qos,
                self.seed ^ 0x9e37_79b9_7f4a_7c15,
            ),
            tracers,
            ground_truth: GroundTruth::new(),
            rng: StdRng::seed_from_u64(self.seed),
            addr_ctr: 0,
            wake_fanout: HashMap::new(),
            fan_scratch: Vec::new(),
        }));

        let mut sched = SimulatorBuilder::new(self.cpus).timeslice(self.timeslice);
        if self.reference_engine {
            sched = sched.reference_engine();
        }
        let mut node_pids: Vec<(String, Pid)> = Vec::new();
        let mut next_cb_id: u64 = 1;

        for app in &self.apps {
            for node in &app.nodes {
                let pid = sched.next_pid();
                let mut cbs: Vec<CbRuntime> = Vec::new();
                let mut name_to_idx: HashMap<&str, usize> = HashMap::new();

                // First pass: identities + readers.
                for spec in &node.callbacks {
                    let id = CallbackId::new(next_cb_id);
                    next_cb_id += 1;
                    let (kind, detail, work) = {
                        let mut w = world.borrow_mut();
                        match spec {
                            CallbackSpec::Timer { period, work, .. } => (
                                CallbackKind::Timer,
                                CbDetail::Timer { period: *period, next_fire: Nanos::ZERO },
                                *work,
                            ),
                            CallbackSpec::Subscriber { topic, work, .. } => {
                                let t = Topic::plain(topic.as_str());
                                let reader = w.dds.create_reader(pid, t.clone());
                                (
                                    CallbackKind::Subscriber,
                                    CbDetail::Subscriber { reader, topic: t, sync: None },
                                    *work,
                                )
                            }
                            CallbackSpec::Service { service, work, .. } => {
                                let reader =
                                    w.dds.create_reader(pid, Topic::service_request(service.as_str()));
                                (
                                    CallbackKind::Service,
                                    CbDetail::Service {
                                        reader,
                                        response_topic: Topic::service_response(service.as_str()),
                                    },
                                    *work,
                                )
                            }
                            CallbackSpec::Client { service, work, .. } => {
                                let reader =
                                    w.dds.create_reader(pid, Topic::service_response(service.as_str()));
                                (CallbackKind::Client, CbDetail::Client { reader }, *work)
                            }
                        }
                    };
                    world.borrow_mut().ground_truth.register(
                        id,
                        CallbackInfo {
                            node: node.name.clone(),
                            name: spec.name().to_string(),
                            kind,
                        },
                    );
                    name_to_idx.insert(spec.name(), cbs.len());
                    let faults = fault_map.get(spec.name()).copied().unwrap_or_default();
                    // Group 0 is the implicit mutually-exclusive default;
                    // declared groups follow in declaration order.
                    let group = node
                        .groups
                        .iter()
                        .position(|g| g.members.iter().any(|m| m == spec.name()))
                        .map_or(0, |gi| gi + 1);
                    cbs.push(CbRuntime { id, work, outputs: Vec::new(), detail, faults, group });
                }

                // Second pass: outputs (client references now resolvable).
                for (idx, spec) in node.callbacks.iter().enumerate() {
                    let mut outputs = Vec::new();
                    for out in spec.outputs() {
                        match out {
                            OutputAction::Publish(topic) => {
                                outputs.push(ResolvedOutput::Publish(Topic::plain(
                                    topic.as_str(),
                                )));
                            }
                            OutputAction::CallService { client } => {
                                let ci = name_to_idx[client.as_str()];
                                let service = match &node.callbacks[ci] {
                                    CallbackSpec::Client { service, .. } => service.clone(),
                                    _ => unreachable!("validated as client"),
                                };
                                outputs.push(ResolvedOutput::CallService {
                                    client_cb: cbs[ci].id,
                                    request_topic: Topic::service_request(service.as_str()),
                                });
                            }
                        }
                    }
                    cbs[idx].outputs = outputs;
                }

                // Synchronizers.
                let mut syncs: Vec<SyncRuntime> = Vec::new();
                for group in &node.sync_groups {
                    let members: Vec<usize> =
                        group.members.iter().map(|m| name_to_idx[m.as_str()]).collect();
                    let gi = syncs.len();
                    for (mi, &cb_idx) in members.iter().enumerate() {
                        if let CbDetail::Subscriber { sync, .. } = &mut cbs[cb_idx].detail {
                            *sync = Some((gi, mi));
                        }
                    }
                    syncs.push(SyncRuntime {
                        filled: vec![false; members.len()],
                        outputs: group
                            .outputs
                            .iter()
                            .map(|t| Topic::plain(t.as_str()))
                            .collect(),
                    });
                }

                // Pin every mutually-exclusive group (the implicit default
                // included) to one worker rank: single ownership serializes
                // the group's members structurally. Reentrant groups have
                // no owner — any worker may claim them. When every group is
                // mutually exclusive and the node has one worker, this
                // degenerates to the classic single-threaded executor.
                let workers = node.workers;
                let mut owner: Vec<Option<usize>> = vec![Some(0)];
                for (gi, group) in node.groups.iter().enumerate() {
                    owner.push(match group.kind {
                        GroupKind::MutuallyExclusive => Some((gi + 1) % workers),
                        GroupKind::Reentrant => None,
                    });
                }

                let core = Rc::new(RefCell::new(ExecCore { cbs, syncs, owner }));
                let mut worker_pids = Vec::with_capacity(workers);
                for rank in 0..workers {
                    let logic = NodeExecutor::new(
                        Rc::clone(&world),
                        Rc::clone(&core),
                        rank,
                        pid,
                        self.reference_engine,
                    );
                    let thread_name = if rank == 0 {
                        node.name.clone()
                    } else {
                        format!("{}#w{rank}", node.name)
                    };
                    let spawned =
                        sched.spawn(thread_name, node.priority, node.affinity, Box::new(logic));
                    if rank == 0 {
                        debug_assert_eq!(spawned, pid, "next_pid must predict spawn");
                    }
                    worker_pids.push(spawned);
                    // Every worker is announced under the node name, so the
                    // kernel tracer's PID filter admits all of them and the
                    // model's pid→node mapping covers concurrent instances.
                    node_pids.push((node.name.clone(), spawned));
                }
                if workers > 1 {
                    world.borrow_mut().wake_fanout.insert(pid, worker_pids);
                }
            }
        }

        // Non-ROS2 background threads.
        for (i, (period, min, max)) in self.background.iter().enumerate() {
            sched.spawn(
                format!("bg-load-{i}"),
                Priority::NORMAL,
                Affinity::all(),
                Box::new(PeriodicLoad::new(*period, *min, *max, self.seed ^ (i as u64 + 1))),
            );
        }

        let mut sim = sched.build();
        sim.add_sink(Box::new(KernelSink(Rc::clone(&world))));
        Ok(Ros2World { sim, world, node_pids, announced: false })
    }
}

/// A runnable simulated machine with ROS2 applications and attached
/// tracers.
///
/// Follow the deployment flow of Fig. 2: [`Ros2World::announce_nodes`]
/// (TR_IN active during startup), then alternate
/// [`Ros2World::start_runtime_tracers`] / [`Ros2World::run_for`] /
/// [`Ros2World::collect_segment`] — or use [`Ros2World::trace_run`] for the
/// whole cycle, and [`Ros2World::trace_segments`] to stream a long run as
/// bounded segments.
pub struct Ros2World {
    sim: Simulator,
    world: Rc<RefCell<WorldState>>,
    node_pids: Vec<(String, Pid)>,
    announced: bool,
}

impl Ros2World {
    /// Starts the INIT tracer, fires P1 for every node (as the applications
    /// would during startup), and stops it again. Idempotent.
    pub fn announce_nodes(&mut self) {
        if self.announced {
            return;
        }
        self.announced = true;
        let now = self.sim.now();
        let mut w = self.world.borrow_mut();
        w.tracers.init.start();
        for (name, pid) in &self.node_pids {
            let call = FunctionCall::entry(
                now,
                *pid,
                FunctionArgs::RmwCreateNode { node_name: name.clone() },
            );
            w.tracers.init.on_function(&call);
        }
        w.tracers.init.stop();
    }

    /// Starts the ROS2-RT and kernel tracers.
    pub fn start_runtime_tracers(&mut self) {
        let mut w = self.world.borrow_mut();
        w.tracers.rt.start();
        w.tracers.kernel.start();
    }

    /// Stops the ROS2-RT and kernel tracers.
    pub fn stop_runtime_tracers(&mut self) {
        let mut w = self.world.borrow_mut();
        w.tracers.rt.stop();
        w.tracers.kernel.stop();
    }

    /// Advances the simulation by `duration`.
    pub fn run_for(&mut self, duration: Nanos) {
        let until = self.sim.now() + duration;
        self.sim.run_until(until);
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// Drains all tracer buffers into the given event sink (INIT events
    /// first, then runtime, then scheduler events — each stream in FIFO
    /// order). The sink decides what to do with them: accumulate a
    /// [`Trace`], fill a bounded [`TraceSegment`], or consume them online.
    /// Generic over the sink, so draining into a concrete type compiles to
    /// direct pushes with no per-event virtual dispatch.
    pub fn collect_segment_into<S: EventSink + ?Sized>(&mut self, sink: &mut S) {
        let mut w = self.world.borrow_mut();
        w.tracers.init.drain_segment_into(sink);
        w.tracers.rt.drain_segment_into(sink);
        w.tracers.kernel.drain_segment_into(sink);
    }

    /// Drains all tracer buffers into one chronologically sorted trace
    /// segment.
    pub fn collect_segment(&mut self) -> Trace {
        let mut trace = Trace::new();
        self.collect_segment_into(&mut trace);
        trace.sort_by_time();
        trace
    }

    /// Streams one traced run of `duration` into `sink`: announce nodes,
    /// start the runtime tracers, simulate, stop, and drain every tracer
    /// buffer into the sink. Events arrive in drain order; sort afterwards
    /// if the sink accumulates and chronological order is required.
    pub fn trace_into<S: EventSink + ?Sized>(&mut self, sink: &mut S, duration: Nanos) {
        self.announce_nodes();
        self.start_runtime_tracers();
        self.run_for(duration);
        self.stop_runtime_tracers();
        self.collect_segment_into(sink);
    }

    /// Convenience: announce nodes, trace one run of `duration`, and return
    /// the collected segment (a thin wrapper over [`Ros2World::trace_into`]
    /// with a [`Trace`] as the sink).
    pub fn trace_run(&mut self, duration: Nanos) -> Trace {
        let mut trace = Trace::new();
        self.trace_into(&mut trace, duration);
        trace.sort_by_time();
        trace
    }

    /// Traces a run of `total` simulated time as a sequence of bounded
    /// segments of at most `segment_len` each, following the Fig. 2
    /// deployment flow: stop the runtime tracers, store the segment,
    /// restart with empty buffers. Each chronologically sorted
    /// [`TraceSegment`] (indexed in run order) is handed to `on_segment`
    /// by mutable reference; the buffer is *recycled* for a later window
    /// once the callback returns, so a run of any length needs memory
    /// proportional to one segment, not to the whole run — and a
    /// steady-state window needs no allocation at all. A callback that
    /// wants to keep the events takes them with `std::mem::take`.
    ///
    /// On a machine with at least two cores the two halves of the pipeline
    /// are overlapped (see [`Ros2World::trace_segments_pipelined`]):
    /// consuming segment *k* — sorting it, synthesizing from it — proceeds
    /// while segment *k + 1* is still being collected. On a single-core
    /// machine the pipeline would only add context switches, so collection
    /// and consumption alternate on the calling thread instead. Both paths
    /// hand over identical segments in identical order, so any output is
    /// byte-identical — pinned by the streaming-equivalence suite.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero, or propagates `on_segment`'s
    /// panic.
    pub fn trace_segments<F>(&mut self, total: Nanos, segment_len: Nanos, on_segment: F)
    where
        F: FnMut(&mut TraceSegment) + Send,
    {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores >= 2 {
            self.trace_segments_pipelined(total, segment_len, on_segment);
        } else {
            self.trace_segments_sequential(total, segment_len, on_segment);
        }
    }

    /// The pipelined implementation behind [`Ros2World::trace_segments`]:
    /// `on_segment` runs on a dedicated consumer thread fed through a pair
    /// of lock-free SPSC rings ([`rtms_util::spsc`]), so synthesis of
    /// segment *k* overlaps collection of segment *k + 1*. The forward
    /// ring carries filled segment slabs; the reverse ring returns each
    /// slab — cleared but with its event storage intact — to the collector
    /// for reuse, so the steady state moves recycled buffers instead of
    /// allocating fresh ones (see "Pipeline internals" in
    /// docs/PERFORMANCE.md for the capacity and memory-ordering argument).
    ///
    /// Segments arrive at the consumer strictly in run order on one
    /// thread, byte-identical to the sequential path. A panic in
    /// `on_segment` propagates to the caller after the collection loop
    /// stops.
    ///
    /// Exposed separately so the equivalence suite (and curious callers)
    /// can force the pipelined path regardless of the machine's core
    /// count; prefer [`Ros2World::trace_segments`], which picks the faster
    /// path for the hardware.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero, or propagates `on_segment`'s
    /// panic.
    pub fn trace_segments_pipelined<F>(&mut self, total: Nanos, segment_len: Nanos, on_segment: F)
    where
        F: FnMut(&mut TraceSegment) + Send,
    {
        // Forward ring depth: deep enough to absorb consumer hiccups (a
        // slow synthesis window) without stalling collection, shallow
        // enough that the in-flight working set stays cache-warm. The
        // reverse ring must never reject a returned slab; at most
        // DATA_RING_SLOTS + 2 slabs exist (ring full + one at each end),
        // so one size up is structurally sufficient.
        const DATA_RING_SLOTS: usize = 4;
        const FREE_RING_SLOTS: usize = 2 * DATA_RING_SLOTS;
        assert!(segment_len > Nanos::ZERO, "segment length must be positive");
        self.announce_nodes();
        let (mut data_tx, mut data_rx) = rtms_util::spsc::ring::<TraceSegment>(DATA_RING_SLOTS);
        let (mut free_tx, mut free_rx) = rtms_util::spsc::ring::<TraceSegment>(FREE_RING_SLOTS);
        std::thread::scope(|scope| {
            let mut on_segment = on_segment;
            let consumer = scope.spawn(move || {
                // pop_wait spins briefly before parking: segments can
                // arrive every few tens of microseconds, and paying a full
                // scheduler wakeup per segment costs more than the
                // synthesis work being hidden.
                while let Some(mut segment) = data_rx.pop_wait() {
                    // Sorting belongs to the segment contract but not to
                    // the collection critical path — it overlaps the next
                    // segment's collection here (and is a no-op scan when
                    // the tracers emitted in time order).
                    segment.sort_by_time();
                    on_segment(&mut segment);
                    // Recycle the slab: events are gone (moved out or
                    // cleared) but the Vec storage stays. The free ring is
                    // sized so this cannot be Full; if the producer is
                    // already gone the slab simply drops.
                    segment.clear_for_reuse(0);
                    let _ = free_tx.try_push(segment);
                }
            });
            let mut pool: rtms_util::SlabPool<TraceSegment> = rtms_util::SlabPool::new();
            let end = self.now() + total;
            let mut index = 0;
            let mut consumer_alive = true;
            while consumer_alive && self.now() < end {
                let step = segment_len.min(end - self.now());
                self.start_runtime_tracers();
                self.run_for(step);
                self.stop_runtime_tracers();
                // Prefer a recycled slab from the reverse ring; allocate
                // only while the pipeline warms up (bounded by the ring
                // depth, tracked by the pool's counter).
                let mut segment =
                    free_rx.try_pop().unwrap_or_else(|| pool.take_with(TraceSegment::new));
                segment.set_index(index);
                self.collect_segment_into(&mut segment);
                // A rejected push means the consumer died; its panic
                // surfaces at the join below.
                consumer_alive = data_tx.push(segment).is_ok();
                index += 1;
            }
            drop(data_tx);
            if let Err(panic) = consumer.join() {
                std::panic::resume_unwind(panic);
            }
        });
    }

    /// The sequential reference for [`Ros2World::trace_segments`]:
    /// collection and consumption strictly alternate on the calling
    /// thread, with one slab reused across every window (the single-core
    /// counterpart of the pipelined path's recycled-slab rings). Same
    /// segment contract, no `Send` requirement on `on_segment`; the
    /// equivalence suite pins the pipelined path byte-identical to this
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero.
    pub fn trace_segments_sequential<F>(
        &mut self,
        total: Nanos,
        segment_len: Nanos,
        mut on_segment: F,
    ) where
        F: FnMut(&mut TraceSegment),
    {
        assert!(segment_len > Nanos::ZERO, "segment length must be positive");
        self.announce_nodes();
        let end = self.now() + total;
        let mut index = 0;
        let mut segment = TraceSegment::new();
        while self.now() < end {
            let step = segment_len.min(end - self.now());
            self.start_runtime_tracers();
            self.run_for(step);
            self.stop_runtime_tracers();
            segment.set_index(index);
            self.collect_segment_into(&mut segment);
            segment.sort_by_time();
            on_segment(&mut segment);
            segment.clear_for_reuse(0);
            index += 1;
        }
    }

    /// Records a segmented run to a binary segment file: the Fig. 2
    /// stop/store/restart loop of [`Ros2World::trace_segments`], with
    /// "store" meaning "append to `writer`". Each segment is encoded and
    /// written as it is collected (on a multi-core machine, overlapped
    /// with collecting the next one); call `writer.finish()` afterwards
    /// to seal the file.
    ///
    /// Replaying the finished file through
    /// `SynthesisSession::feed_reader` yields a model byte-identical to
    /// synthesizing the same run live — segments arrive in the same order
    /// with the same per-segment event order.
    ///
    /// # Errors
    ///
    /// Returns the first write error; collection stops at the end of the
    /// segment that failed to store.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero.
    pub fn record_segments<W: std::io::Write + Send>(
        &mut self,
        writer: &mut SegmentWriter<W>,
        total: Nanos,
        segment_len: Nanos,
    ) -> Result<(), CodecError> {
        let mut result = Ok(());
        self.trace_segments(total, segment_len, |segment| {
            if result.is_ok() {
                result = writer.write_segment(segment);
            }
        });
        result
    }

    /// The PID of a node's executor thread.
    pub fn node_pid(&self, name: &str) -> Option<Pid> {
        self.node_pids.iter().find(|(n, _)| n == name).map(|(_, p)| *p)
    }

    /// All `(node name, PID)` pairs, in spawn order.
    pub fn node_pids(&self) -> &[(String, Pid)] {
        &self.node_pids
    }

    /// Snapshot of the simulator's ground truth.
    pub fn ground_truth(&self) -> GroundTruth {
        self.world.borrow().ground_truth.clone()
    }

    /// Total CPU time consumed so far by the applications' executor
    /// threads.
    pub fn app_cpu_time(&self) -> Nanos {
        self.node_pids
            .iter()
            .fold(Nanos::ZERO, |acc, (_, pid)| acc + self.sim.cpu_time(*pid))
    }

    /// Aggregated probe-overhead report over the elapsed simulated time.
    pub fn overhead_report(&self) -> OverheadReport {
        let w = self.world.borrow();
        let mut merged = OverheadModel::new();
        merged.absorb(w.tracers.init.overhead());
        merged.absorb(w.tracers.rt.overhead());
        merged.absorb(w.tracers.kernel.overhead());
        merged.report(self.sim.now(), self.app_cpu_time())
    }

    /// Bytes accepted into the RT + kernel perf buffers since start — the
    /// trace-volume metric of Sec. VI.
    pub fn trace_volume_bytes(&self) -> usize {
        let w = self.world.borrow();
        w.tracers.rt.perf().total_bytes() + w.tracers.kernel.perf().total_bytes()
    }

    /// `(seen, exported)` scheduler events of the kernel tracer — the
    /// footprint-reduction metric of Sec. III-B.
    pub fn kernel_filter_stats(&self) -> (u64, u64) {
        let w = self.world.borrow();
        (w.tracers.kernel.seen(), w.tracers.kernel.exported())
    }

    /// Direct access to the underlying machine (advanced use: per-thread
    /// CPU times, full scheduler event firehose, core utilization).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }
}

impl fmt::Debug for Ros2World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ros2World")
            .field("now", &self.sim.now())
            .field("nodes", &self.node_pids.len())
            .finish()
    }
}
