//! Execution-time workload models for simulated callbacks.

use rand::rngs::StdRng;
use rand::Rng;
use rtms_trace::Nanos;

/// How much CPU time a callback instance consumes.
///
/// The AVP callbacks are calibrated with [`WorkModel::bounded`], which
/// matches a `(BCET, ACET, WCET)` triple from Table II of the paper: samples
/// are `min + (max-min) * U^a` with `a = (max-mean)/(mean-min)`, a
/// single-parameter power distribution whose support is exactly
/// `[min, max]` and whose expectation is exactly `mean`.
///
/// # Example
///
/// ```
/// use rtms_ros2::WorkModel;
/// use rtms_trace::Nanos;
///
/// let w = WorkModel::bounded_millis(13.82, 17.1, 19.82); // AVP cb1
/// let (min, max) = w.support();
/// assert_eq!(min, Nanos::from_millis_f64(13.82));
/// assert_eq!(max, Nanos::from_millis_f64(19.82));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkModel {
    /// Every instance consumes exactly this long.
    Constant(Nanos),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Lower bound.
        min: Nanos,
        /// Upper bound.
        max: Nanos,
    },
    /// Power distribution over `[min, max]` with the given mean (see type
    /// docs). Degenerates gracefully when `mean == min` or `mean == max`.
    Bounded {
        /// Best-case execution time.
        min: Nanos,
        /// Average execution time.
        mean: Nanos,
        /// Worst-case execution time.
        max: Nanos,
    },
}

impl WorkModel {
    /// Constant workload given in milliseconds.
    pub fn constant_millis(ms: f64) -> WorkModel {
        WorkModel::Constant(Nanos::from_millis_f64(ms))
    }

    /// Uniform workload given in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either is negative.
    pub fn uniform_millis(min: f64, max: f64) -> WorkModel {
        assert!(min <= max, "min must not exceed max");
        WorkModel::Uniform {
            min: Nanos::from_millis_f64(min),
            max: Nanos::from_millis_f64(max),
        }
    }

    /// `(BCET, ACET, WCET)`-calibrated workload.
    ///
    /// # Panics
    ///
    /// Panics unless `min <= mean <= max`.
    pub fn bounded(min: Nanos, mean: Nanos, max: Nanos) -> WorkModel {
        assert!(min <= mean && mean <= max, "need min <= mean <= max");
        WorkModel::Bounded { min, mean, max }
    }

    /// `(BCET, ACET, WCET)`-calibrated workload given in milliseconds.
    pub fn bounded_millis(min: f64, mean: f64, max: f64) -> WorkModel {
        WorkModel::bounded(
            Nanos::from_millis_f64(min),
            Nanos::from_millis_f64(mean),
            Nanos::from_millis_f64(max),
        )
    }

    /// Draws one execution time.
    pub fn sample(&self, rng: &mut StdRng) -> Nanos {
        match *self {
            WorkModel::Constant(c) => c,
            WorkModel::Uniform { min, max } => {
                if min == max {
                    min
                } else {
                    Nanos::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
                }
            }
            WorkModel::Bounded { min, mean, max } => {
                if min == max {
                    return min;
                }
                if mean == min {
                    return min;
                }
                if mean == max {
                    return max;
                }
                let span = (max - min).as_nanos() as f64;
                let a = (max - mean).as_nanos() as f64 / (mean - min).as_nanos() as f64;
                let u: f64 = rng.gen_range(0.0..1.0);
                let x = u.powf(a);
                min + Nanos::from_nanos((x * span).round() as u64)
            }
        }
    }

    /// The `[min, max]` support of the model.
    pub fn support(&self) -> (Nanos, Nanos) {
        match *self {
            WorkModel::Constant(c) => (c, c),
            WorkModel::Uniform { min, max } | WorkModel::Bounded { min, max, .. } => (min, max),
        }
    }

    /// The expected value of the model.
    pub fn mean(&self) -> Nanos {
        match *self {
            WorkModel::Constant(c) => c,
            WorkModel::Uniform { min, max } => Nanos::from_nanos((min.as_nanos() + max.as_nanos()) / 2),
            WorkModel::Bounded { mean, .. } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stats(model: WorkModel, n: usize) -> (Nanos, f64, Nanos) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut min = Nanos::MAX;
        let mut max = Nanos::ZERO;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = model.sample(&mut rng);
            min = min.min(s);
            max = max.max(s);
            sum += s.as_millis_f64();
        }
        (min, sum / n as f64, max)
    }

    #[test]
    fn constant_is_constant() {
        let (mn, avg, mx) = stats(WorkModel::constant_millis(2.0), 100);
        assert_eq!(mn, mx);
        assert!((avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_within_bounds() {
        let m = WorkModel::uniform_millis(1.0, 3.0);
        let (mn, avg, mx) = stats(m, 10_000);
        assert!(mn >= Nanos::from_millis(1));
        assert!(mx <= Nanos::from_millis(3));
        assert!((avg - 2.0).abs() < 0.05, "uniform mean {avg} != 2.0");
    }

    #[test]
    fn bounded_matches_calibration_right_skewed() {
        // AVP cb6: BCET 2.78, ACET 25.64, WCET 60.93 (right-skewed).
        let m = WorkModel::bounded_millis(2.78, 25.64, 60.93);
        let (mn, avg, mx) = stats(m, 50_000);
        assert!(mn >= Nanos::from_millis_f64(2.78));
        assert!(mx <= Nanos::from_millis_f64(60.93));
        assert!((avg - 25.64).abs() < 0.5, "mean {avg} != 25.64");
    }

    #[test]
    fn bounded_matches_calibration_left_skewed() {
        // AVP cb3: BCET 0.41, ACET 3.1, WCET 3.97 (mean close to max —
        // the case a symmetric or triangular model cannot represent).
        let m = WorkModel::bounded_millis(0.41, 3.1, 3.97);
        let (mn, avg, mx) = stats(m, 50_000);
        assert!(mn >= Nanos::from_millis_f64(0.41));
        assert!(mx <= Nanos::from_millis_f64(3.97));
        assert!((avg - 3.1).abs() < 0.05, "mean {avg} != 3.1");
    }

    #[test]
    fn bounded_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = WorkModel::bounded(Nanos::from_millis(2), Nanos::from_millis(2), Nanos::from_millis(2));
        assert_eq!(a.sample(&mut rng), Nanos::from_millis(2));
        let b = WorkModel::bounded(Nanos::from_millis(1), Nanos::from_millis(1), Nanos::from_millis(3));
        assert_eq!(b.sample(&mut rng), Nanos::from_millis(1));
        let c = WorkModel::bounded(Nanos::from_millis(1), Nanos::from_millis(3), Nanos::from_millis(3));
        assert_eq!(c.sample(&mut rng), Nanos::from_millis(3));
    }

    #[test]
    #[should_panic]
    fn bounded_rejects_unordered() {
        let _ = WorkModel::bounded(Nanos::from_millis(3), Nanos::from_millis(2), Nanos::from_millis(4));
    }

    #[test]
    fn support_and_mean() {
        let m = WorkModel::bounded_millis(1.0, 2.0, 4.0);
        assert_eq!(m.support(), (Nanos::from_millis(1), Nanos::from_millis(4)));
        assert_eq!(m.mean(), Nanos::from_millis(2));
        assert_eq!(WorkModel::uniform_millis(1.0, 3.0).mean(), Nanos::from_millis(2));
    }
}
