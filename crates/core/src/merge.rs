//! Model merging across runs and convergence studies.

use crate::dag::Dag;
use rtms_trace::Nanos;

/// Merges many per-run models into one (the "merge DAGs" path of Fig. 2 —
/// the processing option the paper uses for its experiments).
///
/// # Example
///
/// ```
/// use rtms_core::{merge_dags, Dag};
///
/// let merged = merge_dags([Dag::new(), Dag::new()]);
/// assert!(merged.vertices().is_empty());
/// ```
pub fn merge_dags<I: IntoIterator<Item = Dag>>(dags: I) -> Dag {
    let mut iter = dags.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for d in iter {
        acc.merge(&d);
    }
    acc
}

/// [`merge_dags`] over borrowed models — merges a slice (or any other
/// borrowing iterator) of per-run DAGs without consuming or cloning them,
/// so callers can keep the per-run models for convergence studies after
/// merging.
///
/// # Example
///
/// ```
/// use rtms_core::{merge_dag_refs, Dag};
///
/// let runs = vec![Dag::new(), Dag::new()];
/// let merged = merge_dag_refs(&runs);
/// assert!(merged.vertices().is_empty());
/// assert_eq!(runs.len(), 2); // still available
/// ```
pub fn merge_dag_refs<'a, I: IntoIterator<Item = &'a Dag>>(dags: I) -> Dag {
    let mut iter = dags.into_iter();
    let mut acc = iter.next().cloned().unwrap_or_default();
    for d in iter {
        acc.merge(d);
    }
    acc
}

/// The evolution of a callback's measured timing attributes as more runs
/// are merged — the data behind Fig. 4 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSeries {
    /// The merge key of the tracked vertex.
    pub key: String,
    /// `(runs merged, mBCET, mACET, mWCET)` after each additional run.
    pub points: Vec<(usize, Nanos, Nanos, Nanos)>,
}

impl ConvergenceSeries {
    /// Tracks how the timing estimates of the vertex identified by
    /// `merge_key` evolve while merging `dags` one run at a time.
    ///
    /// Runs in which the vertex does not appear keep the previous
    /// estimates (no new samples).
    pub fn track<'a, I>(merge_key: &str, dags: I) -> ConvergenceSeries
    where
        I: IntoIterator<Item = &'a Dag>,
    {
        let mut acc = Dag::new();
        let mut points = Vec::new();
        for (i, d) in dags.into_iter().enumerate() {
            acc.merge(d);
            if let Some(v) = acc.vertices().iter().find(|v| v.merge_key() == merge_key) {
                if let (Some(b), Some(a), Some(w)) =
                    (v.stats.mbcet(), v.stats.macet(), v.stats.mwcet())
                {
                    points.push((i + 1, b, a, w));
                }
            }
        }
        ConvergenceSeries { key: merge_key.to_string(), points }
    }

    /// The run index (1-based) after which the mWCET estimate stops
    /// changing, if it ever stabilizes.
    pub fn mwcet_stabilizes_at(&self) -> Option<usize> {
        let (_, _, _, last) = *self.points.last()?;
        self.points
            .iter()
            .find(|(_, _, _, w)| *w == last)
            .map(|(run, _, _, _)| *run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cblist::{CallbackRecord, CbList};
    use crate::stats::ExecStats;
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn one_run_dag(et_ms: u64) -> Dag {
        let rec = CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(1),
            kind: CallbackKind::Timer,
            in_topic: None,
            out_topics: vec!["/a".into()],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_millis(et_ms)]),
            exec_times: vec![Nanos::from_millis(et_ms)],
            start_times: vec![Nanos::ZERO],
        };
        let list: CbList = [rec].into_iter().collect();
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        Dag::from_cblists(&[(Pid::new(1), list)], &names)
    }

    #[test]
    fn merge_many() {
        let merged = merge_dags([one_run_dag(2), one_run_dag(5), one_run_dag(3)]);
        assert_eq!(merged.vertices().len(), 1);
        let v = &merged.vertices()[0];
        assert_eq!(v.stats.count(), 3);
        assert_eq!(v.stats.mbcet(), Some(Nanos::from_millis(2)));
        assert_eq!(v.stats.mwcet(), Some(Nanos::from_millis(5)));
    }

    #[test]
    fn convergence_series_monotone() {
        let dags: Vec<Dag> = [3u64, 4, 4, 7, 5, 6].iter().map(|&e| one_run_dag(e)).collect();
        let key = dags[0].vertices()[0].merge_key();
        let series = ConvergenceSeries::track(&key, &dags);
        assert_eq!(series.points.len(), 6);
        // mWCET never decreases, mBCET never increases.
        for w in series.points.windows(2) {
            assert!(w[1].3 >= w[0].3, "mWCET must be non-decreasing");
            assert!(w[1].1 <= w[0].1, "mBCET must be non-increasing");
        }
        // The maximum (7 ms) is first seen after run 4 and never changes.
        assert_eq!(series.mwcet_stabilizes_at(), Some(4));
    }

    #[test]
    fn unknown_key_yields_empty_series() {
        let dags = [one_run_dag(1)];
        let series = ConvergenceSeries::track("nope", dags.iter());
        assert!(series.points.is_empty());
        assert_eq!(series.mwcet_stabilizes_at(), None);
    }
}
