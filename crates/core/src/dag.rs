//! DAG synthesis from callback lists (Sec. IV, "DAG synthesis").

use crate::cblist::CbList;
use crate::stats::ExecStats;
use rtms_trace::{CallbackId, CallbackKind, Nanos, Pid};
use rtms_util::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Index of a vertex within a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub usize);

/// What a vertex models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    /// A ROS2 callback of the given kind.
    Callback(CallbackKind),
    /// An `&` (AND) junction inserted for data synchronization: a task
    /// with zero execution time that fires when all its predecessors have
    /// produced fresh data.
    AndJunction,
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexKind::Callback(k) => write!(f, "{k}"),
            VertexKind::AndJunction => write!(f, "&"),
        }
    }
}

/// One task of the synthesized timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagVertex {
    /// The ROS2 node the task belongs to.
    pub node: String,
    /// Callback kind or AND junction.
    pub kind: VertexKind,
    /// Canonicalized subscribed topic (callbacks only; see
    /// [`Dag::from_cblists`] for the canonical decoration format). An
    /// undecorated topic shares the callback record's name allocation.
    pub in_topic: Option<Arc<str>>,
    /// Canonicalized published topics. Undecorated names are shared, like
    /// `in_topic`.
    pub out_topics: Vec<Arc<str>>,
    /// Whether this callback feeds a synchronizer (its outputs route
    /// through the node's `&` junction).
    pub is_sync_member: bool,
    /// Whether several publishers feed this vertex's subscribed topic
    /// (`OR` junction marking of Sec. IV).
    pub or_junction: bool,
    /// Measured execution-time statistics.
    pub stats: ExecStats,
    /// Per-instance execution times in observation order (the raw series
    /// behind `stats`, kept for convergence studies like Fig. 4).
    pub exec_times: Vec<Nanos>,
    /// Statistics over consecutive start-time gaps (period estimate for
    /// timer callbacks).
    pub period: ExecStats,
}

impl DagVertex {
    /// The merge identity of this vertex: node + kind + subscribed topic,
    /// falling back to the sorted published-topic set for input-less
    /// callbacks (timers), which is what distinguishes two timers of one
    /// node across runs.
    pub fn merge_key(&self) -> String {
        let detail = match (&self.in_topic, &self.kind) {
            (_, VertexKind::AndJunction) => String::from("&"),
            (Some(t), _) => t.to_string(),
            (None, _) => {
                let mut outs = self.out_topics.clone();
                outs.sort();
                outs.join(",")
            }
        };
        format!("{}|{}|{}", self.node, self.kind, detail)
    }
}

/// A directed edge: data flows from `from` to `to` over `topic`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagEdge {
    /// Producer task.
    pub from: VertexId,
    /// Consumer task.
    pub to: VertexId,
    /// The (canonicalized) topic carrying the data, shared with the
    /// consumer vertex's `in_topic`.
    pub topic: Arc<str>,
}

/// The synthesized timing model: callbacks as tasks, DDS communication as
/// precedence relations, annotated with measured timing attributes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    vertices: Vec<DagVertex>,
    edges: Vec<DagEdge>,
}

impl Dag {
    /// Creates an empty model.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Synthesizes the DAG from per-node callback lists.
    ///
    /// `node_names` maps executor PIDs to node names (from the P1 events of
    /// the INIT tracer); unknown PIDs are named `pid:<n>`.
    ///
    /// Topic decorations produced by Algorithm 1 embed raw callback IDs
    /// (`/svRequest#cb:0x2a`), which are runtime addresses and differ from
    /// run to run. This constructor rewrites each `#cb:…` suffix into a
    /// *canonical* callback label (`<node>:<kind>:<base input topic>`),
    /// which is stable across runs, so models from different runs merge
    /// vertex-for-vertex (Fig. 2, "merge DAGs"). Colliding labels (two
    /// same-kind callbacks of one node on the same input) are disambiguated
    /// with a `~n` suffix assigned in callback-ID order — not in
    /// observation order — so two models extracted from different windows
    /// of one run label the same callback identically even when the
    /// callbacks first complete in a different order.
    pub fn from_cblists(lists: &[(Pid, CbList)], node_names: &HashMap<Pid, String>) -> Dag {
        let node_of = |pid: Pid| {
            node_names.get(&pid).cloned().unwrap_or_else(|| format!("pid:{}", pid.get()))
        };

        // Canonical label per callback ID, across all nodes. Suffixes for
        // colliding base labels are assigned in (label, ID) order.
        let mut canon: FxHashMap<CallbackId, String> = FxHashMap::default();
        let mut labeled: Vec<(String, CallbackId)> = Vec::new();
        for (pid, list) in lists {
            for rec in list.entries() {
                if canon.contains_key(&rec.id) {
                    continue;
                }
                canon.insert(rec.id, String::new()); // reserve; filled below
                let base_in = rec
                    .in_topic
                    .as_deref()
                    .map(|t| t.split('#').next().unwrap_or(t).to_string())
                    .unwrap_or_else(|| "-".to_string());
                labeled.push((format!("{}:{}:{}", node_of(*pid), rec.kind, base_in), rec.id));
            }
        }
        labeled.sort();
        let mut used: BTreeMap<String, usize> = BTreeMap::new();
        for (mut label, id) in labeled {
            let n = used.entry(label.clone()).or_insert(0);
            if *n > 0 {
                label = format!("{label}~{n}");
            }
            *n += 1;
            canon.insert(id, label);
        }
        let rewrite = |topic: &Arc<str>| -> Arc<str> {
            match topic.split_once("#cb:") {
                Some((base, hex)) => {
                    let id = u64::from_str_radix(hex.trim_start_matches("0x"), 16).ok();
                    match id.and_then(|i| canon.get(&CallbackId::new(i))) {
                        Some(label) => rtms_util::concat3(base, "#", label),
                        None => Arc::clone(topic),
                    }
                }
                // Undecorated: share the record's allocation untouched.
                None => Arc::clone(topic),
            }
        };

        // Vertices.
        let mut dag = Dag::new();
        for (pid, list) in lists {
            for rec in list.entries() {
                let mut period = ExecStats::new();
                for w in rec.start_times.windows(2) {
                    period.push(w[1] - w[0]);
                }
                dag.vertices.push(DagVertex {
                    node: node_of(*pid),
                    kind: VertexKind::Callback(rec.kind),
                    in_topic: rec.in_topic.as_ref().map(&rewrite),
                    out_topics: rec.out_topics.iter().map(&rewrite).collect(),
                    is_sync_member: rec.is_sync_subscriber,
                    or_junction: false,
                    stats: rec.stats.clone(),
                    exec_times: rec.exec_times.clone(),
                    period,
                });
            }
        }

        // AND junctions: one per node that has sync members (the P7 probe
        // identifies members but not groups, so members of one node form
        // one synchronizer — the paper's MS_alpha).
        let sync_nodes: Vec<String> = {
            let mut nodes: Vec<String> = dag
                .vertices
                .iter()
                .filter(|v| v.is_sync_member)
                .map(|v| v.node.clone())
                .collect();
            nodes.sort();
            nodes.dedup();
            nodes
        };
        for node in sync_nodes {
            let member_ids: Vec<VertexId> = dag
                .vertices
                .iter()
                .enumerate()
                .filter(|(_, v)| v.is_sync_member && v.node == node)
                .map(|(i, _)| VertexId(i))
                .collect();
            let outs: Vec<Arc<str>> = {
                let mut outs: Vec<Arc<str>> = member_ids
                    .iter()
                    .flat_map(|&VertexId(i)| dag.vertices[i].out_topics.clone())
                    .collect();
                outs.sort();
                outs.dedup();
                outs
            };
            let junction = VertexId(dag.vertices.len());
            dag.vertices.push(DagVertex {
                node: node.clone(),
                kind: VertexKind::AndJunction,
                in_topic: None,
                out_topics: outs,
                is_sync_member: false,
                or_junction: false,
                stats: ExecStats::from_samples([Nanos::ZERO]),
                exec_times: Vec::new(),
                period: ExecStats::new(),
            });
            let membership = rtms_util::concat2("&", &node);
            for m in member_ids {
                dag.edges.push(DagEdge {
                    from: m,
                    to: junction,
                    topic: Arc::clone(&membership),
                });
            }
        }

        dag.rebuild_topic_edges();
        dag
    }

    /// Rebuilds all topic-based edges and OR markings from the vertices'
    /// topic sets (`&`-junction membership edges are preserved).
    pub(crate) fn rebuild_topic_edges(&mut self) {
        self.edges.retain(|e| e.topic.starts_with('&'));
        // Publishers per topic: sync members publish via their junction.
        let mut publishers: FxHashMap<&str, Vec<VertexId>> = FxHashMap::default();
        for (i, v) in self.vertices.iter().enumerate() {
            if v.is_sync_member {
                continue; // outputs routed through the AND junction
            }
            for t in &v.out_topics {
                publishers.entry(&**t).or_default().push(VertexId(i));
            }
        }
        let mut new_edges = Vec::new();
        for (i, v) in self.vertices.iter().enumerate() {
            if let Some(in_topic) = &v.in_topic {
                if let Some(pubs) = publishers.get(&**in_topic) {
                    for &p in pubs {
                        if p != VertexId(i) {
                            new_edges.push(DagEdge {
                                from: p,
                                to: VertexId(i),
                                topic: in_topic.clone(),
                            });
                        }
                    }
                }
            }
        }
        self.edges.extend(new_edges);
        // OR markings: >= 2 incoming edges with the same topic.
        for (i, v) in self.vertices.iter_mut().enumerate() {
            if let Some(in_topic) = &v.in_topic {
                let n = self
                    .edges
                    .iter()
                    .filter(|e| e.to == VertexId(i) && &e.topic == in_topic)
                    .count();
                v.or_junction = n >= 2;
            }
        }
    }

    /// A stable 64-bit fingerprint of the whole model: FNV-1a 64 over the
    /// canonical JSON serialization. Two models are byte-identical under
    /// `serde_json::to_string` iff their digests match (up to hash
    /// collisions), which is exactly the equivalence the streaming and
    /// replay suites pin — so the replay corpus commits digests instead
    /// of full models.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("model serializes");
        rtms_util::fnv1a_64(json.as_bytes())
    }

    /// The tasks.
    pub fn vertices(&self) -> &[DagVertex] {
        &self.vertices
    }

    /// The precedence relations.
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// Vertex lookup by ID.
    pub fn vertex(&self, id: VertexId) -> &DagVertex {
        &self.vertices[id.0]
    }

    /// All vertex IDs.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len()).map(VertexId)
    }

    /// IDs of vertices belonging to `node`.
    pub fn vertices_of_node<'a>(&'a self, node: &'a str) -> impl Iterator<Item = VertexId> + 'a {
        self.vertices
            .iter()
            .enumerate()
            .filter(move |(_, v)| v.node == node)
            .map(|(i, _)| VertexId(i))
    }

    /// Direct successors of a vertex.
    pub fn successors(&self, id: VertexId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> =
            self.edges.iter().filter(|e| e.from == id).map(|e| e.to).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Direct predecessors of a vertex.
    pub fn predecessors(&self, id: VertexId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> =
            self.edges.iter().filter(|e| e.to == id).map(|e| e.from).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Vertices with no incoming edges (chain sources, e.g. timers and
    /// sensor-driven subscribers).
    pub fn roots(&self) -> Vec<VertexId> {
        self.vertex_ids().filter(|&v| self.predecessors(v).is_empty()).collect()
    }

    /// Whether the graph is acyclic (it must be, for the timing analyses
    /// the model feeds).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut queue: Vec<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(i) = queue.pop() {
            visited += 1;
            for e in self.edges.iter().filter(|e| e.from.0 == i) {
                indeg[e.to.0] -= 1;
                if indeg[e.to.0] == 0 {
                    queue.push(e.to.0);
                }
            }
        }
        visited == n
    }

    /// Merges another model into this one (Fig. 2, "merge DAGs"): vertices
    /// are unioned by [`DagVertex::merge_key`], execution-time statistics
    /// and published-topic sets are combined, edges are re-derived.
    pub fn merge(&mut self, other: &Dag) {
        let mut key_to_idx: HashMap<String, usize> = self
            .vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.merge_key(), i))
            .collect();
        for v in &other.vertices {
            match key_to_idx.get(&v.merge_key()) {
                Some(&i) => {
                    let mine = &mut self.vertices[i];
                    mine.stats.merge(&v.stats);
                    mine.exec_times.extend(v.exec_times.iter().copied());
                    mine.period.merge(&v.period);
                    mine.is_sync_member |= v.is_sync_member;
                    for t in &v.out_topics {
                        if !mine.out_topics.contains(t) {
                            mine.out_topics.push(t.clone());
                        }
                    }
                }
                None => {
                    key_to_idx.insert(v.merge_key(), self.vertices.len());
                    self.vertices.push(v.clone());
                }
            }
        }
        self.rederive_edges();
    }

    /// Re-derives every edge from current vertex state: `&`-junction
    /// membership edges, junction output unions, topic edges, and OR
    /// markings. Shared by [`Dag::merge`] and [`Dag::canonicalize`] —
    /// both rewrite the vertex set and then rebuild edges from scratch.
    fn rederive_edges(&mut self) {
        self.edges.clear();
        let mut junctions: HashMap<String, VertexId> = HashMap::new();
        for (i, v) in self.vertices.iter().enumerate() {
            if v.kind == VertexKind::AndJunction {
                junctions.insert(v.node.clone(), VertexId(i));
            }
        }
        let mut membership = Vec::new();
        for (i, v) in self.vertices.iter().enumerate() {
            if v.is_sync_member {
                if let Some(&j) = junctions.get(&v.node) {
                    membership.push(DagEdge {
                        from: VertexId(i),
                        to: j,
                        topic: rtms_util::concat2("&", &v.node),
                    });
                }
            }
        }
        // Junction outputs are the union of member outputs.
        for (node, &j) in &junctions {
            let mut outs: Vec<Arc<str>> = self
                .vertices
                .iter()
                .filter(|v| v.is_sync_member && &v.node == node)
                .flat_map(|v| v.out_topics.clone())
                .collect();
            outs.sort();
            outs.dedup();
            self.vertices[j.0].out_topics = outs;
        }
        self.edges = membership;
        self.rebuild_topic_edges();
    }

    /// Rewrites the model into its canonical form: duplicate-merge-key
    /// vertices folded into one (stats summed, measurement and topic
    /// lists unioned), vertices sorted by merge key, per-vertex
    /// `out_topics`/`exec_times` sorted, and edges re-derived and sorted.
    ///
    /// This is the fixture behind the fleet determinism invariant.
    /// [`Dag::merge`] unions vertices in encounter order, so merging the
    /// *same* set of per-tenant models under different groupings (e.g.
    /// shard-local merges followed by a cross-shard merge, for varying
    /// shard counts) yields models that are semantically equal but
    /// differ in vertex order — and, when one model carries two vertices
    /// with the same merge key, in how those duplicates were folded.
    /// Canonicalizing the final merge makes the serialized bytes a pure
    /// function of the model *set*, independent of grouping and order.
    pub fn canonicalize(&mut self) {
        // Fold duplicate merge keys. ExecStats combines integer sums, so
        // folding is exactly commutative; the list unions are made
        // order-blind by the sorts below.
        let mut folded: Vec<DagVertex> = Vec::with_capacity(self.vertices.len());
        let mut key_to_idx: HashMap<String, usize> = HashMap::new();
        for v in self.vertices.drain(..) {
            match key_to_idx.get(&v.merge_key()) {
                Some(&i) => {
                    let mine = &mut folded[i];
                    mine.stats.merge(&v.stats);
                    mine.exec_times.extend(v.exec_times.iter().copied());
                    mine.period.merge(&v.period);
                    mine.is_sync_member |= v.is_sync_member;
                    for t in &v.out_topics {
                        if !mine.out_topics.contains(t) {
                            mine.out_topics.push(t.clone());
                        }
                    }
                }
                None => {
                    key_to_idx.insert(v.merge_key(), folded.len());
                    folded.push(v);
                }
            }
        }
        self.vertices = folded;
        self.vertices.sort_by_cached_key(DagVertex::merge_key);
        for v in &mut self.vertices {
            v.out_topics.sort();
            v.out_topics.dedup();
            v.exec_times.sort_unstable();
        }
        self.rederive_edges();
        self.edges.sort_by(|a, b| {
            (a.from, a.to, a.topic.as_ref() as &str).cmp(&(b.from, b.to, b.topic.as_ref()))
        });
    }

    /// Renders the model in Graphviz DOT format, with timing annotations.
    ///
    /// Node names and topics are escaped, so a `"` or `\` in a name cannot
    /// break out of the quoted DOT label it is embedded in.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph timing_model {\n  rankdir=LR;\n");
        for (i, v) in self.vertices.iter().enumerate() {
            let node = dot_escape(&v.node);
            let label = match v.kind {
                VertexKind::AndJunction => format!("&\\n({node})"),
                VertexKind::Callback(k) => {
                    let timing = match (v.stats.mbcet(), v.stats.macet(), v.stats.mwcet()) {
                        (Some(b), Some(a), Some(w)) => format!(
                            "\\n[{:.2}/{:.2}/{:.2} ms]",
                            b.as_millis_f64(),
                            a.as_millis_f64(),
                            w.as_millis_f64()
                        ),
                        _ => String::new(),
                    };
                    let or = if v.or_junction { "\\nOR" } else { "" };
                    format!("{} {}\\n({}){}{}", k, i, node, timing, or)
                }
            };
            let shape = match v.kind {
                VertexKind::AndJunction => "diamond",
                _ => "box",
            };
            let _ = writeln!(s, "  v{i} [label=\"{label}\", shape={shape}];");
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "  v{} -> v{} [label=\"{}\"];",
                e.from.0,
                e.to.0,
                dot_escape(&e.topic)
            );
        }
        s.push_str("}\n");
        s
    }

    /// The structural summary of this model: vertex merge keys and edges
    /// as key triples, with multiplicity. The input to [`diff`].
    pub fn topology(&self) -> Topology {
        let mut vertices: Vec<String> = self.vertices.iter().map(DagVertex::merge_key).collect();
        let keys = vertices.clone(); // index-aligned before sorting
        vertices.sort();
        let mut edges: Vec<TopologyEdge> = self
            .edges
            .iter()
            .map(|e| TopologyEdge {
                from: keys[e.from.0].clone(),
                to: keys[e.to.0].clone(),
                topic: e.topic.to_string(),
            })
            .collect();
        edges.sort();
        Topology { vertices, edges }
    }
}

/// Escapes a string for embedding inside a double-quoted DOT label.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out
}

/// A structural summary of a [`Dag`]: the sorted multiset of vertex merge
/// keys and of edges (as `(from key, to key, topic)` triples). Two models
/// of the same application — e.g. two observation windows of one run —
/// have equal topologies even though their timing annotations differ.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Sorted vertex merge keys. Duplicates are kept: two distinct
    /// callbacks with the same merge key count twice.
    pub vertices: Vec<String>,
    /// Sorted edge triples.
    pub edges: Vec<TopologyEdge>,
}

impl Topology {
    /// An order-independent FNV-1a fingerprint of the topology, for cheap
    /// equality checks and logging.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for v in &self.vertices {
            eat(v.as_bytes());
            eat(&[0xff]);
        }
        for e in &self.edges {
            eat(e.from.as_bytes());
            eat(&[0xfe]);
            eat(e.to.as_bytes());
            eat(&[0xfe]);
            eat(e.topic.as_bytes());
            eat(&[0xff]);
        }
        h
    }

    /// Removes elements whose identity is unresolved: vertices decorated
    /// `#unknown` (Algorithm 1's `FindCaller`/`FindClient` fallback when a
    /// trace cut leaves a service interaction's peer undetermined) and the
    /// edges touching them. A model synthesized from a bounded window can
    /// contain such elements for interactions straddling the window edge;
    /// comparing *sanitized* topologies avoids phantom structural diffs at
    /// window boundaries.
    pub fn without_unresolved(&self) -> Topology {
        let marker = format!("#{}", crate::alg1::UNKNOWN);
        Topology {
            vertices: self.vertices.iter().filter(|v| !v.contains(&marker)).cloned().collect(),
            edges: self
                .edges
                .iter()
                .filter(|e| {
                    !e.from.contains(&marker)
                        && !e.to.contains(&marker)
                        && !e.topic.contains(&marker)
                })
                .cloned()
                .collect(),
        }
    }

    /// The structural difference from `self` (the old model) to `new`:
    /// multiset differences of vertex keys and edge triples.
    pub fn diff_to(&self, new: &Topology) -> ModelDiff {
        ModelDiff {
            added_vertices: multiset_sub(&new.vertices, &self.vertices),
            missing_vertices: multiset_sub(&self.vertices, &new.vertices),
            added_edges: multiset_sub(&new.edges, &self.edges),
            missing_edges: multiset_sub(&self.edges, &new.edges),
        }
    }
}

/// An edge of a [`Topology`]: data flow between two vertices identified by
/// their merge keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopologyEdge {
    /// Merge key of the producer vertex.
    pub from: String,
    /// Merge key of the consumer vertex.
    pub to: String,
    /// The (decorated) topic carrying the data.
    pub topic: String,
}

/// The structural difference between two models, as computed by [`diff`]:
/// which vertices and edges appeared and which disappeared, identified by
/// merge key. Element counts respect multiplicity — if a merge key occurs
/// twice in the old model and once in the new one, it is listed once under
/// `missing_vertices`.
///
/// Diffs order lexicographically over their four (sorted) lists, so a
/// collection of diffs — e.g. one per tenant in a fleet rollup — has a
/// stable total order independent of arrival interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Vertex keys present in the new model but not the old one.
    pub added_vertices: Vec<String>,
    /// Vertex keys present in the old model but not the new one.
    pub missing_vertices: Vec<String>,
    /// Edges present in the new model but not the old one.
    pub added_edges: Vec<TopologyEdge>,
    /// Edges present in the old model but not the new one.
    pub missing_edges: Vec<TopologyEdge>,
}

impl ModelDiff {
    /// Whether the two models are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added_vertices.is_empty()
            && self.missing_vertices.is_empty()
            && self.added_edges.is_empty()
            && self.missing_edges.is_empty()
    }

    /// Total number of differing elements across all four lists.
    pub fn len(&self) -> usize {
        self.added_vertices.len()
            + self.missing_vertices.len()
            + self.added_edges.len()
            + self.missing_edges.len()
    }
}

/// Structural comparison of two models (old → new): vertices and edges
/// that appeared or disappeared, by merge key. This is the model-level
/// primitive behind runtime drift monitoring (`rtms-monitor`).
pub fn diff(old: &Dag, new: &Dag) -> ModelDiff {
    old.topology().diff_to(&new.topology())
}

/// Multiset difference `a - b` of two *sorted* slices.
fn multiset_sub<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j == b.len() {
            out.extend_from_slice(&a[i..]);
            break;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cblist::CallbackRecord;

    fn rec(
        pid: u32,
        id: u64,
        kind: CallbackKind,
        in_topic: Option<&str>,
        outs: &[&str],
        sync: bool,
    ) -> CallbackRecord {
        CallbackRecord {
            pid: Pid::new(pid),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.map(Arc::from),
            out_topics: outs.iter().map(|s| Arc::from(*s)).collect(),
            is_sync_subscriber: sync,
            stats: ExecStats::from_samples([Nanos::from_millis(1)]),
            exec_times: vec![Nanos::from_millis(1)],
            start_times: vec![Nanos::ZERO],
        }
    }

    fn names(pairs: &[(u32, &str)]) -> HashMap<Pid, String> {
        pairs.iter().map(|(p, n)| (Pid::new(*p), n.to_string())).collect()
    }

    fn list(records: Vec<CallbackRecord>) -> CbList {
        records.into_iter().collect()
    }

    #[test]
    fn chain_edges() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (
                Pid::new(2),
                list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &["/b"], false)]),
            ),
            (Pid::new(3), list(vec![rec(3, 3, CallbackKind::Subscriber, Some("/b"), &[], false)])),
        ];
        let dag = Dag::from_cblists(&lists, &names(&[(1, "n1"), (2, "n2"), (3, "n3")]));
        assert_eq!(dag.vertices().len(), 3);
        assert_eq!(dag.edges().len(), 2);
        assert!(dag.is_acyclic());
        assert_eq!(dag.roots().len(), 1);
    }

    #[test]
    fn or_junction_marked_for_two_publishers() {
        let lists = vec![
            (Pid::new(1), list(vec![
                rec(1, 1, CallbackKind::Timer, None, &["/clp3"], false),
                rec(1, 2, CallbackKind::Timer, None, &["/clp3", "/t2"], false),
            ])),
            (Pid::new(2), list(vec![rec(2, 3, CallbackKind::Subscriber, Some("/clp3"), &[], false)])),
        ];
        let dag = Dag::from_cblists(&lists, &names(&[(1, "timers"), (2, "sub")]));
        let sub = dag
            .vertex_ids()
            .find(|&v| dag.vertex(v).in_topic.as_deref() == Some("/clp3"))
            .expect("subscriber vertex");
        assert!(dag.vertex(sub).or_junction, "two publishers on /clp3 must mark OR");
        assert_eq!(dag.predecessors(sub).len(), 2);
    }

    #[test]
    fn and_junction_for_sync_members() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/f1"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Timer, None, &["/f2"], false)])),
            (Pid::new(3), list(vec![
                rec(3, 3, CallbackKind::Subscriber, Some("/f1"), &["/f3"], true),
                rec(3, 4, CallbackKind::Subscriber, Some("/f2"), &[], true),
            ])),
            (Pid::new(4), list(vec![rec(4, 5, CallbackKind::Subscriber, Some("/f3"), &[], false)])),
        ];
        let dag = Dag::from_cblists(
            &lists,
            &names(&[(1, "s1"), (2, "s2"), (3, "fusion"), (4, "sink")]),
        );
        // 5 callbacks + 1 junction.
        assert_eq!(dag.vertices().len(), 6);
        let junction = dag
            .vertex_ids()
            .find(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
            .expect("junction");
        assert_eq!(dag.vertex(junction).node, "fusion");
        assert_eq!(dag.predecessors(junction).len(), 2, "both members feed the junction");
        // Junction has zero execution time.
        assert_eq!(dag.vertex(junction).stats.mwcet(), Some(Nanos::ZERO));
        // The sink is fed by the junction, not directly by the member.
        let sink = dag
            .vertex_ids()
            .find(|&v| dag.vertex(v).in_topic.as_deref() == Some("/f3"))
            .expect("sink");
        assert_eq!(dag.predecessors(sink), vec![junction]);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn canonicalization_makes_service_decorations_stable() {
        // Same structure, different runtime callback IDs: merge keys and
        // edges must align.
        let build = |caller_id: u64, service_id: u64, client_id: u64| {
            let lists = vec![
                (Pid::new(1), list(vec![
                    rec(1, caller_id, CallbackKind::Timer, None,
                        &[&format!("/svRequest#cb:{caller_id:#x}")], false),
                    rec(1, client_id, CallbackKind::Client,
                        Some(&format!("/svReply#cb:{client_id:#x}")), &[], false),
                ])),
                (Pid::new(2), list(vec![rec(
                    2, service_id, CallbackKind::Service,
                    Some(&format!("/svRequest#cb:{caller_id:#x}")),
                    &[&format!("/svReply#cb:{client_id:#x}")], false,
                )])),
            ];
            Dag::from_cblists(&lists, &names(&[(1, "caller"), (2, "server")]))
        };
        let a = build(0x10, 0x20, 0x30);
        let b = build(0x99, 0x88, 0x77);
        let keys_a: Vec<String> = a.vertices().iter().map(|v| v.merge_key()).collect();
        let keys_b: Vec<String> = b.vertices().iter().map(|v| v.merge_key()).collect();
        assert_eq!(keys_a, keys_b, "canonical keys must not depend on runtime IDs");
        assert_eq!(a.edges().len(), 2, "timer->service and service->client");
        assert_eq!(b.edges().len(), 2);
    }

    #[test]
    fn merge_unions_structure_and_stats() {
        let lists1 = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let mut d1 = Dag::from_cblists(&lists1, &names(&[(1, "n1"), (2, "n2")]));
        // Run 2 observes an extra publication and different exec times.
        let mut r = rec(1, 9, CallbackKind::Timer, None, &["/a", "/dbg"], false);
        r.stats = ExecStats::from_samples([Nanos::from_millis(5)]);
        r.exec_times = vec![Nanos::from_millis(5)];
        let lists2 = vec![
            (Pid::new(1), list(vec![r])),
            (Pid::new(2), list(vec![rec(2, 8, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let d2 = Dag::from_cblists(&lists2, &names(&[(1, "n1"), (2, "n2")]));
        d1.merge(&d2);
        // Timer identified by node+outputs... here outputs differ between
        // runs ("/a" vs "/a,/dbg"), so the timer appears as two vertices —
        // the inherent ambiguity of input-less callbacks. The subscriber
        // merges into one vertex with pooled stats.
        let sub = d1
            .vertex_ids()
            .find(|&v| d1.vertex(v).in_topic.as_deref() == Some("/a"))
            .expect("subscriber");
        assert_eq!(d1.vertex(sub).stats.count(), 2);
        assert!(d1.is_acyclic());
    }

    #[test]
    fn merge_identical_runs_is_idempotent_on_structure() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &["/b"], false)])),
        ];
        let nm = names(&[(1, "n1"), (2, "n2")]);
        let mut d1 = Dag::from_cblists(&lists, &nm);
        let d2 = Dag::from_cblists(&lists, &nm);
        let (nv, ne) = (d1.vertices().len(), d1.edges().len());
        d1.merge(&d2);
        assert_eq!(d1.vertices().len(), nv, "same structure: no new vertices");
        assert_eq!(d1.edges().len(), ne, "same structure: no new edges");
        // But stats doubled.
        assert_eq!(d1.vertices()[0].stats.count(), 2);
    }

    /// Three apps sharing a topology, merged in both orders — raw merges
    /// permute vertices, canonical forms are byte-identical.
    #[test]
    fn canonicalize_makes_merge_order_immaterial() {
        let app = |tag: &str, extra: &str| {
            let t_a: &str = &format!("/{tag}/a");
            let lists = vec![
                (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &[t_a], false)])),
                (
                    Pid::new(2),
                    list(vec![rec(2, 2, CallbackKind::Subscriber, Some(t_a), &[extra], false)]),
                ),
            ];
            Dag::from_cblists(&lists, &names(&[(1, "src"), (2, "sink")]))
        };
        let (a, b, c) = (app("x", "/out1"), app("y", "/out2"), app("x", "/out3"));
        let mut fwd = a.clone();
        fwd.merge(&b);
        fwd.merge(&c);
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_ne!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap(),
            "raw merges are order-dependent (vertex encounter order)"
        );
        fwd.canonicalize();
        rev.canonicalize();
        assert_eq!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap(),
            "canonical forms must be byte-identical"
        );
        assert!(fwd.is_acyclic());
    }

    /// Duplicate merge keys inside one model (two subscribers of one node
    /// on the same topic with the same outputs) fold into a single vertex
    /// with pooled stats, regardless of how the model was grouped.
    #[test]
    fn canonicalize_folds_duplicate_keys() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (
                Pid::new(2),
                list(vec![
                    rec(2, 2, CallbackKind::Subscriber, Some("/a"), &["/b"], false),
                    rec(2, 3, CallbackKind::Subscriber, Some("/a"), &["/b"], false),
                ]),
            ),
        ];
        let mut d = Dag::from_cblists(&lists, &names(&[(1, "n1"), (2, "n2")]));
        assert_eq!(d.vertices().len(), 3, "duplicates kept by synthesis");
        d.canonicalize();
        assert_eq!(d.vertices().len(), 2, "duplicates folded by canonical form");
        let sub = d
            .vertex_ids()
            .find(|&v| d.vertex(v).in_topic.as_deref() == Some("/a"))
            .expect("subscriber");
        assert_eq!(d.vertex(sub).stats.count(), 2, "stats pooled across the fold");
        assert_eq!(d.vertex(sub).exec_times.len(), 2);
    }

    /// Canonicalize preserves topology: same merge keys, same edge
    /// triples, same fingerprint (up to duplicate-key folding, absent
    /// here), and is idempotent.
    #[test]
    fn canonicalize_preserves_topology_and_is_idempotent() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/f1"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Timer, None, &["/f2"], false)])),
            (
                Pid::new(3),
                list(vec![
                    rec(3, 3, CallbackKind::Subscriber, Some("/f1"), &["/f3"], true),
                    rec(3, 4, CallbackKind::Subscriber, Some("/f2"), &[], true),
                ]),
            ),
            (Pid::new(4), list(vec![rec(4, 5, CallbackKind::Subscriber, Some("/f3"), &[], false)])),
        ];
        let mut d =
            Dag::from_cblists(&lists, &names(&[(1, "s1"), (2, "s2"), (3, "fusion"), (4, "sink")]));
        let before = d.topology();
        d.canonicalize();
        assert_eq!(d.topology(), before, "canonical form keeps the topology");
        assert!(d.is_acyclic());
        let first = serde_json::to_string(&d).unwrap();
        d.canonicalize();
        assert_eq!(serde_json::to_string(&d).unwrap(), first, "idempotent");
    }

    #[test]
    fn dot_output_contains_vertices_and_edges() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let dag = Dag::from_cblists(&lists, &names(&[(1, "n1"), (2, "n2")]));
        let dot = dag.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("v0 -> v1"), "{dot}");
        assert!(dot.contains("/a"));
    }

    #[test]
    fn dot_escapes_quotes_and_backslashes() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a\"];evil"], false)])),
            (
                Pid::new(2),
                list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a\"];evil"), &[], false)]),
            ),
        ];
        let dag =
            Dag::from_cblists(&lists, &names(&[(1, "n\"1"), (2, "n\\2")]));
        let dot = dag.to_dot();
        assert!(dot.contains("n\\\"1"), "quote in node name must be escaped: {dot}");
        assert!(dot.contains("n\\\\2"), "backslash in node name must be escaped: {dot}");
        assert!(dot.contains("/a\\\"];evil"), "quote in topic must be escaped: {dot}");
        // No label's quoted string is terminated early: every line still
        // ends in the well-formed attribute tail.
        for line in dot.lines().filter(|l| l.contains("label=")) {
            assert!(
                line.ends_with("];"),
                "label line must stay well-formed: {line}"
            );
        }
    }

    #[test]
    fn canonical_label_suffixes_do_not_depend_on_observation_order() {
        // Two timers of one node share the label base `n1:timer:-`; the ~1
        // suffix must go to the same callback (the higher ID) regardless of
        // which one completed first, so per-window models of one run agree.
        let make = |first: u64, second: u64| {
            let lists = vec![
                (
                    Pid::new(1),
                    list(vec![
                        rec(1, first, CallbackKind::Timer, None,
                            &[&format!("/req#cb:{first:#x}")], false),
                        rec(1, second, CallbackKind::Timer, None,
                            &[&format!("/req#cb:{second:#x}")], false),
                    ]),
                ),
                (
                    Pid::new(2),
                    list(vec![
                        rec(2, 9, CallbackKind::Service, Some(&format!("/req#cb:{first:#x}")), &[], false),
                        rec(2, 9, CallbackKind::Service, Some(&format!("/req#cb:{second:#x}")), &[], false),
                    ]),
                ),
            ];
            Dag::from_cblists(&lists, &names(&[(1, "n1"), (2, "srv")]))
        };
        let a = make(3, 7); // lower ID observed first
        let b = make(7, 3); // higher ID observed first
        let mut keys_a: Vec<String> = a.vertices().iter().map(|v| v.merge_key()).collect();
        let mut keys_b: Vec<String> = b.vertices().iter().map(|v| v.merge_key()).collect();
        keys_a.sort();
        keys_b.sort();
        assert_eq!(keys_a, keys_b, "labels must be assigned in ID order, not observation order");
    }

    #[test]
    fn diff_reports_added_and_missing_elements() {
        let base_lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let nm = names(&[(1, "n1"), (2, "n2")]);
        let old = Dag::from_cblists(&base_lists, &nm);
        assert!(diff(&old, &old).is_empty());
        assert_eq!(diff(&old, &old).len(), 0);
        assert_eq!(old.topology().fingerprint(), old.topology().fingerprint());

        // New model: the subscriber is gone, a fresh timer appeared.
        let new_lists = vec![
            (Pid::new(1), list(vec![
                rec(1, 1, CallbackKind::Timer, None, &["/a"], false),
                rec(1, 3, CallbackKind::Timer, None, &["/b"], false),
            ])),
        ];
        let new = Dag::from_cblists(&new_lists, &nm);
        let d = diff(&old, &new);
        assert_eq!(d.added_vertices, vec!["n1|timer|/b".to_string()]);
        assert_eq!(d.missing_vertices, vec!["n2|subscriber|/a".to_string()]);
        assert!(d.added_edges.is_empty());
        assert_eq!(d.missing_edges.len(), 1, "the /a edge disappeared with its consumer");
        assert_eq!(d.missing_edges[0].topic, "/a");
        assert_ne!(old.topology().fingerprint(), new.topology().fingerprint());
    }

    #[test]
    fn diff_respects_multiplicity() {
        // Two same-key subscribers in the old model, one in the new one:
        // exactly one missing entry.
        let two = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![
                rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false),
                rec(2, 3, CallbackKind::Subscriber, Some("/a"), &[], false),
            ])),
        ];
        let one = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let nm = names(&[(1, "n1"), (2, "n2")]);
        let d = diff(&Dag::from_cblists(&two, &nm), &Dag::from_cblists(&one, &nm));
        assert_eq!(d.missing_vertices, vec!["n2|subscriber|/a".to_string()]);
        assert!(d.added_vertices.is_empty());
    }

    #[test]
    fn topology_serde_round_trip() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
            (Pid::new(2), list(vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], false)])),
        ];
        let topo = Dag::from_cblists(&lists, &names(&[(1, "n1"), (2, "n2")])).topology();
        let json = serde_json::to_string(&topo).expect("ser");
        let back: Topology = serde_json::from_str(&json).expect("de");
        assert_eq!(topo, back);
    }

    #[test]
    fn serde_round_trip() {
        let lists = vec![
            (Pid::new(1), list(vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], false)])),
        ];
        let dag = Dag::from_cblists(&lists, &names(&[(1, "n1")]));
        let json = serde_json::to_string(&dag).expect("ser");
        let back: Dag = serde_json::from_str(&json).expect("de");
        assert_eq!(dag, back);
    }
}
