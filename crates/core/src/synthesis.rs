//! Whole-trace model synthesis: the top of the pipeline in Fig. 1.
//!
//! The batch entry points here are thin wrappers around the incremental
//! [`SynthesisSession`] — a whole trace is simply a stream of one segment.
//! The session walks one shared chronological cursor and keeps per-node
//! walker state, so synthesis no longer clones and re-sorts the full event
//! vector once per node.

use crate::cblist::CbList;
use crate::dag::Dag;
use crate::session::SynthesisSession;
use rtms_trace::{Pid, RosPayload, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// Extracts the node-name map (PID → node name) from the P1 events of the
/// INIT tracer.
///
/// The INIT tracer runs only during application startup (Fig. 2), so later
/// trace segments contain no P1 events; keep this map from the first
/// segment and pass it to [`synthesize_with_names`] for the rest.
pub fn node_name_map(trace: &Trace) -> HashMap<Pid, String> {
    trace
        .ros_events()
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::NodeInit { node_name } => Some((e.pid, node_name.clone())),
            _ => None,
        })
        .collect()
}

/// Like [`node_name_map`], but shared: hand the `Arc` to any number of
/// [`SynthesisSession::with_names`] calls (one per later segment stream)
/// without ever cloning the map itself.
pub fn node_name_map_shared(trace: &Trace) -> Arc<HashMap<Pid, String>> {
    Arc::new(node_name_map(trace))
}

/// Runs Algorithm 1 for every node observed in the trace, returning the
/// per-node callback lists.
pub fn synthesize_per_node(trace: &Trace) -> Vec<(Pid, CbList)> {
    let mut session = SynthesisSession::new();
    session.feed_trace(trace);
    session.callback_lists()
}

/// Synthesizes the timing model of all applications in the trace: callback
/// extraction (Algorithm 1 + 2) for every node, then DAG synthesis with
/// service splitting and OR/AND junctions.
///
/// # Example
///
/// ```
/// use rtms_core::synthesize;
/// use rtms_trace::Trace;
///
/// let dag = synthesize(&Trace::new());
/// assert!(dag.vertices().is_empty());
/// ```
pub fn synthesize(trace: &Trace) -> Dag {
    let mut session = SynthesisSession::new();
    session.feed_trace(trace);
    session.model()
}

/// Like [`synthesize`], but with an explicitly supplied node-name map —
/// required for trace segments collected after the INIT tracer stopped
/// (their P1 events live in an earlier segment).
pub fn synthesize_with_names(trace: &Trace, names: &HashMap<Pid, String>) -> Dag {
    let mut session = SynthesisSession::new();
    session.feed_trace(trace);
    session.model_with_names(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{CallbackId, CallbackKind, Nanos, RosEvent, SourceTimestamp, Topic};

    #[test]
    fn names_resolved_from_p1() {
        let mut trace = Trace::new();
        trace.push_ros(RosEvent::new(
            Nanos::ZERO,
            Pid::new(1),
            RosPayload::NodeInit { node_name: "talker".into() },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::ZERO,
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::ZERO,
            Pid::new(1),
            RosPayload::TimerCall { callback: CallbackId::new(1) },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(1),
            Pid::new(1),
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        ));
        let dag = synthesize(&trace);
        assert_eq!(dag.vertices().len(), 1);
        assert_eq!(dag.vertices()[0].node, "talker");
    }

    #[test]
    fn unknown_pid_gets_fallback_name() {
        let mut trace = Trace::new();
        trace.push_ros(RosEvent::new(
            Nanos::ZERO,
            Pid::new(9),
            RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::ZERO,
            Pid::new(9),
            RosPayload::TakeData {
                callback: CallbackId::new(1),
                topic: Topic::plain("/t"),
                src_ts: SourceTimestamp::new(1),
            },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(1),
            Pid::new(9),
            RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
        ));
        let dag = synthesize(&trace);
        assert_eq!(dag.vertices()[0].node, "pid:9");
    }

    #[test]
    fn empty_trace_empty_model() {
        assert!(synthesize(&Trace::new()).vertices().is_empty());
        assert!(synthesize_per_node(&Trace::new()).is_empty());
    }
}
