//! Timing model synthesis — the paper's primary contribution.
//!
//! Turns the traces collected by the eBPF tracers into an annotated
//! directed acyclic graph (DAG) timing model of the application:
//!
//! 1. [`alg1::extract_callbacks`] (Algorithm 1) walks one node's ROS2
//!    events chronologically and reconstructs its callbacks — type, ID,
//!    subscribed topic, published topics, synchronization membership — with
//!    the per-caller/per-client topic decorations that make multi-client
//!    services analyzable.
//! 2. [`alg2::execution_time`] (Algorithm 2) combines a callback instance's
//!    start/end window with the `sched_switch` stream to measure its *CPU*
//!    execution time, excluding preemption and blocking.
//! 3. [`dag::Dag`] assembles per-node callback lists into the application
//!    DAG: one vertex per callback entry (a service invoked by n callers
//!    yields n vertices), OR junctions where several publishers feed one
//!    subscriber, and zero-execution-time `&` (AND) junction vertices for
//!    `message_filters` data synchronization.
//! 4. [`merge`] unions DAGs from many runs (deployment options of Fig. 2)
//!    and [`multimode::MultiModeDag`] keeps per-scenario models.
//!
//! The entry point for whole traces is [`synthesis::synthesize`]; streamed
//! runs feed a [`session::SynthesisSession`] segment by segment and read
//! the model at any point, in memory bounded by the segment size.

#![warn(missing_docs)]

pub mod alg1;
pub mod alg2;
pub mod cblist;
pub mod dag;
pub mod merge;
pub mod multimode;
pub mod session;
pub mod stats;
pub mod synthesis;

pub use alg1::extract_callbacks;
pub use alg2::execution_time;
pub use cblist::{CallbackRecord, CbList};
pub use dag::{Dag, DagEdge, DagVertex, ModelDiff, Topology, TopologyEdge, VertexId, VertexKind};
pub use merge::{merge_dag_refs, merge_dags, ConvergenceSeries};
pub use multimode::MultiModeDag;
pub use session::SynthesisSession;
pub use stats::ExecStats;
pub use synthesis::{
    node_name_map, node_name_map_shared, synthesize, synthesize_per_node, synthesize_with_names,
};
