//! Algorithm 1 — extract callback attributes for a ROS2 node.

use crate::alg2::execution_time;
use crate::cblist::{CallbackRecord, CbList};
use crate::stats::ExecStats;
use rtms_trace::{
    CallbackId, CallbackKind, Nanos, Pid, RosEvent, RosPayload, SourceTimestamp, Topic, Trace,
};
use rtms_util::FxHashMap;
use std::sync::Arc;

/// Decoration used when the caller/client of a service interaction cannot
/// be identified in the trace (e.g. the matching events fell outside the
/// tracing window).
pub(crate) const UNKNOWN: &str = "unknown";

pub(crate) fn cat(topic: &Topic, suffix: &str) -> Arc<str> {
    rtms_util::concat3(topic.name(), "#", suffix)
}

/// Decorates `topic` with a callback identity, or with [`UNKNOWN`] when
/// the peer could not be identified — formatting straight into the shared
/// scratch buffer, with no intermediate `to_string`.
pub(crate) fn cat_id(topic: &Topic, id: Option<CallbackId>) -> Arc<str> {
    match id {
        Some(id) => rtms_util::concat2_fmt(topic.name(), "#", format_args!("{id}")),
        None => cat(topic, UNKNOWN),
    }
}

/// A callback instance being assembled while walking the event stream.
#[derive(Debug)]
struct Wip {
    kind: CallbackKind,
    start: Nanos,
    id: Option<CallbackId>,
    in_topic: Option<Arc<str>>,
    out_topics: Vec<Arc<str>>,
    sync: bool,
}

/// Chronologically sorted event view with the lookup structures
/// `FindCaller` and `FindClient` need, built once per extraction.
///
/// Both maps key on the (`Copy`) source timestamp and disambiguate the
/// topic inside the tiny per-key vector, so lookups compare topics by
/// reference — no `Topic` clone or allocation on the lookup path.
struct EventIndex {
    all: Vec<RosEvent>,
    /// `srcTS` of `dds_write` events -> `(topic, index in all)` per write,
    /// first write per `(topic, srcTS)` wins.
    writes: FxHashMap<SourceTimestamp, Vec<(Topic, usize)>>,
    /// `srcTS` of `take_response` events -> per-topic indices in `all`.
    responses: FxHashMap<SourceTimestamp, Vec<(Topic, Vec<usize>)>>,
}

impl EventIndex {
    fn build(trace: &Trace) -> EventIndex {
        let mut all: Vec<RosEvent> = trace.ros_events().to_vec();
        all.sort_by_key(|e| e.time);
        let mut writes: FxHashMap<SourceTimestamp, Vec<(Topic, usize)>> = FxHashMap::default();
        let mut responses: FxHashMap<SourceTimestamp, Vec<(Topic, Vec<usize>)>> =
            FxHashMap::default();
        for (i, e) in all.iter().enumerate() {
            match &e.payload {
                RosPayload::DdsWrite { topic, src_ts } => {
                    let entries = writes.entry(*src_ts).or_default();
                    if !entries.iter().any(|(t, _)| t == topic) {
                        entries.push((topic.clone(), i));
                    }
                }
                RosPayload::TakeResponse { topic, src_ts, .. } => {
                    let entries = responses.entry(*src_ts).or_default();
                    match entries.iter_mut().find(|(t, _)| t == topic) {
                        Some((_, indices)) => indices.push(i),
                        None => entries.push((topic.clone(), vec![i])),
                    }
                }
                _ => {}
            }
        }
        EventIndex { all, writes, responses }
    }

    /// `FindCaller` of Algorithm 1 (line 13): identify the callback that
    /// wrote the service request with this topic and source timestamp.
    ///
    /// First locate the `dds_write` event with the same topic and `srcTS`;
    /// then, within the writer's PID, the chronologically preceding
    /// `timer_call`/`take` event after the last callback start provides
    /// the caller's callback ID.
    fn find_caller(&self, topic: &Topic, src_ts: SourceTimestamp) -> Option<CallbackId> {
        let write_idx = self
            .writes
            .get(&src_ts)?
            .iter()
            .find_map(|(t, i)| (t == topic).then_some(*i))?;
        let writer = self.all[write_idx].pid;
        for e in self.all[..write_idx].iter().rev().filter(|e| e.pid == writer) {
            match &e.payload {
                RosPayload::TimerCall { callback }
                | RosPayload::TakeData { callback, .. }
                | RosPayload::TakeRequest { callback, .. }
                | RosPayload::TakeResponse { callback, .. } => return Some(*callback),
                RosPayload::CallbackStart { .. } => return None, // crossed the boundary
                _ => {}
            }
        }
        None
    }

    /// `FindClient` of Algorithm 1 (line 20): identify the client callback
    /// that will be dispatched for the service response with this topic
    /// and source timestamp.
    ///
    /// There are `n_cl` `take_response` events with the matching topic and
    /// `srcTS` (one per client of the service); for each, the
    /// chronologically next `take_type_erased_response` event in the same
    /// PID tells whether the client callback is dispatched there.
    fn find_client(&self, topic: &Topic, src_ts: SourceTimestamp) -> Option<CallbackId> {
        let indices = self
            .responses
            .get(&src_ts)?
            .iter()
            .find_map(|(t, indices)| (t == topic).then_some(indices))?;
        for &idx in indices {
            let e = &self.all[idx];
            let callback = match &e.payload {
                RosPayload::TakeResponse { callback, .. } => *callback,
                _ => continue,
            };
            let dispatched = self.all[idx + 1..]
                .iter()
                .filter(|n| n.pid == e.pid)
                .find_map(|n| match n.payload {
                    RosPayload::ClientDispatch { will_dispatch } => Some(will_dispatch),
                    _ => None,
                });
            if dispatched == Some(true) {
                return Some(callback);
            }
        }
        None
    }
}

/// Extracts the callback list of the node identified by `pid`
/// (Algorithm 1 of the paper).
///
/// Walks the node's ROS2 events chronologically; every window between a
/// callback-start and the next callback-end event is one callback instance
/// (single-threaded executor). The instance's execution time is measured
/// from the scheduler events with [`execution_time`] (Algorithm 2).
///
/// # Example
///
/// ```
/// use rtms_core::extract_callbacks;
/// use rtms_trace::{
///     CallbackId, CallbackKind, Nanos, Pid, RosEvent, RosPayload, Trace,
/// };
///
/// let pid = Pid::new(5);
/// let mut trace = Trace::new();
/// for (ms, payload) in [
///     (0, RosPayload::CallbackStart { kind: CallbackKind::Timer }),
///     (0, RosPayload::TimerCall { callback: CallbackId::new(1) }),
///     (3, RosPayload::CallbackEnd { kind: CallbackKind::Timer }),
/// ] {
///     trace.push_ros(RosEvent::new(Nanos::from_millis(ms), pid, payload));
/// }
/// let cbs = extract_callbacks(pid, &trace);
/// assert_eq!(cbs.len(), 1);
/// assert_eq!(cbs.entries()[0].stats.mwcet(), Some(Nanos::from_millis(3)));
/// ```
pub fn extract_callbacks(pid: Pid, trace: &Trace) -> CbList {
    extract_callbacks_indexed(pid, trace, &EventIndex::build(trace))
}

fn extract_callbacks_indexed(pid: Pid, trace: &Trace, index: &EventIndex) -> CbList {
    let events = trace.ros_events_for(pid);
    let sched = trace.sched_events();

    let mut list = CbList::new();
    let mut wip: Option<Wip> = None;

    for event in &events {
        match &event.payload {
            RosPayload::CallbackStart { kind } => {
                wip = Some(Wip {
                    kind: *kind,
                    start: event.time,
                    id: None,
                    in_topic: None,
                    out_topics: Vec::new(),
                    sync: false,
                });
            }
            RosPayload::TimerCall { callback } => {
                if let Some(w) = wip.as_mut() {
                    w.id = Some(*callback);
                }
            }
            RosPayload::TakeData { callback, topic, .. } => {
                if let Some(w) = wip.as_mut() {
                    w.id = Some(*callback);
                    w.in_topic = Some(topic.name_arc().clone());
                }
            }
            RosPayload::TakeRequest { callback, topic, src_ts } => {
                if let Some(w) = wip.as_mut() {
                    w.id = Some(*callback);
                    let caller = index
                        .find_caller(topic, *src_ts)
                        .map_or_else(|| UNKNOWN.to_string(), |c| c.to_string());
                    w.in_topic = Some(cat(topic, &caller));
                }
            }
            RosPayload::TakeResponse { callback, topic, .. } => {
                if let Some(w) = wip.as_mut() {
                    w.id = Some(*callback);
                    w.in_topic = Some(cat(topic, &callback.to_string()));
                }
            }
            RosPayload::DdsWrite { topic, src_ts } => {
                if let Some(w) = wip.as_mut() {
                    let out = if topic.is_service_request() {
                        let own = w.id.map_or_else(|| UNKNOWN.to_string(), |c| c.to_string());
                        cat(topic, &own)
                    } else if topic.is_service_response() {
                        let client = index
                            .find_client(topic, *src_ts)
                            .map_or_else(|| UNKNOWN.to_string(), |c| c.to_string());
                        cat(topic, &client)
                    } else {
                        topic.name_arc().clone()
                    };
                    w.out_topics.push(out);
                }
            }
            RosPayload::ClientDispatch { will_dispatch } => {
                if !will_dispatch {
                    wip = None; // this instance will not be dispatched (line 25)
                }
            }
            RosPayload::SyncSubscribe => {
                if let Some(w) = wip.as_mut() {
                    w.sync = true;
                }
            }
            RosPayload::CallbackEnd { .. } => {
                if let Some(w) = wip.take() {
                    let Some(id) = w.id else { continue }; // unidentifiable instance
                    let et = execution_time(w.start, event.time, pid, sched);
                    list.add_instance(CallbackRecord {
                        pid,
                        id,
                        kind: w.kind,
                        in_topic: w.in_topic,
                        out_topics: w.out_topics,
                        is_sync_subscriber: w.sync,
                        stats: ExecStats::from_samples([et]),
                        exec_times: vec![et],
                        start_times: vec![w.start],
                    });
                }
            }
            RosPayload::NodeInit { .. } => {}
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, pid: u32, payload: RosPayload) -> RosEvent {
        RosEvent::new(Nanos::from_millis(ms), Pid::new(pid), payload)
    }

    fn start(kind: CallbackKind) -> RosPayload {
        RosPayload::CallbackStart { kind }
    }
    fn end(kind: CallbackKind) -> RosPayload {
        RosPayload::CallbackEnd { kind }
    }

    #[test]
    fn timer_instances_collected() {
        let mut trace = Trace::new();
        for base in [0u64, 100] {
            trace.push_ros(ev(base, 1, start(CallbackKind::Timer)));
            trace.push_ros(ev(base, 1, RosPayload::TimerCall { callback: CallbackId::new(7) }));
            trace.push_ros(ev(base + 5, 1, end(CallbackKind::Timer)));
        }
        let cbs = extract_callbacks(Pid::new(1), &trace);
        assert_eq!(cbs.len(), 1);
        let e = &cbs.entries()[0];
        assert_eq!(e.stats.count(), 2);
        assert_eq!(e.estimated_period(), Some(Nanos::from_millis(100)));
    }

    #[test]
    fn subscriber_with_publish() {
        let mut trace = Trace::new();
        trace.push_ros(ev(0, 1, start(CallbackKind::Subscriber)));
        trace.push_ros(ev(0, 1, RosPayload::TakeData {
            callback: CallbackId::new(3),
            topic: Topic::plain("/in"),
            src_ts: SourceTimestamp::new(1),
        }));
        trace.push_ros(ev(4, 1, RosPayload::DdsWrite {
            topic: Topic::plain("/out"),
            src_ts: SourceTimestamp::new(2),
        }));
        trace.push_ros(ev(4, 1, end(CallbackKind::Subscriber)));
        let cbs = extract_callbacks(Pid::new(1), &trace);
        let e = &cbs.entries()[0];
        assert_eq!(e.in_topic.as_deref(), Some("/in"));
        assert_eq!(e.out_topics, [Arc::from("/out")]);
        assert_eq!(e.stats.mwcet(), Some(Nanos::from_millis(4)));
    }

    /// Builds the full two-caller service scenario: timer T (pid 1) and
    /// subscriber S (pid 2) both call service SV (pid 3); responses are
    /// broadcast to both client readers but dispatched only at the caller.
    fn two_caller_service_trace() -> Trace {
        let sv_req = || Topic::service_request("/sv");
        let sv_rsp = || Topic::service_response("/sv");
        let mut t = Trace::new();
        // pid 1: timer CB id 0x11 sends request (srcTS 100); client CB 0x21.
        t.push_ros(ev(0, 1, start(CallbackKind::Timer)));
        t.push_ros(ev(0, 1, RosPayload::TimerCall { callback: CallbackId::new(0x11) }));
        t.push_ros(ev(1, 1, RosPayload::DdsWrite { topic: sv_req(), src_ts: SourceTimestamp::new(100) }));
        t.push_ros(ev(1, 1, end(CallbackKind::Timer)));
        // pid 2: subscriber CB id 0x12 takes /x (srcTS 50) and sends request
        // (srcTS 101); client CB 0x22.
        t.push_ros(ev(2, 2, start(CallbackKind::Subscriber)));
        t.push_ros(ev(2, 2, RosPayload::TakeData {
            callback: CallbackId::new(0x12),
            topic: Topic::plain("/x"),
            src_ts: SourceTimestamp::new(50),
        }));
        t.push_ros(ev(3, 2, RosPayload::DdsWrite { topic: sv_req(), src_ts: SourceTimestamp::new(101) }));
        t.push_ros(ev(3, 2, end(CallbackKind::Subscriber)));
        // pid 3: service CB 0x33 handles request 100, responds srcTS 200.
        t.push_ros(ev(5, 3, start(CallbackKind::Service)));
        t.push_ros(ev(5, 3, RosPayload::TakeRequest {
            callback: CallbackId::new(0x33),
            topic: sv_req(),
            src_ts: SourceTimestamp::new(100),
        }));
        t.push_ros(ev(7, 3, RosPayload::DdsWrite { topic: sv_rsp(), src_ts: SourceTimestamp::new(200) }));
        t.push_ros(ev(7, 3, end(CallbackKind::Service)));
        // ... and request 101, responding srcTS 201.
        t.push_ros(ev(8, 3, start(CallbackKind::Service)));
        t.push_ros(ev(8, 3, RosPayload::TakeRequest {
            callback: CallbackId::new(0x33),
            topic: sv_req(),
            src_ts: SourceTimestamp::new(101),
        }));
        t.push_ros(ev(10, 3, RosPayload::DdsWrite { topic: sv_rsp(), src_ts: SourceTimestamp::new(201) }));
        t.push_ros(ev(10, 3, end(CallbackKind::Service)));
        // Response 200 reaches both clients; dispatched only at pid 1.
        t.push_ros(ev(11, 1, start(CallbackKind::Client)));
        t.push_ros(ev(11, 1, RosPayload::TakeResponse {
            callback: CallbackId::new(0x21),
            topic: sv_rsp(),
            src_ts: SourceTimestamp::new(200),
        }));
        t.push_ros(ev(11, 1, RosPayload::ClientDispatch { will_dispatch: true }));
        t.push_ros(ev(13, 1, end(CallbackKind::Client)));
        t.push_ros(ev(11, 2, start(CallbackKind::Client)));
        t.push_ros(ev(11, 2, RosPayload::TakeResponse {
            callback: CallbackId::new(0x22),
            topic: sv_rsp(),
            src_ts: SourceTimestamp::new(200),
        }));
        t.push_ros(ev(11, 2, RosPayload::ClientDispatch { will_dispatch: false }));
        t.push_ros(ev(11, 2, end(CallbackKind::Client)));
        // Response 201: dispatched only at pid 2.
        t.push_ros(ev(14, 2, start(CallbackKind::Client)));
        t.push_ros(ev(14, 2, RosPayload::TakeResponse {
            callback: CallbackId::new(0x22),
            topic: sv_rsp(),
            src_ts: SourceTimestamp::new(201),
        }));
        t.push_ros(ev(14, 2, RosPayload::ClientDispatch { will_dispatch: true }));
        t.push_ros(ev(16, 2, end(CallbackKind::Client)));
        t.push_ros(ev(14, 1, start(CallbackKind::Client)));
        t.push_ros(ev(14, 1, RosPayload::TakeResponse {
            callback: CallbackId::new(0x21),
            topic: sv_rsp(),
            src_ts: SourceTimestamp::new(201),
        }));
        t.push_ros(ev(14, 1, RosPayload::ClientDispatch { will_dispatch: false }));
        t.push_ros(ev(14, 1, end(CallbackKind::Client)));
        t.sort_by_time();
        t
    }

    #[test]
    fn service_split_per_caller() {
        let trace = two_caller_service_trace();
        let sv = extract_callbacks(Pid::new(3), &trace);
        assert_eq!(sv.len(), 2, "one entry per caller");
        let in_topics: Vec<&str> =
            sv.entries().iter().map(|e| e.in_topic.as_deref().expect("in topic")).collect();
        assert!(in_topics.contains(&"/svRequest#cb:0x11"), "{in_topics:?}");
        assert!(in_topics.contains(&"/svRequest#cb:0x12"), "{in_topics:?}");
        // Response topics are decorated with the dispatched client's ID.
        let outs: Vec<&Arc<str>> = sv.entries().iter().flat_map(|e| &e.out_topics).collect();
        assert!(outs.iter().any(|t| &***t == "/svReply#cb:0x21"), "{outs:?}");
        assert!(outs.iter().any(|t| &***t == "/svReply#cb:0x22"), "{outs:?}");
    }

    #[test]
    fn request_write_decorated_with_caller_own_id() {
        let trace = two_caller_service_trace();
        let caller = extract_callbacks(Pid::new(1), &trace);
        let timer = caller
            .entries()
            .iter()
            .find(|e| e.kind == CallbackKind::Timer)
            .expect("timer entry");
        assert_eq!(timer.out_topics, [Arc::from("/svRequest#cb:0x11")]);
    }

    #[test]
    fn undispatched_client_instances_discarded() {
        let trace = two_caller_service_trace();
        let n1 = extract_callbacks(Pid::new(1), &trace);
        // pid 1 has: timer 0x11, client 0x21 (one dispatched instance; the
        // undispatched one was dropped via P14=false).
        let client = n1
            .entries()
            .iter()
            .find(|e| e.kind == CallbackKind::Client)
            .expect("client entry");
        assert_eq!(client.stats.count(), 1);
        assert_eq!(client.in_topic.as_deref(), Some("/svReply#cb:0x21"));
    }

    #[test]
    fn client_response_edge_names_align() {
        // The service's decorated out topic must equal the client's
        // decorated in topic — the property DAG edge drawing relies on.
        let trace = two_caller_service_trace();
        let sv = extract_callbacks(Pid::new(3), &trace);
        let n1 = extract_callbacks(Pid::new(1), &trace);
        let client_in = n1
            .entries()
            .iter()
            .find(|e| e.kind == CallbackKind::Client)
            .and_then(|e| e.in_topic.clone())
            .expect("client in");
        let sv_outs: Vec<&Arc<str>> = sv.entries().iter().flat_map(|e| &e.out_topics).collect();
        assert!(sv_outs.iter().any(|t| ***t == *client_in));
    }

    #[test]
    fn sync_subscriber_flagged() {
        let mut trace = Trace::new();
        trace.push_ros(ev(0, 1, start(CallbackKind::Subscriber)));
        trace.push_ros(ev(0, 1, RosPayload::TakeData {
            callback: CallbackId::new(3),
            topic: Topic::plain("/f1"),
            src_ts: SourceTimestamp::new(1),
        }));
        trace.push_ros(ev(0, 1, RosPayload::SyncSubscribe));
        trace.push_ros(ev(2, 1, end(CallbackKind::Subscriber)));
        let cbs = extract_callbacks(Pid::new(1), &trace);
        assert!(cbs.entries()[0].is_sync_subscriber);
    }

    #[test]
    fn unknown_caller_marked() {
        // A request whose matching dds_write is missing from the trace.
        let mut trace = Trace::new();
        trace.push_ros(ev(0, 3, start(CallbackKind::Service)));
        trace.push_ros(ev(0, 3, RosPayload::TakeRequest {
            callback: CallbackId::new(9),
            topic: Topic::service_request("/sv"),
            src_ts: SourceTimestamp::new(404),
        }));
        trace.push_ros(ev(2, 3, end(CallbackKind::Service)));
        let cbs = extract_callbacks(Pid::new(3), &trace);
        assert_eq!(cbs.entries()[0].in_topic.as_deref(), Some("/svRequest#unknown"));
    }

    #[test]
    fn events_of_other_pids_ignored() {
        let trace = two_caller_service_trace();
        let cbs = extract_callbacks(Pid::new(99), &trace);
        assert!(cbs.is_empty());
    }
}
