//! Multi-mode timing models (Fig. 2, processing option (iv)).
//!
//! When traces are collected per operating scenario — city driving,
//! highway driving, parking — merging them per mode yields one DAG per
//! mode: a multi-mode model in which both structure (callbacks active in
//! the mode) and timing attributes are mode-specific.

use crate::dag::Dag;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A timing model with one DAG per operating mode.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiModeDag {
    modes: BTreeMap<String, Dag>,
}

impl MultiModeDag {
    /// Creates an empty multi-mode model.
    pub fn new() -> Self {
        MultiModeDag::default()
    }

    /// Merges a per-run model into the given mode's DAG.
    pub fn merge_into_mode(&mut self, mode: impl Into<String>, dag: &Dag) {
        self.modes.entry(mode.into()).or_default().merge(dag);
    }

    /// The model of one mode.
    pub fn mode(&self, mode: &str) -> Option<&Dag> {
        self.modes.get(mode)
    }

    /// All mode names, sorted.
    pub fn modes(&self) -> impl Iterator<Item = &str> {
        self.modes.keys().map(String::as_str)
    }

    /// Number of modes.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether no mode has been added.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Collapses all modes into a single mode-agnostic DAG (vertices and
    /// edges unioned, statistics pooled).
    pub fn collapsed(&self) -> Dag {
        let mut acc = Dag::new();
        for dag in self.modes.values() {
            acc.merge(dag);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cblist::{CallbackRecord, CbList};
    use crate::stats::ExecStats;
    use rtms_trace::{CallbackId, CallbackKind, Nanos, Pid};
    use std::collections::HashMap;

    fn dag_with_timer(out: &str, et_ms: u64) -> Dag {
        let rec = CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(1),
            kind: CallbackKind::Timer,
            in_topic: None,
            out_topics: vec![out.into()],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_millis(et_ms)]),
            exec_times: vec![Nanos::from_millis(et_ms)],
            start_times: vec![Nanos::ZERO],
        };
        let list: CbList = [rec].into_iter().collect();
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        Dag::from_cblists(&[(Pid::new(1), list)], &names)
    }

    #[test]
    fn per_mode_models_are_independent() {
        let mut mm = MultiModeDag::new();
        mm.merge_into_mode("city", &dag_with_timer("/a", 10));
        mm.merge_into_mode("highway", &dag_with_timer("/a", 3));
        mm.merge_into_mode("city", &dag_with_timer("/a", 12));

        assert_eq!(mm.len(), 2);
        assert_eq!(mm.modes().collect::<Vec<_>>(), vec!["city", "highway"]);
        let city = mm.mode("city").expect("city mode");
        assert_eq!(city.vertices()[0].stats.count(), 2);
        assert_eq!(city.vertices()[0].stats.mwcet(), Some(Nanos::from_millis(12)));
        let highway = mm.mode("highway").expect("highway mode");
        assert_eq!(highway.vertices()[0].stats.mwcet(), Some(Nanos::from_millis(3)));
        assert_eq!(mm.mode("offroad"), None);
    }

    #[test]
    fn collapsed_pools_everything() {
        let mut mm = MultiModeDag::new();
        mm.merge_into_mode("city", &dag_with_timer("/a", 10));
        mm.merge_into_mode("highway", &dag_with_timer("/a", 3));
        let all = mm.collapsed();
        assert_eq!(all.vertices().len(), 1);
        assert_eq!(all.vertices()[0].stats.count(), 2);
        assert_eq!(all.vertices()[0].stats.mbcet(), Some(Nanos::from_millis(3)));
    }

    #[test]
    fn mode_specific_structure() {
        // A callback only active in city mode appears only there.
        let mut mm = MultiModeDag::new();
        mm.merge_into_mode("city", &dag_with_timer("/city_only", 1));
        mm.merge_into_mode("highway", &dag_with_timer("/hw_only", 1));
        assert!(mm.mode("city").expect("city").vertices()[0]
            .out_topics
            .contains(&"/city_only".into()));
        assert!(mm.mode("highway").expect("highway").vertices()[0]
            .out_topics
            .contains(&"/hw_only".into()));
        assert_eq!(mm.collapsed().vertices().len(), 2, "different keys stay distinct");
    }
}
