//! Algorithm 2 — execution-time measurement from `sched_switch` events.

use rtms_trace::{Nanos, Pid, SchedEvent, SchedEventKind};

/// Computes the CPU execution time of one callback instance
/// (`GetExecTime` of the paper).
///
/// `start` and `end` are the instance window from the ROS2 events
/// (P2/P5/P9/P12 and P4/P8/P11/P15); `pid` identifies the executor thread
/// `T`; `sched_events` is the (chronologically sorted) scheduler event
/// stream. The algorithm sums the execution segments of `T` inside the
/// window: the first segment starts at `start` (when the start event is
/// generated, `T` is running), a `sched_switch` with `prev == T` closes a
/// segment, one with `next == T` opens the next, and the final segment
/// closes at `end`.
///
/// `sched_wakeup` events (present when the kernel tracer runs with the
/// Sec. VII extension) are ignored: a wakeup does not put the thread on a
/// CPU.
///
/// # Example
///
/// ```
/// use rtms_core::execution_time;
/// use rtms_trace::{Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState};
///
/// let t = Pid::new(7);
/// let other = Pid::new(8);
/// let ev = |ms, prev: Pid, next: Pid| SchedEvent::switch(
///     Nanos::from_millis(ms), Cpu::new(0),
///     prev, Priority::NORMAL, ThreadState::Runnable,
///     next, Priority::NORMAL,
/// );
/// // Runs [10,12), preempted [12,15), runs [15,18).
/// let sched = vec![ev(12, t, other), ev(15, other, t), ev(30, t, other)];
/// let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(18), t, &sched);
/// assert_eq!(et, Nanos::from_millis(5));
/// ```
pub fn execution_time(start: Nanos, end: Nanos, pid: Pid, sched_events: &[SchedEvent]) -> Nanos {
    let mut exec_time = Nanos::ZERO;
    let mut last_start = start;
    let mut running = true; // T is running when the CB start event fires
    for event in sched_events {
        if event.time > end {
            break;
        }
        if event.time <= start {
            continue;
        }
        // start < event.time <= end; boundary events at exactly `end` are
        // excluded by the strict window of the paper (line 4).
        if event.time == end {
            continue;
        }
        match &event.kind {
            SchedEventKind::Switch { prev_pid, next_pid, .. } => {
                if *prev_pid == pid {
                    if running {
                        exec_time += event.time - last_start;
                        running = false;
                    }
                } else if *next_pid == pid {
                    last_start = event.time;
                    running = true;
                }
            }
            SchedEventKind::Wakeup { .. } => {}
        }
    }
    if running {
        exec_time += end - last_start;
    }
    exec_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{Cpu, Priority, ThreadState};

    const T: Pid = Pid::new(7);
    const OTHER: Pid = Pid::new(8);

    fn sw(ms: u64, prev: Pid, next: Pid) -> SchedEvent {
        SchedEvent::switch(
            Nanos::from_millis(ms),
            Cpu::new(0),
            prev,
            Priority::NORMAL,
            ThreadState::Runnable,
            next,
            Priority::NORMAL,
        )
    }

    #[test]
    fn uninterrupted_instance() {
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(15), T, &[]);
        assert_eq!(et, Nanos::from_millis(5));
    }

    #[test]
    fn single_preemption() {
        let sched = vec![sw(12, T, OTHER), sw(14, OTHER, T)];
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(8));
    }

    #[test]
    fn multiple_preemptions() {
        let sched = vec![
            sw(11, T, OTHER),
            sw(12, OTHER, T),
            sw(13, T, OTHER),
            sw(16, OTHER, T),
            sw(100, T, OTHER),
        ];
        // Segments: [10,11) + [12,13) + [16,18) = 4 ms.
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(18), T, &sched);
        assert_eq!(et, Nanos::from_millis(4));
    }

    #[test]
    fn events_outside_window_ignored() {
        let sched = vec![sw(5, T, OTHER), sw(8, OTHER, T), sw(25, T, OTHER)];
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(10));
    }

    #[test]
    fn unrelated_threads_ignored() {
        let third = Pid::new(9);
        let sched = vec![sw(12, OTHER, third), sw(14, third, OTHER)];
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(10));
    }

    #[test]
    fn preempted_at_trace_end_without_final_event() {
        // Thread descheduled at 12, never rescheduled before `end` and no
        // event after `end` exists: only [10,12) counts.
        let sched = vec![sw(12, T, OTHER)];
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(2));
    }

    #[test]
    fn boundary_events_excluded() {
        // Switches exactly at start/end are outside the strict window.
        let sched = vec![sw(10, OTHER, T), sw(20, T, OTHER)];
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(10));
    }

    #[test]
    fn wakeups_do_not_affect_measurement() {
        let mut sched = vec![sw(12, T, OTHER)];
        sched.push(SchedEvent::wakeup(Nanos::from_millis(13), Cpu::new(0), T, Priority::NORMAL));
        sched.push(sw(14, OTHER, T));
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(20), T, &sched);
        assert_eq!(et, Nanos::from_millis(8));
    }

    #[test]
    fn zero_length_window() {
        let et = execution_time(Nanos::from_millis(10), Nanos::from_millis(10), T, &[]);
        assert_eq!(et, Nanos::ZERO);
    }
}
