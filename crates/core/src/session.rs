//! Incremental model synthesis over streamed trace segments.
//!
//! The batch pipeline materializes a whole run as one [`Trace`] and then
//! synthesizes — which caps run length at available memory. A
//! [`SynthesisSession`] instead consumes the run as a sequence of bounded
//! segments ([`rtms_trace::TraceSegment`]) and keeps only *derived* state
//! between segments:
//!
//! - per node, the open callback instance (Algorithm 1's walker state,
//!   including an online Algorithm 2 execution-time clock) and the
//!   callback list folded so far;
//! - the unmatched service interaction tables — request writes awaiting
//!   their `take_request` (`FindCaller`) and response writes awaiting the
//!   client-side dispatch decision (`FindClient`) — which shrink again as
//!   interactions complete.
//!
//! [`SynthesisSession::model`] can be called at any point and returns
//! exactly what batch [`crate::synthesize`] would return for the events
//! fed so far; the batch entry points are thin wrappers that feed one
//! segment. Equivalence holds for *causally ordered* streams (a sample's
//! `dds_write` precedes its `take_*` events, as any real trace satisfies)
//! segmented at arbitrary points — pinned down to the byte by the
//! streaming-equivalence suite, including one-event segments.

use crate::alg1::cat_id;
use crate::cblist::{CallbackRecord, CbList};
use crate::dag::Dag;
use crate::stats::ExecStats;
use rtms_trace::{
    CallbackId, CallbackKind, MergedEvents, Nanos, OwnedSegmentEvent, Pid, RosEvent, RosPayload,
    SchedEvent, SchedEventKind, SegmentCursor, SegmentEvent, SourceTimestamp, Topic, Trace,
    TraceSegment,
};
use rtms_util::FxHashMap;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Online Algorithm 2: accumulates the CPU execution time of one open
/// callback instance as `sched_switch` events stream past.
///
/// Matches the batch [`crate::execution_time`] semantics exactly: events at
/// `time <= start` are ignored, events at `time == end` are excluded. The
/// end is unknown while streaming, so the clock snapshots its state before
/// the first event at the newest timestamp; if the instance then ends at
/// exactly that timestamp, the snapshot rolls those events back.
#[derive(Debug, Clone)]
struct ExecClock {
    start: Nanos,
    exec: Nanos,
    last_start: Nanos,
    running: bool,
    max_time: Nanos,
    snapshot: Option<(Nanos, Nanos, bool)>,
}

impl ExecClock {
    fn new(start: Nanos) -> ExecClock {
        ExecClock {
            start,
            exec: Nanos::ZERO,
            last_start: start,
            running: true, // T is running when the CB start event fires
            max_time: start,
            snapshot: None,
        }
    }

    fn on_switch(&mut self, time: Nanos, prev: Pid, next: Pid, pid: Pid) {
        if time <= self.start {
            return;
        }
        if time > self.max_time {
            self.snapshot = Some((self.exec, self.last_start, self.running));
            self.max_time = time;
        }
        if prev == pid {
            if self.running {
                self.exec += time - self.last_start;
                self.running = false;
            }
        } else if next == pid {
            self.last_start = time;
            self.running = true;
        }
    }

    fn finalize(mut self, end: Nanos) -> Nanos {
        if self.max_time == end {
            // Events at exactly `end` are outside the strict window
            // (Algorithm 2, line 4): roll them back.
            if let Some((exec, last_start, running)) = self.snapshot {
                self.exec = exec;
                self.last_start = last_start;
                self.running = running;
            }
        }
        if self.running {
            self.exec += end - self.last_start;
        }
        self.exec
    }
}

/// One published topic of an instance: already decorated, or awaiting the
/// client-side dispatch decision of a service response (`FindClient`).
#[derive(Debug, Clone)]
enum OutSlot {
    Ready(Arc<str>),
    AwaitClient { topic: Topic, src_ts: SourceTimestamp },
}

/// A callback instance currently being assembled (between its start and
/// end events, which may lie in different segments).
#[derive(Debug)]
struct OpenInstance {
    seq: u64,
    kind: CallbackKind,
    start: Nanos,
    id: Option<CallbackId>,
    in_topic: Option<Arc<str>>,
    outs: Vec<OutSlot>,
    unresolved: usize,
    sync: bool,
    clock: ExecClock,
}

impl OpenInstance {
    fn new(seq: u64, kind: CallbackKind, start: Nanos) -> OpenInstance {
        OpenInstance {
            seq,
            kind,
            start,
            id: None,
            in_topic: None,
            outs: Vec::new(),
            unresolved: 0,
            sync: false,
            clock: ExecClock::new(start),
        }
    }
}

/// A completed instance whose response decorations are not all known yet.
/// It folds into the callback list as soon as it is fully resolved — but
/// never before an earlier instance of the same node, so entries keep the
/// first-seen order batch extraction produces.
#[derive(Debug)]
struct PendingInstance {
    seq: u64,
    id: CallbackId,
    kind: CallbackKind,
    in_topic: Option<Arc<str>>,
    outs: Vec<OutSlot>,
    unresolved: usize,
    sync: bool,
    start: Nanos,
    exec: Nanos,
}

/// Per-node (per-PID) walker state.
#[derive(Debug, Default)]
struct PidState {
    wip: Option<OpenInstance>,
    /// The last `timer_call`/`take_*` identity event since the last
    /// callback start — what `FindCaller`'s backward scan would find.
    last_identity: Option<CallbackId>,
    /// Response observations of this node awaiting its next
    /// `take_type_erased_response` dispatch decision: `(srcTS, topic,
    /// observation index)`.
    awaiting_dispatch: Vec<(SourceTimestamp, Topic, usize)>,
    pending: VecDeque<PendingInstance>,
    list: CbList,
}

/// Widest `pid - base` span [`NodeTable`]'s dense vector will grow to
/// cover before spilling to the fallback map.
const DENSE_PID_WINDOW: usize = 1 << 16;

/// Dense PID-indexed storage for [`PidState`].
///
/// Every event consults the state of its PID, making this the hottest
/// map in the walker. Simulated PIDs are allocated sequentially from a
/// common base (one executor thread per node), so states live in a
/// vector directly indexed by `pid - base` — an add and a bounds check
/// per event instead of a hash probe. PIDs far outside that window
/// (possible in hand-built traces) spill to a hash map with identical
/// semantics.
#[derive(Debug, Default)]
struct NodeTable {
    /// The first PID inserted; dense slots cover `base..base + len`.
    base: u32,
    dense: Vec<Option<PidState>>,
    /// States for PIDs outside the dense window.
    spill: FxHashMap<Pid, PidState>,
}

impl NodeTable {
    #[inline]
    fn slot(&self, pid: Pid) -> usize {
        pid.get().wrapping_sub(self.base) as usize
    }

    #[inline]
    fn get(&self, pid: Pid) -> Option<&PidState> {
        match self.dense.get(self.slot(pid)) {
            Some(state) => state.as_ref(),
            None if self.spill.is_empty() => None,
            None => self.spill.get(&pid),
        }
    }

    #[inline]
    fn get_mut(&mut self, pid: Pid) -> Option<&mut PidState> {
        let slot = self.slot(pid);
        match self.dense.get_mut(slot) {
            Some(state) => state.as_mut(),
            None if self.spill.is_empty() => None,
            None => self.spill.get_mut(&pid),
        }
    }

    /// The state for `pid`, created default if absent.
    #[inline]
    fn entry(&mut self, pid: Pid) -> &mut PidState {
        if self.dense.is_empty() && self.spill.is_empty() {
            self.base = pid.get();
        }
        let slot = self.slot(pid);
        if slot < DENSE_PID_WINDOW {
            if slot >= self.dense.len() {
                self.dense.resize_with(slot + 1, || None);
            }
            self.dense[slot].get_or_insert_with(PidState::default)
        } else {
            self.spill.entry(pid).or_default()
        }
    }

    /// All `(pid, state)` pairs, in unspecified order.
    fn iter(&self) -> impl Iterator<Item = (Pid, &PidState)> {
        let base = self.base;
        self.dense
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| Some((Pid::new(base.wrapping_add(i as u32)), s.as_ref()?)))
            .chain(self.spill.iter().map(|(pid, s)| (*pid, s)))
    }
}

/// A service-request `dds_write` not yet matched by its `take_request`,
/// with the caller identity resolved at write time.
#[derive(Debug)]
struct WriteEntry {
    topic: Topic,
    caller: Option<CallbackId>,
}

/// One `take_response` observation: the reading client callback and the
/// dispatch decision of the next P14 event in its node (if seen).
#[derive(Debug)]
struct RespObs {
    callback: CallbackId,
    dispatch: Option<bool>,
}

/// An instance output slot waiting for a response key to resolve.
#[derive(Debug)]
struct Waiter {
    pid: Pid,
    seq: u64,
    slot: usize,
}

/// The response observations and waiting writers of one
/// `(topic, srcTS)` service-response key.
#[derive(Debug)]
struct RespState {
    topic: Topic,
    obs: Vec<RespObs>,
    waiters: Vec<Waiter>,
}

/// Incremental synthesis over streamed trace segments.
///
/// Feed segments (or whole traces) in chronological order with
/// [`SynthesisSession::feed_segment`] / [`SynthesisSession::feed_trace`];
/// call [`SynthesisSession::model`] at any point for the timing model of
/// everything fed so far. The session is an [`rtms_trace::EventSink`], so a
/// running world can drain tracer buffers straight into it.
///
/// # Example
///
/// ```
/// use rtms_core::{synthesize, SynthesisSession};
/// use rtms_trace::{split_by_events, CallbackId, CallbackKind, Nanos, Pid, RosEvent, RosPayload, Trace};
///
/// let pid = Pid::new(5);
/// let mut trace = Trace::new();
/// for (ms, payload) in [
///     (0, RosPayload::CallbackStart { kind: CallbackKind::Timer }),
///     (0, RosPayload::TimerCall { callback: CallbackId::new(1) }),
///     (3, RosPayload::CallbackEnd { kind: CallbackKind::Timer }),
/// ] {
///     trace.push_ros(RosEvent::new(Nanos::from_millis(ms), pid, payload));
/// }
///
/// let mut session = SynthesisSession::new();
/// for segment in split_by_events(&trace, 1) {
///     session.feed_segment(&segment);
/// }
/// assert_eq!(session.model(), synthesize(&trace));
/// ```
#[derive(Debug)]
pub struct SynthesisSession {
    names: Arc<HashMap<Pid, String>>,
    /// Per-node walker state, direct-indexed by PID: consulted for every
    /// event of both streams; read paths that need PID order sort on read.
    nodes: NodeTable,
    writes: FxHashMap<SourceTimestamp, Vec<WriteEntry>>,
    responses: FxHashMap<SourceTimestamp, Vec<RespState>>,
    /// Events pushed through the `EventSink` interface, pending a
    /// [`SynthesisSession::flush`].
    buffer: TraceSegment,
    next_seq: u64,
    segments_fed: usize,
    events_fed: u64,
    peak_segment_events: usize,
    peak_watermark: usize,
}

impl Default for SynthesisSession {
    fn default() -> Self {
        SynthesisSession::new()
    }
}

impl SynthesisSession {
    /// Creates an empty session. Node names are learned from the P1
    /// (`NodeInit`) events in the stream.
    pub fn new() -> SynthesisSession {
        SynthesisSession::with_names(Arc::new(HashMap::new()))
    }

    /// Creates a session seeded with a shared PID → node-name map — the map
    /// extracted from the INIT segment of an earlier session or run. The
    /// `Arc` is stored as-is, so any number of sessions can share one map
    /// without re-cloning it; the map is only copied (once, copy-on-write)
    /// if the stream contains a P1 event with a *new* name.
    pub fn with_names(names: Arc<HashMap<Pid, String>>) -> SynthesisSession {
        SynthesisSession {
            names,
            nodes: NodeTable::default(),
            writes: FxHashMap::default(),
            responses: FxHashMap::default(),
            buffer: TraceSegment::new(),
            next_seq: 0,
            segments_fed: 0,
            events_fed: 0,
            peak_segment_events: 0,
            peak_watermark: 0,
        }
    }

    /// Consumes everything pushed through the [`rtms_trace::EventSink`]
    /// interface since the last flush, as one segment. Events pushed via
    /// the sink are buffered (a drain delivers the ROS2 and scheduler
    /// streams back to back, not merged), so call this once per drained
    /// segment — e.g. after `Ros2World::trace_into(&mut session, ..)`.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let segment = std::mem::take(&mut self.buffer);
        self.feed_segment_owned(segment);
    }

    /// The PID → node-name map accumulated so far (seed map plus streamed
    /// P1 events). Clone the `Arc` to share it with later sessions.
    pub fn names(&self) -> &Arc<HashMap<Pid, String>> {
        &self.names
    }

    /// Consumes one trace segment. Events are walked chronologically
    /// (both streams merged by timestamp); the segment can be dropped
    /// afterwards — the session retains only derived state.
    pub fn feed_segment(&mut self, segment: &TraceSegment) {
        if segment.is_sorted_by_time() {
            self.feed_sorted_slices(segment.ros_events(), segment.sched_events(), segment.len());
        } else {
            self.feed_cursor(segment.cursor(), segment.len());
        }
    }

    /// Consumes a whole trace as one segment.
    pub fn feed_trace(&mut self, trace: &Trace) {
        if trace.is_sorted_by_time() {
            self.feed_trace_sorted(trace)
        } else {
            self.feed_cursor(trace.cursor(), trace.len());
        }
    }

    /// Direct two-pointer walk for a trace whose streams are already
    /// chronologically sorted (see `feed_sorted_slices`).
    fn feed_trace_sorted(&mut self, trace: &Trace) {
        self.feed_sorted_slices(trace.ros_events(), trace.sched_events(), trace.len());
    }

    /// Consumes one trace segment *by value*. Equivalent to
    /// [`SynthesisSession::feed_segment`], but payload allocations (topic
    /// name `Arc`s, P1 node names) are moved into the session's state
    /// instead of cloned — the zero-copy half of the sink → session →
    /// model pipeline. [`SynthesisSession::flush`] ingests this way.
    pub fn feed_segment_owned(&mut self, segment: TraceSegment) {
        let len = segment.len();
        self.feed_merged(segment.into_merged(), len);
    }

    /// Consumes a whole trace by value as one segment, like
    /// [`SynthesisSession::feed_segment_owned`].
    pub fn feed_trace_owned(&mut self, trace: Trace) {
        let len = trace.len();
        self.feed_merged(trace.into_merged(), len);
    }

    /// Replays a recorded segment file into the session: reads every
    /// remaining segment from `reader` (in file order — the run order they
    /// were recorded in) and feeds each one. Returns the number of
    /// segments consumed.
    ///
    /// Decode is *fused* into the synthesis walk: segment frames store
    /// their records in exactly the merged chronological order the walker
    /// consumes, so each event goes codec → state machine with no
    /// intermediate segment buffer, no re-sort, and no cursor merge.
    /// Replay memory is one frame buffer, and the
    /// per-event cost is decode plus the same `on_ros`/`on_sched` work
    /// the live path does. Feeding a reader positioned at the
    /// start of a file recorded by `Ros2World::record_segments` yields a
    /// model byte-identical to the live run's (pinned by the
    /// record-replay equivalence suite).
    ///
    /// # Errors
    ///
    /// Returns the first decode error; segments already fed stay fed.
    pub fn feed_reader<R: std::io::Read>(
        &mut self,
        reader: &mut rtms_trace::SegmentReader<R>,
    ) -> Result<usize, rtms_trace::CodecError> {
        let mut segments = 0;
        loop {
            let result = reader.next_segment_events(|event| match event {
                OwnedSegmentEvent::Ros(e) => self.on_ros_owned(e),
                OwnedSegmentEvent::Sched(e) => self.on_sched(&e),
            })?;
            match result {
                Some((_, len)) => {
                    // The event count is only known once the frame is
                    // walked; begin/end bookkeeping adjusts counters, so
                    // running both afterwards is equivalent.
                    self.begin_feed(len);
                    self.end_feed(len);
                    segments += 1;
                }
                None => return Ok(segments),
            }
        }
    }

    fn begin_feed(&mut self, len: usize) {
        self.segments_fed += 1;
        self.events_fed += len as u64;
        self.peak_segment_events = self.peak_segment_events.max(len);
    }

    fn end_feed(&mut self, len: usize) {
        let watermark = len + self.retained_entries();
        self.peak_watermark = self.peak_watermark.max(watermark);
    }

    /// The hot-path twin of `feed_cursor` for pre-sorted streams: a direct
    /// two-pointer merge over the event slices, with no index tables and
    /// no per-segment allocation. Ordering is identical to
    /// [`SegmentCursor`]'s contract — each stream in (already-)stable time
    /// order, the ROS2 event first on a cross-stream timestamp tie — so
    /// the derived model is byte-identical whichever path runs. Segments
    /// produced by `Ros2World::trace_segments` arrive sorted (the segment
    /// contract), so in steady state this path is the one that runs.
    fn feed_sorted_slices(&mut self, ros: &[RosEvent], sched: &[SchedEvent], len: usize) {
        self.begin_feed(len);
        let (mut ri, mut si) = (0, 0);
        while ri < ros.len() && si < sched.len() {
            if ros[ri].time <= sched[si].time {
                self.on_ros(&ros[ri]);
                ri += 1;
            } else {
                self.on_sched(&sched[si]);
                si += 1;
            }
        }
        for e in &ros[ri..] {
            self.on_ros(e);
        }
        for e in &sched[si..] {
            self.on_sched(e);
        }
        self.end_feed(len);
    }

    fn feed_cursor(&mut self, cursor: SegmentCursor<'_>, len: usize) {
        self.begin_feed(len);
        for event in cursor {
            match event {
                SegmentEvent::Ros(e) => self.on_ros(e),
                SegmentEvent::Sched(e) => self.on_sched(e),
            }
        }
        self.end_feed(len);
    }

    fn feed_merged(&mut self, events: MergedEvents, len: usize) {
        self.begin_feed(len);
        for event in events {
            match event {
                OwnedSegmentEvent::Ros(e) => self.on_ros_owned(e),
                OwnedSegmentEvent::Sched(e) => self.on_sched(&e),
            }
        }
        self.end_feed(len);
    }

    /// By-value twin of [`SynthesisSession::on_ros`]: the only payload the
    /// by-ref walker has to copy is the P1 node name, so take ownership of
    /// that one here and borrow for everything else.
    fn on_ros_owned(&mut self, e: RosEvent) {
        if let RosPayload::NodeInit { node_name } = e.payload {
            if self.names.get(&e.pid) != Some(&node_name) {
                Arc::make_mut(&mut self.names).insert(e.pid, node_name);
            }
            return;
        }
        self.on_ros(&e);
    }

    fn on_ros(&mut self, e: &RosEvent) {
        let pid = e.pid;
        match &e.payload {
            RosPayload::NodeInit { node_name } => {
                if self.names.get(&pid) != Some(node_name) {
                    Arc::make_mut(&mut self.names).insert(pid, node_name.clone());
                }
            }
            RosPayload::CallbackStart { kind } => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let st = self.nodes.entry(pid);
                st.last_identity = None;
                st.wip = Some(OpenInstance::new(seq, *kind, e.time));
            }
            RosPayload::TimerCall { callback } => {
                let st = self.nodes.entry(pid);
                st.last_identity = Some(*callback);
                if let Some(w) = st.wip.as_mut() {
                    w.id = Some(*callback);
                }
            }
            RosPayload::TakeData { callback, topic, .. } => {
                let st = self.nodes.entry(pid);
                st.last_identity = Some(*callback);
                if let Some(w) = st.wip.as_mut() {
                    w.id = Some(*callback);
                    // Shared, not copied: the name allocation travels from
                    // the tracer event into the record unchanged.
                    w.in_topic = Some(topic.name_arc().clone());
                }
            }
            RosPayload::TakeRequest { callback, topic, src_ts } => {
                // `FindCaller`, online: the matching request write (if
                // traced) streamed past earlier and recorded its caller;
                // the unique server consumes the entry.
                let in_wip =
                    self.nodes.get(pid).is_some_and(|s| s.wip.is_some());
                let caller = if in_wip { self.consume_write(topic, *src_ts) } else { None };
                let st = self.nodes.entry(pid);
                st.last_identity = Some(*callback);
                if let Some(w) = st.wip.as_mut() {
                    w.id = Some(*callback);
                    w.in_topic = Some(cat_id(topic, caller));
                }
            }
            RosPayload::TakeResponse { callback, topic, src_ts } => {
                // Record the observation under its response key (the key
                // exists iff the traced response write is waiting on it)
                // and queue it for this node's next dispatch decision.
                let mut obs_idx = None;
                if let Some(states) = self.responses.get_mut(src_ts) {
                    if let Some(rs) = states.iter_mut().find(|r| &r.topic == topic) {
                        rs.obs.push(RespObs { callback: *callback, dispatch: None });
                        obs_idx = Some(rs.obs.len() - 1);
                    }
                }
                let st = self.nodes.entry(pid);
                st.last_identity = Some(*callback);
                if let Some(i) = obs_idx {
                    st.awaiting_dispatch.push((*src_ts, topic.clone(), i));
                }
                if let Some(w) = st.wip.as_mut() {
                    w.id = Some(*callback);
                    w.in_topic = Some(cat_id(topic, Some(*callback)));
                }
            }
            RosPayload::DdsWrite { topic, src_ts } => self.on_write(pid, topic, *src_ts),
            RosPayload::ClientDispatch { will_dispatch } => {
                let awaiting = {
                    let st = self.nodes.entry(pid);
                    if !*will_dispatch {
                        st.wip = None; // instance will not be dispatched (line 25)
                    }
                    std::mem::take(&mut st.awaiting_dispatch)
                };
                for (src_ts, topic, obs_idx) in awaiting {
                    if let Some(states) = self.responses.get_mut(&src_ts) {
                        if let Some(rs) = states.iter_mut().find(|r| r.topic == topic) {
                            rs.obs[obs_idx].dispatch = Some(*will_dispatch);
                        }
                    }
                    self.try_commit_response(src_ts, &topic);
                }
            }
            RosPayload::SyncSubscribe => {
                if let Some(w) = self.nodes.entry(pid).wip.as_mut() {
                    w.sync = true;
                }
            }
            RosPayload::CallbackEnd { .. } => {
                let st = self.nodes.entry(pid);
                let Some(w) = st.wip.take() else { return };
                let Some(id) = w.id else { return }; // unidentifiable instance
                let exec = w.clock.finalize(e.time);
                st.pending.push_back(PendingInstance {
                    seq: w.seq,
                    id,
                    kind: w.kind,
                    in_topic: w.in_topic,
                    outs: w.outs,
                    unresolved: w.unresolved,
                    sync: w.sync,
                    start: w.start,
                    exec,
                });
                Self::fold_ready(pid, st);
            }
        }
    }

    fn on_write(&mut self, pid: Pid, topic: &Topic, src_ts: SourceTimestamp) {
        if topic.is_service_request() {
            // Record the caller (`FindCaller` resolved at write time);
            // the first write per key wins, like the batch index.
            let caller = self.nodes.get(pid).and_then(|s| s.last_identity);
            let entries = self.writes.entry(src_ts).or_default();
            if !entries.iter().any(|w| &w.topic == topic) {
                entries.push(WriteEntry { topic: topic.clone(), caller });
            }
        }
        let Some((seq, own)) =
            self.nodes.get(pid).and_then(|s| s.wip.as_ref().map(|w| (w.seq, w.id)))
        else {
            return;
        };
        let slot = if topic.is_service_request() {
            OutSlot::Ready(cat_id(topic, own))
        } else if topic.is_service_response() {
            OutSlot::AwaitClient { topic: topic.clone(), src_ts }
        } else {
            OutSlot::Ready(topic.name_arc().clone())
        };
        let awaits_client = matches!(slot, OutSlot::AwaitClient { .. });
        let st = self.nodes.get_mut(pid).expect("wip implies state");
        let w = st.wip.as_mut().expect("checked above");
        w.outs.push(slot);
        if awaits_client {
            let waiter = Waiter { pid, seq, slot: w.outs.len() - 1 };
            w.unresolved += 1;
            let states = self.responses.entry(src_ts).or_default();
            match states.iter_mut().find(|r| &r.topic == topic) {
                Some(rs) => rs.waiters.push(waiter),
                None => states.push(RespState {
                    topic: topic.clone(),
                    obs: Vec::new(),
                    waiters: vec![waiter],
                }),
            }
        }
    }

    /// Looks up (and consumes) the recorded caller of a request write.
    fn consume_write(&mut self, topic: &Topic, src_ts: SourceTimestamp) -> Option<CallbackId> {
        let entries = self.writes.get_mut(&src_ts)?;
        let i = entries.iter().position(|w| &w.topic == topic)?;
        let entry = entries.swap_remove(i);
        if entries.is_empty() {
            self.writes.remove(&src_ts);
        }
        entry.caller
    }

    /// Commits a response key once its `FindClient` outcome can no longer
    /// change: the chronologically first dispatched-true observation, with
    /// every earlier observation decided. Delivers the client identity to
    /// all waiting output slots and drops the key.
    fn try_commit_response(&mut self, src_ts: SourceTimestamp, topic: &Topic) {
        let Some(states) = self.responses.get_mut(&src_ts) else { return };
        let Some(idx) = states.iter().position(|r| &r.topic == topic) else { return };
        let mut client = None;
        for obs in &states[idx].obs {
            match obs.dispatch {
                None => return, // an earlier observation is still undecided
                Some(true) => {
                    client = Some(obs.callback);
                    break;
                }
                Some(false) => {}
            }
        }
        // All decided-false so far: a future take of the same response
        // could still dispatch, so the key must stay open.
        let Some(client) = client else { return };
        let resolved = states.swap_remove(idx);
        if states.is_empty() {
            self.responses.remove(&src_ts);
        }
        for waiter in resolved.waiters {
            self.deliver(waiter, &resolved.topic, client);
        }
    }

    /// Fills a waiting output slot with the resolved client decoration.
    fn deliver(&mut self, waiter: Waiter, topic: &Topic, client: CallbackId) {
        let Some(st) = self.nodes.get_mut(waiter.pid) else { return };
        let resolved = OutSlot::Ready(cat_id(topic, Some(client)));
        if let Some(w) = st.wip.as_mut().filter(|w| w.seq == waiter.seq) {
            w.outs[waiter.slot] = resolved;
            w.unresolved -= 1;
            return;
        }
        if let Some(p) = st.pending.iter_mut().find(|p| p.seq == waiter.seq) {
            p.outs[waiter.slot] = resolved;
            p.unresolved -= 1;
            Self::fold_ready(waiter.pid, st);
        }
        // Otherwise the instance was discarded (undispatched client): the
        // resolution has nowhere to go.
    }

    /// Folds fully resolved pending instances into the node's callback
    /// list, strictly in completion order. Everything is moved, not
    /// cloned, and folding a repeat instance of a known callback touches
    /// no allocator at all ([`CbList::fold_instance`]).
    fn fold_ready(pid: Pid, st: &mut PidState) {
        while st.pending.front().is_some_and(|p| p.unresolved == 0) {
            let p = st.pending.pop_front().expect("checked front");
            let outs: Vec<Arc<str>> = p
                .outs
                .into_iter()
                .map(|slot| match slot {
                    OutSlot::Ready(s) => s,
                    OutSlot::AwaitClient { .. } => unreachable!("unresolved == 0"),
                })
                .collect();
            st.list.fold_instance(pid, p.id, p.kind, p.in_topic, outs, p.sync, p.exec, p.start);
        }
    }

    fn finished_record(pid: Pid, p: &PendingInstance, outs: Vec<Arc<str>>) -> CallbackRecord {
        CallbackRecord {
            pid,
            id: p.id,
            kind: p.kind,
            in_topic: p.in_topic.clone(),
            out_topics: outs,
            is_sync_subscriber: p.sync,
            stats: ExecStats::from_samples([p.exec]),
            exec_times: vec![p.exec],
            start_times: vec![p.start],
        }
    }

    fn on_sched(&mut self, e: &SchedEvent) {
        let SchedEventKind::Switch { prev_pid, next_pid, .. } = &e.kind else {
            return; // wakeups do not put a thread on a CPU
        };
        let involved = [*prev_pid, *next_pid];
        let targets = if prev_pid == next_pid { &involved[..1] } else { &involved[..] };
        for &pid in targets {
            if let Some(w) = self.nodes.get_mut(pid).and_then(|s| s.wip.as_mut()) {
                w.clock.on_switch(e.time, *prev_pid, *next_pid, pid);
            }
        }
    }

    /// The per-node callback lists for everything fed so far, sorted by
    /// PID, empty lists omitted — exactly what batch
    /// [`crate::synthesize_per_node`] returns for the same events.
    ///
    /// Pending instances are resolved against the current interaction
    /// tables without consuming them (a response still awaiting its
    /// dispatch decorates as `unknown`, as batch extraction would on a
    /// trace cut at this point); feeding may continue afterwards.
    pub fn callback_lists(&self) -> Vec<(Pid, CbList)> {
        let mut lists = Vec::new();
        let mut entries: Vec<(Pid, &PidState)> = self.nodes.iter().collect();
        entries.sort_unstable_by_key(|&(pid, _)| pid);
        for (pid, st) in entries {
            let mut list = st.list.clone();
            for p in &st.pending {
                let outs = p
                    .outs
                    .iter()
                    .map(|slot| match slot {
                        OutSlot::Ready(s) => s.clone(),
                        OutSlot::AwaitClient { topic, src_ts } => {
                            cat_id(topic, self.peek_client(*src_ts, topic))
                        }
                    })
                    .collect();
                list.add_instance(Self::finished_record(pid, p, outs));
            }
            if !list.is_empty() {
                lists.push((pid, list));
            }
        }
        lists
    }

    /// `FindClient` against the current tables, without committing: the
    /// first observation known to dispatch.
    fn peek_client(&self, src_ts: SourceTimestamp, topic: &Topic) -> Option<CallbackId> {
        let states = self.responses.get(&src_ts)?;
        let rs = states.iter().find(|r| &r.topic == topic)?;
        rs.obs.iter().find(|o| o.dispatch == Some(true)).map(|o| o.callback)
    }

    /// Synthesizes the timing model of everything fed so far, using the
    /// session's accumulated node-name map. Callable at any point; the
    /// session can keep consuming segments afterwards.
    pub fn model(&self) -> Dag {
        Dag::from_cblists(&self.callback_lists(), &self.names)
    }

    /// Like [`SynthesisSession::model`], but with an explicitly supplied
    /// node-name map (for streams whose P1 events live elsewhere).
    pub fn model_with_names(&self, names: &HashMap<Pid, String>) -> Dag {
        Dag::from_cblists(&self.callback_lists(), names)
    }

    /// Number of segments fed so far.
    pub fn segments_fed(&self) -> usize {
        self.segments_fed
    }

    /// Total events (both streams) fed so far.
    pub fn events_fed(&self) -> u64 {
        self.events_fed
    }

    /// The largest single segment fed so far, in events.
    pub fn peak_segment_events(&self) -> usize {
        self.peak_segment_events
    }

    /// Derived entries currently retained across segment boundaries: open
    /// and pending instances, unmatched request writes, and open response
    /// keys (with their observations). This — not the events themselves —
    /// is all the session keeps between segments.
    pub fn retained_entries(&self) -> usize {
        let instances: usize = self
            .nodes
            .iter()
            .map(|(_, s)| s.pending.len() + usize::from(s.wip.is_some()))
            .sum();
        let writes: usize = self.writes.values().map(Vec::len).sum();
        let responses: usize = self
            .responses
            .values()
            .map(|v| v.iter().map(|r| r.obs.len() + 1).sum::<usize>())
            .sum();
        instances + writes + responses
    }

    /// Peak memory watermark, in event-equivalents: the maximum over all
    /// feeds of segment size plus retained derived entries. For a bounded
    /// segment size this stays bounded no matter how long the run is —
    /// the property the `streaming` experiment asserts.
    pub fn peak_watermark(&self) -> usize {
        self.peak_watermark
    }
}

impl rtms_trace::EventSink for SynthesisSession {
    fn push_ros(&mut self, event: RosEvent) {
        rtms_trace::EventSink::push_ros(&mut self.buffer, event);
    }
    fn push_sched(&mut self, event: SchedEvent) {
        rtms_trace::EventSink::push_sched(&mut self.buffer, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::synthesize;
    use rtms_trace::{split_by_events, Cpu, Priority, ThreadState};

    fn ros(ms: u64, pid: u32, payload: RosPayload) -> RosEvent {
        RosEvent::new(Nanos::from_millis(ms), Pid::new(pid), payload)
    }

    fn sw(ms: u64, prev: u32, next: u32) -> SchedEvent {
        SchedEvent::switch(
            Nanos::from_millis(ms),
            Cpu::new(0),
            Pid::new(prev),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(next),
            Priority::NORMAL,
        )
    }

    /// A trace exercising every cross-segment hazard: a preempted timer
    /// callback, a two-node service interaction (request decoration via
    /// the write table, response decoration via the dispatch decision),
    /// and an undispatched client instance.
    fn service_trace() -> Trace {
        let rq = || Topic::service_request("/sv");
        let rs = || Topic::service_response("/sv");
        let mut t = Trace::new();
        t.push_ros(ros(0, 1, RosPayload::NodeInit { node_name: "caller".into() }));
        t.push_ros(ros(0, 3, RosPayload::NodeInit { node_name: "server".into() }));
        // Timer on pid 1 calls the service; preempted 2..4.
        t.push_ros(ros(1, 1, RosPayload::CallbackStart { kind: CallbackKind::Timer }));
        t.push_ros(ros(1, 1, RosPayload::TimerCall { callback: CallbackId::new(0x11) }));
        t.push_sched(sw(2, 1, 9));
        t.push_sched(sw(4, 9, 1));
        t.push_ros(ros(5, 1, RosPayload::DdsWrite {
            topic: rq(),
            src_ts: SourceTimestamp::new(100),
        }));
        t.push_ros(ros(5, 1, RosPayload::CallbackEnd { kind: CallbackKind::Timer }));
        // Server handles the request and responds.
        t.push_ros(ros(6, 3, RosPayload::CallbackStart { kind: CallbackKind::Service }));
        t.push_ros(ros(6, 3, RosPayload::TakeRequest {
            callback: CallbackId::new(0x33),
            topic: rq(),
            src_ts: SourceTimestamp::new(100),
        }));
        t.push_ros(ros(8, 3, RosPayload::DdsWrite {
            topic: rs(),
            src_ts: SourceTimestamp::new(200),
        }));
        t.push_ros(ros(8, 3, RosPayload::CallbackEnd { kind: CallbackKind::Service }));
        // Client instance on pid 1: dispatched.
        t.push_ros(ros(9, 1, RosPayload::CallbackStart { kind: CallbackKind::Client }));
        t.push_ros(ros(9, 1, RosPayload::TakeResponse {
            callback: CallbackId::new(0x21),
            topic: rs(),
            src_ts: SourceTimestamp::new(200),
        }));
        t.push_ros(ros(9, 1, RosPayload::ClientDispatch { will_dispatch: true }));
        t.push_ros(ros(10, 1, RosPayload::CallbackEnd { kind: CallbackKind::Client }));
        // A second, undispatched client instance on pid 2.
        t.push_ros(ros(9, 2, RosPayload::CallbackStart { kind: CallbackKind::Client }));
        t.push_ros(ros(9, 2, RosPayload::TakeResponse {
            callback: CallbackId::new(0x22),
            topic: rs(),
            src_ts: SourceTimestamp::new(200),
        }));
        t.push_ros(ros(9, 2, RosPayload::ClientDispatch { will_dispatch: false }));
        t.push_ros(ros(9, 2, RosPayload::CallbackEnd { kind: CallbackKind::Client }));
        t.sort_by_time();
        t
    }

    #[test]
    fn one_event_segments_equal_batch() {
        let trace = service_trace();
        let batch = synthesize(&trace);
        for per_segment in [1usize, 2, 3, 5, 1000] {
            let mut session = SynthesisSession::new();
            for seg in split_by_events(&trace, per_segment) {
                session.feed_segment(&seg);
            }
            assert_eq!(session.model(), batch, "segment size {per_segment}");
        }
    }

    #[test]
    fn model_at_any_point_equals_batch_on_prefix() {
        let trace = service_trace();
        let segments = split_by_events(&trace, 4);
        let mut session = SynthesisSession::new();
        let mut prefix = Trace::new();
        for seg in &segments {
            session.feed_segment(seg);
            for e in seg.ros_events() {
                prefix.push_ros(e.clone());
            }
            for e in seg.sched_events() {
                prefix.push_sched(e.clone());
            }
            assert_eq!(session.model(), synthesize(&prefix));
        }
        // Calling model() must not disturb subsequent feeding: final model
        // still matches the full batch.
        assert_eq!(session.model(), synthesize(&trace));
    }

    #[test]
    fn preemption_measured_across_boundaries() {
        let trace = service_trace();
        let mut session = SynthesisSession::new();
        for seg in split_by_events(&trace, 1) {
            session.feed_segment(&seg);
        }
        let lists = session.callback_lists();
        let (_, caller) = lists.iter().find(|(p, _)| *p == Pid::new(1)).expect("pid 1");
        let timer = caller
            .entries()
            .iter()
            .find(|e| e.kind == CallbackKind::Timer)
            .expect("timer entry");
        // Window [1,5] ms minus preemption [2,4) = 2 ms.
        assert_eq!(timer.stats.mwcet(), Some(Nanos::from_millis(2)));
        assert_eq!(timer.out_topics, [Arc::from("/svRequest#cb:0x11")]);
    }

    #[test]
    fn request_and_response_decorations_resolve_across_segments() {
        let trace = service_trace();
        let mut session = SynthesisSession::new();
        for seg in split_by_events(&trace, 1) {
            session.feed_segment(&seg);
        }
        let lists = session.callback_lists();
        let (_, server) = lists.iter().find(|(p, _)| *p == Pid::new(3)).expect("pid 3");
        let sv = &server.entries()[0];
        assert_eq!(sv.in_topic.as_deref(), Some("/svRequest#cb:0x11"));
        assert_eq!(sv.out_topics, [Arc::from("/svReply#cb:0x21")]);
    }

    #[test]
    fn tables_drain_once_interactions_complete() {
        let trace = service_trace();
        let mut session = SynthesisSession::new();
        for seg in split_by_events(&trace, 1) {
            session.feed_segment(&seg);
        }
        // Every interaction completed: nothing but closed state remains.
        assert_eq!(session.retained_entries(), 0);
        assert_eq!(session.events_fed(), trace.len() as u64);
        assert!(session.peak_watermark() >= 1);
        assert_eq!(session.segments_fed(), trace.len());
    }

    #[test]
    fn owned_feed_equals_by_ref_feed() {
        let trace = service_trace();
        let mut by_ref = SynthesisSession::new();
        by_ref.feed_trace(&trace);
        for per_segment in [1usize, 4, 1000] {
            let mut owned = SynthesisSession::new();
            for seg in split_by_events(&trace, per_segment) {
                owned.feed_segment_owned(seg);
            }
            assert_eq!(owned.model(), by_ref.model(), "segment size {per_segment}");
            assert_eq!(owned.events_fed(), by_ref.events_fed());
        }
        let mut owned = SynthesisSession::new();
        owned.feed_trace_owned(trace);
        assert_eq!(owned.model(), by_ref.model());
        assert_eq!(owned.peak_watermark(), by_ref.peak_watermark());
    }

    #[test]
    fn seeded_name_map_is_shared_not_cloned() {
        let names: Arc<HashMap<Pid, String>> = Arc::new(
            [(Pid::new(1), "caller".to_string()), (Pid::new(3), "server".to_string())].into(),
        );
        let trace = service_trace();
        let mut session = SynthesisSession::with_names(Arc::clone(&names));
        session.feed_trace(&trace);
        // The stream's P1 events agree with the seed map, so the Arc is
        // still the very same allocation — no copy-on-write happened.
        assert!(Arc::ptr_eq(session.names(), &names));
        let mut later = SynthesisSession::with_names(Arc::clone(session.names()));
        later.feed_segment(&TraceSegment::new());
        assert!(Arc::ptr_eq(later.names(), &names));
    }

    #[test]
    fn new_p1_event_copies_the_map_once() {
        let names: Arc<HashMap<Pid, String>> = Arc::new(HashMap::new());
        let mut session = SynthesisSession::with_names(Arc::clone(&names));
        let mut trace = Trace::new();
        trace.push_ros(ros(0, 7, RosPayload::NodeInit { node_name: "new".into() }));
        session.feed_trace(&trace);
        assert!(!Arc::ptr_eq(session.names(), &names));
        assert_eq!(session.names().get(&Pid::new(7)).map(String::as_str), Some("new"));
        assert!(names.is_empty(), "seed map untouched");
    }

    #[test]
    fn session_is_an_event_sink_with_flush() {
        use rtms_trace::EventSink;
        let trace = service_trace();
        let mut session = SynthesisSession::new();
        // Streams arrive back to back, as a tracer drain delivers them.
        for e in trace.ros_events() {
            session.push_ros(e.clone());
        }
        for e in trace.sched_events() {
            session.push_sched(e.clone());
        }
        session.flush();
        assert_eq!(session.model(), synthesize(&trace));
        session.flush(); // idempotent on an empty buffer
        assert_eq!(session.segments_fed(), 1);
    }
}
