//! Callback records and the `CBlist` of Algorithm 1.

use crate::stats::ExecStats;
use rtms_trace::{CallbackId, CallbackKind, Nanos, Pid};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One callback entry of a node's `CBlist` — the architectural and timing
/// attributes Algorithm 1 extracts.
///
/// Topic names here are *decorated*: a service request topic carries the
/// caller callback's identity (`/sv3Request#cb:0x2a`) and a response topic
/// the client callback's, which is what splits a multi-caller service into
/// per-caller entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallbackRecord {
    /// The node (executor thread) the callback belongs to.
    pub pid: Pid,
    /// The callback's runtime identity.
    pub id: CallbackId,
    /// Timer / subscriber / service / client.
    pub kind: CallbackKind,
    /// Decorated subscribed topic, if any (timers have none). Shared with
    /// the originating [`rtms_trace::Topic`] when undecorated — extraction
    /// never copies a plain topic name.
    pub in_topic: Option<Arc<str>>,
    /// Decorated published topics, in first-seen order, deduplicated.
    /// Plain names are shared, not copied, like `in_topic`.
    pub out_topics: Vec<Arc<str>>,
    /// Whether the callback feeds a `message_filters` synchronizer (P7).
    pub is_sync_subscriber: bool,
    /// Measured execution-time statistics across instances.
    pub stats: ExecStats,
    /// Per-instance execution times, in observation order (kept for
    /// convergence studies; the mergeable summary lives in `stats`).
    pub exec_times: Vec<Nanos>,
    /// Instance start times, for period estimation of timers.
    pub start_times: Vec<Nanos>,
}

impl CallbackRecord {
    /// Whether `other` denotes the same callback entry under the matching
    /// rule of Sec. IV: the ID for all callbacks except services; for a
    /// service, both the ID and the (decorated) subscribed topic — so the
    /// same service invoked by different callers yields different entries.
    pub fn matches(&self, other: &CallbackRecord) -> bool {
        if self.pid != other.pid || self.kind != other.kind || self.id != other.id {
            return false;
        }
        match self.kind {
            CallbackKind::Service => self.in_topic == other.in_topic,
            _ => true,
        }
    }

    /// Estimated invocation period: the mean gap between consecutive start
    /// times (meaningful for timer callbacks, per Sec. IV).
    pub fn estimated_period(&self) -> Option<Nanos> {
        if self.start_times.len() < 2 {
            return None;
        }
        let mut gaps = 0u64;
        for w in self.start_times.windows(2) {
            gaps += (w[1] - w[0]).as_nanos();
        }
        Some(Nanos::from_nanos(gaps / (self.start_times.len() as u64 - 1)))
    }
}

/// A node's callback list: the output of Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CbList {
    entries: Vec<CallbackRecord>,
}

impl CbList {
    /// Creates an empty list.
    pub fn new() -> Self {
        CbList::default()
    }

    /// `CBlist.AddToCallback(CB)` of Algorithm 1 (line 31): folds a
    /// completed instance into the matching entry, or appends a new entry
    /// if none matches. Execution time and start time are recorded; newly
    /// seen published topics extend the entry's topic list.
    pub fn add_instance(&mut self, instance: CallbackRecord) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.matches(&instance)) {
            for t in &instance.out_topics {
                if !entry.out_topics.contains(t) {
                    entry.out_topics.push(t.clone());
                }
            }
            entry.is_sync_subscriber |= instance.is_sync_subscriber;
            for &et in &instance.exec_times {
                entry.stats.push(et);
                entry.exec_times.push(et);
            }
            entry.start_times.extend(instance.start_times.iter().copied());
        } else {
            self.entries.push(instance);
        }
    }

    /// Folds one completed instance into the list from its parts — the
    /// allocation-lean twin of [`CbList::add_instance`] for the streaming
    /// hot path. When the matching entry already exists (the overwhelming
    /// case in a long run), only the new sample is appended: no
    /// single-element vectors are materialized and the moved `outs` merge
    /// without cloning. Behaviour is identical to building a one-sample
    /// [`CallbackRecord`] and calling [`CbList::add_instance`].
    #[allow(clippy::too_many_arguments)] // the parts of one instance, hot path
    pub fn fold_instance(
        &mut self,
        pid: Pid,
        id: CallbackId,
        kind: CallbackKind,
        in_topic: Option<Arc<str>>,
        outs: Vec<Arc<str>>,
        sync: bool,
        exec: Nanos,
        start: Nanos,
    ) {
        let found = self.entries.iter_mut().find(|e| {
            e.pid == pid
                && e.kind == kind
                && e.id == id
                && (kind != CallbackKind::Service || e.in_topic == in_topic)
        });
        match found {
            Some(entry) => {
                for t in outs {
                    if !entry.out_topics.contains(&t) {
                        entry.out_topics.push(t);
                    }
                }
                entry.is_sync_subscriber |= sync;
                entry.stats.push(exec);
                entry.exec_times.push(exec);
                entry.start_times.push(start);
            }
            None => self.entries.push(CallbackRecord {
                pid,
                id,
                kind,
                in_topic,
                out_topics: outs,
                is_sync_subscriber: sync,
                stats: ExecStats::from_samples([exec]),
                exec_times: vec![exec],
                start_times: vec![start],
            }),
        }
    }

    /// The callback entries, in first-seen order.
    pub fn entries(&self) -> &[CallbackRecord] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the entry for `id` (and, for services, the decorated input
    /// topic).
    pub fn find(&self, id: CallbackId, in_topic: Option<&str>) -> Option<&CallbackRecord> {
        self.entries
            .iter()
            .find(|e| e.id == id && (e.kind != CallbackKind::Service || e.in_topic.as_deref() == in_topic))
    }
}

impl FromIterator<CallbackRecord> for CbList {
    fn from_iter<T: IntoIterator<Item = CallbackRecord>>(iter: T) -> Self {
        let mut list = CbList::new();
        for r in iter {
            list.add_instance(r);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, kind: CallbackKind, in_topic: Option<&str>, et_ms: u64) -> CallbackRecord {
        CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.map(Arc::from),
            out_topics: vec![],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_millis(et_ms)]),
            exec_times: vec![Nanos::from_millis(et_ms)],
            start_times: vec![Nanos::ZERO],
        }
    }

    #[test]
    fn instances_fold_into_one_entry() {
        let mut list = CbList::new();
        list.add_instance(rec(1, CallbackKind::Timer, None, 2));
        list.add_instance(rec(1, CallbackKind::Timer, None, 4));
        assert_eq!(list.len(), 1);
        let e = &list.entries()[0];
        assert_eq!(e.stats.count(), 2);
        assert_eq!(e.stats.mwcet(), Some(Nanos::from_millis(4)));
    }

    #[test]
    fn service_split_by_in_topic() {
        let mut list = CbList::new();
        list.add_instance(rec(9, CallbackKind::Service, Some("/svRequest#cb:0x1"), 2));
        list.add_instance(rec(9, CallbackKind::Service, Some("/svRequest#cb:0x2"), 3));
        list.add_instance(rec(9, CallbackKind::Service, Some("/svRequest#cb:0x1"), 5));
        assert_eq!(list.len(), 2, "one entry per caller");
        assert_eq!(list.find(CallbackId::new(9), Some("/svRequest#cb:0x1")).map(|e| e.stats.count()), Some(2));
    }

    #[test]
    fn non_service_ignores_in_topic_for_matching() {
        let mut list = CbList::new();
        let mut a = rec(5, CallbackKind::Subscriber, Some("/t"), 1);
        a.out_topics = vec!["/x".into()];
        let mut b = rec(5, CallbackKind::Subscriber, Some("/t"), 2);
        b.out_topics = vec!["/y".into()];
        list.add_instance(a);
        list.add_instance(b);
        assert_eq!(list.len(), 1);
        assert_eq!(list.entries()[0].out_topics, [Arc::from("/x"), Arc::from("/y")]);
    }

    #[test]
    fn period_estimation() {
        let mut r = rec(1, CallbackKind::Timer, None, 1);
        r.start_times = vec![
            Nanos::from_millis(0),
            Nanos::from_millis(100),
            Nanos::from_millis(201),
            Nanos::from_millis(299),
        ];
        let p = r.estimated_period().expect("period");
        assert!((p.as_millis_f64() - 99.67).abs() < 0.5, "period {p}");
        let single = rec(1, CallbackKind::Timer, None, 1);
        assert_eq!(single.estimated_period(), None);
    }

    #[test]
    fn sync_flag_is_sticky() {
        let mut list = CbList::new();
        let mut a = rec(5, CallbackKind::Subscriber, Some("/t"), 1);
        a.is_sync_subscriber = true;
        list.add_instance(a);
        list.add_instance(rec(5, CallbackKind::Subscriber, Some("/t"), 2));
        assert!(list.entries()[0].is_sync_subscriber);
    }

    #[test]
    fn fold_instance_equals_add_instance() {
        // The lean fold must produce byte-identical lists to the record
        // path, across entry creation, service splitting, out-topic
        // dedup, and the sticky sync flag.
        type Sample<'a> = (u64, CallbackKind, Option<&'a str>, &'a [&'a str], bool, u64);
        let samples: [Sample<'_>; 6] = [
            (1, CallbackKind::Timer, None, &["/a"], false, 2),
            (1, CallbackKind::Timer, None, &["/a", "/b"], false, 4),
            (9, CallbackKind::Service, Some("/svRequest#cb:0x1"), &[], false, 1),
            (9, CallbackKind::Service, Some("/svRequest#cb:0x2"), &[], false, 3),
            (5, CallbackKind::Subscriber, Some("/t"), &[], true, 7),
            (5, CallbackKind::Subscriber, Some("/t"), &[], false, 9),
        ];
        let mut via_records = CbList::new();
        let mut via_fold = CbList::new();
        for (id, kind, in_topic, outs, sync, ms) in samples {
            let mut r = rec(id, kind, in_topic, ms);
            r.out_topics = outs.iter().map(|s| Arc::from(*s)).collect();
            r.is_sync_subscriber = sync;
            via_records.add_instance(r);
            via_fold.fold_instance(
                Pid::new(1),
                CallbackId::new(id),
                kind,
                in_topic.map(Arc::from),
                outs.iter().map(|s| Arc::from(*s)).collect(),
                sync,
                Nanos::from_millis(ms),
                Nanos::ZERO,
            );
        }
        assert_eq!(via_records, via_fold);
    }

    #[test]
    fn from_iterator_collects() {
        let list: CbList =
            [rec(1, CallbackKind::Timer, None, 1), rec(2, CallbackKind::Timer, None, 2)]
                .into_iter()
                .collect();
        assert_eq!(list.len(), 2);
    }
}
