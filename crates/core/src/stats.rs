//! Mergeable execution-time statistics.

use rtms_trace::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measured execution-time statistics of one callback: best case, average,
/// and worst case over all observed instances (mBCET / mACET / mWCET in the
/// paper's terminology).
///
/// Statistics merge associatively, which is what makes the
/// "DAG-per-run, then merge DAGs" deployment option of Fig. 2 work.
///
/// # Example
///
/// ```
/// use rtms_core::ExecStats;
/// use rtms_trace::Nanos;
///
/// let mut s = ExecStats::new();
/// s.push(Nanos::from_millis(3));
/// s.push(Nanos::from_millis(5));
/// assert_eq!(s.mbcet(), Some(Nanos::from_millis(3)));
/// assert_eq!(s.mwcet(), Some(Nanos::from_millis(5)));
/// assert_eq!(s.macet(), Some(Nanos::from_millis(4)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    count: u64,
    sum: u64,
    min: Option<Nanos>,
    max: Option<Nanos>,
}

impl ExecStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        ExecStats::default()
    }

    /// Builds statistics from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = Nanos>>(samples: I) -> Self {
        let mut s = ExecStats::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Records one measured execution time.
    pub fn push(&mut self, sample: Nanos) {
        self.count += 1;
        self.sum += sample.as_nanos();
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Merges another statistic into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }

    /// Number of recorded instances.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Measured best-case execution time.
    pub fn mbcet(&self) -> Option<Nanos> {
        self.min
    }

    /// Measured worst-case execution time.
    pub fn mwcet(&self) -> Option<Nanos> {
        self.max
    }

    /// Measured average execution time (rounded to the nanosecond).
    pub fn macet(&self) -> Option<Nanos> {
        if self.count == 0 {
            None
        } else {
            Some(Nanos::from_nanos(
                ((self.sum as f64 / self.count as f64).round()) as u64,
            ))
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.mbcet(), self.macet(), self.mwcet()) {
            (Some(b), Some(a), Some(w)) => write!(
                f,
                "mBCET={:.2}ms mACET={:.2}ms mWCET={:.2}ms (n={})",
                b.as_millis_f64(),
                a.as_millis_f64(),
                w.as_millis_f64(),
                self.count
            ),
            _ => write!(f, "no samples"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = ExecStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mbcet(), None);
        assert_eq!(s.macet(), None);
        assert_eq!(s.mwcet(), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn merge_equals_pooled() {
        let all: Vec<Nanos> = (1..=10).map(Nanos::from_millis).collect();
        let pooled = ExecStats::from_samples(all.iter().copied());
        let mut a = ExecStats::from_samples(all[..4].iter().copied());
        let b = ExecStats::from_samples(all[4..].iter().copied());
        a.merge(&b);
        assert_eq!(a, pooled);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = ExecStats::from_samples([Nanos::from_millis(2)]);
        let before = s.clone();
        s.merge(&ExecStats::new());
        assert_eq!(s, before);
        let mut e = ExecStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_formats_millis() {
        let s = ExecStats::from_samples([Nanos::from_millis(2), Nanos::from_millis(4)]);
        let txt = s.to_string();
        assert!(txt.contains("mBCET=2.00ms"), "{txt}");
        assert!(txt.contains("mWCET=4.00ms"), "{txt}");
        assert!(txt.contains("n=2"), "{txt}");
    }
}
