//! Property-based tests of the synthesis algorithms.

use proptest::prelude::*;
use rtms_core::{execution_time, merge_dags, CallbackRecord, CbList, Dag, ExecStats};
use rtms_trace::{
    CallbackId, CallbackKind, Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState,
};
use std::collections::HashMap;

const T: Pid = Pid::new(7);
const OTHER: Pid = Pid::new(8);

/// Generates an alternating on/off schedule for thread T as strictly
/// increasing gap lengths, returning the sched stream and the segments
/// during which T runs.
fn schedule_from_gaps(gaps: &[u64], start_running: bool) -> (Vec<SchedEvent>, Vec<(u64, u64)>) {
    let mut events = Vec::new();
    let mut segments = Vec::new();
    let mut t = 0u64;
    let mut running = start_running;
    let mut seg_start = if running { Some(0) } else { None };
    for &g in gaps {
        t += g;
        let (prev, next) = if running { (T, OTHER) } else { (OTHER, T) };
        events.push(SchedEvent::switch(
            Nanos::from_nanos(t),
            Cpu::new(0),
            prev,
            Priority::NORMAL,
            ThreadState::Runnable,
            next,
            Priority::NORMAL,
        ));
        if running {
            segments.push((seg_start.take().expect("open segment"), t));
        } else {
            seg_start = Some(t);
        }
        running = !running;
    }
    if let Some(s) = seg_start {
        segments.push((s, u64::MAX));
    }
    (events, segments)
}

/// Brute-force reference: overlap of [start, end] with T's run segments.
fn reference_exec(start: u64, end: u64, segments: &[(u64, u64)]) -> u64 {
    segments
        .iter()
        .map(|&(s, e)| {
            let lo = s.max(start);
            let hi = e.min(end);
            hi.saturating_sub(lo)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Algorithm 2 equals an interval-overlap computation for any
    /// alternating schedule, provided the window starts inside a running
    /// segment (the algorithm's precondition: the CB-start event is
    /// generated while T runs).
    #[test]
    fn alg2_equals_interval_overlap(
        gaps in proptest::collection::vec(2u64..1_000, 1..30),
        start_off in 0u64..200,
        end_seg_sel in 0usize..30,
        end_off in 0u64..200,
    ) {
        let (events, segments) = schedule_from_gaps(&gaps, true);
        // The window must start and end while T is running (the CB start
        // and end events are emitted by the running thread), strictly
        // inside the segments so no boundary coincides with a switch.
        let (s0, e0) = segments[0];
        let start = s0 + start_off % (e0 - s0);
        let (es, ee) = segments[end_seg_sel % segments.len()];
        let ee = ee.min(es + 10_000); // tame the trailing open segment
        let end = (es + end_off % (ee - es).max(1)).max(start);
        let measured = execution_time(
            Nanos::from_nanos(start),
            Nanos::from_nanos(end),
            T,
            &events,
        );
        let expected = reference_exec(start, end, &segments);
        prop_assert_eq!(measured.as_nanos(), expected);
    }

    /// ExecStats merging is associative and order-independent, and always
    /// equals pooled statistics.
    #[test]
    fn exec_stats_merge_equals_pooled(
        samples in proptest::collection::vec(1u64..10_000_000, 1..50),
        split_at in 0usize..50,
    ) {
        let split = split_at.min(samples.len());
        let pooled = ExecStats::from_samples(samples.iter().map(|&n| Nanos::from_nanos(n)));
        let mut a = ExecStats::from_samples(samples[..split].iter().map(|&n| Nanos::from_nanos(n)));
        let b = ExecStats::from_samples(samples[split..].iter().map(|&n| Nanos::from_nanos(n)));
        a.merge(&b);
        prop_assert_eq!(a, pooled);
    }

    /// Merging the same DAG repeatedly never grows the structure, and
    /// mWCET/mBCET stay fixed while counts scale.
    #[test]
    fn dag_self_merge_structure_fixed(n_cbs in 1usize..8, reps in 1usize..5) {
        let mut list = CbList::new();
        for i in 0..n_cbs {
            list.add_instance(CallbackRecord {
                pid: Pid::new(1),
                id: CallbackId::new(i as u64 + 1),
                kind: CallbackKind::Subscriber,
                in_topic: Some(format!("/in{i}").into()),
                out_topics: vec![format!("/out{i}").into()],
                is_sync_subscriber: false,
                stats: ExecStats::from_samples([Nanos::from_millis(i as u64 + 1)]),
                exec_times: vec![Nanos::from_millis(i as u64 + 1)],
                start_times: vec![Nanos::ZERO],
            });
        }
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        let base = Dag::from_cblists(&[(Pid::new(1), list)], &names);
        let merged = merge_dags(std::iter::repeat_n(base.clone(), reps));
        prop_assert_eq!(merged.vertices().len(), base.vertices().len());
        prop_assert_eq!(merged.edges().len(), base.edges().len());
        for (m, b) in merged.vertices().iter().zip(base.vertices()) {
            prop_assert_eq!(m.stats.count(), b.stats.count() * reps as u64);
            prop_assert_eq!(m.stats.mwcet(), b.stats.mwcet());
            prop_assert_eq!(m.stats.mbcet(), b.stats.mbcet());
        }
    }

    /// Merge order does not affect the final statistics.
    #[test]
    fn dag_merge_is_commutative_on_stats(ets in proptest::collection::vec(1u64..1_000, 2..10)) {
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        let mk = |et: u64| {
            let rec = CallbackRecord {
                pid: Pid::new(1),
                id: CallbackId::new(1),
                kind: CallbackKind::Timer,
                in_topic: None,
                out_topics: vec!["/a".into()],
                is_sync_subscriber: false,
                stats: ExecStats::from_samples([Nanos::from_millis(et)]),
                exec_times: vec![Nanos::from_millis(et)],
                start_times: vec![Nanos::ZERO],
            };
            let list: CbList = [rec].into_iter().collect();
            Dag::from_cblists(&[(Pid::new(1), list)], &names)
        };
        let dags: Vec<Dag> = ets.iter().map(|&e| mk(e)).collect();
        let forward = merge_dags(dags.clone());
        let backward = merge_dags(dags.into_iter().rev());
        prop_assert_eq!(forward.vertices()[0].stats.clone(), backward.vertices()[0].stats.clone());
    }

    /// CbList folding: statistics equal pooling all instances regardless
    /// of arrival order.
    #[test]
    fn cblist_fold_order_independent(ets in proptest::collection::vec(1u64..10_000, 1..30)) {
        let mk = |et: u64| CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(9),
            kind: CallbackKind::Subscriber,
            in_topic: Some("/t".into()),
            out_topics: vec![],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_nanos(et)]),
            exec_times: vec![Nanos::from_nanos(et)],
            start_times: vec![Nanos::ZERO],
        };
        let fwd: CbList = ets.iter().map(|&e| mk(e)).collect();
        let rev: CbList = ets.iter().rev().map(|&e| mk(e)).collect();
        prop_assert_eq!(fwd.len(), 1);
        prop_assert_eq!(rev.len(), 1);
        prop_assert_eq!(fwd.entries()[0].stats.clone(), rev.entries()[0].stats.clone());
    }
}
