//! Sharded multi-tenant trace ingestion and monitoring service.
//!
//! The paper's pipeline (trace segments → [`rtms_core::SynthesisSession`]
//! → timing model → [`rtms_monitor::Monitor`]) watches *one* application.
//! This crate scales that loop out to a **fleet**: N tenants — think N
//! robots running a handful of application images — stream their trace
//! segments into a fixed pool of shard workers, each of which owns the
//! full per-tenant synthesis and monitoring state for the tenants hashed
//! onto it.
//!
//! Architecture (see `docs/FLEET.md` for the full design):
//!
//! * **Producers** simulate tenants sequentially and stream each tenant's
//!   segments into the owning shard's ingress — a multi-producer queue
//!   built from one lock-free SPSC lane per producer
//!   ([`rtms_util::mpsc`]), with segment slabs recycled back through
//!   per-producer return rings (the PR 8 pipeline, generalized).
//! * **Shards** (the crate-private `shard` module) keep one cumulative
//!   [`rtms_core::SynthesisSession`] per in-flight tenant, install each
//!   tenant's baseline into a [`rtms_monitor::BaselineStore`] at the
//!   baseline boundary, judge every later window snapshot, and eagerly
//!   merge finished tenants' models.
//! * **Aggregation** ([`run`]) merges shard models hierarchically with
//!   [`rtms_core::merge_dag_refs`] and canonicalizes
//!   ([`rtms_core::Dag::canonicalize`]), sorts the alert stream into the
//!   [`TenantAlert`] total order, and collapses it into a ranked
//!   cross-tenant [`rtms_monitor::AlertRollup`] — all **byte-identical
//!   for any shard or producer count**.
//!
//! # Example
//!
//! ```
//! let mut config = rtms_fleet::FleetConfig::new(8, 2);
//! config.faults = 2;
//! config.secs = 2;
//! let outcome = rtms_fleet::run(&config)?;
//! assert_eq!(outcome.report.recall, 1.0, "every injected fault detected");
//! assert_eq!(outcome.report.healthy_alerts, 0, "healthy tenants stay silent");
//! assert!(outcome.report.dedup_ratio > 1.0, "shared faulty image collapses");
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod report;
pub(crate) mod shard;
pub mod service;
pub mod tenant;

pub use config::{fleet_monitor_config, FleetConfig, SegmentPlan};
pub use report::{FleetOutcome, FleetReport, TenantAlert};
pub use service::{per_tenant_recall, run};
pub use tenant::{TenantDirectory, TenantImage};
