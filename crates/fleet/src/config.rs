//! Fleet service configuration and the per-tenant segment plan.

use rtms_monitor::MonitorConfig;
use rtms_trace::Nanos;

/// Configuration of one [`crate::run`] of the fleet ingestion service.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of tenants (independently simulated application instances).
    pub tenants: usize,
    /// Number of shard workers. Every tenant's state lives on exactly one
    /// shard (hash-assigned), so no tenant state is ever shared between
    /// threads.
    pub shards: usize,
    /// Number of producer threads simulating tenants and streaming their
    /// trace segments into the shard ingress lanes. Tenant `t` is driven
    /// by producer `t % producers`.
    pub producers: usize,
    /// Number of distinct healthy application *images*. Real fleets run a
    /// handful of application versions across thousands of robots;
    /// healthy tenant `t` runs image `t % images` (generation presets
    /// rotate standard → multi-threaded → bursty → city across images),
    /// while every faulted tenant runs the one faulty image — which is
    /// what makes cross-tenant alert deduplication meaningful.
    pub images: usize,
    /// Number of faulted tenants: ids `0..faults` (clamped to `tenants`)
    /// run the faulty image. `0` makes the whole fleet healthy.
    pub faults: usize,
    /// Simulated seconds each tenant runs.
    pub secs: u64,
    /// Trace segment length in milliseconds.
    pub segment_ms: u64,
    /// Base seed: image generation, fault injection, and per-tenant world
    /// seeds all derive from it.
    pub seed: u64,
    /// Monitor thresholds applied to every tenant.
    pub monitor: MonitorConfig,
}

impl FleetConfig {
    /// A configuration for `tenants` tenants on `shards` shards with the
    /// documented defaults for everything else: as many producers as
    /// shards, four images (one per generation preset), no faults, 2
    /// simulated seconds of 500 ms segments, seed 0, and
    /// [`fleet_monitor_config`] thresholds (the fleet image presets are
    /// clamped to shapes pinned alert-free under them; see
    /// `crate::tenant`).
    pub fn new(tenants: usize, shards: usize) -> FleetConfig {
        FleetConfig {
            tenants,
            shards,
            producers: shards,
            images: 4,
            faults: 0,
            secs: 2,
            segment_ms: 500,
            seed: 0,
            monitor: fleet_monitor_config(),
        }
    }

    /// Number of faulted tenants after clamping to the tenant count.
    pub fn faulted_tenants(&self) -> usize {
        self.faults.min(self.tenants)
    }

    /// The per-tenant segment plan this configuration implies.
    pub fn plan(&self) -> SegmentPlan {
        SegmentPlan::new(self.secs, self.segment_ms)
    }

    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (zero tenants/shards/producers/images, or a zero
    /// segment length).
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("tenants must be at least 1".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.producers == 0 {
            return Err("producers must be at least 1".into());
        }
        if self.images == 0 {
            return Err("images must be at least 1".into());
        }
        if self.segment_ms == 0 {
            return Err("segment_ms must be at least 1".into());
        }
        Ok(())
    }
}

/// The monitor thresholds the fleet applies to every tenant: the default
/// [`MonitorConfig`] with absolute load supervision lifted out of reach.
///
/// The bursty and city image presets deploy burst publishers whose work
/// routinely overruns their 5–20 ms periods — saturating a core is their
/// *documented healthy behaviour*, so an absolute per-node load threshold
/// carries no signal for fleet tenants and trips on seed-dependent burst
/// colocations. The threshold is raised to 3.0, one full core per worker
/// of the widest executor any fleet image deploys (3 workers); a node's
/// mean windowed load cannot strictly exceed that, so fleet monitors
/// never raise [`rtms_monitor::AlertKind::LoadSpike`]. Every injected
/// fault manifests as exec/period drift, topology change, or message
/// loss, so detection recall is unaffected. All baseline-relative
/// thresholds stay at their defaults.
pub fn fleet_monitor_config() -> MonitorConfig {
    MonitorConfig { load_threshold: 3.0, ..MonitorConfig::default() }
}

/// How each tenant's run divides into trace segments: the same arithmetic
/// as the `monitoring` experiment, so the fleet inherits its validated
/// baseline-capture and detection-latency behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Trace segment length.
    pub segment: Nanos,
    /// Segments per tenant run (at least 4).
    pub total_segments: usize,
    /// Leading segments that feed the cumulative baseline session (at
    /// least 2, about a third of the run).
    pub baseline_segments: usize,
}

impl SegmentPlan {
    /// Derives the plan from simulated seconds and segment length.
    pub fn new(secs: u64, segment_ms: u64) -> SegmentPlan {
        let segment_ms = segment_ms.max(1);
        let total_segments = ((secs * 1_000).div_ceil(segment_ms) as usize).max(4);
        let baseline_segments = (total_segments / 3).max(2);
        SegmentPlan {
            segment: Nanos::from_millis(segment_ms),
            total_segments,
            baseline_segments,
        }
    }

    /// Monitored (non-baseline) segments per tenant.
    pub fn monitored_segments(&self) -> usize {
        self.total_segments - self.baseline_segments
    }

    /// Simulated duration of one tenant run.
    pub fn total(&self) -> Nanos {
        Nanos::from_nanos(self.segment.as_nanos() * self.total_segments as u64)
    }

    /// End of the baseline phase on the simulated clock.
    pub fn baseline_end(&self) -> Nanos {
        Nanos::from_nanos(self.segment.as_nanos() * self.baseline_segments as u64)
    }

    /// The activation window for injected faults: inside the first
    /// monitored segment, so the ≤ 2-segment detection-latency contract
    /// is exercised even on short smoke runs (same rule as the
    /// `monitoring` experiment).
    pub fn fault_window(&self) -> (Nanos, Nanos) {
        let start = self.baseline_end();
        (start, start + Nanos::from_nanos(self.segment.as_nanos() / 4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_monitoring_arithmetic() {
        let p = SegmentPlan::new(12, 500);
        assert_eq!(p.total_segments, 24);
        assert_eq!(p.baseline_segments, 8);
        assert_eq!(p.monitored_segments(), 16);
        assert_eq!(p.baseline_end(), Nanos::from_millis(4_000));
        // Short smoke runs still get 4 segments, 2 of them baseline.
        let smoke = SegmentPlan::new(1, 500);
        assert_eq!(smoke.total_segments, 4);
        assert_eq!(smoke.baseline_segments, 2);
        let (lo, hi) = smoke.fault_window();
        assert_eq!(lo, Nanos::from_millis(1_000));
        assert_eq!(hi, Nanos::from_millis(1_125));
    }

    #[test]
    fn validation_catches_zeroes() {
        assert!(FleetConfig::new(8, 2).validate().is_ok());
        assert!(FleetConfig { tenants: 0, ..FleetConfig::new(8, 2) }.validate().is_err());
        assert!(FleetConfig { shards: 0, ..FleetConfig::new(8, 2) }.validate().is_err());
        assert!(FleetConfig { producers: 0, ..FleetConfig::new(8, 2) }.validate().is_err());
        assert!(FleetConfig { images: 0, ..FleetConfig::new(8, 2) }.validate().is_err());
        assert!(FleetConfig { segment_ms: 0, ..FleetConfig::new(8, 2) }.validate().is_err());
    }

    #[test]
    fn fleet_monitor_lifts_only_load_supervision() {
        let fleet = fleet_monitor_config();
        let stock = MonitorConfig::default();
        assert!(fleet.load_threshold >= 3.0, "unreachable for <= 3-worker nodes");
        assert_eq!(fleet.period_tolerance, stock.period_tolerance);
        assert_eq!(fleet.loss_threshold, stock.loss_threshold);
        assert_eq!(fleet.max_retained_episodes, stock.max_retained_episodes);
    }

    #[test]
    fn faulted_tenants_clamp() {
        let mut c = FleetConfig::new(4, 1);
        c.faults = 10;
        assert_eq!(c.faulted_tenants(), 4);
    }
}
