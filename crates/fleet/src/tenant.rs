//! Tenant directory: which image, shard, producer, and world seed each
//! tenant gets.

use crate::config::FleetConfig;
use rtms_ros2::AppSpec;
use rtms_util::fnv1a_64;
use rtms_workloads::{
    generate_app, generate_fault_scenario, FaultScenario, FaultScenarioConfig, GeneratorConfig,
};

/// One application image deployed across some subset of the fleet.
#[derive(Debug, Clone)]
pub struct TenantImage {
    /// The application description every tenant of this image runs.
    pub app: AppSpec,
    /// Generation preset label (`standard` / `multi_threaded` / `bursty`
    /// / `city` / `faulty`).
    pub preset: &'static str,
}

/// Deterministic fleet layout: the healthy images, the one faulty image
/// (with its fault plan and ground truth), and the tenant → image /
/// shard / producer / seed mapping.
///
/// Faulted tenants (`0..faults`) all run the *same* faulty image, the
/// realistic "bad rollout" shape: one broken application version deployed
/// to part of the fleet, raising the *same* root cause everywhere. That
/// is exactly what the alert rollup is meant to collapse, so the fleet
/// dedup ratio is meaningful rather than an artifact of unrelated faults.
#[derive(Debug, Clone)]
pub struct TenantDirectory {
    healthy: Vec<TenantImage>,
    faulty: Option<FaultScenario>,
    tenants: usize,
    faults: usize,
    shards: usize,
    producers: usize,
    seed: u64,
}

/// The generation preset for healthy image `i`: the four scenario shapes
/// in rotation, each clamped to a *monitoring-silent* envelope — 20–80 ms
/// timer periods so every callback yields samples in a 500 ms window, and
/// no reentrant callback groups (overlapping instances of one callback
/// shift its observed rate between windows, which a baseline monitor
/// reads as loss). The `city` image keeps the full feature mix of
/// [`GeneratorConfig::city`] (deep chains, fusion junctions, services,
/// multi-threaded nodes, bursty publishers) at a per-tenant scale where
/// two baseline windows observe the entire structure; at 100+ nodes, rare
/// deep-chain activations keep surfacing *after* the baseline and every
/// tenant raises spurious topology alerts. Burst publishers saturate a
/// core by design, which is why the fleet judges tenants under
/// [`crate::fleet_monitor_config`] (absolute load supervision lifted)
/// rather than the stock thresholds — and why every burst-carrying shape
/// runs multi-threaded executors: on a single-worker node, colocated
/// bursts oversubscribe the executor and the backlog makes subscriber
/// throughput swing between windows, which the loss supervisor reads as
/// message loss. With 2–3 workers (and no reentrancy, so instances still
/// never overlap) the queue drains in parallel and rates stay pinned to
/// the baseline. All four shapes are held alert-free by the fleet's
/// healthy-silence test.
fn image_config(i: usize) -> (GeneratorConfig, &'static str) {
    let clamped = GeneratorConfig {
        period_ms: (20, 80),
        work_ms: (0.1, 1.0),
        ..GeneratorConfig::default()
    };
    match i % 4 {
        0 => (clamped, "standard"),
        1 => (GeneratorConfig { workers: (2, 3), ..clamped }, "multi_threaded"),
        2 => (GeneratorConfig { workers: (2, 3), bursts: (1, 2), ..clamped }, "bursty"),
        _ => (
            GeneratorConfig {
                nodes: (20, 30),
                timers: (6, 10),
                subscribers: (24, 40),
                services: (0, 2),
                sync_junctions: (2, 4),
                fan_in_prob: 0.3,
                chain_prob: 0.6,
                period_ms: (20, 80),
                work_ms: (0.1, 0.6),
                workers: (2, 3),
                reentrant_prob: 0.0,
                bursts: (1, 2),
            },
            "city",
        ),
    }
}

impl TenantDirectory {
    /// Builds the directory for `config`: generates `config.images`
    /// healthy images (seeds `seed + 1000 + i`) and, if any tenants are
    /// faulted, one faulty image from
    /// [`generate_fault_scenario`]`(seed, ..)` with two faults activating
    /// in the plan's fault window.
    pub fn new(config: &FleetConfig) -> TenantDirectory {
        let healthy = (0..config.images)
            .map(|i| {
                let (cfg, preset) = image_config(i);
                TenantImage { app: generate_app(config.seed + 1_000 + i as u64, &cfg), preset }
            })
            .collect();
        let faulty = (config.faulted_tenants() > 0).then(|| {
            let window = config.plan().fault_window();
            generate_fault_scenario(config.seed, &FaultScenarioConfig::new(2, window))
        });
        TenantDirectory {
            healthy,
            faulty,
            tenants: config.tenants,
            faults: config.faulted_tenants(),
            shards: config.shards,
            producers: config.producers,
            seed: config.seed,
        }
    }

    /// Total tenants.
    pub fn tenants(&self) -> usize {
        self.tenants
    }

    /// Number of faulted tenants (ids `0..faults()`).
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// Whether tenant `t` runs the faulty image.
    pub fn is_faulted(&self, t: usize) -> bool {
        t < self.faults
    }

    /// The faulty scenario (fault plan + ground truth), if any tenant is
    /// faulted.
    pub fn faulty(&self) -> Option<&FaultScenario> {
        self.faulty.as_ref()
    }

    /// The application spec and preset label tenant `t` runs.
    pub fn image_of(&self, t: usize) -> (&AppSpec, &'static str) {
        if self.is_faulted(t) {
            let scenario = self.faulty.as_ref().expect("faulted tenant implies faulty image");
            (&scenario.app, "faulty")
        } else {
            let img = &self.healthy[t % self.healthy.len()];
            (&img.app, img.preset)
        }
    }

    /// The shard owning tenant `t`'s ingestion state: FNV-1a hash of the
    /// tenant id, so assignment is deterministic and spread even when
    /// tenant ids are dense.
    pub fn shard_of(&self, t: usize) -> usize {
        (fnv1a_64(&(t as u64).to_le_bytes()) % self.shards as u64) as usize
    }

    /// The producer thread simulating tenant `t`.
    pub fn producer_of(&self, t: usize) -> usize {
        t % self.producers
    }

    /// The simulation seed for tenant `t`'s world: distinct per tenant,
    /// so tenants sharing an image still produce distinct (but
    /// statistically alike) traces.
    pub fn world_seed(&self, t: usize) -> u64 {
        self.seed + 10_000 + t as u64
    }

    /// Tenants assigned to producer `p`, in ascending id order.
    pub fn tenants_of_producer(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.tenants).filter(move |t| self.producer_of(*t) == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FleetConfig {
        let mut c = FleetConfig::new(16, 4);
        c.faults = 3;
        c.images = 4;
        c
    }

    #[test]
    fn faulted_tenants_share_one_image_and_healthy_rotate() {
        let dir = TenantDirectory::new(&config());
        assert!(dir.is_faulted(0) && dir.is_faulted(2) && !dir.is_faulted(3));
        let (f0, p0) = dir.image_of(0);
        let (f2, p2) = dir.image_of(2);
        assert_eq!(p0, "faulty");
        assert_eq!(p2, "faulty");
        assert_eq!(f0, f2, "all faulted tenants run the same faulty image");
        // Healthy tenants rotate the preset images.
        let (h3, _) = dir.image_of(3);
        let (h7, _) = dir.image_of(7);
        assert_eq!(h3, h7, "tenants 3 and 7 share image 3 % 4");
        let (h4, _) = dir.image_of(4);
        assert_ne!(h3, h4, "different image index, different app");
        assert_eq!(dir.image_of(6).1, "bursty");
        assert_eq!(dir.image_of(7).1, "city");
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let dir = TenantDirectory::new(&config());
        for t in 0..dir.tenants() {
            assert!(dir.shard_of(t) < 4);
            assert_eq!(dir.producer_of(t), t % 4);
            assert_eq!(dir.shard_of(t), dir.shard_of(t));
        }
        // FNV spreads 16 dense ids over all 4 shards.
        let mut hit = [false; 4];
        for t in 0..16 {
            hit[dir.shard_of(t)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards used: {hit:?}");
    }

    #[test]
    fn world_seeds_are_distinct_per_tenant() {
        let dir = TenantDirectory::new(&config());
        let mut seeds: Vec<u64> = (0..dir.tenants()).map(|t| dir.world_seed(t)).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), dir.tenants());
    }

    #[test]
    fn producer_partition_covers_all_tenants() {
        let dir = TenantDirectory::new(&config());
        let mut seen = vec![false; dir.tenants()];
        for p in 0..4 {
            for t in dir.tenants_of_producer(p) {
                assert!(!seen[t], "tenant {t} assigned twice");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn image_configs_are_sampling_clamped() {
        for i in 0..4 {
            let (cfg, _) = image_config(i);
            assert_eq!(cfg.period_ms, (20, 80));
            assert!(cfg.work_ms.1 <= 1.0);
        }
    }
}
