//! The fleet ingestion service: producer threads stream tenant trace
//! segments through per-shard MPSC lanes into shard workers, and the
//! results are aggregated into one [`FleetOutcome`].

use std::mem;
use std::time::Instant;

use crate::config::FleetConfig;
use crate::report::{percentile_us, FleetOutcome, FleetReport, TenantAlert};
use crate::shard::{run_shard, Ingest, ShardOutcome};
use crate::tenant::TenantDirectory;
use rtms_core::merge_dag_refs;
use rtms_monitor::RollupBuilder;
use rtms_ros2::WorldBuilder;
use rtms_trace::TraceSegment;
use rtms_util::mpsc::{lanes, LaneReceiver, LaneSender};

/// Simulated CPU count of every tenant world (the `monitoring`
/// experiment's machine shape).
const SIM_CPUS: usize = 4;
/// Per-producer-lane depth of a shard's ingress ring: deep enough to
/// absorb a slow synthesis window, shallow enough that in-flight segments
/// stay cache-warm (same reasoning as the PR 8 trace pipeline).
const DATA_LANE_SLOTS: usize = 4;
/// Per-shard-lane depth of a producer's slab-return ring: sized above the
/// data depth so a returned slab is only dropped when the producer is
/// genuinely far ahead.
const FREE_LANE_SLOTS: usize = 2 * DATA_LANE_SLOTS;

/// Runs the fleet ingestion service to completion and aggregates the
/// results.
///
/// Topology: `config.producers` producer threads each simulate their
/// tenants **sequentially** (tenant `t` belongs to producer
/// `t % producers`), streaming each tenant's trace segments — slabs
/// recycled through a per-producer return ring — into the ingress lanes
/// of the shard that owns the tenant (`fnv1a(t) % shards`). Each of the
/// `config.shards` shard workers owns the full synthesis + monitoring
/// state of its tenants (the crate-private `shard` module); no tenant
/// state is ever
/// shared between threads, and shard memory scales with *producers*
/// (tenants mid-stream), not with the tenant count.
///
/// The fleet model is aggregated hierarchically: each shard eagerly
/// merges its finished tenants' models (arrival order), the service
/// merges the shard models (shard order) with [`merge_dag_refs`], and a
/// final [`rtms_core::Dag::canonicalize`] makes the result — like the
/// sorted alert stream and the rollup built from it — **byte-identical
/// for any shard or producer count**, which the fleet determinism suite
/// pins.
///
/// # Errors
///
/// Returns a description of the first invalid configuration field or
/// tenant world that fails to build.
pub fn run(config: &FleetConfig) -> Result<FleetOutcome, String> {
    config.validate()?;
    let dir = TenantDirectory::new(config);
    let plan = config.plan();

    // data_tx[p][s]: producer p's sender into shard s's ingress.
    let mut data_tx: Vec<Vec<LaneSender<Ingest>>> =
        (0..config.producers).map(|_| Vec::with_capacity(config.shards)).collect();
    let mut data_rx: Vec<LaneReceiver<Ingest>> = Vec::with_capacity(config.shards);
    for _ in 0..config.shards {
        let (txs, rx) = lanes(config.producers, DATA_LANE_SLOTS);
        for (p, tx) in txs.into_iter().enumerate() {
            data_tx[p].push(tx);
        }
        data_rx.push(rx);
    }
    // free_tx[s][p]: shard s's slab-return sender toward producer p.
    let mut free_tx: Vec<Vec<LaneSender<TraceSegment>>> =
        (0..config.shards).map(|_| Vec::with_capacity(config.producers)).collect();
    let mut free_rx: Vec<LaneReceiver<TraceSegment>> = Vec::with_capacity(config.producers);
    for _ in 0..config.producers {
        let (txs, rx) = lanes(config.shards, FREE_LANE_SLOTS);
        for (s, tx) in txs.into_iter().enumerate() {
            free_tx[s].push(tx);
        }
        free_rx.push(rx);
    }

    let started = Instant::now();
    let monitor = &config.monitor;
    let dir_ref = &dir;
    let (outcomes, produced) = std::thread::scope(|scope| {
        let shard_handles: Vec<_> = data_rx
            .into_iter()
            .zip(free_tx)
            .map(|(rx, free)| scope.spawn(move || run_shard(dir_ref, plan, monitor, rx, free)))
            .collect();
        let producer_handles: Vec<_> = data_tx
            .into_iter()
            .zip(free_rx)
            .enumerate()
            .map(|(p, (txs, rx))| scope.spawn(move || run_producer(p, dir_ref, plan, txs, rx)))
            .collect();
        let produced: Vec<Result<(), String>> =
            producer_handles.into_iter().map(|h| h.join().expect("producer panicked")).collect();
        let outcomes: Vec<ShardOutcome> =
            shard_handles.into_iter().map(|h| h.join().expect("shard panicked")).collect();
        (outcomes, produced)
    });
    produced.into_iter().collect::<Result<(), String>>()?;
    let wall_secs = started.elapsed().as_secs_f64();

    // Hierarchical merge: shard-local models (already merged per shard)
    // merged in shard order, then canonicalized into the
    // order-independent fleet model.
    let mut model = merge_dag_refs(outcomes.iter().map(|o| &o.model));
    model.canonicalize();

    let mut alerts: Vec<TenantAlert> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut events = 0u64;
    let mut segments = 0u64;
    let mut peak_session_watermark = 0usize;
    let mut peak_baseline_bytes = 0usize;
    let mut peak_retained_episodes = 0usize;
    for o in outcomes {
        alerts.extend(o.alerts);
        latencies.extend(o.latencies_us);
        events += o.events;
        segments += o.segments;
        peak_session_watermark = peak_session_watermark.max(o.peak_session_watermark);
        peak_baseline_bytes = peak_baseline_bytes.max(o.peak_baseline_bytes);
        peak_retained_episodes = peak_retained_episodes.max(o.peak_retained_episodes);
    }
    alerts.sort();
    latencies.sort_unstable();

    let mut rollup = RollupBuilder::new();
    for ta in &alerts {
        rollup.add(ta.tenant, &ta.alert);
    }
    let rollup = rollup.build();

    let recall = fleet_recall(&dir, plan.segment, &alerts);
    let healthy_alerts =
        alerts.iter().filter(|ta| ta.tenant >= dir.faults() as u64).count() as u64;

    let report = FleetReport {
        tenants: config.tenants,
        shards: config.shards,
        producers: config.producers,
        faults: dir.faults(),
        events,
        segments,
        wall_secs,
        events_per_sec: if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 },
        p50_ingest_us: percentile_us(&latencies, 0.50),
        p99_ingest_us: percentile_us(&latencies, 0.99),
        alerts: alerts.len() as u64,
        alerts_per_sec: if wall_secs > 0.0 { alerts.len() as f64 / wall_secs } else { 0.0 },
        distinct_causes: rollup.distinct_causes,
        dedup_ratio: rollup.dedup_ratio(),
        recall,
        healthy_alerts,
        peak_session_watermark,
        peak_baseline_bytes,
        peak_retained_episodes,
        model_vertices: model.vertices().len(),
        model_edges: model.edges().len(),
    };
    Ok(FleetOutcome { report, model, rollup, alerts })
}

/// Producer `p`'s loop: simulate each owned tenant sequentially and
/// stream its segments to the owning shards, preferring recycled slabs
/// from the return ring over fresh allocations.
fn run_producer(
    p: usize,
    dir: &TenantDirectory,
    plan: crate::config::SegmentPlan,
    mut txs: Vec<LaneSender<Ingest>>,
    mut free: LaneReceiver<TraceSegment>,
) -> Result<(), String> {
    for tenant in dir.tenants_of_producer(p) {
        let (app, preset) = dir.image_of(tenant);
        let mut builder =
            WorldBuilder::new(SIM_CPUS).seed(dir.world_seed(tenant)).app(app.clone());
        if dir.is_faulted(tenant) {
            let scenario = dir.faulty().expect("faulted tenant implies scenario");
            builder = builder.fault_plan(scenario.plan.clone());
        }
        let mut world = builder
            .build()
            .map_err(|e| format!("tenant {tenant} ({preset} image) failed to build: {e}"))?;
        let shard = dir.shard_of(tenant);
        world.trace_segments_sequential(plan.total(), plan.segment, |seg| {
            // Hand the filled slab to the shard and leave a recycled (or
            // fresh) one behind for the collector to refill.
            let replacement = free.try_recv().unwrap_or_default();
            let owned = mem::replace(seg, replacement);
            // A rejected send means the shard is gone, which only happens
            // if it panicked; the panic surfaces at the scope join.
            let _ = txs[shard].send(Ingest { tenant, sent: Instant::now(), seg: owned });
        });
    }
    Ok(())
}

/// Mean detection recall over faulted tenants: for each faulted tenant,
/// the fraction of its injected faults matched by one of that tenant's
/// alerts at or after the fault's activation segment (the `monitoring`
/// experiment's scoring rule, applied per tenant). `1.0` when no tenant
/// is faulted.
fn fleet_recall(dir: &TenantDirectory, segment: rtms_trace::Nanos, alerts: &[TenantAlert]) -> f64 {
    let Some(scenario) = dir.faulty() else { return 1.0 };
    if dir.faults() == 0 || scenario.truth.is_empty() {
        return 1.0;
    }
    let mut detected = 0usize;
    let mut total = 0usize;
    for tenant in 0..dir.faults() as u64 {
        for fault in &scenario.truth {
            total += 1;
            let fault_segment = fault.at.as_nanos() / segment.as_nanos();
            if alerts.iter().any(|ta| {
                ta.tenant == tenant
                    && ta.segment >= fault_segment
                    && fault.is_detected_by(&ta.alert)
            }) {
                detected += 1;
            }
        }
    }
    detected as f64 / total as f64
}

/// Per-tenant recall map for faulted tenants (tenant → fraction of its
/// injected faults detected); empty when the fleet is fault-free. The
/// experiment binary asserts every value is exactly `1.0`.
pub fn per_tenant_recall(
    dir: &TenantDirectory,
    segment: rtms_trace::Nanos,
    alerts: &[TenantAlert],
) -> Vec<(u64, f64)> {
    let Some(scenario) = dir.faulty() else { return Vec::new() };
    if scenario.truth.is_empty() {
        return (0..dir.faults() as u64).map(|t| (t, 1.0)).collect();
    }
    (0..dir.faults() as u64)
        .map(|tenant| {
            let detected = scenario
                .truth
                .iter()
                .filter(|fault| {
                    let fault_segment = fault.at.as_nanos() / segment.as_nanos();
                    alerts.iter().any(|ta| {
                        ta.tenant == tenant
                            && ta.segment >= fault_segment
                            && fault.is_detected_by(&ta.alert)
                    })
                })
                .count();
            (tenant, detected as f64 / scenario.truth.len() as f64)
        })
        .collect()
}
