//! The shard worker: per-tenant synthesis + monitoring state behind one
//! MPSC ingress receiver.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::config::SegmentPlan;
use crate::report::TenantAlert;
use crate::tenant::TenantDirectory;
use rtms_core::{merge_dag_refs, Dag, SynthesisSession};
use rtms_monitor::{Baseline, BaselineStore, MonitorConfig};
use rtms_trace::TraceSegment;
use rtms_util::mpsc::{LaneReceiver, LaneSender};

/// One trace segment in flight from a producer to the owning shard.
#[derive(Debug)]
pub(crate) struct Ingest {
    /// Tenant the segment belongs to.
    pub tenant: usize,
    /// Producer handoff instant (start of the ingest-to-model latency
    /// measurement).
    pub sent: Instant,
    /// The segment itself, sorted by time (the collector sorts before
    /// handoff).
    pub seg: TraceSegment,
}

/// Everything one shard hands back when its ingress drains.
#[derive(Debug)]
pub(crate) struct ShardOutcome {
    /// Shard-local merge of every finished tenant's full-run model.
    pub model: Dag,
    /// Alerts raised by this shard's tenants (unsorted; the service sorts
    /// the fleet-wide stream into total order).
    pub alerts: Vec<TenantAlert>,
    /// Per-segment ingest-to-model latencies in microseconds (unsorted).
    pub latencies_us: Vec<u64>,
    /// Trace events ingested.
    pub events: u64,
    /// Trace segments ingested.
    pub segments: u64,
    /// Max [`SynthesisSession::peak_watermark`] over this shard's tenants.
    pub peak_session_watermark: usize,
    /// Peak bytes of resident baselines in this shard's store.
    pub peak_baseline_bytes: usize,
    /// Peak retained monitor episodes in this shard's store.
    pub peak_retained_episodes: usize,
}

/// Live synthesis state of one tenant mid-run. The monitor side lives in
/// the shard's [`BaselineStore`] instead, keyed by tenant id.
struct TenantRuntime {
    /// Cumulative session over the tenant's whole run; its model at the
    /// baseline boundary becomes the tenant's [`Baseline`], its flushed
    /// final model joins the shard merge.
    session: SynthesisSession,
}

/// Runs one shard worker to completion: receives [`Ingest`]s until every
/// producer lane is closed and drained, maintaining per-tenant state:
///
/// * every segment feeds the tenant's cumulative [`SynthesisSession`];
/// * the model at the baseline boundary is installed into the shard's
///   [`BaselineStore`];
/// * each later segment is additionally synthesized into a per-window
///   snapshot (a fresh session sharing the tenant's learned name map) and
///   judged by the tenant's monitor;
/// * the final flushed model is merged into the shard-local fleet model
///   as soon as the tenant finishes, so shard memory holds per-tenant
///   *sessions* only for tenants still streaming.
///
/// Tenant completion order depends on producer interleaving; the merge is
/// still deterministic at the fleet level because
/// [`Dag::canonicalize`] makes the serialized model a pure function of
/// the merged multiset (the service canonicalizes after the cross-shard
/// merge).
///
/// Drained segment slabs are recycled to their producer through
/// `free_tx` (best effort: a full or disconnected free lane just drops
/// the slab).
pub(crate) fn run_shard(
    dir: &TenantDirectory,
    plan: SegmentPlan,
    monitor: &MonitorConfig,
    mut rx: LaneReceiver<Ingest>,
    mut free_tx: Vec<LaneSender<TraceSegment>>,
) -> ShardOutcome {
    let mut runtimes: BTreeMap<usize, TenantRuntime> = BTreeMap::new();
    let mut store = BaselineStore::new(monitor.clone());
    let mut outcome = ShardOutcome {
        model: Dag::default(),
        alerts: Vec::new(),
        latencies_us: Vec::new(),
        events: 0,
        segments: 0,
        peak_session_watermark: 0,
        peak_baseline_bytes: 0,
        peak_retained_episodes: 0,
    };
    while let Some(ingest) = rx.recv() {
        let Ingest { tenant, sent, mut seg } = ingest;
        let idx = seg.index();
        outcome.events += seg.len() as u64;
        outcome.segments += 1;
        let rt = runtimes
            .entry(tenant)
            .or_insert_with(|| TenantRuntime { session: SynthesisSession::new() });
        rt.session.feed_segment(&seg);
        if idx + 1 == plan.baseline_segments {
            store.install(tenant as u64, Baseline::from_dag(&rt.session.model()));
        } else if idx >= plan.baseline_segments {
            let mut window = SynthesisSession::with_names(rt.session.names().clone());
            window.feed_segment(&seg);
            let snapshot = window.model();
            for alert in store.observe(tenant as u64, &snapshot, plan.segment) {
                outcome.alerts.push(TenantAlert { tenant: tenant as u64, segment: idx as u64, alert });
            }
        }
        outcome.latencies_us.push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        if idx + 1 == plan.total_segments {
            let mut rt = runtimes.remove(&tenant).expect("runtime exists for final segment");
            rt.session.flush();
            outcome.peak_session_watermark =
                outcome.peak_session_watermark.max(rt.session.peak_watermark());
            let model = rt.session.model();
            outcome.model = merge_dag_refs([&outcome.model, &model]);
        }
        // Recycle the slab to its producer; if that lane is full (the
        // producer is far ahead) or gone (the producer finished), the
        // slab just drops.
        seg.clear_for_reuse(0);
        let _ = free_tx[dir.producer_of(tenant)].try_send(seg);
    }
    debug_assert!(runtimes.is_empty(), "ingress drained with tenants mid-run");
    outcome.peak_baseline_bytes = store.peak_baseline_bytes();
    outcome.peak_retained_episodes = store.peak_retained_episodes();
    outcome
}
