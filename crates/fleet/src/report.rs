//! Fleet run results: the per-alert record, the aggregate report, and the
//! full outcome handed back to callers.

use rtms_core::Dag;
use rtms_monitor::{Alert, AlertRollup};
use serde::{Deserialize, Serialize};

/// One alert attributed to the tenant that raised it.
///
/// Ordered by `(tenant, segment, alert)` — a *stable total order* that
/// depends only on the set of alerts raised, never on the interleaving in
/// which shards received or emitted them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantAlert {
    /// Tenant that raised the alert.
    pub tenant: u64,
    /// Global segment index (within that tenant's run) the alert was
    /// raised at.
    pub segment: u64,
    /// The alert itself.
    pub alert: Alert,
}

/// Aggregate metrics of one fleet run, serializable for the experiment
/// binary's JSON output and the CI perf gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Tenants ingested.
    pub tenants: usize,
    /// Shard workers.
    pub shards: usize,
    /// Producer threads.
    pub producers: usize,
    /// Faulted tenants.
    pub faults: usize,
    /// Trace events ingested across the fleet.
    pub events: u64,
    /// Trace segments ingested across the fleet.
    pub segments: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Ingested events per wall-clock second.
    pub events_per_sec: f64,
    /// Median ingest-to-model latency in microseconds: producer handoff
    /// of a segment to the owning shard having folded it into the
    /// tenant's synthesis session (and judged it, in the watch phase).
    pub p50_ingest_us: f64,
    /// 99th-percentile ingest-to-model latency in microseconds.
    pub p99_ingest_us: f64,
    /// Alerts raised across the fleet.
    pub alerts: u64,
    /// Alerts per wall-clock second.
    pub alerts_per_sec: f64,
    /// Distinct root causes after rollup.
    pub distinct_causes: u64,
    /// Alert deduplication ratio: alerts per distinct cause (0 when the
    /// fleet was silent).
    pub dedup_ratio: f64,
    /// Mean detection recall over faulted tenants (1.0 = every injected
    /// fault detected on every faulted tenant; 1.0 trivially when no
    /// tenant is faulted).
    pub recall: f64,
    /// Alerts raised by fault-free tenants (must be 0).
    pub healthy_alerts: u64,
    /// Peak per-session synthesis memory watermark (event-equivalents,
    /// see [`rtms_core::SynthesisSession::peak_watermark`]) across all
    /// tenants and shards.
    pub peak_session_watermark: usize,
    /// Peak baseline bytes resident in any one shard's store.
    pub peak_baseline_bytes: usize,
    /// Peak retained monitor episodes in any one shard's store.
    pub peak_retained_episodes: usize,
    /// Vertices in the fleet-merged model.
    pub model_vertices: usize,
    /// Edges in the fleet-merged model.
    pub model_edges: usize,
}

/// Everything a fleet run produces: the aggregate report, the
/// hierarchically merged fleet model, the deduplicated alert rollup, and
/// the raw per-tenant alert stream (sorted by the [`TenantAlert`] total
/// order).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Aggregate metrics.
    pub report: FleetReport,
    /// Fleet-level timing model: every tenant model merged shard-locally,
    /// then across shards, then canonicalized — byte-identical for any
    /// shard/producer count.
    pub model: Dag,
    /// Cross-tenant deduplicated alert rollup.
    pub rollup: AlertRollup,
    /// Every alert with tenant attribution, in total order.
    pub alerts: Vec<TenantAlert>,
}

/// The `q`-th percentile (0.0–1.0) of an **ascending-sorted** slice via
/// the nearest-rank method; 0.0 for an empty slice.
pub(crate) fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let us: Vec<u64> = (1..=100u64).map(|n| n * 1_000).collect();
        assert_eq!(percentile_us(&us, 0.50), 50.0);
        assert_eq!(percentile_us(&us, 0.99), 99.0);
        assert_eq!(percentile_us(&us, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[1_500], 0.99), 1.5);
    }

    #[test]
    fn tenant_alert_order_is_tenant_major() {
        use rtms_monitor::{AlertKind, Severity};
        let mk = |tenant: u64, segment: u64| TenantAlert {
            tenant,
            segment,
            alert: Alert {
                segment,
                severity: Severity::Warning,
                kind: AlertKind::LoadSpike { node: "n".into(), load: 1.0, threshold: 0.5 },
            },
        };
        let mut v = [mk(3, 0), mk(1, 9), mk(1, 2)];
        v.sort();
        assert_eq!(
            v.iter().map(|a| (a.tenant, a.segment)).collect::<Vec<_>>(),
            vec![(1, 2), (1, 9), (3, 0)]
        );
    }
}
