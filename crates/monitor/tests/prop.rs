//! Property suites for the monitor's two core guarantees:
//!
//! 1. **No false positives**: ≥100 generated fault-free applications run
//!    through the full streaming pipeline (trace segments → per-window
//!    synthesis → monitor) raise *zero* alerts.
//! 2. **Detection**: injected faults (slowdown / timer stutter / muted
//!    publisher / message drop) are detected with the correct alert kind
//!    within two segments of activation.

use rtms_monitor::Alert;
use rtms_ros2::{FaultPlan, WorldBuilder};
use rtms_trace::Nanos;
use rtms_workloads::{
    generate_app, generate_fault_scenario, monitor_run, monitoring_app_config, ExpectedAlert,
    FaultScenarioConfig,
};

const SEGMENT: Nanos = Nanos::from_millis(500);
const BASELINE_SEGMENTS: usize = 2;

/// Runs one world through the shared monitoring harness
/// (`rtms_workloads::monitor_run` — the same code path the `monitoring`
/// experiment scores); returns `(global segment, alert)` pairs raised
/// after the baseline phase.
fn run_monitored(mut world: rtms_ros2::Ros2World, total_segments: usize) -> Vec<(usize, Alert)> {
    monitor_run(&mut world, SEGMENT, BASELINE_SEGMENTS, total_segments).1
}

#[test]
fn no_false_positives_across_100_fault_free_apps() {
    let cfg = monitoring_app_config();
    let mut silent = 0;
    for seed in 0..100u64 {
        let app = generate_app(seed, &cfg);
        let world =
            WorldBuilder::new(4).seed(seed).app(app).build().expect("generated app is valid");
        let alerts = run_monitored(world, 5); // 2 baseline + 3 monitored
        assert!(
            alerts.is_empty(),
            "seed {seed}: fault-free app raised alerts: {:?}",
            alerts.iter().map(|(s, a)| format!("seg {s}: {a}")).collect::<Vec<_>>()
        );
        silent += 1;
    }
    assert_eq!(silent, 100);
}

#[test]
fn injected_faults_detected_within_two_segments() {
    let baseline_end = Nanos::from_nanos(SEGMENT.as_nanos() * BASELINE_SEGMENTS as u64);
    let window = (baseline_end, baseline_end + Nanos::from_millis(100));
    let mut seen_kinds = [false; 4];
    for seed in 0..12u64 {
        let scenario = generate_fault_scenario(seed, &FaultScenarioConfig::new(2, window));
        let world = WorldBuilder::new(4)
            .seed(seed)
            .app(scenario.app.clone())
            .fault_plan(scenario.plan.clone())
            .build()
            .expect("scenario world builds");
        let alerts = run_monitored(world, 6); // 2 baseline + 4 monitored
        for fault in &scenario.truth {
            let fault_segment = (fault.at.as_nanos() / SEGMENT.as_nanos()) as usize;
            let hit = alerts
                .iter()
                .find(|(seg, alert)| *seg >= fault_segment && fault.is_detected_by(alert));
            let (seg, _) = hit.unwrap_or_else(|| {
                panic!(
                    "seed {seed}: fault {fault:?} undetected; alerts: {:?}",
                    alerts.iter().map(|(s, a)| format!("seg {s}: {a}")).collect::<Vec<_>>()
                )
            });
            assert!(
                seg - fault_segment <= 2,
                "seed {seed}: fault {fault:?} detected late (segment {seg}, fault at {fault_segment})"
            );
            seen_kinds[match fault.expected {
                ExpectedAlert::ExecDrift => 0,
                ExpectedAlert::PeriodDrift => 1,
                ExpectedAlert::TopologyChange => 2,
                ExpectedAlert::MessageLoss => 3,
            }] = true;
        }
    }
    assert!(
        seen_kinds.iter().all(|&k| k),
        "suite must exercise all four fault kinds, saw {seen_kinds:?}"
    );
}

#[test]
fn healthy_world_with_empty_plan_stays_silent() {
    // An attached-but-empty fault plan must not perturb monitoring.
    let app = generate_app(7, &monitoring_app_config());
    let world = WorldBuilder::new(4)
        .seed(7)
        .app(app)
        .fault_plan(FaultPlan::new())
        .build()
        .expect("valid");
    assert!(run_monitored(world, 5).is_empty());
}
