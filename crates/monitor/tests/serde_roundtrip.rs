//! JSON round-trips for every persisted monitoring type: `Alert` (each
//! kind), `ModelDiff`, and `Baseline`.

use rtms_core::{ModelDiff, SynthesisSession, TopologyEdge};
use rtms_monitor::{Alert, AlertKind, Baseline, Severity};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::syn_app;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

fn sample_diff() -> ModelDiff {
    ModelDiff {
        added_vertices: vec!["n1|timer|".to_string()],
        missing_vertices: vec!["n1|timer|/t".to_string(), "n2|subscriber|/t".to_string()],
        added_edges: Vec::new(),
        missing_edges: vec![TopologyEdge {
            from: "n1|timer|/t".to_string(),
            to: "n2|subscriber|/t".to_string(),
            topic: "/t".to_string(),
        }],
    }
}

#[test]
fn model_diff_round_trips() {
    let diff = sample_diff();
    assert_eq!(roundtrip(&diff), diff);
    assert!(!diff.is_empty());
    assert_eq!(diff.len(), 4);
    let empty = ModelDiff::default();
    assert_eq!(roundtrip(&empty), empty);
}

#[test]
fn every_alert_kind_round_trips() {
    let kinds = [
        AlertKind::ExecDrift {
            key: "n1|timer|/t".to_string(),
            observed_macet: Nanos::from_millis(5),
            baseline_macet: Nanos::from_millis(1),
            bound: Nanos::from_millis_f64(2.2),
        },
        AlertKind::PeriodDrift {
            key: "n1|timer|/t".to_string(),
            observed_period: Nanos::from_millis(200),
            baseline_period: Nanos::from_millis(100),
            bound: Nanos::from_millis(155),
        },
        AlertKind::TopologyChange { diff: sample_diff() },
        AlertKind::LoadSpike { node: "n3".to_string(), load: 0.91, threshold: 0.85 },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        for severity in [Severity::Info, Severity::Warning, Severity::Critical] {
            let alert = Alert { segment: i as u64, severity, kind: kind.clone() };
            assert_eq!(roundtrip(&alert), alert);
            // The stream form is one JSON object per alert.
            assert!(alert.to_json().starts_with('{'), "{}", alert.to_json());
        }
    }
}

#[test]
fn baseline_round_trips_from_real_synthesis() {
    let mut world = WorldBuilder::new(2).seed(1).app(syn_app(1.0)).build().expect("SYN app");
    let mut session = SynthesisSession::new();
    world.trace_into(&mut session, Nanos::from_secs(2));
    session.flush();
    let baseline = Baseline::from_dag(&session.model());
    assert!(!baseline.is_empty(), "SYN baseline captures envelopes");
    let back = roundtrip(&baseline);
    assert_eq!(back, baseline);
    assert_eq!(back.fingerprint, baseline.topology.fingerprint());
}
