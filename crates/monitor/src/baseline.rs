//! Healthy-state baselines captured from a synthesized model.

use rtms_core::{Dag, Topology, VertexKind};
use rtms_trace::Nanos;
use serde::{Deserialize, Serialize};

/// The healthy timing envelope of one callback vertex, keyed by its merge
/// key (`node|kind|topic detail`, see
/// [`rtms_core::DagVertex::merge_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallbackEnvelope {
    /// The vertex merge key this envelope describes.
    pub key: String,
    /// Measured best-case execution time over the healthy phase.
    pub mbcet: Nanos,
    /// Measured average execution time over the healthy phase.
    pub macet: Nanos,
    /// Measured worst-case execution time over the healthy phase.
    pub mwcet: Nanos,
    /// Number of execution-time samples behind the envelope.
    pub samples: u64,
    /// Mean gap between consecutive instance starts (the period estimate
    /// for timer callbacks), when at least one gap was observed.
    pub period_mean: Option<Nanos>,
    /// Smallest observed start gap.
    pub period_min: Option<Nanos>,
    /// Largest observed start gap.
    pub period_max: Option<Nanos>,
    /// Number of observed start gaps.
    pub period_samples: u64,
}

impl CallbackEnvelope {
    /// Folds another envelope of the same key into this one (two vertices
    /// of one model can share a merge key).
    fn absorb(&mut self, other: &CallbackEnvelope) {
        let total = self.samples + other.samples;
        if total > 0 {
            let weighted = self.macet.as_nanos() as f64 * self.samples as f64
                + other.macet.as_nanos() as f64 * other.samples as f64;
            self.macet = Nanos::from_nanos((weighted / total as f64).round() as u64);
        }
        self.mbcet = self.mbcet.min(other.mbcet);
        self.mwcet = self.mwcet.max(other.mwcet);
        self.samples = total;

        let ptotal = self.period_samples + other.period_samples;
        if ptotal > 0 {
            let pw = |mean: Option<Nanos>, n: u64| {
                mean.map_or(0.0, |m| m.as_nanos() as f64 * n as f64)
            };
            let weighted =
                pw(self.period_mean, self.period_samples) + pw(other.period_mean, other.period_samples);
            self.period_mean = Some(Nanos::from_nanos((weighted / ptotal as f64).round() as u64));
        }
        self.period_min = match (self.period_min, other.period_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.period_max = match (self.period_max, other.period_max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.period_samples = ptotal;
    }
}

/// A healthy reference captured from a synthesized [`Dag`]: per-callback
/// timing envelopes plus the structural topology the application is
/// expected to keep.
///
/// Capture it from a model synthesized over a phase known (or assumed)
/// healthy — typically the first segments of a deployment — then hand it
/// to a [`crate::Monitor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Timing envelopes, sorted by merge key (junction vertices excluded —
    /// they have no execution time by construction).
    pub envelopes: Vec<CallbackEnvelope>,
    /// The healthy structural topology.
    pub topology: Topology,
    /// [`Topology::fingerprint`] of `topology`, for cheap logging and
    /// persistence checks.
    pub fingerprint: u64,
}

impl Baseline {
    /// Captures a baseline from a healthy model.
    pub fn from_dag(dag: &Dag) -> Baseline {
        let mut envelopes: Vec<CallbackEnvelope> = Vec::new();
        for v in dag.vertices() {
            if v.kind == VertexKind::AndJunction {
                continue;
            }
            let (Some(mbcet), Some(macet), Some(mwcet)) =
                (v.stats.mbcet(), v.stats.macet(), v.stats.mwcet())
            else {
                continue;
            };
            let env = CallbackEnvelope {
                key: v.merge_key(),
                mbcet,
                macet,
                mwcet,
                samples: v.stats.count(),
                period_mean: v.period.macet(),
                period_min: v.period.mbcet(),
                period_max: v.period.mwcet(),
                period_samples: v.period.count(),
            };
            match envelopes.binary_search_by(|e| e.key.cmp(&env.key)) {
                Ok(i) => envelopes[i].absorb(&env),
                Err(i) => envelopes.insert(i, env),
            }
        }
        let topology = dag.topology();
        let fingerprint = topology.fingerprint();
        Baseline { envelopes, topology, fingerprint }
    }

    /// The envelope for a merge key, if the healthy phase observed it.
    pub fn envelope(&self, key: &str) -> Option<&CallbackEnvelope> {
        self.envelopes
            .binary_search_by(|e| e.key.as_str().cmp(key))
            .ok()
            .map(|i| &self.envelopes[i])
    }

    /// Number of monitored callback envelopes.
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// Whether the baseline holds no envelopes at all.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }

    /// Approximate retained heap size of this baseline, in bytes: struct
    /// sizes plus owned string contents. Not an allocator-exact number —
    /// it is the *watermark unit* behind
    /// [`crate::BaselineStore::peak_baseline_bytes`], where a
    /// fleet-level memory budget cares about proportionality across
    /// thousands of tenants, not malloc bookkeeping.
    pub fn approx_bytes(&self) -> usize {
        let envelopes: usize = self
            .envelopes
            .iter()
            .map(|e| std::mem::size_of::<CallbackEnvelope>() + e.key.len())
            .sum();
        let vertices: usize =
            self.topology.vertices.iter().map(|v| std::mem::size_of::<String>() + v.len()).sum();
        let edges: usize = self
            .topology
            .edges
            .iter()
            .map(|e| {
                std::mem::size_of_val(e) + e.from.len() + e.to.len() + e.topic.len()
            })
            .sum();
        std::mem::size_of::<Baseline>() + envelopes + vertices + edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn dag_with(samples_ms: &[u64], starts_ms: &[u64]) -> Dag {
        let times: Vec<Nanos> = samples_ms.iter().map(|&m| Nanos::from_millis(m)).collect();
        let rec = CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(1),
            kind: CallbackKind::Timer,
            in_topic: None,
            out_topics: vec!["/t".into()],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples(times.iter().copied()),
            exec_times: times,
            start_times: starts_ms.iter().map(|&m| Nanos::from_millis(m)).collect(),
        };
        let list: CbList = [rec].into_iter().collect();
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        Dag::from_cblists(&[(Pid::new(1), list)], &names)
    }

    #[test]
    fn envelope_captures_stats_and_period() {
        let base = Baseline::from_dag(&dag_with(&[2, 4, 6], &[0, 100, 200]));
        assert_eq!(base.len(), 1);
        assert!(!base.is_empty());
        let env = base.envelope("n|timer|/t").expect("envelope");
        assert_eq!(env.mbcet, Nanos::from_millis(2));
        assert_eq!(env.macet, Nanos::from_millis(4));
        assert_eq!(env.mwcet, Nanos::from_millis(6));
        assert_eq!(env.samples, 3);
        assert_eq!(env.period_mean, Some(Nanos::from_millis(100)));
        assert_eq!(env.period_samples, 2);
        assert!(base.envelope("ghost").is_none());
        assert_eq!(base.fingerprint, base.topology.fingerprint());
    }

    #[test]
    fn duplicate_keys_merge_weighted() {
        let mut a = CallbackEnvelope {
            key: "k".into(),
            mbcet: Nanos::from_millis(1),
            macet: Nanos::from_millis(2),
            mwcet: Nanos::from_millis(3),
            samples: 1,
            period_mean: Some(Nanos::from_millis(10)),
            period_min: Some(Nanos::from_millis(9)),
            period_max: Some(Nanos::from_millis(11)),
            period_samples: 1,
        };
        let b = CallbackEnvelope {
            key: "k".into(),
            mbcet: Nanos::from_millis(4),
            macet: Nanos::from_millis(5),
            mwcet: Nanos::from_millis(6),
            samples: 3,
            period_mean: None,
            period_min: None,
            period_max: None,
            period_samples: 0,
        };
        a.absorb(&b);
        assert_eq!(a.samples, 4);
        assert_eq!(a.mbcet, Nanos::from_millis(1));
        assert_eq!(a.mwcet, Nanos::from_millis(6));
        // (2 + 5*3) / 4 = 4.25
        assert_eq!(a.macet, Nanos::from_millis_f64(4.25));
        assert_eq!(a.period_mean, Some(Nanos::from_millis(10)));
        assert_eq!(a.period_samples, 1);
    }
}
