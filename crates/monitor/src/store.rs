//! Per-tenant baseline and monitor state for a fleet of applications.

use crate::alert::Alert;
use crate::baseline::Baseline;
use crate::monitor::{Monitor, MonitorConfig};
use rtms_core::Dag;
use rtms_trace::Nanos;
use std::collections::BTreeMap;

/// Owns the [`Baseline`] + [`Monitor`] pair of every tenant a fleet shard
/// is responsible for, with the memory-observability counters a service
/// holding thousands of these needs: current and peak baseline bytes
/// (via [`Baseline::approx_bytes`]) and current and peak retained episode
/// entries (via [`Monitor::retained_episodes`], each monitor individually
/// bounded by [`MonitorConfig::max_retained_episodes`]).
///
/// Tenants are keyed by `u64` id in a [`BTreeMap`], so iteration — and
/// everything derived from it — is deterministic in tenant order, never
/// in insertion order.
#[derive(Debug, Clone)]
pub struct BaselineStore {
    config: MonitorConfig,
    monitors: BTreeMap<u64, Monitor>,
    baseline_bytes: usize,
    peak_baseline_bytes: usize,
    peak_retained_episodes: usize,
}

impl BaselineStore {
    /// Creates an empty store whose monitors use `config`.
    pub fn new(config: MonitorConfig) -> BaselineStore {
        BaselineStore {
            config,
            monitors: BTreeMap::new(),
            baseline_bytes: 0,
            peak_baseline_bytes: 0,
            peak_retained_episodes: 0,
        }
    }

    /// Installs (or replaces) a tenant's healthy baseline, creating its
    /// monitor. Replacement resets the tenant's episode state — a new
    /// healthy reference starts a new watch.
    pub fn install(&mut self, tenant: u64, baseline: Baseline) {
        let bytes = baseline.approx_bytes();
        let monitor = Monitor::with_config(baseline, self.config.clone());
        if let Some(old) = self.monitors.insert(tenant, monitor) {
            self.baseline_bytes -= old.baseline().approx_bytes();
        }
        self.baseline_bytes += bytes;
        self.peak_baseline_bytes = self.peak_baseline_bytes.max(self.baseline_bytes);
    }

    /// Feeds one window snapshot of a tenant to its monitor, returning
    /// the window's alerts. A tenant without an installed baseline is
    /// still in its healthy-capture phase: the snapshot is not judged and
    /// no alerts are returned.
    pub fn observe(&mut self, tenant: u64, snapshot: &Dag, window: Nanos) -> Vec<Alert> {
        let Some(monitor) = self.monitors.get_mut(&tenant) else {
            return Vec::new();
        };
        let alerts = monitor.observe(snapshot, window);
        let retained: usize = self.monitors.values().map(Monitor::retained_episodes).sum();
        self.peak_retained_episodes = self.peak_retained_episodes.max(retained);
        alerts
    }

    /// Whether `tenant` has an installed baseline.
    pub fn has(&self, tenant: u64) -> bool {
        self.monitors.contains_key(&tenant)
    }

    /// The tenant's monitor, if its baseline is installed.
    pub fn monitor(&self, tenant: u64) -> Option<&Monitor> {
        self.monitors.get(&tenant)
    }

    /// Tenant ids with installed baselines, ascending.
    pub fn tenants(&self) -> impl Iterator<Item = u64> + '_ {
        self.monitors.keys().copied()
    }

    /// Number of tenants with installed baselines.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether no tenant has a baseline yet.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Approximate bytes currently retained by all installed baselines.
    pub fn baseline_bytes(&self) -> usize {
        self.baseline_bytes
    }

    /// High-water mark of [`BaselineStore::baseline_bytes`] across the
    /// store's lifetime.
    pub fn peak_baseline_bytes(&self) -> usize {
        self.peak_baseline_bytes
    }

    /// Episode-tracking entries currently retained across all monitors.
    pub fn retained_episodes(&self) -> usize {
        self.monitors.values().map(Monitor::retained_episodes).sum()
    }

    /// High-water mark of [`BaselineStore::retained_episodes`], measured
    /// after each observation.
    pub fn peak_retained_episodes(&self) -> usize {
        self.peak_retained_episodes
    }

    /// Total alerts emitted across all monitors.
    pub fn alerts_emitted(&self) -> u64 {
        self.monitors.values().map(Monitor::alerts_emitted).sum()
    }
}

impl Default for BaselineStore {
    fn default() -> BaselineStore {
        BaselineStore::new(MonitorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn chain(tag: &str, exec_ms: f64, n: usize) -> Dag {
        let topic: std::sync::Arc<str> = format!("/{tag}/a").into();
        let times: Vec<Nanos> = (0..n).map(|_| Nanos::from_millis_f64(exec_ms)).collect();
        let rec = |id: u64, kind, in_topic: Option<&std::sync::Arc<str>>, outs: &[&std::sync::Arc<str>]| CallbackRecord {
            pid: Pid::new(id as u32),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.cloned(),
            out_topics: outs.iter().map(|t| (*t).clone()).collect(),
            is_sync_subscriber: false,
            stats: ExecStats::from_samples(times.iter().copied()),
            exec_times: times.clone(),
            start_times: (0..n as u64).map(|i| Nanos::from_millis(i * 100)).collect(),
        };
        let lists: Vec<(Pid, CbList)> = vec![
            (Pid::new(1), [rec(1, CallbackKind::Timer, None, &[&topic])].into_iter().collect()),
            (
                Pid::new(2),
                [rec(2, CallbackKind::Subscriber, Some(&topic), &[])].into_iter().collect(),
            ),
        ];
        let names: HashMap<Pid, String> =
            [(Pid::new(1), format!("{tag}_src")), (Pid::new(2), format!("{tag}_sink"))].into();
        Dag::from_cblists(&lists, &names)
    }

    #[test]
    fn healthy_tenants_stay_silent_and_bytes_are_tracked() {
        let mut store = BaselineStore::default();
        for t in 0..4u64 {
            store.install(t, Baseline::from_dag(&chain("app", 1.0, 12)));
        }
        assert_eq!(store.len(), 4);
        assert!(store.has(2) && !store.has(9));
        assert_eq!(store.tenants().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(store.baseline_bytes() > 0);
        assert_eq!(store.baseline_bytes(), store.peak_baseline_bytes());
        for t in 0..4u64 {
            let alerts = store.observe(t, &chain("app", 1.0, 6), Nanos::from_secs(1));
            assert!(alerts.is_empty(), "healthy tenant {t}: {alerts:?}");
        }
        assert_eq!(store.alerts_emitted(), 0);
    }

    #[test]
    fn faulty_tenant_alerts_and_reinstall_resets() {
        let mut store = BaselineStore::default();
        store.install(7, Baseline::from_dag(&chain("app", 1.0, 12)));
        let alerts = store.observe(7, &chain("app", 8.0, 6), Nanos::from_secs(1));
        assert!(!alerts.is_empty(), "8x exec time must alert");
        assert_eq!(store.alerts_emitted(), alerts.len() as u64);
        let before = store.baseline_bytes();
        store.install(7, Baseline::from_dag(&chain("app", 1.0, 12)));
        assert_eq!(store.baseline_bytes(), before, "replacement does not leak bytes");
        assert_eq!(store.alerts_emitted(), 0, "reinstall starts a fresh watch");
    }

    #[test]
    fn unknown_tenant_observation_is_a_no_op() {
        let mut store = BaselineStore::default();
        assert!(store.observe(3, &chain("app", 1.0, 6), Nanos::from_secs(1)).is_empty());
        assert!(store.is_empty());
        assert_eq!(store.retained_episodes(), 0);
        assert_eq!(store.peak_retained_episodes(), 0);
    }

    #[test]
    fn episode_watermark_accumulates_across_tenants() {
        let mut store = BaselineStore::default();
        for t in 0..3u64 {
            store.install(t, Baseline::from_dag(&chain("app", 1.0, 12)));
        }
        // A different topology per window: each tenant retains episode
        // entries for the added + missing elements.
        for t in 0..3u64 {
            store.observe(t, &chain("rogue", 1.0, 6), Nanos::from_secs(1));
        }
        assert!(store.retained_episodes() > 0);
        assert_eq!(store.peak_retained_episodes(), store.retained_episodes());
    }
}
