//! The online drift monitor.

use crate::alert::{Alert, AlertKind, Severity};
use crate::baseline::Baseline;
use rtms_analysis::LoadAccumulator;
use rtms_core::{Dag, ModelDiff, TopologyEdge, VertexKind};
use rtms_trace::Nanos;
use std::collections::{BTreeMap, BTreeSet};

/// Detection thresholds of a [`Monitor`].
///
/// Every timing bound is *spread-aware*: it widens with the baseline's own
/// observed variation (`mwcet - mbcet`, `period_max - period_min`), so a
/// callback with naturally noisy execution times gets proportionally more
/// slack and a healthy application stays silent even when the baseline was
/// captured from a modest number of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Relative tolerance on the baseline mean execution time: a window
    /// mean beyond `macet * (1 + exec_tolerance) + spread + exec_slack`
    /// raises [`AlertKind::ExecDrift`].
    pub exec_tolerance: f64,
    /// Multiplier on the baseline execution-time spread (`mwcet - mbcet`)
    /// added to the drift bound.
    pub exec_range_mult: f64,
    /// Absolute slack added to the execution-time drift bound.
    pub exec_slack: Nanos,
    /// Callbacks with fewer baseline samples than this are not judged for
    /// execution-time drift (a thin envelope is not evidence).
    pub min_baseline_samples: u64,
    /// Windows with fewer samples of a callback than this are not judged
    /// for execution-time drift.
    pub min_window_samples: u64,
    /// Relative tolerance on the baseline mean period.
    pub period_tolerance: f64,
    /// Absolute slack added to the period drift bound.
    pub period_slack: Nanos,
    /// Callbacks with fewer baseline start gaps than this are not judged
    /// for period drift.
    pub min_baseline_periods: u64,
    /// Per-node processor load (fraction of one core) above which a
    /// [`AlertKind::LoadSpike`] is raised.
    pub load_threshold: f64,
    /// A subscriber observing fewer than `loss_threshold` times the
    /// instances its baseline arrival rate predicts for the window raises
    /// [`AlertKind::MessageLoss`]. Kept below 0.5 so a merely *stuttering*
    /// upstream (periods stretched 2x, handled by period supervision)
    /// does not double-report as loss.
    pub loss_threshold: f64,
    /// Windows where the baseline rate predicts fewer subscriber
    /// instances than this are not judged for message loss (too few
    /// arrivals for a rate to be evidence).
    pub min_expected_messages: u64,
    /// Number of *consecutive* windows an element must be missing before a
    /// [`AlertKind::TopologyChange`] reports it. Guards against a callback
    /// instance straddling a window boundary; appearing elements are
    /// reported immediately.
    pub missing_persistence: usize,
    /// Upper bound on retained episode-tracking entries (streak counters
    /// plus reported-element sets, summed across all six collections).
    /// Episode state is naturally bounded by the diff between reference
    /// and snapshot topologies, but a fleet holding thousands of
    /// monitors needs that bound *enforced*, not assumed: past the cap
    /// the monitor deterministically evicts the lexicographically last
    /// entries of the largest collection. An evicted episode can
    /// re-report if the condition persists — bounded memory is bought
    /// with (at worst) duplicate alerts, never with missed ones.
    pub max_retained_episodes: usize,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            exec_tolerance: 1.0,
            exec_range_mult: 1.0,
            exec_slack: Nanos::from_micros(200),
            min_baseline_samples: 10,
            min_window_samples: 3,
            period_tolerance: 0.5,
            period_slack: Nanos::from_millis(5),
            min_baseline_periods: 5,
            load_threshold: 0.85,
            loss_threshold: 0.45,
            min_expected_messages: 6,
            missing_persistence: 2,
            max_retained_episodes: 1024,
        }
    }
}

/// Watches a stream of model snapshots for drift against a healthy
/// [`Baseline`].
///
/// Feed one model per observation window (e.g. the model a fresh
/// [`rtms_core::SynthesisSession`] synthesizes from one trace segment) to
/// [`Monitor::observe`]; each call returns the window's alerts sorted by
/// descending severity. The monitor is stateful across windows: missing
/// topology elements must persist before they are reported, and every
/// topology episode is reported exactly once until it recovers.
#[derive(Debug, Clone)]
pub struct Monitor {
    baseline: Baseline,
    /// `baseline.topology` with `#unknown`-decorated elements removed —
    /// the reference side of every structural comparison.
    reference_topology: rtms_core::Topology,
    config: MonitorConfig,
    segment: u64,
    missing_vertex_streak: BTreeMap<String, usize>,
    missing_edge_streak: BTreeMap<TopologyEdge, usize>,
    reported_missing_vertices: BTreeSet<String>,
    reported_missing_edges: BTreeSet<TopologyEdge>,
    reported_added_vertices: BTreeSet<String>,
    reported_added_edges: BTreeSet<TopologyEdge>,
    alerts_emitted: u64,
    /// High-water mark of episode entries *demanded* (measured before
    /// bound enforcement), mirroring
    /// [`rtms_core::SynthesisSession::peak_watermark`].
    peak_retained_episodes: usize,
}

impl Monitor {
    /// Creates a monitor with [`MonitorConfig::default`] thresholds.
    pub fn new(baseline: Baseline) -> Monitor {
        Monitor::with_config(baseline, MonitorConfig::default())
    }

    /// Creates a monitor with explicit thresholds.
    pub fn with_config(baseline: Baseline, config: MonitorConfig) -> Monitor {
        let reference_topology = baseline.topology.without_unresolved();
        Monitor {
            baseline,
            reference_topology,
            config,
            segment: 0,
            missing_vertex_streak: BTreeMap::new(),
            missing_edge_streak: BTreeMap::new(),
            reported_missing_vertices: BTreeSet::new(),
            reported_missing_edges: BTreeSet::new(),
            reported_added_vertices: BTreeSet::new(),
            reported_added_edges: BTreeSet::new(),
            alerts_emitted: 0,
            peak_retained_episodes: 0,
        }
    }

    /// The healthy reference this monitor compares against.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// The active thresholds.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Number of snapshots observed so far.
    pub fn segments_observed(&self) -> u64 {
        self.segment
    }

    /// Total alerts emitted so far.
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts_emitted
    }

    /// Episode-tracking entries currently retained (streak counters plus
    /// reported-element sets). Always at most
    /// [`MonitorConfig::max_retained_episodes`] after an
    /// [`Monitor::observe`] returns.
    pub fn retained_episodes(&self) -> usize {
        self.missing_vertex_streak.len()
            + self.missing_edge_streak.len()
            + self.reported_missing_vertices.len()
            + self.reported_missing_edges.len()
            + self.reported_added_vertices.len()
            + self.reported_added_edges.len()
    }

    /// High-water mark of episode entries demanded across the monitor's
    /// lifetime, measured *before* bound enforcement — the number
    /// [`MonitorConfig::max_retained_episodes`] should be sized against,
    /// mirroring [`rtms_core::SynthesisSession::peak_watermark`].
    pub fn peak_retained_episodes(&self) -> usize {
        self.peak_retained_episodes
    }

    /// Feeds one window's model snapshot and returns its alerts, sorted by
    /// descending severity. `window` is the observation window the
    /// snapshot covers (used for processor-load accounting).
    pub fn observe(&mut self, snapshot: &Dag, window: Nanos) -> Vec<Alert> {
        let segment = self.segment;
        self.segment += 1;
        let mut alerts = Vec::new();

        if let Some(diff) = self.topology_episodes(snapshot) {
            alerts.push(Alert {
                segment,
                severity: Severity::Critical,
                kind: AlertKind::TopologyChange { diff },
            });
        }
        self.timing_drift(snapshot, segment, &mut alerts);
        self.message_loss(snapshot, window, segment, &mut alerts);
        self.load_spikes(snapshot, window, segment, &mut alerts);

        self.peak_retained_episodes = self.peak_retained_episodes.max(self.retained_episodes());
        self.enforce_episode_bound();

        alerts.sort_by_key(|a| std::cmp::Reverse(a.severity));
        self.alerts_emitted += alerts.len() as u64;
        alerts
    }

    /// Evicts episode entries until the total is within
    /// [`MonitorConfig::max_retained_episodes`]: always from the largest
    /// collection (fixed tie-break order), always its lexicographically
    /// last entry — deterministic for any alert history.
    fn enforce_episode_bound(&mut self) {
        let cap = self.config.max_retained_episodes;
        while self.retained_episodes() > cap {
            let sizes = [
                self.missing_vertex_streak.len(),
                self.missing_edge_streak.len(),
                self.reported_missing_vertices.len(),
                self.reported_missing_edges.len(),
                self.reported_added_vertices.len(),
                self.reported_added_edges.len(),
            ];
            let largest = (0..sizes.len()).max_by_key(|&i| sizes[i]).expect("six collections");
            match largest {
                0 => drop(self.missing_vertex_streak.pop_last()),
                1 => drop(self.missing_edge_streak.pop_last()),
                2 => drop(self.reported_missing_vertices.pop_last()),
                3 => drop(self.reported_missing_edges.pop_last()),
                4 => drop(self.reported_added_vertices.pop_last()),
                _ => drop(self.reported_added_edges.pop_last()),
            }
        }
    }

    /// Structural comparison with episode bookkeeping: appeared elements
    /// report immediately, missing elements once they persist for
    /// [`MonitorConfig::missing_persistence`] windows; each element is
    /// reported once per episode.
    fn topology_episodes(&mut self, snapshot: &Dag) -> Option<ModelDiff> {
        // Both sides sanitized: an interaction cut by the window edge
        // decorates as `#unknown` and must not read as structural change.
        let diff = self.reference_topology.diff_to(&snapshot.topology().without_unresolved());
        let eff = ModelDiff {
            added_vertices: episode_step(
                &diff.added_vertices,
                &mut self.reported_added_vertices,
                None,
                1,
            ),
            missing_vertices: episode_step(
                &diff.missing_vertices,
                &mut self.reported_missing_vertices,
                Some(&mut self.missing_vertex_streak),
                self.config.missing_persistence,
            ),
            added_edges: episode_step(&diff.added_edges, &mut self.reported_added_edges, None, 1),
            missing_edges: episode_step(
                &diff.missing_edges,
                &mut self.reported_missing_edges,
                Some(&mut self.missing_edge_streak),
                self.config.missing_persistence,
            ),
        };
        (!eff.is_empty()).then_some(eff)
    }

    /// Per-vertex execution-time and period drift against the envelopes.
    fn timing_drift(&mut self, snapshot: &Dag, segment: u64, alerts: &mut Vec<Alert>) {
        let c = &self.config;
        for v in snapshot.vertices() {
            if v.kind == VertexKind::AndJunction {
                continue;
            }
            let key = v.merge_key();
            // Vertices without an envelope are new topology, reported above.
            let Some(env) = self.baseline.envelope(&key) else { continue };

            if env.samples >= c.min_baseline_samples && v.stats.count() >= c.min_window_samples {
                let spread = (env.mwcet - env.mbcet).scaled(c.exec_range_mult);
                let bound =
                    env.macet.scaled(1.0 + c.exec_tolerance) + spread + c.exec_slack;
                if let Some(observed) = v.stats.macet() {
                    if observed > bound {
                        // The whole window above the healthy worst case is
                        // unambiguous; a shifted mean alone is a warning.
                        let severity = if v.stats.mbcet()
                            > Some(env.mwcet + c.exec_slack)
                        {
                            Severity::Critical
                        } else {
                            Severity::Warning
                        };
                        alerts.push(Alert {
                            segment,
                            severity,
                            kind: AlertKind::ExecDrift {
                                key: key.clone(),
                                observed_macet: observed,
                                baseline_macet: env.macet,
                                bound,
                            },
                        });
                    }
                }
            }

            // Period supervision is timer-cadence supervision: a
            // subscriber's arrival rate is a flow effect of its upstream,
            // not a property of the callback itself.
            let is_timer =
                v.kind == VertexKind::Callback(rtms_trace::CallbackKind::Timer);
            if is_timer && env.period_samples >= c.min_baseline_periods && v.period.count() >= 1 {
                let (Some(pm), Some(pmin), Some(pmax)) =
                    (env.period_mean, env.period_min, env.period_max)
                else {
                    continue;
                };
                let bound =
                    pm.scaled(1.0 + c.period_tolerance) + (pmax - pmin) + c.period_slack;
                if let Some(observed) = v.period.macet() {
                    if observed > bound {
                        let severity = if observed > bound.scaled(2.0) {
                            Severity::Critical
                        } else {
                            Severity::Warning
                        };
                        alerts.push(Alert {
                            segment,
                            severity,
                            kind: AlertKind::PeriodDrift {
                                key: key.clone(),
                                observed_period: observed,
                                baseline_period: pm,
                                bound,
                            },
                        });
                    }
                }
            }
        }
    }

    /// Subscriber arrival-rate supervision: a subscriber delivering far
    /// fewer instances than its baseline period predicts for the window is
    /// losing messages in transport (best-effort drops, a flaky link). A
    /// subscriber that vanishes *entirely* is handled by the topology
    /// path instead — rate supervision needs a vertex to judge.
    fn message_loss(
        &self,
        snapshot: &Dag,
        window: Nanos,
        segment: u64,
        alerts: &mut Vec<Alert>,
    ) {
        let c = &self.config;
        if window == Nanos::ZERO {
            return;
        }
        for v in snapshot.vertices() {
            if v.kind != VertexKind::Callback(rtms_trace::CallbackKind::Subscriber) {
                continue;
            }
            let key = v.merge_key();
            let Some(env) = self.baseline.envelope(&key) else { continue };
            if env.period_samples < c.min_baseline_periods {
                continue;
            }
            let Some(pm) = env.period_mean else { continue };
            if pm == Nanos::ZERO {
                continue;
            }
            let expected = window.as_nanos() / pm.as_nanos();
            if expected < c.min_expected_messages {
                continue;
            }
            let observed = v.stats.count();
            let bound = expected as f64 * c.loss_threshold;
            if (observed as f64) < bound {
                // Less than half the loss bound is an unambiguous outage;
                // a rate merely below the bound warns.
                let severity = if (observed as f64) < bound / 2.0 {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                alerts.push(Alert {
                    segment,
                    severity,
                    kind: AlertKind::MessageLoss {
                        key: key.clone(),
                        observed,
                        expected,
                        threshold: c.loss_threshold,
                    },
                });
            }
        }
    }

    /// Per-node processor load over the window, via the streaming
    /// [`LoadAccumulator`] of `rtms-analysis`.
    fn load_spikes(&self, snapshot: &Dag, window: Nanos, segment: u64, alerts: &mut Vec<Alert>) {
        if window == Nanos::ZERO {
            return;
        }
        let mut acc = LoadAccumulator::new(window);
        acc.add_run(snapshot);
        for nl in acc.mean_loads() {
            if nl.load > self.config.load_threshold {
                alerts.push(Alert {
                    segment,
                    severity: Severity::Warning,
                    kind: AlertKind::LoadSpike {
                        node: nl.node,
                        load: nl.load,
                        threshold: self.config.load_threshold,
                    },
                });
            }
        }
    }
}

/// One window step of episode bookkeeping for one diff list. Returns the
/// elements to report this window: those whose streak just reached
/// `persistence` and which were not already reported in the ongoing
/// episode. Elements absent from `current` have recovered — their streak
/// and reported status reset, so a recurrence starts a fresh episode.
fn episode_step<T: Ord + Clone>(
    current: &[T],
    reported: &mut BTreeSet<T>,
    mut streaks: Option<&mut BTreeMap<T, usize>>,
    persistence: usize,
) -> Vec<T> {
    let now: BTreeSet<T> = current.iter().cloned().collect();
    let mut fresh = Vec::new();
    for item in &now {
        let streak = match streaks.as_deref_mut() {
            Some(map) => {
                let s = map.entry(item.clone()).or_insert(0);
                *s += 1;
                *s
            }
            None => persistence, // no streak tracking: report immediately
        };
        if streak >= persistence && reported.insert(item.clone()) {
            fresh.push(item.clone());
        }
    }
    if let Some(map) = streaks {
        map.retain(|k, _| now.contains(k));
    }
    reported.retain(|k| now.contains(k));
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    /// A callback record with `n` execution samples of `exec_ms` each,
    /// started every `period_ms`.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        pid: u32,
        id: u64,
        kind: CallbackKind,
        in_topic: Option<&str>,
        outs: &[&str],
        exec_ms: f64,
        n: usize,
        period_ms: u64,
    ) -> CallbackRecord {
        let times: Vec<Nanos> = (0..n).map(|_| Nanos::from_millis_f64(exec_ms)).collect();
        CallbackRecord {
            pid: Pid::new(pid),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.map(std::sync::Arc::from),
            out_topics: outs.iter().map(|s| std::sync::Arc::from(*s)).collect(),
            is_sync_subscriber: false,
            stats: ExecStats::from_samples(times.iter().copied()),
            exec_times: times,
            start_times: (0..n as u64).map(|i| Nanos::from_millis(i * period_ms)).collect(),
        }
    }

    fn dag(lists: Vec<(u32, Vec<CallbackRecord>)>) -> Dag {
        let names: HashMap<Pid, String> =
            lists.iter().map(|(p, _)| (Pid::new(*p), format!("n{p}"))).collect();
        let lists: Vec<(Pid, CbList)> = lists
            .into_iter()
            .map(|(p, recs)| (Pid::new(p), recs.into_iter().collect()))
            .collect();
        Dag::from_cblists(&lists, &names)
    }

    fn chain(timer_exec: f64, sub_exec: f64, n: usize, period: u64) -> Dag {
        dag(vec![
            (1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], timer_exec, n, period)]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], sub_exec, n, period)]),
        ])
    }

    const WINDOW: Nanos = Nanos::from_secs(1);

    #[test]
    fn healthy_window_is_silent() {
        let healthy = chain(1.0, 2.0, 12, 100);
        let mut m = Monitor::new(Baseline::from_dag(&healthy));
        for _ in 0..5 {
            assert_eq!(m.observe(&chain(1.0, 2.0, 6, 100), WINDOW), vec![]);
        }
        assert_eq!(m.segments_observed(), 5);
        assert_eq!(m.alerts_emitted(), 0);
    }

    #[test]
    fn exec_drift_beyond_envelope_raises_critical() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        let alerts = m.observe(&chain(5.0, 2.0, 6, 100), WINDOW);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].severity, Severity::Critical);
        match &alerts[0].kind {
            AlertKind::ExecDrift { key, observed_macet, baseline_macet, .. } => {
                assert_eq!(key, "n1|timer|/a");
                assert_eq!(*observed_macet, Nanos::from_millis(5));
                assert_eq!(*baseline_macet, Nanos::from_millis(1));
            }
            other => panic!("expected exec drift, got {other:?}"),
        }
    }

    #[test]
    fn exec_drift_below_bound_is_silent() {
        // Constant 1 ms baseline: bound = 2 ms + 0 spread + 0.2 ms slack.
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        assert!(m.observe(&chain(2.1, 2.0, 6, 100), WINDOW).is_empty());
        assert_eq!(m.observe(&chain(2.3, 2.0, 6, 100), WINDOW).len(), 1);
    }

    #[test]
    fn thin_envelope_is_not_judged() {
        // Only 2 baseline samples (< min_baseline_samples): no exec alert
        // even for a 10x shift.
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 2, 100)));
        let alerts = m.observe(&chain(10.0, 2.0, 6, 100), WINDOW);
        assert!(
            alerts.iter().all(|a| a.kind.name() != "exec_drift"),
            "thin baseline must not be judged: {alerts:?}"
        );
    }

    #[test]
    fn period_drift_detected_with_severity_scaling() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        // Bound: 100 * 1.5 + 0 + 5 = 155 ms.
        let warn = m.observe(&chain(1.0, 2.0, 6, 250), WINDOW);
        assert!(
            warn.iter().any(|a| matches!(
                &a.kind,
                AlertKind::PeriodDrift { key, observed_period, .. }
                    if key == "n1|timer|/a" && *observed_period == Nanos::from_millis(250)
            )),
            "{warn:?}"
        );
        let crit = m.observe(&chain(1.0, 2.0, 4, 400), WINDOW);
        let period_alert = crit
            .iter()
            .find(|a| a.kind.name() == "period_drift")
            .expect("period drift fires");
        assert_eq!(period_alert.severity, Severity::Critical, "400 > 2x bound");
    }

    #[test]
    fn topology_added_reports_immediately_and_once_per_episode() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        let with_extra = dag(vec![
            (1, vec![
                rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100),
                rec(1, 3, CallbackKind::Timer, None, &["/rogue"], 1.0, 6, 100),
            ]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 6, 100)]),
        ]);
        let first = m.observe(&with_extra, WINDOW);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].severity, Severity::Critical);
        match &first[0].kind {
            AlertKind::TopologyChange { diff } => {
                assert_eq!(diff.added_vertices, vec!["n1|timer|/rogue".to_string()]);
                assert!(diff.missing_vertices.is_empty());
            }
            other => panic!("expected topology change, got {other:?}"),
        }
        // Persisting condition: not re-reported.
        assert!(m.observe(&with_extra, WINDOW).is_empty());
        // Recovery, then recurrence: a fresh episode re-alerts.
        assert!(m.observe(&chain(1.0, 2.0, 6, 100), WINDOW).is_empty());
        assert_eq!(m.observe(&with_extra, WINDOW).len(), 1);
    }

    #[test]
    fn missing_elements_need_persistence() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        let timer_only =
            dag(vec![(1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)])]);
        // First missing window: below persistence, silent.
        assert!(m.observe(&timer_only, WINDOW).is_empty());
        // Second consecutive: reported once, vertex and edge.
        let alerts = m.observe(&timer_only, WINDOW);
        assert_eq!(alerts.len(), 1);
        match &alerts[0].kind {
            AlertKind::TopologyChange { diff } => {
                assert_eq!(diff.missing_vertices, vec!["n2|subscriber|/a".to_string()]);
                assert_eq!(diff.missing_edges.len(), 1);
            }
            other => panic!("expected topology change, got {other:?}"),
        }
        // Still missing: no repeat.
        assert!(m.observe(&timer_only, WINDOW).is_empty());
        // One healthy window resets the streak: a single missing window is
        // silent again.
        assert!(m.observe(&chain(1.0, 2.0, 6, 100), WINDOW).is_empty());
        assert!(m.observe(&timer_only, WINDOW).is_empty());
    }

    #[test]
    fn load_spike_via_accumulator() {
        let healthy = chain(1.0, 2.0, 12, 100);
        let mut m = Monitor::new(Baseline::from_dag(&healthy));
        // 10 instances of 95 ms in a 1 s window: 95% of a core.
        let heavy = dag(vec![
            (1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 6, 100)]),
            (3, vec![rec(3, 3, CallbackKind::Timer, None, &["/hot"], 95.0, 10, 100)]),
        ]);
        // The hot node is new topology AND a load spike; check both fire,
        // ranked critical-first.
        let alerts = m.observe(&heavy, WINDOW);
        assert!(alerts.len() >= 2, "{alerts:?}");
        assert_eq!(alerts[0].severity, Severity::Critical, "topology change leads");
        assert!(
            alerts.iter().any(|a| matches!(
                &a.kind,
                AlertKind::LoadSpike { node, load, .. } if node == "n3" && *load > 0.85
            )),
            "{alerts:?}"
        );
    }

    #[test]
    fn message_loss_detected_on_starving_subscriber() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        // The subscriber sees 3 of the ~10 instances the baseline rate
        // predicts for the window; the timer side stays healthy.
        let lossy = dag(vec![
            (1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 3, 100)]),
        ]);
        let alerts = m.observe(&lossy, WINDOW);
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].severity, Severity::Warning);
        match &alerts[0].kind {
            AlertKind::MessageLoss { key, observed, expected, .. } => {
                assert_eq!(key, "n2|subscriber|/a");
                assert_eq!(*observed, 3);
                assert_eq!(*expected, 10);
            }
            other => panic!("expected message loss, got {other:?}"),
        }
        // Near-total loss escalates to critical.
        let dead = dag(vec![
            (1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 1, 100)]),
        ]);
        let alerts = m.observe(&dead, WINDOW);
        let loss = alerts
            .iter()
            .find(|a| a.kind.name() == "message_loss")
            .expect("message loss fires");
        assert_eq!(loss.severity, Severity::Critical);
    }

    #[test]
    fn halved_rate_is_not_message_loss() {
        // 5 of 10 expected instances is a stuttering upstream (period
        // supervision's job), not transport loss — the 0.45 threshold
        // keeps the two alert classes disjoint.
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        let halved = dag(vec![
            (1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)]),
            (2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 5, 100)]),
        ]);
        let alerts = m.observe(&halved, WINDOW);
        assert!(
            alerts.iter().all(|a| a.kind.name() != "message_loss"),
            "halved rate must not read as loss: {alerts:?}"
        );
    }

    #[test]
    fn episode_state_is_bounded_with_watermark() {
        let config = MonitorConfig { max_retained_episodes: 3, ..MonitorConfig::default() };
        let mut m = Monitor::with_config(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)), config);
        // 5 rogue timers: 5 added vertices demand 5 episode entries.
        let rogue: Vec<CallbackRecord> = (0..5)
            .map(|i| {
                rec(1, 10 + i, CallbackKind::Timer, None, &[&format!("/rogue{i}")], 1.0, 6, 100)
            })
            .collect();
        let mut lists = vec![(1, rogue)];
        lists[0].1.push(rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100));
        lists.push((2, vec![rec(2, 2, CallbackKind::Subscriber, Some("/a"), &[], 2.0, 6, 100)]));
        let noisy = dag(lists);
        let first = m.observe(&noisy, WINDOW);
        assert_eq!(first.len(), 1, "one topology alert covers all five: {first:?}");
        assert!(m.retained_episodes() <= 3, "bound enforced: {}", m.retained_episodes());
        assert_eq!(m.peak_retained_episodes(), 5, "watermark measures pre-trim demand");
        // The evicted episodes re-report while the condition persists —
        // bounded memory costs duplicates, never silence.
        let second = m.observe(&noisy, WINDOW);
        assert_eq!(second.len(), 1, "evicted episodes re-alert: {second:?}");
        assert!(m.retained_episodes() <= 3);
    }

    #[test]
    fn default_bound_never_trims_ordinary_monitoring() {
        let mut m = Monitor::new(Baseline::from_dag(&chain(1.0, 2.0, 12, 100)));
        let timer_only =
            dag(vec![(1, vec![rec(1, 1, CallbackKind::Timer, None, &["/a"], 1.0, 6, 100)])]);
        for _ in 0..4 {
            m.observe(&timer_only, WINDOW);
        }
        assert!(m.peak_retained_episodes() > 0);
        assert!(m.peak_retained_episodes() <= m.config().max_retained_episodes);
        assert_eq!(m.retained_episodes(), m.peak_retained_episodes());
    }

    #[test]
    fn zero_window_skips_load_accounting() {
        let healthy = chain(1.0, 2.0, 12, 100);
        let mut m = Monitor::new(Baseline::from_dag(&healthy));
        assert!(m.observe(&chain(1.0, 2.0, 6, 100), Nanos::ZERO).is_empty());
    }
}
