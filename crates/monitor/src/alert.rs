//! Typed, severity-ranked monitoring alerts.

use rtms_core::{ModelDiff, TopologyEdge};
use rtms_trace::Nanos;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// How urgent an alert is. Ordered: `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; no action expected.
    Info,
    /// Degradation that merits attention.
    Warning,
    /// The model no longer matches the healthy baseline in a way that
    /// invalidates downstream timing analyses.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// What a [`crate::Monitor`] detected.
///
/// Kinds carry a *stable total order* (variant, then subject, then
/// measurements; `f64` fields via [`f64::total_cmp`]), so alert
/// collections collated from concurrently drained fleet shards sort into
/// one reproducible sequence regardless of arrival interleaving.
/// Equality is defined as order-equivalence (`cmp == Equal`), which
/// keeps `Eq`/`Ord` consistent even for the float fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AlertKind {
    /// A callback's execution time drifted beyond its baseline envelope
    /// plus tolerance.
    ExecDrift {
        /// Merge key of the drifting vertex.
        key: String,
        /// Mean execution time observed in the window.
        observed_macet: Nanos,
        /// Healthy mean execution time.
        baseline_macet: Nanos,
        /// The threshold the observation exceeded.
        bound: Nanos,
    },
    /// A callback's invocation period drifted beyond its baseline plus
    /// tolerance (timers stuttering or starving).
    PeriodDrift {
        /// Merge key of the drifting vertex.
        key: String,
        /// Mean start-to-start gap observed in the window.
        observed_period: Nanos,
        /// Healthy mean period.
        baseline_period: Nanos,
        /// The threshold the observation exceeded.
        bound: Nanos,
    },
    /// The window's model structure diverged from the baseline topology.
    TopologyChange {
        /// What appeared and what went missing, by merge key. Missing
        /// elements are only reported once they persist (see
        /// [`crate::MonitorConfig::missing_persistence`]); every element
        /// is reported once per episode, not once per window.
        diff: ModelDiff,
    },
    /// A node's processor load exceeded the configured threshold.
    LoadSpike {
        /// The overloaded node.
        node: String,
        /// Observed load (fraction of one core).
        load: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// A subscriber received far fewer messages in the window than its
    /// baseline arrival rate predicts (a lossy link, a flaky radio, a
    /// saturated best-effort writer).
    MessageLoss {
        /// Merge key of the starving subscriber vertex.
        key: String,
        /// Instances observed in the window.
        observed: u64,
        /// Instances the baseline period predicts for the window.
        expected: u64,
        /// The fraction of `expected` below which the alert fires.
        threshold: f64,
    },
}

impl AlertKind {
    /// A short machine-friendly name of the kind (`exec_drift`,
    /// `period_drift`, `topology_change`, `load_spike`, `message_loss`).
    pub fn name(&self) -> &'static str {
        match self {
            AlertKind::ExecDrift { .. } => "exec_drift",
            AlertKind::PeriodDrift { .. } => "period_drift",
            AlertKind::TopologyChange { .. } => "topology_change",
            AlertKind::LoadSpike { .. } => "load_spike",
            AlertKind::MessageLoss { .. } => "message_loss",
        }
    }

    /// The *cause* identity of this alert: which entity failed, with the
    /// per-window measurements stripped. Two alerts — from different
    /// tenants, or from different windows of one tenant — with equal
    /// [`AlertKind::name`] and equal cause describe the same underlying
    /// failure; that pair is the grouping key of the fleet-level dedup
    /// rollup in [`crate::rollup`].
    pub fn cause(&self) -> String {
        match self {
            AlertKind::ExecDrift { key, .. }
            | AlertKind::PeriodDrift { key, .. }
            | AlertKind::MessageLoss { key, .. } => key.clone(),
            AlertKind::LoadSpike { node, .. } => node.clone(),
            AlertKind::TopologyChange { diff } => {
                let edges = |es: &[TopologyEdge]| {
                    es.iter()
                        .map(|e| format!("{}>{}@{}", e.from, e.to, e.topic))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "+v[{}] -v[{}] +e[{}] -e[{}]",
                    diff.added_vertices.join(","),
                    diff.missing_vertices.join(","),
                    edges(&diff.added_edges),
                    edges(&diff.missing_edges)
                )
            }
        }
    }

    /// Variant rank for the cross-variant leg of the total order.
    fn rank(&self) -> u8 {
        match self {
            AlertKind::ExecDrift { .. } => 0,
            AlertKind::PeriodDrift { .. } => 1,
            AlertKind::TopologyChange { .. } => 2,
            AlertKind::LoadSpike { .. } => 3,
            AlertKind::MessageLoss { .. } => 4,
        }
    }
}

impl Ord for AlertKind {
    fn cmp(&self, other: &Self) -> Ordering {
        use AlertKind::*;
        match (self, other) {
            (
                ExecDrift { key: k1, observed_macet: o1, baseline_macet: b1, bound: d1 },
                ExecDrift { key: k2, observed_macet: o2, baseline_macet: b2, bound: d2 },
            ) => (k1, o1, b1, d1).cmp(&(k2, o2, b2, d2)),
            (
                PeriodDrift { key: k1, observed_period: o1, baseline_period: b1, bound: d1 },
                PeriodDrift { key: k2, observed_period: o2, baseline_period: b2, bound: d2 },
            ) => (k1, o1, b1, d1).cmp(&(k2, o2, b2, d2)),
            (TopologyChange { diff: d1 }, TopologyChange { diff: d2 }) => d1.cmp(d2),
            (
                LoadSpike { node: n1, load: l1, threshold: t1 },
                LoadSpike { node: n2, load: l2, threshold: t2 },
            ) => n1.cmp(n2).then(l1.total_cmp(l2)).then(t1.total_cmp(t2)),
            (
                MessageLoss { key: k1, observed: o1, expected: e1, threshold: t1 },
                MessageLoss { key: k2, observed: o2, expected: e2, threshold: t2 },
            ) => (k1, o1, e1).cmp(&(k2, o2, e2)).then(t1.total_cmp(t2)),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for AlertKind {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for AlertKind {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for AlertKind {}

/// One emitted alert: what was detected, how urgent it is, and in which
/// observed window (0-based snapshot index counted by the monitor).
///
/// Alerts order by `(segment, severity, kind)` — a stable total order
/// (see [`AlertKind`]), so fleet-level reports built from concurrently
/// drained shards serialize identically for any drain interleaving.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Alert {
    /// Index of the snapshot that triggered the alert (the monitor counts
    /// [`crate::Monitor::observe`] calls from zero).
    pub segment: u64,
    /// Ranked urgency.
    pub severity: Severity,
    /// The detection itself.
    pub kind: AlertKind,
}

impl Alert {
    /// Serializes the alert as one JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("alerts always serialize")
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] segment {}: ", self.severity, self.segment)?;
        match &self.kind {
            AlertKind::ExecDrift { key, observed_macet, baseline_macet, .. } => write!(
                f,
                "exec drift on {key}: mean {:.3} ms vs healthy {:.3} ms",
                observed_macet.as_millis_f64(),
                baseline_macet.as_millis_f64()
            ),
            AlertKind::PeriodDrift { key, observed_period, baseline_period, .. } => write!(
                f,
                "period drift on {key}: {:.1} ms vs healthy {:.1} ms",
                observed_period.as_millis_f64(),
                baseline_period.as_millis_f64()
            ),
            AlertKind::TopologyChange { diff } => write!(
                f,
                "topology change: +{} vertices, -{} vertices, +{} edges, -{} edges",
                diff.added_vertices.len(),
                diff.missing_vertices.len(),
                diff.added_edges.len(),
                diff.missing_edges.len()
            ),
            AlertKind::LoadSpike { node, load, threshold } => write!(
                f,
                "load spike on {node}: {:.0}% (threshold {:.0}%)",
                load * 100.0,
                threshold * 100.0
            ),
            AlertKind::MessageLoss { key, observed, expected, .. } => write!(
                f,
                "message loss on {key}: {observed} instances where the baseline rate \
                 predicts {expected}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
        assert_eq!(Severity::Critical.to_string(), "critical");
    }

    #[test]
    fn kind_names_and_display() {
        let a = Alert {
            segment: 3,
            severity: Severity::Warning,
            kind: AlertKind::LoadSpike { node: "n".into(), load: 0.9, threshold: 0.85 },
        };
        assert_eq!(a.kind.name(), "load_spike");
        let txt = a.to_string();
        assert!(txt.contains("segment 3"), "{txt}");
        assert!(txt.contains("90%"), "{txt}");
        assert!(a.to_json().contains("\"segment\":3"), "{}", a.to_json());
    }
}
