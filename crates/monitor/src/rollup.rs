//! Fleet-level alert deduplication: collapse identical causes across
//! tenants into ranked rollup entries.
//!
//! A fleet of a thousand robots running the same application image fails
//! the same way a thousand times: one saturated topic, one drifting
//! callback — reported once per tenant. The rollup groups alerts by
//! `(kind, cause)` (see [`crate::AlertKind::cause`]), counts tenants and
//! alerts per group, keeps the smallest `(tenant, alert)` pair as the
//! group's exemplar, and ranks groups by severity, blast radius, and
//! volume. Every step is add-order independent, so concurrently drained
//! shards produce byte-identical reports.

use crate::alert::{Alert, Severity};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Accumulates `(tenant, alert)` pairs into a deduplicated, ranked
/// [`AlertRollup`]. Feeding order never matters: groups live in a
/// [`BTreeMap`], the exemplar is the *minimum* pair under the stable
/// total order of [`Alert`], and the final ranking sorts on totals.
#[derive(Debug, Clone, Default)]
pub struct RollupBuilder {
    groups: BTreeMap<(String, String), Group>,
    total_alerts: u64,
}

#[derive(Debug, Clone)]
struct Group {
    severity: Severity,
    alerts: u64,
    tenants: BTreeSet<u64>,
    exemplar: (u64, Alert),
}

impl RollupBuilder {
    /// Creates an empty builder.
    pub fn new() -> RollupBuilder {
        RollupBuilder::default()
    }

    /// Feeds one alert observed on `tenant`.
    pub fn add(&mut self, tenant: u64, alert: &Alert) {
        self.total_alerts += 1;
        let key = (alert.kind.name().to_string(), alert.kind.cause());
        match self.groups.get_mut(&key) {
            Some(g) => {
                g.severity = g.severity.max(alert.severity);
                g.alerts += 1;
                g.tenants.insert(tenant);
                let candidate = (tenant, alert);
                if (candidate.0, candidate.1) < (g.exemplar.0, &g.exemplar.1) {
                    g.exemplar = (tenant, alert.clone());
                }
            }
            None => {
                self.groups.insert(
                    key,
                    Group {
                        severity: alert.severity,
                        alerts: 1,
                        tenants: BTreeSet::from([tenant]),
                        exemplar: (tenant, alert.clone()),
                    },
                );
            }
        }
    }

    /// Feeds every alert of a tenant's window.
    pub fn add_all<'a>(&mut self, tenant: u64, alerts: impl IntoIterator<Item = &'a Alert>) {
        for a in alerts {
            self.add(tenant, a);
        }
    }

    /// Alerts fed so far.
    pub fn total_alerts(&self) -> u64 {
        self.total_alerts
    }

    /// Finalizes into the ranked report.
    pub fn build(self) -> AlertRollup {
        let distinct_causes = self.groups.len() as u64;
        let mut entries: Vec<RollupEntry> = self
            .groups
            .into_iter()
            .map(|((kind, cause), g)| RollupEntry {
                kind,
                cause,
                severity: g.severity,
                alerts: g.alerts,
                tenants: g.tenants.len() as u64,
                exemplar_tenant: g.exemplar.0,
                exemplar: g.exemplar.1,
            })
            .collect();
        // Rank: most urgent first, then widest blast radius, then volume;
        // the (kind, cause) key breaks remaining ties totally.
        entries.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| b.tenants.cmp(&a.tenants))
                .then_with(|| b.alerts.cmp(&a.alerts))
                .then_with(|| (&a.kind, &a.cause).cmp(&(&b.kind, &b.cause)))
        });
        AlertRollup { entries, total_alerts: self.total_alerts, distinct_causes }
    }
}

/// The deduplicated fleet alert report: one entry per distinct
/// `(kind, cause)` pair, ranked most-urgent/widest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRollup {
    /// Ranked rollup entries.
    pub entries: Vec<RollupEntry>,
    /// Total alerts fed into the rollup.
    pub total_alerts: u64,
    /// Number of distinct `(kind, cause)` groups (equals
    /// `entries.len()`; kept explicit so a truncated report still
    /// carries the full count).
    pub distinct_causes: u64,
}

/// One deduplicated failure: everything the fleet observed about a
/// single `(kind, cause)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollupEntry {
    /// [`crate::AlertKind::name`] of the grouped alerts.
    pub kind: String,
    /// [`crate::AlertKind::cause`] of the grouped alerts.
    pub cause: String,
    /// Highest severity any tenant reached for this cause.
    pub severity: Severity,
    /// Total alerts in the group.
    pub alerts: u64,
    /// Distinct tenants that reported the cause (the blast radius).
    pub tenants: u64,
    /// Tenant of the exemplar alert.
    pub exemplar_tenant: u64,
    /// The smallest `(tenant, alert)` pair of the group under the stable
    /// [`Alert`] order — one concrete instance to look at.
    pub exemplar: Alert,
}

impl AlertRollup {
    /// Alerts per distinct cause — the fleet's redundancy factor. A
    /// ratio above 1 means deduplication collapsed repeated failures;
    /// 0.0 when no alerts were fed.
    pub fn dedup_ratio(&self) -> f64 {
        if self.distinct_causes == 0 {
            0.0
        } else {
            self.total_alerts as f64 / self.distinct_causes as f64
        }
    }

    /// Serializes the report as JSON. Byte-identical for any feed order
    /// of the same `(tenant, alert)` multiset.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("rollups always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertKind;

    fn drift(segment: u64, key: &str, observed_ms: u64) -> Alert {
        Alert {
            segment,
            severity: if observed_ms > 10 { Severity::Critical } else { Severity::Warning },
            kind: AlertKind::ExecDrift {
                key: key.to_string(),
                observed_macet: rtms_trace::Nanos::from_millis(observed_ms),
                baseline_macet: rtms_trace::Nanos::from_millis(1),
                bound: rtms_trace::Nanos::from_millis(3),
            },
        }
    }

    fn spike(segment: u64, node: &str, load: f64) -> Alert {
        Alert {
            segment,
            severity: Severity::Warning,
            kind: AlertKind::LoadSpike { node: node.to_string(), load, threshold: 0.85 },
        }
    }

    #[test]
    fn identical_causes_collapse_across_tenants() {
        let mut b = RollupBuilder::new();
        for tenant in 0..5u64 {
            b.add(tenant, &drift(2, "img|timer|/a", 20));
        }
        b.add(9, &spike(1, "img_node", 0.9));
        let r = b.build();
        assert_eq!(r.total_alerts, 6);
        assert_eq!(r.distinct_causes, 2);
        assert!((r.dedup_ratio() - 3.0).abs() < 1e-9);
        assert_eq!(r.entries.len(), 2);
        // Critical, 5-tenant drift ranks above the 1-tenant warning.
        assert_eq!(r.entries[0].kind, "exec_drift");
        assert_eq!(r.entries[0].tenants, 5);
        assert_eq!(r.entries[0].exemplar_tenant, 0, "smallest tenant is the exemplar");
        assert_eq!(r.entries[1].kind, "load_spike");
    }

    #[test]
    fn report_is_feed_order_independent() {
        let feed: Vec<(u64, Alert)> = vec![
            (3, drift(1, "k1", 20)),
            (1, drift(2, "k1", 5)),
            (2, spike(0, "n", 0.95)),
            (1, drift(1, "k2", 20)),
            (0, drift(1, "k1", 20)),
        ];
        let mut fwd = RollupBuilder::new();
        for (t, a) in &feed {
            fwd.add(*t, a);
        }
        let mut rev = RollupBuilder::new();
        for (t, a) in feed.iter().rev() {
            rev.add(*t, a);
        }
        assert_eq!(fwd.build().to_json(), rev.build().to_json());
    }

    #[test]
    fn severity_escalates_to_group_max() {
        let mut b = RollupBuilder::new();
        b.add(0, &drift(1, "k", 5)); // warning
        b.add(1, &drift(1, "k", 50)); // critical
        let r = b.build();
        assert_eq!(r.entries[0].severity, Severity::Critical);
        assert_eq!(r.entries[0].alerts, 2);
    }

    #[test]
    fn empty_rollup_is_well_defined() {
        let r = RollupBuilder::new().build();
        assert_eq!(r.total_alerts, 0);
        assert_eq!(r.dedup_ratio(), 0.0);
        assert!(r.entries.is_empty());
        let round: AlertRollup = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(round, r);
    }

    #[test]
    fn add_all_counts_every_alert() {
        let mut b = RollupBuilder::new();
        let window = vec![drift(0, "k", 20), spike(0, "n", 0.9)];
        b.add_all(4, &window);
        assert_eq!(b.total_alerts(), 2);
        assert_eq!(b.build().distinct_causes, 2);
    }
}
