//! Online model monitoring over streamed synthesis snapshots.
//!
//! The streaming pipeline (`rtms_trace` segments → `rtms_core::SynthesisSession`)
//! can emit a timing model at every segment boundary; this crate is the
//! subsystem that *consumes* those models online, turning the paper's
//! post-hoc synthesis into runtime verification of a deployed stack:
//!
//! 1. Capture a [`Baseline`] from a model synthesized while the
//!    application is known healthy: a per-callback
//!    mBCET/mACET/mWCET envelope, timer-period statistics, and a
//!    structural topology fingerprint.
//! 2. Feed each subsequent per-window model snapshot to a [`Monitor`].
//! 3. The monitor emits a severity-ranked [`Alert`] stream: execution-time
//!    drift beyond the envelope ± tolerance ([`AlertKind::ExecDrift`]),
//!    timer-period drift ([`AlertKind::PeriodDrift`]), structural change
//!    against the baseline topology ([`AlertKind::TopologyChange`],
//!    carrying an [`rtms_core::ModelDiff`]), and per-node processor-load
//!    spikes ([`AlertKind::LoadSpike`], measured through
//!    [`rtms_analysis::LoadAccumulator`]).
//!
//! All detection thresholds are spread-aware (they widen with the
//! baseline's own observed variation), so a healthy application stays
//! silent: the `monitoring` experiment and the property suite pin *zero*
//! alerts across ≥100 generated fault-free applications.
//!
//! Everything is serializable through the vendored serde, so baselines can
//! be persisted and alert streams shipped as JSON.
//!
//! For *fleets* of monitored applications, [`store::BaselineStore`] owns
//! the per-tenant baseline/monitor pairs (with byte and episode
//! watermarks), and [`rollup::RollupBuilder`] deduplicates the combined
//! alert stream across tenants into a ranked [`rollup::AlertRollup`] —
//! both consumed by the `rtms-fleet` ingestion service.
//!
//! # Example
//!
//! ```
//! use rtms_core::SynthesisSession;
//! use rtms_monitor::{Baseline, Monitor};
//! use rtms_ros2::WorldBuilder;
//! use rtms_trace::Nanos;
//! use rtms_workloads::syn_app;
//!
//! let mut world = WorldBuilder::new(2).seed(1).app(syn_app(1.0)).build()?;
//! // Healthy phase: capture the baseline from the first second.
//! let mut session = SynthesisSession::new();
//! world.trace_into(&mut session, Nanos::from_secs(1));
//! session.flush();
//! let baseline = Baseline::from_dag(&session.model());
//! let mut monitor = Monitor::new(baseline);
//!
//! // Watch phase: feed per-window snapshots (here: one more window).
//! let mut window = SynthesisSession::with_names(session.names().clone());
//! world.trace_into(&mut window, Nanos::from_secs(1));
//! window.flush();
//! let alerts = monitor.observe(&window.model(), Nanos::from_secs(1));
//! assert!(alerts.is_empty(), "a healthy run raises no alerts");
//! # Ok::<(), rtms_ros2::WorldError>(())
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod baseline;
pub mod monitor;
pub mod rollup;
pub mod store;

pub use alert::{Alert, AlertKind, Severity};
pub use baseline::{Baseline, CallbackEnvelope};
pub use monitor::{Monitor, MonitorConfig};
pub use rollup::{AlertRollup, RollupBuilder, RollupEntry};
pub use store::BaselineStore;
