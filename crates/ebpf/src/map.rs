//! BPF maps: bounded key/value stores shared between programs and with
//! user space.

use parking_lot::RwLock;
use rtms_trace::Pid;
use rtms_util::FxHashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned by map updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The map is at `max_entries` and the key is not present.
    Full,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Full => write!(f, "map is full"),
        }
    }
}

impl std::error::Error for MapError {}

/// A bounded hash map with the BPF `update/lookup/delete` API.
///
/// Real BPF hash maps are created with a fixed `max_entries`; updates fail
/// with `-E2BIG` once the map is full. Cloning shares the underlying
/// storage, mirroring how several programs (and user space) hold file
/// descriptors to the same map.
///
/// # Example
///
/// ```
/// use rtms_ebpf::BpfMap;
///
/// let map: BpfMap<u32, u64> = BpfMap::new("inflight", 2);
/// map.update(1, 100)?;
/// assert_eq!(map.lookup(&1), Some(100));
/// assert_eq!(map.delete(&1), Some(100));
/// assert_eq!(map.lookup(&1), None);
/// # Ok::<(), rtms_ebpf::MapError>(())
/// ```
#[derive(Clone)]
pub struct BpfMap<K, V> {
    name: &'static str,
    max_entries: usize,
    // FxHash: map keys are PIDs and addresses, and the kernel tracer
    // consults the PID filter for every scheduler event.
    inner: Arc<RwLock<FxHashMap<K, V>>>,
    /// Bumped on every successful mutation, so hot-path readers can cache
    /// a lock-free snapshot of the contents and revalidate with a single
    /// atomic load instead of taking the lock per query.
    generation: Arc<AtomicU64>,
}

impl<K: Eq + Hash + Clone, V: Clone> BpfMap<K, V> {
    /// Creates a map with a fixed capacity.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    pub fn new(name: &'static str, max_entries: usize) -> Self {
        assert!(max_entries > 0, "max_entries must be positive");
        BpfMap {
            name,
            max_entries,
            inner: Arc::new(RwLock::new(FxHashMap::default())),
            generation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The map name (as it would appear in `bpftool map list`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured capacity.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Inserts or overwrites a key.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Full`] if the map is at capacity and `key` is
    /// not already present.
    pub fn update(&self, key: K, value: V) -> Result<(), MapError> {
        let mut m = self.inner.write();
        if m.len() >= self.max_entries && !m.contains_key(&key) {
            return Err(MapError::Full);
        }
        m.insert(key, value);
        // Release pairs with the Acquire in `generation()`: a reader that
        // sees the new generation also sees the insert when it re-reads
        // the contents.
        self.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// [`BpfMap::update`] through an exclusive handle. When this handle is
    /// the map's only one (no clones outstanding — e.g. a tracer-private
    /// map), the lock is provably uncontended and skipped entirely; with
    /// clones outstanding this falls back to the locked path.
    #[inline]
    pub fn update_mut(&mut self, key: K, value: V) -> Result<(), MapError> {
        let Some(lock) = Arc::get_mut(&mut self.inner) else {
            return self.update(key, value);
        };
        let m = lock.get_mut();
        if m.len() >= self.max_entries && !m.contains_key(&key) {
            return Err(MapError::Full);
        }
        m.insert(key, value);
        self.generation.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// [`BpfMap::delete`] through an exclusive handle; see
    /// [`BpfMap::update_mut`].
    #[inline]
    pub fn delete_mut(&mut self, key: &K) -> Option<V> {
        let Some(lock) = Arc::get_mut(&mut self.inner) else {
            return self.delete(key);
        };
        let removed = lock.get_mut().remove(key);
        if removed.is_some() {
            self.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Looks up a key.
    pub fn lookup(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }

    /// Deletes a key, returning the previous value.
    pub fn delete(&self, key: &K) -> Option<V> {
        let removed = self.inner.write().remove(key);
        if removed.is_some() {
            self.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Mutation counter: changes whenever the contents may have changed.
    /// Readers that cache a snapshot of the map revalidate it by comparing
    /// this against the generation they snapshotted at.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.read().contains_key(key)
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of all keys (user-space iteration).
    pub fn keys(&self) -> Vec<K> {
        self.inner.read().keys().cloned().collect()
    }
}

impl<K, V> fmt::Debug for BpfMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BpfMap")
            .field("name", &self.name)
            .field("max_entries", &self.max_entries)
            .finish()
    }
}

/// The PID-filter map of Sec. III-B.
///
/// The ROS2-INIT tracer inserts the PIDs of ROS2 node threads (learned from
/// probe P1) and the kernel tracer's `sched_switch` handler looks them up
/// to decide whether to export an event — the filtering that cuts the
/// kernel-trace footprint by a factor of three or more.
pub type PidFilterMap = BpfMap<Pid, ()>;

/// Creates the shared PID-filter map with the default capacity (1024
/// nodes, plenty for any ROS2 deployment).
pub fn pid_filter_map() -> PidFilterMap {
    BpfMap::new("ros2_pids", 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_lookup_delete() {
        let m: BpfMap<u32, &str> = BpfMap::new("m", 4);
        m.update(1, "a").expect("insert");
        m.update(2, "b").expect("insert");
        assert_eq!(m.lookup(&1), Some("a"));
        assert_eq!(m.delete(&2), Some("b"));
        assert_eq!(m.lookup(&2), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let m: BpfMap<u32, u32> = BpfMap::new("m", 2);
        m.update(1, 1).expect("insert");
        m.update(2, 2).expect("insert");
        assert_eq!(m.update(3, 3), Err(MapError::Full));
        // Overwriting an existing key is allowed at capacity.
        m.update(1, 10).expect("overwrite");
        assert_eq!(m.lookup(&1), Some(10));
    }

    #[test]
    fn clones_share_storage() {
        let a: BpfMap<u32, u32> = BpfMap::new("m", 4);
        let b = a.clone();
        a.update(7, 7).expect("insert");
        assert_eq!(b.lookup(&7), Some(7));
    }

    #[test]
    fn pid_filter_shared_between_tracers() {
        let filter = pid_filter_map();
        let kernel_side = filter.clone();
        filter.update(Pid::new(42), ()).expect("insert");
        assert!(kernel_side.contains(&Pid::new(42)));
        assert!(!kernel_side.contains(&Pid::new(43)));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: BpfMap<u32, u32> = BpfMap::new("m", 0);
    }
}
