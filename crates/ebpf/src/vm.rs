//! A bytecode-level BPF virtual machine.
//!
//! The tracers in this crate dispatch probes through fast native handlers
//! whose behaviour is *specified* by [`crate::ProgramSpec`]s. This module
//! provides the layer below: a register machine executing a subset of the
//! eBPF instruction set, with the helper interface the paper's programs
//! use (`bpf_ktime_get_ns`, `bpf_get_current_pid_tgid`, map access,
//! `bpf_probe_read_user`, `bpf_perf_event_output`) and a *static verifier*
//! enforcing the load-time guarantees the kernel gives: bounded program
//! size, in-bounds forward-only jumps (hence guaranteed termination),
//! terminal `exit`, and known helpers. Memory safety is enforced by the
//! interpreter through region-tagged pointers (context, stack) with bounds
//! checks — a dynamic rendition of the kernel verifier's static pointer
//! tracking.
//!
//! [`programs`] contains Table I probe programs written in this bytecode —
//! including the two-program `rmw_take_*` pair that stores the `srcTS`
//! address in a map at function entry and dereferences it at exit — and
//! tests assert they reconstruct the same information as the native
//! handlers.

use crate::map::BpfMap;
use std::collections::HashMap;
use std::fmt;

/// Registers `r0`–`r10` (`r10` is the read-only frame pointer).
pub type Reg = u8;

/// Stack size per program, as in the kernel.
pub const STACK_SIZE: usize = 512;

/// Base of the stack address region (grows down from `STACK_BASE +
/// STACK_SIZE`).
pub const STACK_BASE: u64 = 0x1000_0000_0000;
/// Base of the read-only context region.
pub const CTX_BASE: u64 = 0x2000_0000_0000;

/// Helper function identifiers callable via [`Insn::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelperId {
    /// `r0 = monotonic time (ns)`.
    KtimeGetNs,
    /// `r0 = current PID`.
    GetCurrentPidTgid,
    /// `r0 = map[r1]` (0 when absent).
    MapLookup,
    /// `map[r1] = r2; r0 = 0`.
    MapUpdate,
    /// `r0 = old map[r1]` (0 when absent), entry removed.
    MapDelete,
    /// `r0 = *(u64 *)r1` in (simulated) user memory.
    ProbeReadUser,
    /// Export `r2` bytes starting at pointer `r1` to the perf buffer;
    /// `r0 = 0`.
    PerfEventOutput,
}

/// The instruction subset (semantics follow classic eBPF; all ALU is
/// 64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = imm`
    MovImm(Reg, i64),
    /// `dst = src`
    MovReg(Reg, Reg),
    /// `dst += imm`
    AddImm(Reg, i64),
    /// `dst += src`
    AddReg(Reg, Reg),
    /// `dst -= src`
    SubReg(Reg, Reg),
    /// `dst &= imm`
    AndImm(Reg, i64),
    /// `dst >>= imm` (logical)
    RshImm(Reg, u32),
    /// `dst <<= imm`
    LshImm(Reg, u32),
    /// `dst = *(u64 *)(src + off)`
    LdxDw(Reg, Reg, i16),
    /// `dst = *(u32 *)(src + off)` (zero-extended)
    LdxW(Reg, Reg, i16),
    /// `*(u64 *)(dst + off) = src`
    StxDw(Reg, i16, Reg),
    /// `*(u32 *)(dst + off) = src as u32`
    StxW(Reg, i16, Reg),
    /// Unconditional forward jump by `off` instructions.
    Ja(i16),
    /// `if dst == imm: jump off`
    JeqImm(Reg, i64, i16),
    /// `if dst != imm: jump off`
    JneImm(Reg, i64, i16),
    /// `if dst == src: jump off`
    JeqReg(Reg, Reg, i16),
    /// Call a helper.
    Call(HelperId),
    /// Terminate; `r0` is the return value.
    Exit,
}

/// A verified-loadable program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Insn>,
}

/// Rejection reasons from the bytecode verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmVerifyError {
    /// More instructions than the 4096 limit.
    TooLong(usize),
    /// A jump leaves the program or goes backwards.
    BadJump {
        /// Instruction index of the offending jump.
        at: usize,
    },
    /// The program can fall off the end without `Exit`.
    MissingExit,
    /// Write to the read-only frame pointer `r10`.
    FramePointerWrite {
        /// Instruction index of the offending write.
        at: usize,
    },
    /// Register index out of range.
    BadRegister {
        /// Instruction index of the offending use.
        at: usize,
    },
}

impl fmt::Display for VmVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmVerifyError::TooLong(n) => write!(f, "program has {n} instructions, limit 4096"),
            VmVerifyError::BadJump { at } => write!(f, "jump at {at} leaves program or loops"),
            VmVerifyError::MissingExit => write!(f, "program can fall off the end"),
            VmVerifyError::FramePointerWrite { at } => write!(f, "write to r10 at {at}"),
            VmVerifyError::BadRegister { at } => write!(f, "bad register index at {at}"),
        }
    }
}

impl std::error::Error for VmVerifyError {}

impl Program {
    /// Verifies and loads a program.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural guarantee. Forward-only jumps
    /// make every accepted program loop-free, so termination is decided at
    /// load time — the property the kernel verifier establishes with its
    /// (more general) CFG analysis.
    pub fn load(insns: Vec<Insn>) -> Result<Program, VmVerifyError> {
        if insns.len() > 4096 {
            return Err(VmVerifyError::TooLong(insns.len()));
        }
        let len = insns.len() as i64;
        let mut can_fall_through = true;
        for (i, insn) in insns.iter().enumerate() {
            let regs: &[Reg] = match insn {
                Insn::MovImm(d, _)
                | Insn::AddImm(d, _)
                | Insn::AndImm(d, _)
                | Insn::RshImm(d, _)
                | Insn::LshImm(d, _) => std::slice::from_ref(d),
                Insn::MovReg(d, s)
                | Insn::AddReg(d, s)
                | Insn::SubReg(d, s)
                | Insn::LdxDw(d, s, _)
                | Insn::LdxW(d, s, _)
                | Insn::StxDw(d, _, s)
                | Insn::StxW(d, _, s) => {
                    // stores write memory, not registers — but both
                    // register operands must be valid
                    if *d > 10 || *s > 10 {
                        return Err(VmVerifyError::BadRegister { at: i });
                    }
                    &[]
                }
                Insn::JeqImm(d, _, _) | Insn::JneImm(d, _, _) => std::slice::from_ref(d),
                Insn::JeqReg(d, s, _) => {
                    if *d > 10 || *s > 10 {
                        return Err(VmVerifyError::BadRegister { at: i });
                    }
                    &[]
                }
                Insn::Ja(_) | Insn::Call(_) | Insn::Exit => &[],
            };
            for r in regs {
                if *r > 10 {
                    return Err(VmVerifyError::BadRegister { at: i });
                }
            }
            // r10 is read-only.
            let writes_r10 = matches!(
                insn,
                Insn::MovImm(10, _)
                    | Insn::MovReg(10, _)
                    | Insn::AddImm(10, _)
                    | Insn::AddReg(10, _)
                    | Insn::SubReg(10, _)
                    | Insn::AndImm(10, _)
                    | Insn::RshImm(10, _)
                    | Insn::LshImm(10, _)
                    | Insn::LdxDw(10, _, _)
                    | Insn::LdxW(10, _, _)
            );
            if writes_r10 {
                return Err(VmVerifyError::FramePointerWrite { at: i });
            }
            // Jumps: strictly forward, in bounds.
            let off = match insn {
                Insn::Ja(o)
                | Insn::JeqImm(_, _, o)
                | Insn::JneImm(_, _, o)
                | Insn::JeqReg(_, _, o) => Some(*o as i64),
                _ => None,
            };
            if let Some(o) = off {
                let target = i as i64 + 1 + o;
                if o < 0 || target > len {
                    return Err(VmVerifyError::BadJump { at: i });
                }
            }
            if i + 1 == insns.len() {
                can_fall_through = !matches!(insn, Insn::Exit | Insn::Ja(_));
            }
        }
        if insns.is_empty() || can_fall_through {
            return Err(VmVerifyError::MissingExit);
        }
        Ok(Program { insns })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program is empty (it cannot be: `load` rejects that).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// Runtime faults (the dynamic complement of the static verifier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmFault {
    /// Memory access outside the context or stack regions.
    BadAccess {
        /// The faulting address.
        addr: u64,
    },
    /// `probe_read_user` of an unmapped address.
    BadUserRead {
        /// The faulting address.
        addr: u64,
    },
    /// `perf_event_output` with an out-of-range pointer/length.
    BadOutput,
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::BadAccess { addr } => write!(f, "invalid memory access at {addr:#x}"),
            VmFault::BadUserRead { addr } => write!(f, "invalid user read at {addr:#x}"),
            VmFault::BadOutput => write!(f, "invalid perf_event_output"),
        }
    }
}

impl std::error::Error for VmFault {}

/// The attachment environment of one program invocation: the probe
/// context bytes, the clock/PID the helpers expose, simulated user memory
/// for `probe_read_user`, and the bound map.
pub struct VmEnv<'a> {
    /// Read-only probe context (the argument struct image).
    pub ctx: &'a [u8],
    /// `bpf_ktime_get_ns` result.
    pub now_ns: u64,
    /// `bpf_get_current_pid_tgid` result (PID part).
    pub pid: u32,
    /// Simulated user memory for `bpf_probe_read_user`.
    pub user_mem: &'a HashMap<u64, u64>,
    /// The map bound to the program.
    pub map: &'a BpfMap<u64, u64>,
}

/// Result of one program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmRun {
    /// `r0` at `exit`.
    pub ret: u64,
    /// Records exported via `perf_event_output`, in order.
    pub output: Vec<Vec<u8>>,
}

/// Executes a verified program.
///
/// # Errors
///
/// Returns a [`VmFault`] on out-of-bounds memory access, unmapped user
/// reads, or invalid output requests. Termination is guaranteed by the
/// verifier (forward-only jumps).
pub fn run(program: &Program, env: &VmEnv<'_>) -> Result<VmRun, VmFault> {
    let mut regs = [0u64; 11];
    regs[1] = CTX_BASE;
    regs[10] = STACK_BASE + STACK_SIZE as u64;
    let mut stack = [0u8; STACK_SIZE];
    let mut output = Vec::new();

    // Resolves an address to (region bytes, offset) for `len` bytes.
    enum Region {
        Stack(usize),
        Ctx(usize),
    }
    let resolve = |addr: u64, len: usize, ctx_len: usize| -> Result<Region, VmFault> {
        if addr >= STACK_BASE && addr + len as u64 <= STACK_BASE + STACK_SIZE as u64 {
            Ok(Region::Stack((addr - STACK_BASE) as usize))
        } else if addr >= CTX_BASE && addr + len as u64 <= CTX_BASE + ctx_len as u64 {
            Ok(Region::Ctx((addr - CTX_BASE) as usize))
        } else {
            Err(VmFault::BadAccess { addr })
        }
    };

    let mut pc = 0usize;
    while pc < program.insns.len() {
        let insn = program.insns[pc];
        pc += 1;
        match insn {
            Insn::MovImm(d, imm) => regs[d as usize] = imm as u64,
            Insn::MovReg(d, s) => regs[d as usize] = regs[s as usize],
            Insn::AddImm(d, imm) => {
                regs[d as usize] = regs[d as usize].wrapping_add(imm as u64)
            }
            Insn::AddReg(d, s) => {
                regs[d as usize] = regs[d as usize].wrapping_add(regs[s as usize])
            }
            Insn::SubReg(d, s) => {
                regs[d as usize] = regs[d as usize].wrapping_sub(regs[s as usize])
            }
            Insn::AndImm(d, imm) => regs[d as usize] &= imm as u64,
            Insn::RshImm(d, sh) => regs[d as usize] >>= sh.min(63),
            Insn::LshImm(d, sh) => regs[d as usize] <<= sh.min(63),
            Insn::LdxDw(d, s, off) => {
                let addr = regs[s as usize].wrapping_add(off as u64);
                let v = match resolve(addr, 8, env.ctx.len())? {
                    Region::Stack(o) => {
                        u64::from_le_bytes(stack[o..o + 8].try_into().expect("8 bytes"))
                    }
                    Region::Ctx(o) => {
                        u64::from_le_bytes(env.ctx[o..o + 8].try_into().expect("8 bytes"))
                    }
                };
                regs[d as usize] = v;
            }
            Insn::LdxW(d, s, off) => {
                let addr = regs[s as usize].wrapping_add(off as u64);
                let v = match resolve(addr, 4, env.ctx.len())? {
                    Region::Stack(o) => {
                        u32::from_le_bytes(stack[o..o + 4].try_into().expect("4 bytes"))
                    }
                    Region::Ctx(o) => {
                        u32::from_le_bytes(env.ctx[o..o + 4].try_into().expect("4 bytes"))
                    }
                };
                regs[d as usize] = u64::from(v);
            }
            Insn::StxDw(d, off, s) => {
                let addr = regs[d as usize].wrapping_add(off as u64);
                match resolve(addr, 8, env.ctx.len())? {
                    Region::Stack(o) => {
                        stack[o..o + 8].copy_from_slice(&regs[s as usize].to_le_bytes())
                    }
                    Region::Ctx(_) => return Err(VmFault::BadAccess { addr }),
                }
            }
            Insn::StxW(d, off, s) => {
                let addr = regs[d as usize].wrapping_add(off as u64);
                match resolve(addr, 4, env.ctx.len())? {
                    Region::Stack(o) => stack[o..o + 4]
                        .copy_from_slice(&(regs[s as usize] as u32).to_le_bytes()),
                    Region::Ctx(_) => return Err(VmFault::BadAccess { addr }),
                }
            }
            Insn::Ja(off) => pc = (pc as i64 + off as i64) as usize,
            Insn::JeqImm(d, imm, off) => {
                if regs[d as usize] == imm as u64 {
                    pc = (pc as i64 + off as i64) as usize;
                }
            }
            Insn::JneImm(d, imm, off) => {
                if regs[d as usize] != imm as u64 {
                    pc = (pc as i64 + off as i64) as usize;
                }
            }
            Insn::JeqReg(d, s, off) => {
                if regs[d as usize] == regs[s as usize] {
                    pc = (pc as i64 + off as i64) as usize;
                }
            }
            Insn::Call(helper) => match helper {
                HelperId::KtimeGetNs => regs[0] = env.now_ns,
                HelperId::GetCurrentPidTgid => regs[0] = u64::from(env.pid),
                HelperId::MapLookup => {
                    regs[0] = env.map.lookup(&regs[1]).unwrap_or(0);
                }
                HelperId::MapUpdate => {
                    let _ = env.map.update(regs[1], regs[2]);
                    regs[0] = 0;
                }
                HelperId::MapDelete => {
                    regs[0] = env.map.delete(&regs[1]).unwrap_or(0);
                }
                HelperId::ProbeReadUser => {
                    regs[0] = *env
                        .user_mem
                        .get(&regs[1])
                        .ok_or(VmFault::BadUserRead { addr: regs[1] })?;
                }
                HelperId::PerfEventOutput => {
                    let len = regs[2] as usize;
                    if len > STACK_SIZE + env.ctx.len() {
                        return Err(VmFault::BadOutput);
                    }
                    let bytes = match resolve(regs[1], len, env.ctx.len())
                        .map_err(|_| VmFault::BadOutput)?
                    {
                        Region::Stack(o) => stack[o..o + len].to_vec(),
                        Region::Ctx(o) => env.ctx[o..o + len].to_vec(),
                    };
                    output.push(bytes);
                    regs[0] = 0;
                }
            },
            Insn::Exit => return Ok(VmRun { ret: regs[0], output }),
        }
    }
    unreachable!("verifier guarantees terminal exit")
}

/// Table I probe programs written in VM bytecode.
///
/// Context layouts are little-endian structs mirroring what the real
/// programs traverse from the probed function's arguments:
///
/// - `dds_write_impl` (P16): `[topic_hash: u64][src_ts: u64]`
/// - `rmw_take_*` entry: `[src_ts_addr: u64]`
/// - `rmw_take_*` exit: `[cb_id: u64][topic_hash: u64][src_ts_addr: u64]`
///
/// Exported records start with `[now: u64][pid: u64]` followed by the
/// program-specific payload.
pub mod programs {
    use super::*;

    /// P16 — export `[now][pid][topic_hash][src_ts]` on every write.
    pub fn dds_write() -> Program {
        Program::load(vec![
            // r6 = ctx
            Insn::MovReg(6, 1),
            // stack[-32] = now
            Insn::Call(HelperId::KtimeGetNs),
            Insn::StxDw(10, -32, 0),
            // stack[-24] = pid
            Insn::Call(HelperId::GetCurrentPidTgid),
            Insn::StxDw(10, -24, 0),
            // stack[-16] = ctx.topic_hash
            Insn::LdxDw(2, 6, 0),
            Insn::StxDw(10, -16, 2),
            // stack[-8] = ctx.src_ts
            Insn::LdxDw(2, 6, 8),
            Insn::StxDw(10, -8, 2),
            // perf_event_output(&stack[-32], 32)
            Insn::MovReg(1, 10),
            Insn::AddImm(1, -32),
            Insn::MovImm(2, 32),
            Insn::Call(HelperId::PerfEventOutput),
            Insn::MovImm(0, 0),
            Insn::Exit,
        ])
        .expect("dds_write program verifies")
    }

    /// `rmw_take_*` entry half — remember the out-parameter address:
    /// `map[pid] = ctx.src_ts_addr`.
    pub fn take_entry() -> Program {
        Program::load(vec![
            Insn::MovReg(6, 1),
            Insn::Call(HelperId::GetCurrentPidTgid),
            Insn::MovReg(7, 0), // r7 = pid
            Insn::LdxDw(8, 6, 0), // r8 = src_ts_addr
            Insn::MovReg(1, 7),
            Insn::MovReg(2, 8),
            Insn::Call(HelperId::MapUpdate),
            Insn::MovImm(0, 0),
            Insn::Exit,
        ])
        .expect("take_entry program verifies")
    }

    /// `rmw_take_*` exit half — retrieve the stored address, check it
    /// matches this frame, dereference it, and export
    /// `[now][pid][cb_id][topic_hash][src_ts]`. Returns 1 when exported,
    /// 0 when the addresses mismatched (nested/unmatched take).
    pub fn take_exit() -> Program {
        Program::load(vec![
            Insn::MovReg(6, 1),
            // r7 = pid
            Insn::Call(HelperId::GetCurrentPidTgid),
            Insn::MovReg(7, 0),
            // r8 = map_delete(pid)  (stored srcTS address)
            Insn::MovReg(1, 7),
            Insn::Call(HelperId::MapDelete),
            Insn::MovReg(8, 0),
            // r9 = ctx.src_ts_addr; bail unless identical
            Insn::LdxDw(9, 6, 16),
            Insn::JeqReg(8, 9, 2),
            Insn::MovImm(0, 0),
            Insn::Exit,
            // r9 = *src_ts_addr (the value low-level DDS wrote meanwhile)
            Insn::MovReg(1, 8),
            Insn::Call(HelperId::ProbeReadUser),
            Insn::MovReg(9, 0),
            // record = [now][pid][cb_id][topic_hash][src_ts]
            Insn::Call(HelperId::KtimeGetNs),
            Insn::StxDw(10, -40, 0),
            Insn::StxDw(10, -32, 7),
            Insn::LdxDw(2, 6, 0),
            Insn::StxDw(10, -24, 2),
            Insn::LdxDw(2, 6, 8),
            Insn::StxDw(10, -16, 2),
            Insn::StxDw(10, -8, 9),
            Insn::MovReg(1, 10),
            Insn::AddImm(1, -40),
            Insn::MovImm(2, 40),
            Insn::Call(HelperId::PerfEventOutput),
            Insn::MovImm(0, 1),
            Insn::Exit,
        ])
        .expect("take_exit program verifies")
    }
}

#[cfg(test)]
mod tests {
    use super::programs::{dds_write, take_entry, take_exit};
    use super::*;

    fn env<'a>(
        ctx: &'a [u8],
        user: &'a HashMap<u64, u64>,
        map: &'a BpfMap<u64, u64>,
    ) -> VmEnv<'a> {
        VmEnv { ctx, now_ns: 123_456, pid: 42, user_mem: user, map }
    }

    #[test]
    fn verifier_rejects_backward_jump() {
        let r = Program::load(vec![Insn::Ja(-1), Insn::Exit]);
        assert!(matches!(r, Err(VmVerifyError::BadJump { at: 0 })));
    }

    #[test]
    fn verifier_rejects_out_of_bounds_jump() {
        let r = Program::load(vec![Insn::JeqImm(0, 0, 5), Insn::Exit]);
        assert!(matches!(r, Err(VmVerifyError::BadJump { at: 0 })));
    }

    #[test]
    fn verifier_rejects_missing_exit() {
        let r = Program::load(vec![Insn::MovImm(0, 1)]);
        assert_eq!(r, Err(VmVerifyError::MissingExit));
        assert_eq!(Program::load(vec![]), Err(VmVerifyError::MissingExit));
    }

    #[test]
    fn verifier_rejects_frame_pointer_write() {
        let r = Program::load(vec![Insn::MovImm(10, 0), Insn::Exit]);
        assert!(matches!(r, Err(VmVerifyError::FramePointerWrite { at: 0 })));
    }

    #[test]
    fn verifier_rejects_bad_register() {
        let r = Program::load(vec![Insn::MovImm(11, 0), Insn::Exit]);
        assert!(matches!(r, Err(VmVerifyError::BadRegister { at: 0 })));
    }

    #[test]
    fn verifier_rejects_oversized_program() {
        let mut insns = vec![Insn::MovImm(0, 0); 4097];
        *insns.last_mut().expect("non-empty") = Insn::Exit;
        assert!(matches!(Program::load(insns), Err(VmVerifyError::TooLong(4097))));
    }

    #[test]
    fn runtime_faults_on_wild_access() {
        let p = Program::load(vec![
            Insn::MovImm(1, 0x9999),
            Insn::LdxDw(0, 1, 0),
            Insn::Exit,
        ])
        .expect("verifies");
        let user = HashMap::new();
        let map = BpfMap::new("m", 8);
        let e = env(&[], &user, &map);
        assert!(matches!(run(&p, &e), Err(VmFault::BadAccess { .. })));
    }

    #[test]
    fn context_is_read_only() {
        let p = Program::load(vec![
            Insn::StxDw(1, 0, 0), // store to ctx pointer
            Insn::Exit,
        ])
        .expect("verifies");
        let ctx = [0u8; 16];
        let user = HashMap::new();
        let map = BpfMap::new("m", 8);
        let e = env(&ctx, &user, &map);
        assert!(matches!(run(&p, &e), Err(VmFault::BadAccess { .. })));
    }

    #[test]
    fn helpers_and_arithmetic() {
        // r0 = (now + pid) << 1
        let p = Program::load(vec![
            Insn::Call(HelperId::KtimeGetNs),
            Insn::MovReg(6, 0),
            Insn::Call(HelperId::GetCurrentPidTgid),
            Insn::AddReg(6, 0),
            Insn::LshImm(6, 1),
            Insn::MovReg(0, 6),
            Insn::Exit,
        ])
        .expect("verifies");
        let user = HashMap::new();
        let map = BpfMap::new("m", 8);
        let e = env(&[], &user, &map);
        let r = run(&p, &e).expect("runs");
        assert_eq!(r.ret, (123_456 + 42) << 1);
    }

    #[test]
    fn dds_write_program_exports_the_table_i_payload() {
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&0xfeed_u64.to_le_bytes()); // topic hash
        ctx.extend_from_slice(&777_u64.to_le_bytes()); // src_ts
        let user = HashMap::new();
        let map = BpfMap::new("m", 8);
        let e = env(&ctx, &user, &map);
        let r = run(&dds_write(), &e).expect("runs");
        assert_eq!(r.output.len(), 1);
        let rec = &r.output[0];
        assert_eq!(rec.len(), 32);
        assert_eq!(u64::from_le_bytes(rec[0..8].try_into().expect("8")), 123_456);
        assert_eq!(u64::from_le_bytes(rec[8..16].try_into().expect("8")), 42);
        assert_eq!(u64::from_le_bytes(rec[16..24].try_into().expect("8")), 0xfeed);
        assert_eq!(u64::from_le_bytes(rec[24..32].try_into().expect("8")), 777);
    }

    #[test]
    fn take_pair_reproduces_the_src_ts_technique() {
        // Entry: function called with an out-parameter at address A whose
        // value is not yet written.
        let addr: u64 = 0xdead_beef_0000;
        let map: BpfMap<u64, u64> = BpfMap::new("inflight", 8);
        let user_at_entry = HashMap::new();
        let entry_ctx = addr.to_le_bytes().to_vec();
        let e = env(&entry_ctx, &user_at_entry, &map);
        let r = run(&take_entry(), &e).expect("entry runs");
        assert!(r.output.is_empty(), "entry half exports nothing");
        assert_eq!(map.lookup(&42), Some(addr), "address remembered per pid");

        // Exit: the DDS layer has written the value; the program
        // dereferences the stored address.
        let mut user_at_exit = HashMap::new();
        user_at_exit.insert(addr, 555_u64);
        let mut exit_ctx = Vec::new();
        exit_ctx.extend_from_slice(&0xcb_u64.to_le_bytes()); // cb id
        exit_ctx.extend_from_slice(&0xab_u64.to_le_bytes()); // topic hash
        exit_ctx.extend_from_slice(&addr.to_le_bytes());
        let e = env(&exit_ctx, &user_at_exit, &map);
        let r = run(&take_exit(), &e).expect("exit runs");
        assert_eq!(r.ret, 1);
        assert_eq!(r.output.len(), 1);
        let rec = &r.output[0];
        assert_eq!(u64::from_le_bytes(rec[16..24].try_into().expect("8")), 0xcb);
        assert_eq!(u64::from_le_bytes(rec[24..32].try_into().expect("8")), 0xab);
        assert_eq!(u64::from_le_bytes(rec[32..40].try_into().expect("8")), 555);
        assert_eq!(map.lookup(&42), None, "entry gone after exit");
    }

    #[test]
    fn take_exit_drops_on_address_mismatch() {
        let map: BpfMap<u64, u64> = BpfMap::new("inflight", 8);
        map.update(42, 0x1000).expect("room");
        let mut exit_ctx = Vec::new();
        exit_ctx.extend_from_slice(&1_u64.to_le_bytes());
        exit_ctx.extend_from_slice(&2_u64.to_le_bytes());
        exit_ctx.extend_from_slice(&0x2000_u64.to_le_bytes()); // different frame
        let user = HashMap::new();
        let e = env(&exit_ctx, &user, &map);
        let r = run(&take_exit(), &e).expect("runs");
        assert_eq!(r.ret, 0);
        assert!(r.output.is_empty());
    }

    #[test]
    fn vm_agrees_with_native_rt_tracer_on_take_semantics() {
        // The native Ros2RtTracer drops a take whose exit address differs
        // from the entry's, and exports exactly one event otherwise — the
        // bytecode pair must implement the same decision function.
        use crate::call::{FunctionArgs, FunctionCall, SrcTsRef};
        use crate::tracer_rt::Ros2RtTracer;
        use rtms_trace::{CallbackId, Nanos, Pid, SourceTimestamp, Topic};

        for (entry_addr, exit_addr) in [(0x100u64, 0x100u64), (0x100, 0x200)] {
            // Native path.
            let mut native = Ros2RtTracer::new().expect("programs verify");
            native.start();
            native.on_function(&FunctionCall::entry(
                Nanos::ZERO,
                Pid::new(42),
                FunctionArgs::RmwTakeInt {
                    subscription: CallbackId::new(0xcb),
                    topic: Topic::plain("/t"),
                    src_ts: SrcTsRef::pending(entry_addr),
                },
            ));
            native.on_function(&FunctionCall::exit(
                Nanos::ZERO,
                Pid::new(42),
                FunctionArgs::RmwTakeInt {
                    subscription: CallbackId::new(0xcb),
                    topic: Topic::plain("/t"),
                    src_ts: SrcTsRef::resolved(exit_addr, SourceTimestamp::new(9)),
                },
            ));
            let native_events = native.drain_segment().len();

            // Bytecode path.
            let map: BpfMap<u64, u64> = BpfMap::new("inflight", 8);
            let user = HashMap::new();
            let entry_ctx = entry_addr.to_le_bytes().to_vec();
            run(&take_entry(), &env(&entry_ctx, &user, &map)).expect("entry");
            let mut user_at_exit = HashMap::new();
            user_at_exit.insert(exit_addr, 9u64);
            let mut exit_ctx = Vec::new();
            exit_ctx.extend_from_slice(&0xcb_u64.to_le_bytes());
            exit_ctx.extend_from_slice(&0_u64.to_le_bytes());
            exit_ctx.extend_from_slice(&exit_addr.to_le_bytes());
            let r = run(&take_exit(), &env(&exit_ctx, &user_at_exit, &map)).expect("exit");

            assert_eq!(
                native_events,
                r.output.len(),
                "native and bytecode paths must agree for {entry_addr:#x}/{exit_addr:#x}"
            );
        }
    }
}
