//! The ROS2-RT tracer (TR_RT): probes P2–P16.
//!
//! Observes every traced middleware function entry/exit while the
//! applications run and exports the runtime events of Table I. The
//! `rmw_take_*` probes reproduce the paper's by-reference source-timestamp
//! technique: the entry program stores the out-parameter's address in the
//! `inflight_take` BPF map; the exit program retrieves the address and
//! reads the (now written) value.

use crate::call::{AttachPoint, FunctionArgs, FunctionCall, SrcTsRef};
use crate::map::BpfMap;
use crate::overhead::OverheadModel;
use crate::perf::PerfBuffer;
use crate::program::{Helper, ProgramSpec};
use crate::verifier::{Verifier, VerifyError};
use rtms_trace::{CallbackKind, Pid, Probe, RosEvent, RosPayload};

/// Default perf-buffer capacity for runtime events (8 MiB, matching the
/// large ring BCC allocates for busy pipelines).
const RT_BUFFER_BYTES: usize = 8 << 20;

/// The runtime tracer.
///
/// # Example
///
/// ```
/// use rtms_ebpf::{FunctionArgs, FunctionCall, Ros2RtTracer};
/// use rtms_trace::{Nanos, Pid, Probe};
///
/// let mut tracer = Ros2RtTracer::new()?;
/// tracer.start();
/// tracer.on_function(&FunctionCall::entry(
///     Nanos::ZERO, Pid::new(7), FunctionArgs::ExecuteTimer,
/// ));
/// let events = tracer.drain_segment();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].probe(), Probe::P2);
/// # Ok::<(), Vec<rtms_ebpf::VerifyError>>(())
/// ```
#[derive(Debug)]
pub struct Ros2RtTracer {
    enabled: bool,
    /// `pid -> address of the srcTS out-parameter` for an in-flight
    /// `rmw_take_*` call (one per thread: executors are single-threaded).
    inflight_take: BpfMap<Pid, u64>,
    perf: PerfBuffer<RosEvent>,
    overhead: OverheadModel,
}

impl Ros2RtTracer {
    /// Creates the tracer, verifying all fifteen programs.
    ///
    /// # Errors
    ///
    /// Returns the verifier's findings if any program is rejected.
    pub fn new() -> Result<Self, Vec<VerifyError>> {
        // The program set is a compile-time constant, so its load-time
        // verification result is too: verify once per process instead of
        // rebuilding and re-walking all fifteen specs for every world.
        static VERIFIED: std::sync::OnceLock<Result<(), Vec<VerifyError>>> =
            std::sync::OnceLock::new();
        VERIFIED.get_or_init(|| Verifier::default().verify_all(&Self::programs())).clone()?;
        Ok(Ros2RtTracer {
            enabled: false,
            inflight_take: BpfMap::new("inflight_take", 4096),
            perf: PerfBuffer::new(RT_BUFFER_BYTES),
            overhead: OverheadModel::new(),
        })
    }

    /// The program set registered for P2–P16.
    pub fn programs() -> Vec<ProgramSpec> {
        use AttachPoint::{Entry, Exit};
        let out = [Helper::KtimeGetNs, Helper::GetCurrentPidTgid, Helper::PerfEventOutput];
        let read_out = [
            Helper::KtimeGetNs,
            Helper::GetCurrentPidTgid,
            Helper::ProbeReadUser,
            Helper::PerfEventOutput,
        ];
        let take_entry = [Helper::GetCurrentPidTgid, Helper::ProbeReadUser, Helper::MapUpdate];
        let take_exit = [
            Helper::KtimeGetNs,
            Helper::GetCurrentPidTgid,
            Helper::MapLookup,
            Helper::MapDelete,
            Helper::ProbeReadUser,
            Helper::PerfEventOutput,
        ];
        vec![
            ProgramSpec::new(Probe::P2, Entry, 90).with_helpers(out),
            ProgramSpec::new(Probe::P3, Entry, 140).with_helpers(read_out),
            ProgramSpec::new(Probe::P4, Exit, 90).with_helpers(out),
            ProgramSpec::new(Probe::P5, Entry, 90).with_helpers(out),
            ProgramSpec::new(Probe::P6, Entry, 160)
                .with_helpers(take_entry)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P6, Exit, 520)
                .with_helpers(take_exit)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P7, Entry, 70).with_helpers(out),
            ProgramSpec::new(Probe::P8, Exit, 90).with_helpers(out),
            ProgramSpec::new(Probe::P9, Entry, 90).with_helpers(out),
            ProgramSpec::new(Probe::P10, Entry, 160)
                .with_helpers(take_entry)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P10, Exit, 540)
                .with_helpers(take_exit)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P11, Exit, 90).with_helpers(out),
            ProgramSpec::new(Probe::P12, Entry, 90).with_helpers(out),
            ProgramSpec::new(Probe::P13, Entry, 160)
                .with_helpers(take_entry)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P13, Exit, 540)
                .with_helpers(take_exit)
                .with_maps(["inflight_take"]),
            ProgramSpec::new(Probe::P14, Exit, 120).with_helpers(read_out),
            ProgramSpec::new(Probe::P15, Exit, 90).with_helpers(out),
            ProgramSpec::new(Probe::P16, Entry, 420).with_helpers(read_out),
        ]
    }

    /// Starts exporting events.
    pub fn start(&mut self) {
        self.enabled = true;
    }

    /// Stops exporting events.
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Whether the tracer is currently exporting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observes a probed middleware function call and exports the
    /// corresponding Table I event (if any).
    pub fn on_function(&mut self, call: &FunctionCall) {
        if !self.enabled {
            return;
        }
        use AttachPoint::{Entry, Exit};
        let (time, pid) = (call.time, call.pid);
        let payload = match (&call.args, call.point) {
            (FunctionArgs::ExecuteTimer, Entry) => {
                self.overhead.charge(Probe::P2, 3);
                Some(RosPayload::CallbackStart { kind: CallbackKind::Timer })
            }
            (FunctionArgs::ExecuteTimer, Exit) => {
                self.overhead.charge(Probe::P4, 3);
                Some(RosPayload::CallbackEnd { kind: CallbackKind::Timer })
            }
            (FunctionArgs::RclTimerCall { timer }, Entry) => {
                self.overhead.charge(Probe::P3, 4);
                Some(RosPayload::TimerCall { callback: *timer })
            }
            (FunctionArgs::ExecuteSubscription, Entry) => {
                self.overhead.charge(Probe::P5, 3);
                Some(RosPayload::CallbackStart { kind: CallbackKind::Subscriber })
            }
            (FunctionArgs::ExecuteSubscription, Exit) => {
                self.overhead.charge(Probe::P8, 3);
                Some(RosPayload::CallbackEnd { kind: CallbackKind::Subscriber })
            }
            (FunctionArgs::ExecuteService, Entry) => {
                self.overhead.charge(Probe::P9, 3);
                Some(RosPayload::CallbackStart { kind: CallbackKind::Service })
            }
            (FunctionArgs::ExecuteService, Exit) => {
                self.overhead.charge(Probe::P11, 3);
                Some(RosPayload::CallbackEnd { kind: CallbackKind::Service })
            }
            (FunctionArgs::ExecuteClient, Entry) => {
                self.overhead.charge(Probe::P12, 3);
                Some(RosPayload::CallbackStart { kind: CallbackKind::Client })
            }
            (FunctionArgs::ExecuteClient, Exit) => {
                self.overhead.charge(Probe::P15, 3);
                Some(RosPayload::CallbackEnd { kind: CallbackKind::Client })
            }
            (FunctionArgs::MessageFilterOp, Entry) => {
                self.overhead.charge(Probe::P7, 3);
                Some(RosPayload::SyncSubscribe)
            }
            (FunctionArgs::RmwTakeInt { src_ts, .. }, Entry) => {
                self.take_entry(Probe::P6, pid, src_ts);
                None
            }
            (FunctionArgs::RmwTakeInt { subscription, topic, src_ts }, Exit) => self
                .take_exit(Probe::P6, pid, src_ts)
                .map(|ts| RosPayload::TakeData {
                    callback: *subscription,
                    topic: topic.clone(),
                    src_ts: ts,
                }),
            (FunctionArgs::RmwTakeRequest { src_ts, .. }, Entry) => {
                self.take_entry(Probe::P10, pid, src_ts);
                None
            }
            (FunctionArgs::RmwTakeRequest { service, topic, src_ts }, Exit) => self
                .take_exit(Probe::P10, pid, src_ts)
                .map(|ts| RosPayload::TakeRequest {
                    callback: *service,
                    topic: topic.clone(),
                    src_ts: ts,
                }),
            (FunctionArgs::RmwTakeResponse { src_ts, .. }, Entry) => {
                self.take_entry(Probe::P13, pid, src_ts);
                None
            }
            (FunctionArgs::RmwTakeResponse { client, topic, src_ts }, Exit) => self
                .take_exit(Probe::P13, pid, src_ts)
                .map(|ts| RosPayload::TakeResponse {
                    callback: *client,
                    topic: topic.clone(),
                    src_ts: ts,
                }),
            (FunctionArgs::TakeTypeErasedResponse { ret }, Exit) => {
                self.overhead.charge(Probe::P14, 4);
                ret.map(|will_dispatch| RosPayload::ClientDispatch { will_dispatch })
            }
            (FunctionArgs::TakeTypeErasedResponse { .. }, Entry) => None,
            (FunctionArgs::DdsWriteImpl { topic, src_ts }, Entry) => {
                self.overhead.charge(Probe::P16, 4);
                Some(RosPayload::DdsWrite { topic: topic.clone(), src_ts: *src_ts })
            }
            (FunctionArgs::DdsWriteImpl { .. }, Exit) => None,
            (FunctionArgs::RmwCreateNode { .. }, _) => None, // P1 belongs to TR_IN
            // Probes attached at entry only: nothing fires at exit.
            (FunctionArgs::RclTimerCall { .. }, Exit)
            | (FunctionArgs::MessageFilterOp, Exit) => None,
        };
        if let Some(payload) = payload {
            self.perf.push(RosEvent::new(time, pid, payload));
        }
    }

    /// Entry half of the srcTS technique: remember the out-parameter
    /// address for this thread.
    fn take_entry(&mut self, probe: Probe, pid: Pid, src_ts: &SrcTsRef) {
        self.overhead.charge(probe, 3);
        debug_assert!(src_ts.value.is_none(), "srcTS has no value at entry");
        // The map is tracer-private, so `update_mut` takes the lock-free
        // exclusive path — this runs three times per delivered message.
        let _ = self.inflight_take.update_mut(pid, src_ts.addr);
    }

    /// Exit half: look up the stored address and read the pointee.
    fn take_exit(
        &mut self,
        probe: Probe,
        pid: Pid,
        src_ts: &SrcTsRef,
    ) -> Option<rtms_trace::SourceTimestamp> {
        self.overhead.charge(probe, 6);
        let stored = self.inflight_take.delete_mut(&pid)?;
        if stored != src_ts.addr {
            // The address we stored does not match this call frame: a
            // nested or unmatched take. Drop the sample rather than attach
            // a wrong timestamp.
            return None;
        }
        src_ts.value
    }

    /// Drains the buffered events (one trace segment).
    pub fn drain_segment(&mut self) -> Vec<RosEvent> {
        self.perf.drain()
    }

    /// Drains the buffered events directly into an event sink (generic:
    /// a concrete sink type gets a monomorphized, dispatch-free drain).
    pub fn drain_segment_into<S: rtms_trace::EventSink + ?Sized>(&mut self, sink: &mut S) {
        self.perf.drain_into(sink);
    }

    /// Perf-buffer statistics.
    pub fn perf(&self) -> &PerfBuffer<RosEvent> {
        &self.perf
    }

    /// Overhead accounting for P2–P16.
    pub fn overhead(&self) -> &OverheadModel {
        &self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{CallbackId, Nanos, SourceTimestamp, Topic};

    fn tracer() -> Ros2RtTracer {
        let mut t = Ros2RtTracer::new().expect("programs verify");
        t.start();
        t
    }

    #[test]
    fn all_programs_pass_the_verifier() {
        assert!(Verifier::default().verify_all(&Ros2RtTracer::programs()).is_ok());
    }

    #[test]
    fn callback_start_end_events() {
        let mut t = tracer();
        let pid = Pid::new(5);
        t.on_function(&FunctionCall::entry(Nanos::from_nanos(1), pid, FunctionArgs::ExecuteTimer));
        t.on_function(&FunctionCall::exit(Nanos::from_nanos(9), pid, FunctionArgs::ExecuteTimer));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].probe(), Probe::P2);
        assert_eq!(ev[1].probe(), Probe::P4);
    }

    #[test]
    fn src_ts_readable_only_via_entry_exit_pairing() {
        let mut t = tracer();
        let pid = Pid::new(5);
        let topic = Topic::plain("/t");
        let cb = CallbackId::new(0xabc);
        t.on_function(&FunctionCall::entry(
            Nanos::from_nanos(1),
            pid,
            FunctionArgs::RmwTakeInt {
                subscription: cb,
                topic: topic.clone(),
                src_ts: SrcTsRef::pending(0x1000),
            },
        ));
        // Entry alone exports nothing: the value is not yet known.
        assert!(t.perf().is_empty());
        t.on_function(&FunctionCall::exit(
            Nanos::from_nanos(3),
            pid,
            FunctionArgs::RmwTakeInt {
                subscription: cb,
                topic: topic.clone(),
                src_ts: SrcTsRef::resolved(0x1000, SourceTimestamp::new(777)),
            },
        ));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 1);
        match &ev[0].payload {
            RosPayload::TakeData { callback, topic: tp, src_ts } => {
                assert_eq!(*callback, cb);
                assert_eq!(tp, &topic);
                assert_eq!(*src_ts, SourceTimestamp::new(777));
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn mismatched_take_address_drops_event() {
        let mut t = tracer();
        let pid = Pid::new(5);
        t.on_function(&FunctionCall::entry(
            Nanos::ZERO,
            pid,
            FunctionArgs::RmwTakeInt {
                subscription: CallbackId::new(1),
                topic: Topic::plain("/t"),
                src_ts: SrcTsRef::pending(0x1000),
            },
        ));
        t.on_function(&FunctionCall::exit(
            Nanos::ZERO,
            pid,
            FunctionArgs::RmwTakeInt {
                subscription: CallbackId::new(1),
                topic: Topic::plain("/t"),
                src_ts: SrcTsRef::resolved(0x2000, SourceTimestamp::new(1)),
            },
        ));
        assert!(t.drain_segment().is_empty());
    }

    #[test]
    fn client_dispatch_return_value() {
        let mut t = tracer();
        let pid = Pid::new(5);
        t.on_function(&FunctionCall::exit(
            Nanos::ZERO,
            pid,
            FunctionArgs::TakeTypeErasedResponse { ret: Some(false) },
        ));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0].payload, RosPayload::ClientDispatch { will_dispatch: false }));
    }

    #[test]
    fn dds_write_exported_at_entry() {
        let mut t = tracer();
        t.on_function(&FunctionCall::entry(
            Nanos::ZERO,
            Pid::new(5),
            FunctionArgs::DdsWriteImpl {
                topic: Topic::plain("/out"),
                src_ts: SourceTimestamp::new(9),
            },
        ));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].probe(), Probe::P16);
    }

    #[test]
    fn disabled_tracer_exports_nothing() {
        let mut t = Ros2RtTracer::new().expect("programs verify");
        t.on_function(&FunctionCall::entry(Nanos::ZERO, Pid::new(1), FunctionArgs::ExecuteTimer));
        assert!(t.drain_segment().is_empty());
        assert_eq!(t.overhead().total_firings(), 0);
    }

    #[test]
    fn sync_subscribe_event() {
        let mut t = tracer();
        t.on_function(&FunctionCall::entry(
            Nanos::ZERO,
            Pid::new(1),
            FunctionArgs::MessageFilterOp,
        ));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0].payload, RosPayload::SyncSubscribe));
    }

    #[test]
    fn independent_takes_per_thread() {
        // Two threads mid-take simultaneously must not clobber each other.
        let mut t = tracer();
        let mk_entry = |pid: u32, addr: u64| {
            FunctionCall::entry(
                Nanos::ZERO,
                Pid::new(pid),
                FunctionArgs::RmwTakeInt {
                    subscription: CallbackId::new(u64::from(pid)),
                    topic: Topic::plain("/t"),
                    src_ts: SrcTsRef::pending(addr),
                },
            )
        };
        let mk_exit = |pid: u32, addr: u64, ts: u64| {
            FunctionCall::exit(
                Nanos::ZERO,
                Pid::new(pid),
                FunctionArgs::RmwTakeInt {
                    subscription: CallbackId::new(u64::from(pid)),
                    topic: Topic::plain("/t"),
                    src_ts: SrcTsRef::resolved(addr, SourceTimestamp::new(ts)),
                },
            )
        };
        t.on_function(&mk_entry(1, 0x100));
        t.on_function(&mk_entry(2, 0x200));
        t.on_function(&mk_exit(2, 0x200, 22));
        t.on_function(&mk_exit(1, 0x100, 11));
        let ev = t.drain_segment();
        assert_eq!(ev.len(), 2);
        assert!(matches!(&ev[0].payload,
            RosPayload::TakeData { src_ts, .. } if src_ts.get() == 22));
        assert!(matches!(&ev[1].payload,
            RosPayload::TakeData { src_ts, .. } if src_ts.get() == 11));
    }
}
