//! Declarative descriptions of probe programs, the unit the verifier
//! checks before a program may attach.

use crate::call::AttachPoint;
use rtms_trace::{Probe, ProbeAttachment};
use std::fmt;

/// A BPF helper function a program may call.
///
/// The whitelist per program type is part of what the kernel verifier
/// enforces; our [`crate::Verifier`] reproduces that check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Helper {
    /// `bpf_ktime_get_ns` — read the monotonic clock.
    KtimeGetNs,
    /// `bpf_get_current_pid_tgid` — read the current PID.
    GetCurrentPidTgid,
    /// `bpf_map_lookup_elem`.
    MapLookup,
    /// `bpf_map_update_elem`.
    MapUpdate,
    /// `bpf_map_delete_elem`.
    MapDelete,
    /// `bpf_probe_read_user` — traverse user-space argument structures.
    ProbeReadUser,
    /// `bpf_probe_read_kernel` — read kernel structures (tracepoints only).
    ProbeReadKernel,
    /// `bpf_perf_event_output` — export a record to user space.
    PerfEventOutput,
}

impl fmt::Display for Helper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Helper::KtimeGetNs => "bpf_ktime_get_ns",
            Helper::GetCurrentPidTgid => "bpf_get_current_pid_tgid",
            Helper::MapLookup => "bpf_map_lookup_elem",
            Helper::MapUpdate => "bpf_map_update_elem",
            Helper::MapDelete => "bpf_map_delete_elem",
            Helper::ProbeReadUser => "bpf_probe_read_user",
            Helper::ProbeReadKernel => "bpf_probe_read_kernel",
            Helper::PerfEventOutput => "bpf_perf_event_output",
        };
        write!(f, "{name}")
    }
}

/// Declarative description of one probe program: what it attaches to, how
/// large it is, which helpers it calls and which maps it touches.
///
/// # Example
///
/// ```
/// use rtms_ebpf::{Helper, ProgramSpec};
/// use rtms_ebpf::AttachPoint;
/// use rtms_trace::Probe;
///
/// let spec = ProgramSpec::new(Probe::P3, AttachPoint::Entry, 120)
///     .with_helpers([Helper::KtimeGetNs, Helper::ProbeReadUser, Helper::PerfEventOutput]);
/// assert_eq!(spec.probe, Probe::P3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Which Table I probe this program implements.
    pub probe: Probe,
    /// Entry (uprobe) or exit (uretprobe) attachment.
    pub point: AttachPoint,
    /// Estimated instruction count of the compiled program.
    pub instructions: u32,
    /// Helpers the program calls.
    pub helpers: Vec<Helper>,
    /// Names of BPF maps the program accesses.
    pub maps: Vec<&'static str>,
}

impl ProgramSpec {
    /// Creates a spec with no helpers or maps declared.
    pub fn new(probe: Probe, point: AttachPoint, instructions: u32) -> Self {
        ProgramSpec { probe, point, instructions, helpers: Vec::new(), maps: Vec::new() }
    }

    /// Declares the helpers the program calls.
    pub fn with_helpers(mut self, helpers: impl IntoIterator<Item = Helper>) -> Self {
        self.helpers = helpers.into_iter().collect();
        self
    }

    /// Declares the maps the program accesses.
    pub fn with_maps(mut self, maps: impl IntoIterator<Item = &'static str>) -> Self {
        self.maps = maps.into_iter().collect();
        self
    }

    /// Whether the declared attach point is consistent with the probe's
    /// catalog attachment (uprobe ↔ entry, uretprobe ↔ exit; tracepoints
    /// are entry-like).
    ///
    /// The take probes P6/P10/P13 additionally allow an entry-side helper
    /// program: the paper probes `rmw_take_*` "both at entry and exit" to
    /// capture the address of the by-reference source timestamp, even
    /// though the exported event comes from the uretprobe.
    pub fn attachment_consistent(&self) -> bool {
        let paired_take = matches!(self.probe, Probe::P6 | Probe::P10 | Probe::P13);
        match self.probe.spec().attachment {
            ProbeAttachment::Uprobe => self.point == AttachPoint::Entry,
            ProbeAttachment::Uretprobe => self.point == AttachPoint::Exit || paired_take,
            ProbeAttachment::Tracepoint => self.point == AttachPoint::Entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_fields() {
        let spec = ProgramSpec::new(Probe::P6, AttachPoint::Exit, 400)
            .with_helpers([Helper::MapLookup, Helper::PerfEventOutput])
            .with_maps(["inflight_take"]);
        assert_eq!(spec.helpers.len(), 2);
        assert_eq!(spec.maps, vec!["inflight_take"]);
    }

    #[test]
    fn attachment_consistency() {
        // P2 is a uprobe: entry OK, exit wrong.
        assert!(ProgramSpec::new(Probe::P2, AttachPoint::Entry, 10).attachment_consistent());
        assert!(!ProgramSpec::new(Probe::P2, AttachPoint::Exit, 10).attachment_consistent());
        // P4 is a uretprobe: exit OK.
        assert!(ProgramSpec::new(Probe::P4, AttachPoint::Exit, 10).attachment_consistent());
        // sched_switch tracepoint: entry-like.
        assert!(
            ProgramSpec::new(Probe::SchedSwitch, AttachPoint::Entry, 10).attachment_consistent()
        );
    }

    #[test]
    fn helper_display_names() {
        assert_eq!(Helper::KtimeGetNs.to_string(), "bpf_ktime_get_ns");
        assert_eq!(Helper::PerfEventOutput.to_string(), "bpf_perf_event_output");
    }
}
