//! The ROS2-INIT tracer (TR_IN): probe P1.
//!
//! Runs while applications start, records node creation, and publishes the
//! PIDs of ROS2 node threads into the shared [`PidFilterMap`] so the kernel
//! tracer can filter `sched_switch` events (Fig. 2 deployment).

use crate::call::{AttachPoint, FunctionArgs, FunctionCall};
use crate::map::PidFilterMap;
use crate::overhead::OverheadModel;
use crate::perf::PerfBuffer;
use crate::program::{Helper, ProgramSpec};
use crate::verifier::{Verifier, VerifyError};
use rtms_trace::{Probe, RosEvent, RosPayload};

/// The node-initialization tracer.
///
/// # Example
///
/// ```
/// use rtms_ebpf::{map, FunctionArgs, FunctionCall, Ros2InitTracer};
/// use rtms_trace::{Nanos, Pid};
///
/// let filter = map::pid_filter_map();
/// let mut tracer = Ros2InitTracer::new(filter.clone())?;
/// tracer.start();
/// tracer.on_function(&FunctionCall::entry(
///     Nanos::ZERO,
///     Pid::new(42),
///     FunctionArgs::RmwCreateNode { node_name: "lidar_filter".into() },
/// ));
/// assert!(filter.contains(&Pid::new(42)));
/// assert_eq!(tracer.drain_segment().len(), 1);
/// # Ok::<(), Vec<rtms_ebpf::VerifyError>>(())
/// ```
#[derive(Debug)]
pub struct Ros2InitTracer {
    enabled: bool,
    pid_filter: PidFilterMap,
    perf: PerfBuffer<RosEvent>,
    overhead: OverheadModel,
}

impl Ros2InitTracer {
    /// Creates the tracer, verifying its program against the default
    /// [`Verifier`].
    ///
    /// # Errors
    ///
    /// Returns the verifier's findings if the P1 program is rejected
    /// (cannot happen with the built-in program; the signature documents
    /// the load-time contract).
    pub fn new(pid_filter: PidFilterMap) -> Result<Self, Vec<VerifyError>> {
        // Constant program, constant verdict: verify once per process.
        static VERIFIED: std::sync::OnceLock<Result<(), Vec<VerifyError>>> =
            std::sync::OnceLock::new();
        VERIFIED
            .get_or_init(|| {
                let program = ProgramSpec::new(Probe::P1, AttachPoint::Entry, 180)
                    .with_helpers([
                        Helper::KtimeGetNs,
                        Helper::GetCurrentPidTgid,
                        Helper::ProbeReadUser,
                        Helper::MapUpdate,
                        Helper::PerfEventOutput,
                    ])
                    .with_maps(["ros2_pids"]);
                Verifier::default().verify_all(std::slice::from_ref(&program))
            })
            .clone()?;
        Ok(Ros2InitTracer {
            enabled: false,
            pid_filter,
            perf: PerfBuffer::new(1 << 20),
            overhead: OverheadModel::new(),
        })
    }

    /// Starts exporting events.
    pub fn start(&mut self) {
        self.enabled = true;
    }

    /// Stops exporting events (probe stays attached; cost still accrues on
    /// a real system, but BCC detaches on stop, so we stop charging too).
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Observes a probed function call.
    pub fn on_function(&mut self, call: &FunctionCall) {
        if !self.enabled || call.point != AttachPoint::Entry {
            return;
        }
        if let FunctionArgs::RmwCreateNode { node_name } = &call.args {
            // 5 helper calls: ktime, pid, read node name, map update, output.
            self.overhead.charge(Probe::P1, 5);
            let _ = self.pid_filter.update(call.pid, ());
            self.perf.push(RosEvent::new(
                call.time,
                call.pid,
                RosPayload::NodeInit { node_name: node_name.clone() },
            ));
        }
    }

    /// Drains the buffered events (one trace segment).
    pub fn drain_segment(&mut self) -> Vec<RosEvent> {
        self.perf.drain()
    }

    /// Drains the buffered events directly into an event sink (generic:
    /// a concrete sink type gets a monomorphized, dispatch-free drain).
    pub fn drain_segment_into<S: rtms_trace::EventSink + ?Sized>(&mut self, sink: &mut S) {
        self.perf.drain_into(sink);
    }

    /// The overhead accounting of this tracer's probe.
    pub fn overhead(&self) -> &OverheadModel {
        &self.overhead
    }

    /// The shared PID-filter map.
    pub fn pid_filter(&self) -> &PidFilterMap {
        &self.pid_filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::pid_filter_map;
    use rtms_trace::{Nanos, Pid};

    fn create_node_call(pid: u32, name: &str) -> FunctionCall {
        FunctionCall::entry(
            Nanos::ZERO,
            Pid::new(pid),
            FunctionArgs::RmwCreateNode { node_name: name.into() },
        )
    }

    #[test]
    fn records_node_init_and_fills_filter() {
        let filter = pid_filter_map();
        let mut tr = Ros2InitTracer::new(filter.clone()).expect("verified");
        tr.start();
        tr.on_function(&create_node_call(10, "a"));
        tr.on_function(&create_node_call(11, "b"));
        assert!(filter.contains(&Pid::new(10)));
        assert!(filter.contains(&Pid::new(11)));
        let events = tr.drain_segment();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0].payload, RosPayload::NodeInit { node_name } if node_name == "a"));
        assert_eq!(tr.overhead().total_firings(), 2);
    }

    #[test]
    fn disabled_tracer_ignores_calls() {
        let filter = pid_filter_map();
        let mut tr = Ros2InitTracer::new(filter.clone()).expect("verified");
        tr.on_function(&create_node_call(10, "a"));
        assert!(!filter.contains(&Pid::new(10)));
        assert!(tr.drain_segment().is_empty());
    }

    #[test]
    fn ignores_unrelated_calls() {
        let filter = pid_filter_map();
        let mut tr = Ros2InitTracer::new(filter).expect("verified");
        tr.start();
        tr.on_function(&FunctionCall::entry(
            Nanos::ZERO,
            Pid::new(1),
            FunctionArgs::ExecuteTimer,
        ));
        assert!(tr.drain_segment().is_empty());
    }

    #[test]
    fn stop_then_start_again() {
        let filter = pid_filter_map();
        let mut tr = Ros2InitTracer::new(filter).expect("verified");
        tr.start();
        tr.on_function(&create_node_call(1, "x"));
        tr.stop();
        tr.on_function(&create_node_call(2, "y"));
        tr.start();
        tr.on_function(&create_node_call(3, "z"));
        assert_eq!(tr.drain_segment().len(), 2);
    }
}
