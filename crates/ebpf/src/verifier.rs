//! The load-time program verifier.
//!
//! Models the checks the kernel applies before an eBPF program may attach:
//! instruction-count limit, helper whitelist per attachment type, declared
//! map access, and attachment consistency. Programs in this workspace are
//! Rust closures rather than bytecode, but every tracer registers a
//! [`ProgramSpec`] for each of its probes and refuses to start if the
//! verifier rejects any — keeping the safety story of the paper's Sec. II-B
//! visible in the reproduction.

use crate::program::{Helper, ProgramSpec};
use rtms_trace::{Probe, ProbeAttachment};
use std::fmt;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program exceeds the instruction limit.
    TooManyInstructions {
        /// The probe whose program was rejected.
        probe: Probe,
        /// Declared instruction count.
        instructions: u32,
        /// The verifier's limit.
        limit: u32,
    },
    /// A helper is not allowed for this attachment type.
    ForbiddenHelper {
        /// The probe whose program was rejected.
        probe: Probe,
        /// The offending helper.
        helper: Helper,
    },
    /// The attach point contradicts the probe catalog (e.g. a uretprobe
    /// program declared for function entry).
    InconsistentAttachment {
        /// The probe whose program was rejected.
        probe: Probe,
    },
    /// The program accesses a map it did not declare.
    UndeclaredMap {
        /// The probe whose program was rejected.
        probe: Probe,
        /// The undeclared map name.
        map: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooManyInstructions { probe, instructions, limit } => write!(
                f,
                "program for {probe} has {instructions} instructions, limit is {limit}"
            ),
            VerifyError::ForbiddenHelper { probe, helper } => {
                write!(f, "program for {probe} calls forbidden helper {helper}")
            }
            VerifyError::InconsistentAttachment { probe } => {
                write!(f, "program for {probe} declares an inconsistent attach point")
            }
            VerifyError::UndeclaredMap { probe, map } => {
                write!(f, "program for {probe} accesses undeclared map {map}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The static verifier.
///
/// # Example
///
/// ```
/// use rtms_ebpf::{AttachPoint, Helper, ProgramSpec, Verifier};
/// use rtms_trace::Probe;
///
/// let verifier = Verifier::default();
/// let ok = ProgramSpec::new(Probe::P2, AttachPoint::Entry, 64)
///     .with_helpers([Helper::KtimeGetNs, Helper::PerfEventOutput]);
/// verifier.verify(&ok)?;
///
/// let too_big = ProgramSpec::new(Probe::P2, AttachPoint::Entry, 1_000_000);
/// assert!(verifier.verify(&too_big).is_err());
/// # Ok::<(), rtms_ebpf::VerifyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    instruction_limit: u32,
}

impl Verifier {
    /// Creates a verifier with the classic 4096-instruction limit
    /// (the limit that applies to unprivileged programs; BCC 0.26 targets
    /// kernels where this is the safe default).
    pub fn new() -> Self {
        Verifier { instruction_limit: 4096 }
    }

    /// Overrides the instruction limit.
    pub fn with_instruction_limit(mut self, limit: u32) -> Self {
        self.instruction_limit = limit;
        self
    }

    /// Checks one program.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`VerifyError`].
    pub fn verify(&self, spec: &ProgramSpec) -> Result<(), VerifyError> {
        if spec.instructions > self.instruction_limit {
            return Err(VerifyError::TooManyInstructions {
                probe: spec.probe,
                instructions: spec.instructions,
                limit: self.instruction_limit,
            });
        }
        if !spec.attachment_consistent() {
            return Err(VerifyError::InconsistentAttachment { probe: spec.probe });
        }
        let is_tracepoint = spec.probe.spec().attachment == ProbeAttachment::Tracepoint;
        for &helper in &spec.helpers {
            let allowed = match helper {
                // User-memory traversal from a kernel tracepoint context is
                // not meaningful; kernel reads from a uprobe likewise.
                Helper::ProbeReadUser => !is_tracepoint,
                Helper::ProbeReadKernel => is_tracepoint,
                _ => true,
            };
            if !allowed {
                return Err(VerifyError::ForbiddenHelper { probe: spec.probe, helper });
            }
        }
        let uses_map_helpers = spec
            .helpers
            .iter()
            .any(|h| matches!(h, Helper::MapLookup | Helper::MapUpdate | Helper::MapDelete));
        if uses_map_helpers && spec.maps.is_empty() {
            return Err(VerifyError::UndeclaredMap { probe: spec.probe, map: "<any>" });
        }
        Ok(())
    }

    /// Checks a whole program set, returning all errors.
    ///
    /// # Errors
    ///
    /// Returns every violated constraint across `specs`.
    pub fn verify_all(&self, specs: &[ProgramSpec]) -> Result<(), Vec<VerifyError>> {
        let errors: Vec<VerifyError> =
            specs.iter().filter_map(|s| self.verify(s).err()).collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::AttachPoint;

    #[test]
    fn accepts_reasonable_program() {
        let v = Verifier::default();
        let spec = ProgramSpec::new(Probe::P6, AttachPoint::Exit, 700)
            .with_helpers([
                Helper::GetCurrentPidTgid,
                Helper::MapLookup,
                Helper::MapDelete,
                Helper::ProbeReadUser,
                Helper::PerfEventOutput,
            ])
            .with_maps(["inflight_take"]);
        assert_eq!(v.verify(&spec), Ok(()));
    }

    #[test]
    fn rejects_oversized_program() {
        let v = Verifier::default();
        let spec = ProgramSpec::new(Probe::P2, AttachPoint::Entry, 10_000);
        assert!(matches!(v.verify(&spec), Err(VerifyError::TooManyInstructions { .. })));
        // A raised limit accepts it.
        let lax = Verifier::new().with_instruction_limit(1_000_000);
        assert_eq!(lax.verify(&spec), Ok(()));
    }

    #[test]
    fn rejects_kernel_read_from_uprobe() {
        let v = Verifier::default();
        let spec = ProgramSpec::new(Probe::P2, AttachPoint::Entry, 10)
            .with_helpers([Helper::ProbeReadKernel]);
        assert!(matches!(v.verify(&spec), Err(VerifyError::ForbiddenHelper { .. })));
    }

    #[test]
    fn rejects_user_read_from_tracepoint() {
        let v = Verifier::default();
        let spec = ProgramSpec::new(Probe::SchedSwitch, AttachPoint::Entry, 10)
            .with_helpers([Helper::ProbeReadUser]);
        assert!(matches!(v.verify(&spec), Err(VerifyError::ForbiddenHelper { .. })));
    }

    #[test]
    fn rejects_wrong_attach_point() {
        let v = Verifier::default();
        let spec = ProgramSpec::new(Probe::P4, AttachPoint::Entry, 10);
        assert!(matches!(v.verify(&spec), Err(VerifyError::InconsistentAttachment { .. })));
    }

    #[test]
    fn rejects_undeclared_map_use() {
        let v = Verifier::default();
        let spec =
            ProgramSpec::new(Probe::P6, AttachPoint::Exit, 10).with_helpers([Helper::MapLookup]);
        assert!(matches!(v.verify(&spec), Err(VerifyError::UndeclaredMap { .. })));
    }

    #[test]
    fn verify_all_collects_errors() {
        let v = Verifier::default();
        let good = ProgramSpec::new(Probe::P2, AttachPoint::Entry, 10);
        let bad1 = ProgramSpec::new(Probe::P4, AttachPoint::Entry, 10);
        let bad2 = ProgramSpec::new(Probe::P5, AttachPoint::Entry, 100_000);
        let errs = v.verify_all(&[good, bad1, bad2]).expect_err("two bad programs");
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn error_display() {
        let e = VerifyError::TooManyInstructions { probe: Probe::P2, instructions: 9, limit: 4 };
        assert!(e.to_string().contains("P2"));
    }
}
