//! The perf ring buffer through which probe programs export events.

use rtms_trace::{EventSink, RosEvent, SchedEvent};

/// A record that can be pushed into a [`PerfBuffer`].
pub trait PerfRecord: Sized {
    /// Size of the encoded record in bytes, charged against the buffer
    /// capacity.
    fn record_size(&self) -> usize;

    /// Routes this record into the matching stream of an [`EventSink`]
    /// (user space demultiplexing the perf ring by record type). Generic
    /// over the sink so a drain into a concrete sink monomorphizes to a
    /// direct call; `S = dyn EventSink` still works.
    fn sink_into<S: EventSink + ?Sized>(self, sink: &mut S);

    /// Routes a whole batch into the matching stream via the sink's
    /// `append_*` method — one bulk move instead of per-record dispatch.
    /// `records` is drained but keeps its allocation, so a perf buffer's
    /// storage survives the drain and steady state never reallocates.
    fn sink_batch_into<S: EventSink + ?Sized>(records: &mut Vec<Self>, sink: &mut S);
}

impl PerfRecord for RosEvent {
    fn record_size(&self) -> usize {
        self.encoded_size()
    }

    fn sink_into<S: EventSink + ?Sized>(self, sink: &mut S) {
        sink.push_ros(self);
    }

    fn sink_batch_into<S: EventSink + ?Sized>(records: &mut Vec<Self>, sink: &mut S) {
        sink.append_ros(records);
    }
}

impl PerfRecord for SchedEvent {
    fn record_size(&self) -> usize {
        self.encoded_size()
    }

    fn sink_into<S: EventSink + ?Sized>(self, sink: &mut S) {
        sink.push_sched(self);
    }

    fn sink_batch_into<S: EventSink + ?Sized>(records: &mut Vec<Self>, sink: &mut S) {
        sink.append_sched(records);
    }
}

/// A bounded event buffer with loss accounting.
///
/// Models the perf event buffer BCC polls: fixed byte capacity, events
/// dropped (and counted) when user space does not drain fast enough. The
/// deployment flow of Fig. 2 — stop tracers, store the segment, restart
/// with empty buffers — maps to [`PerfBuffer::drain`].
///
/// Storage is a plain `Vec` (not a deque): records only ever arrive at the
/// back and leave via a full drain, so FIFO order is the vector's own
/// order, and the batched [`PerfBuffer::drain_into`] can hand the whole
/// vector to the sink in one move.
///
/// # Example
///
/// ```
/// use rtms_ebpf::PerfBuffer;
/// use rtms_trace::{Nanos, Pid, RosEvent, RosPayload, CallbackKind};
///
/// let mut buf = PerfBuffer::new(1 << 16);
/// buf.push(RosEvent::new(
///     Nanos::ZERO,
///     Pid::new(1),
///     RosPayload::CallbackStart { kind: CallbackKind::Timer },
/// ));
/// assert_eq!(buf.len(), 1);
/// let events = buf.drain();
/// assert_eq!(events.len(), 1);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PerfBuffer<T> {
    capacity_bytes: usize,
    used_bytes: usize,
    peak_bytes: usize,
    total_bytes: usize,
    dropped: u64,
    pushed: u64,
    records: Vec<T>,
}

impl<T: PerfRecord> PerfBuffer<T> {
    /// Creates a buffer with the given byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        PerfBuffer {
            capacity_bytes,
            used_bytes: 0,
            peak_bytes: 0,
            total_bytes: 0,
            dropped: 0,
            pushed: 0,
            // Skip the first few doublings of the growth chain: every
            // active tracer fills its buffer well past this within one
            // segment, and `drain_into` keeps the allocation thereafter.
            records: Vec::with_capacity(1024),
        }
    }

    /// Pushes a record; returns `false` (and counts a drop) if the buffer
    /// lacks space.
    #[inline]
    pub fn push(&mut self, record: T) -> bool {
        let size = record.record_size();
        let used = self.used_bytes + size;
        if used > self.capacity_bytes {
            self.dropped += 1;
            return false;
        }
        self.used_bytes = used;
        if used > self.peak_bytes {
            self.peak_bytes = used;
        }
        self.total_bytes += size;
        self.pushed += 1;
        self.records.push(record);
        true
    }

    /// Drains all buffered records in FIFO order, freeing the space
    /// (user space storing a trace segment).
    pub fn drain(&mut self) -> Vec<T> {
        self.used_bytes = 0;
        std::mem::take(&mut self.records)
    }

    /// Drains all buffered records in FIFO order directly into an
    /// [`EventSink`] — the streaming counterpart of [`PerfBuffer::drain`].
    ///
    /// The drain is *batched*: the whole record vector is handed to the
    /// sink's `append_*` method in one call ([`PerfRecord::sink_batch_into`]),
    /// so a segment drain is a bulk move rather than a per-event loop, and
    /// the buffer's storage comes back with its capacity intact.
    pub fn drain_into<S: EventSink + ?Sized>(&mut self, sink: &mut S) {
        self.used_bytes = 0;
        T::sink_batch_into(&mut self.records, sink);
        debug_assert!(self.records.is_empty(), "sink must drain the batch");
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records successfully pushed since creation.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// High-water mark of buffer occupancy, in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Total bytes accepted since creation (across drains) — the trace
    /// volume metric of the Sec. VI overhead experiment.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{CallbackKind, Nanos, Pid, RosPayload};

    fn ev() -> RosEvent {
        RosEvent::new(
            Nanos::ZERO,
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        )
    }

    #[test]
    fn push_and_drain_fifo() {
        let mut buf = PerfBuffer::new(1 << 10);
        let a = RosEvent::new(
            Nanos::from_nanos(1),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        );
        let b = RosEvent::new(
            Nanos::from_nanos(2),
            Pid::new(1),
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        );
        buf.push(a.clone());
        buf.push(b.clone());
        let drained = buf.drain();
        assert_eq!(drained, vec![a, b]);
        assert!(buf.is_empty());
    }

    #[test]
    fn drops_when_full() {
        let one = ev().record_size();
        let mut buf = PerfBuffer::new(one * 2);
        assert!(buf.push(ev()));
        assert!(buf.push(ev()));
        assert!(!buf.push(ev()), "third push must drop");
        assert_eq!(buf.dropped(), 1);
        assert_eq!(buf.pushed(), 2);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn drain_frees_space() {
        let one = ev().record_size();
        let mut buf = PerfBuffer::new(one);
        assert!(buf.push(ev()));
        assert!(!buf.push(ev()));
        buf.drain();
        assert!(buf.push(ev()), "space must be reclaimed after drain");
        assert_eq!(buf.total_bytes(), 2 * one);
        assert_eq!(buf.peak_bytes(), one);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: PerfBuffer<RosEvent> = PerfBuffer::new(0);
    }

    #[test]
    fn drain_into_routes_by_record_type() {
        use rtms_trace::{Cpu, Priority, SchedEvent, ThreadState, Trace};
        let mut ros_buf = PerfBuffer::new(1 << 10);
        ros_buf.push(ev());
        let mut sched_buf = PerfBuffer::new(1 << 10);
        sched_buf.push(SchedEvent::switch(
            Nanos::ZERO,
            Cpu::new(0),
            Pid::new(1),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(2),
            Priority::NORMAL,
        ));
        let mut trace = Trace::new();
        ros_buf.drain_into(&mut trace);
        sched_buf.drain_into(&mut trace);
        assert_eq!(trace.ros_events().len(), 1);
        assert_eq!(trace.sched_events().len(), 1);
        assert!(ros_buf.is_empty() && sched_buf.is_empty());
        assert!(ros_buf.push(ev()), "space reclaimed after drain_into");
    }

    #[test]
    fn drain_into_keeps_fifo_order_into_nonempty_sink() {
        use rtms_trace::Trace;
        // The swap fast path only applies to an empty sink; a non-empty
        // sink must see the records appended after its own, in order.
        let mut trace = Trace::new();
        trace.push_ros(RosEvent::new(
            Nanos::from_nanos(0),
            Pid::new(9),
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        ));
        let mut buf = PerfBuffer::new(1 << 10);
        for t in 1..=3 {
            buf.push(RosEvent::new(
                Nanos::from_nanos(t),
                Pid::new(1),
                RosPayload::CallbackStart { kind: CallbackKind::Timer },
            ));
        }
        buf.drain_into(&mut trace);
        let times: Vec<u64> = trace.ros_events().iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![0, 1, 2, 3]);
    }
}
