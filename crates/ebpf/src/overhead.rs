//! Probe overhead accounting.
//!
//! `bpftool prog show` reports run counts and cumulative runtime per
//! program; the paper uses that to report its probes consume 0.008 CPU
//! cores on average (0.3 % of the applications' computational load) while
//! generating 9 MB of trace data per 60 s. [`OverheadModel`] charges each
//! probe firing a cost derived from its work (base dispatch cost plus
//! per-helper costs) and produces the same aggregate statistics.

use rtms_trace::{Nanos, Probe};
use std::collections::BTreeMap;

/// Per-firing cost model and accumulated accounting.
///
/// [`OverheadModel::charge`] runs once per probe firing — for the kernel
/// tracer, once per scheduler event the machine produces — so the
/// accounting is a flat array indexed by probe discriminant, not a map.
#[derive(Debug, Clone)]
pub struct OverheadModel {
    /// Fixed cost of a probe dispatch (trap + program setup).
    base_cost: Nanos,
    /// Cost charged per helper call the program performs.
    helper_cost: Nanos,
    counts: [u64; Probe::ALL.len()],
    times: [Nanos; Probe::ALL.len()],
}

impl OverheadModel {
    /// Creates the default model: 800 ns per uprobe dispatch and 60 ns per
    /// helper call — in line with published uprobe/eBPF microbenchmarks on
    /// the paper's hardware class.
    pub fn new() -> Self {
        OverheadModel {
            base_cost: Nanos::from_nanos(800),
            helper_cost: Nanos::from_nanos(60),
            counts: [0; Probe::ALL.len()],
            times: [Nanos::ZERO; Probe::ALL.len()],
        }
    }

    /// Overrides the cost parameters.
    pub fn with_costs(mut self, base: Nanos, per_helper: Nanos) -> Self {
        self.base_cost = base;
        self.helper_cost = per_helper;
        self
    }

    /// Charges one firing of `probe` that performed `helper_calls` helper
    /// invocations; returns the charged cost.
    #[inline]
    pub fn charge(&mut self, probe: Probe, helper_calls: u32) -> Nanos {
        let cost = self.base_cost
            + Nanos::from_nanos(self.helper_cost.as_nanos() * u64::from(helper_calls));
        let slot = probe as usize;
        self.counts[slot] += 1;
        self.times[slot] += cost;
        cost
    }

    /// Folds another model's accounting into this one (used to aggregate
    /// the three tracers' costs into one report).
    pub fn absorb(&mut self, other: &OverheadModel) {
        for i in 0..Probe::ALL.len() {
            self.counts[i] += other.counts[i];
            self.times[i] += other.times[i];
        }
    }

    /// Total accumulated probe runtime.
    pub fn total_time(&self) -> Nanos {
        self.times.iter().fold(Nanos::ZERO, |acc, t| acc + *t)
    }

    /// Total probe firings.
    pub fn total_firings(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Produces the summary report for a run of `wall_time` against an
    /// application load of `app_cpu_time`.
    pub fn report(&self, wall_time: Nanos, app_cpu_time: Nanos) -> OverheadReport {
        let total = self.total_time();
        let avg_cores = if wall_time > Nanos::ZERO {
            total.as_nanos() as f64 / wall_time.as_nanos() as f64
        } else {
            0.0
        };
        let frac_of_app = if app_cpu_time > Nanos::ZERO {
            total.as_nanos() as f64 / app_cpu_time.as_nanos() as f64
        } else {
            0.0
        };
        let per_probe: BTreeMap<Probe, (u64, Nanos)> = Probe::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.counts[i] > 0)
            .map(|(i, &p)| (p, (self.counts[i], self.times[i])))
            .collect();
        OverheadReport {
            per_probe,
            total_time: total,
            total_firings: self.total_firings(),
            avg_cores,
            frac_of_app_load: frac_of_app,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::new()
    }
}

/// Aggregated probe-overhead statistics (what `bpftool` + arithmetic gave
/// the paper).
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Firing count and cumulative runtime per probe.
    pub per_probe: BTreeMap<Probe, (u64, Nanos)>,
    /// Total probe runtime.
    pub total_time: Nanos,
    /// Total firings across probes.
    pub total_firings: u64,
    /// Average CPU cores consumed by the probes (runtime / wall time).
    pub avg_cores: f64,
    /// Probe runtime as a fraction of the applications' CPU load.
    pub frac_of_app_load: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = OverheadModel::new().with_costs(Nanos::from_nanos(100), Nanos::from_nanos(10));
        assert_eq!(m.charge(Probe::P2, 2), Nanos::from_nanos(120));
        m.charge(Probe::P2, 2);
        m.charge(Probe::P16, 0);
        assert_eq!(m.total_firings(), 3);
        assert_eq!(m.total_time(), Nanos::from_nanos(120 + 120 + 100));
        assert_eq!(m.report(Nanos::from_secs(1), Nanos::from_secs(1)).per_probe[&Probe::P2].0, 2);
    }

    #[test]
    fn report_ratios() {
        let mut m = OverheadModel::new().with_costs(Nanos::from_micros(1), Nanos::ZERO);
        for _ in 0..1000 {
            m.charge(Probe::SchedSwitch, 0);
        }
        // 1 ms of probe time over 1 s wall time = 0.001 cores.
        let r = m.report(Nanos::from_secs(1), Nanos::from_millis(500));
        assert!((r.avg_cores - 0.001).abs() < 1e-9);
        // ... and 0.2% of a 500 ms application load.
        assert!((r.frac_of_app_load - 0.002).abs() < 1e-9);
    }

    #[test]
    fn probe_slots_match_discriminants() {
        // The flat accounting arrays index by `probe as usize`; this pins
        // the slot table to the enum's declaration order.
        for (i, &p) in Probe::ALL.iter().enumerate() {
            assert_eq!(p as usize, i, "slot of {p:?}");
        }
        for spec in rtms_trace::PROBE_CATALOG {
            assert_eq!(Probe::ALL[spec.probe as usize], spec.probe);
        }
    }

    #[test]
    fn empty_model_reports_zero() {
        let m = OverheadModel::new();
        let r = m.report(Nanos::from_secs(1), Nanos::from_secs(1));
        assert_eq!(r.total_firings, 0);
        assert_eq!(r.avg_cores, 0.0);
    }
}
