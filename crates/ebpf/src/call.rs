//! The probed function-call surface.
//!
//! The middleware simulator reports every entry/exit of a traced function
//! as a [`FunctionCall`]. The argument payload mirrors what the real eBPF
//! program can reach by traversing the function's argument structures —
//! including the restriction that out-parameters (the source timestamp of
//! `rmw_take_*`) have no defined value at function entry.

use rtms_trace::{CallbackId, Nanos, Pid, SourceTimestamp, Topic};
use std::fmt;

/// Whether a probe fires at function entry (uprobe) or exit (uretprobe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttachPoint {
    /// Function entry: arguments are readable, return value is not.
    Entry,
    /// Function exit: return value and out-parameters are readable.
    Exit,
}

impl fmt::Display for AttachPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachPoint::Entry => write!(f, "entry"),
            AttachPoint::Exit => write!(f, "exit"),
        }
    }
}

/// A by-reference source-timestamp argument (`srcTS` in the paper).
///
/// At function entry only the *address* is known; the value is filled in by
/// lower-level DDS functions and becomes readable at exit. The RT tracer
/// stores `addr` in a BPF map at entry and dereferences it at exit — if the
/// simulator hands it a `value` at that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcTsRef {
    /// The (simulated) address of the out-parameter.
    pub addr: u64,
    /// The pointee, present only in `Exit` calls.
    pub value: Option<SourceTimestamp>,
}

impl SrcTsRef {
    /// An entry-time reference: address known, value not yet written.
    pub fn pending(addr: u64) -> Self {
        SrcTsRef { addr, value: None }
    }

    /// An exit-time reference with the value filled in.
    pub fn resolved(addr: u64, value: SourceTimestamp) -> Self {
        SrcTsRef { addr, value: Some(value) }
    }
}

/// Simulated argument structures of the probed ROS2 functions.
///
/// Each variant corresponds to a probed symbol; the fields are what the
/// paper's programs extract by walking the real argument structs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionArgs {
    /// `rmw_create_node(name, ...)` — P1.
    RmwCreateNode {
        /// The node name.
        node_name: String,
    },
    /// `rclcpp::Executor::execute_timer(...)` — P2 (entry) / P4 (exit).
    ExecuteTimer,
    /// `rcl_timer_call(timer)` — P3.
    RclTimerCall {
        /// The timer callback identity.
        timer: CallbackId,
    },
    /// `rclcpp::Executor::execute_subscription(...)` — P5 / P8.
    ExecuteSubscription,
    /// `rmw_take_int(subscription, msg, taken, src_ts*)` — P6.
    RmwTakeInt {
        /// The subscriber callback identity.
        subscription: CallbackId,
        /// The subscribed topic.
        topic: Topic,
        /// The by-reference source timestamp.
        src_ts: SrcTsRef,
    },
    /// `message_filters::...::operator()(msg)` — P7.
    MessageFilterOp,
    /// `rclcpp::Executor::execute_service(...)` — P9 / P11.
    ExecuteService,
    /// `rmw_take_request(service, request, taken, src_ts*)` — P10.
    RmwTakeRequest {
        /// The service callback identity.
        service: CallbackId,
        /// The service request topic.
        topic: Topic,
        /// The by-reference source timestamp.
        src_ts: SrcTsRef,
    },
    /// `rclcpp::Executor::execute_client(...)` — P12 / P15.
    ExecuteClient,
    /// `rmw_take_response(client, response, taken, src_ts*)` — P13.
    RmwTakeResponse {
        /// The client callback identity.
        client: CallbackId,
        /// The service response topic.
        topic: Topic,
        /// The by-reference source timestamp.
        src_ts: SrcTsRef,
    },
    /// `rclcpp::ClientBase::take_type_erased_response(...)` — P14.
    ///
    /// The return value (`true` = the client callback will be dispatched in
    /// this node) is only present in `Exit` calls.
    TakeTypeErasedResponse {
        /// The function's return value, available at exit only.
        ret: Option<bool>,
    },
    /// `dds_write_impl(writer, sample)` — P16.
    DdsWriteImpl {
        /// The written topic.
        topic: Topic,
        /// The source timestamp stamped on the sample.
        src_ts: SourceTimestamp,
    },
}

impl FunctionArgs {
    /// The `(library, function)` symbol this argument structure belongs to,
    /// matching Table I.
    pub fn symbol(&self) -> (&'static str, &'static str) {
        match self {
            FunctionArgs::RmwCreateNode { .. } => ("rmw_cyclonedds_cpp", "rmw_create_node"),
            FunctionArgs::ExecuteTimer => ("rclcpp", "execute_timer"),
            FunctionArgs::RclTimerCall { .. } => ("rcl", "rcl_timer_call"),
            FunctionArgs::ExecuteSubscription => ("rclcpp", "execute_subscription"),
            FunctionArgs::RmwTakeInt { .. } => ("rmw_cyclonedds_cpp", "rmw_take_int"),
            FunctionArgs::MessageFilterOp => ("message_filters", "operator()"),
            FunctionArgs::ExecuteService => ("rclcpp", "execute_service"),
            FunctionArgs::RmwTakeRequest { .. } => ("rmw_cyclonedds_cpp", "rmw_take_request"),
            FunctionArgs::ExecuteClient => ("rclcpp", "execute_client"),
            FunctionArgs::RmwTakeResponse { .. } => ("rmw_cyclonedds_cpp", "rmw_take_response"),
            FunctionArgs::TakeTypeErasedResponse { .. } => {
                ("rclcpp", "take_type_erased_response")
            }
            FunctionArgs::DdsWriteImpl { .. } => ("cyclonedds", "dds_write_impl"),
        }
    }
}

/// One observed function entry or exit, as seen by an attached probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCall {
    /// When the probe fired.
    pub time: Nanos,
    /// The thread on which the function ran.
    pub pid: Pid,
    /// Entry (uprobe) or exit (uretprobe).
    pub point: AttachPoint,
    /// The simulated argument structures.
    pub args: FunctionArgs,
}

impl FunctionCall {
    /// Creates a function-entry observation.
    pub fn entry(time: Nanos, pid: Pid, args: FunctionArgs) -> Self {
        FunctionCall { time, pid, point: AttachPoint::Entry, args }
    }

    /// Creates a function-exit observation.
    pub fn exit(time: Nanos, pid: Pid, args: FunctionArgs) -> Self {
        FunctionCall { time, pid, point: AttachPoint::Exit, args }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_ts_ref_lifecycle() {
        let pending = SrcTsRef::pending(0xdead);
        assert_eq!(pending.value, None);
        let resolved = SrcTsRef::resolved(0xdead, SourceTimestamp::new(7));
        assert_eq!(resolved.addr, pending.addr);
        assert_eq!(resolved.value, Some(SourceTimestamp::new(7)));
    }

    #[test]
    fn symbols_match_table_i() {
        assert_eq!(
            FunctionArgs::RmwCreateNode { node_name: "n".into() }.symbol(),
            ("rmw_cyclonedds_cpp", "rmw_create_node")
        );
        assert_eq!(FunctionArgs::ExecuteTimer.symbol(), ("rclcpp", "execute_timer"));
        assert_eq!(
            FunctionArgs::DdsWriteImpl {
                topic: Topic::plain("/t"),
                src_ts: SourceTimestamp::new(1)
            }
            .symbol(),
            ("cyclonedds", "dds_write_impl")
        );
        assert_eq!(FunctionArgs::MessageFilterOp.symbol(), ("message_filters", "operator()"));
    }

    #[test]
    fn constructors_set_point() {
        let e = FunctionCall::entry(Nanos::ZERO, Pid::new(1), FunctionArgs::ExecuteTimer);
        assert_eq!(e.point, AttachPoint::Entry);
        let x = FunctionCall::exit(Nanos::ZERO, Pid::new(1), FunctionArgs::ExecuteTimer);
        assert_eq!(x.point, AttachPoint::Exit);
    }
}
