//! The kernel tracer (TR_KN): the `sched_switch` tracepoint with in-kernel
//! PID filtering (Sec. III-B).
//!
//! Recording *all* `sched_switch` events produces hundreds of megabytes per
//! second; the paper reduces the footprint by a factor of three or more by
//! filtering on the PIDs of ROS2 nodes, which the ROS2-INIT tracer shares
//! through a BPF map. [`KernelTracer`] reproduces that: its handler runs on
//! *every* scheduler event (and is charged overhead for each), but only
//! events involving a traced PID are exported to the perf buffer.

use crate::map::PidFilterMap;
use crate::overhead::OverheadModel;
use crate::perf::PerfBuffer;
use crate::program::{Helper, ProgramSpec};
use crate::verifier::{Verifier, VerifyError};
use rtms_trace::{Probe, SchedEvent, SchedEventKind};

use crate::call::AttachPoint;

/// Default perf-buffer capacity for scheduler events (16 MiB).
const KN_BUFFER_BYTES: usize = 16 << 20;

/// The scheduler-event tracer.
///
/// # Example
///
/// ```
/// use rtms_ebpf::{map, KernelTracer};
/// use rtms_trace::{Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState};
///
/// let filter = map::pid_filter_map();
/// filter.update(Pid::new(10), ()).expect("filter map has room");
/// let mut tracer = KernelTracer::new(Some(filter)).expect("program verifies");
/// tracer.start();
///
/// // Involves pid 10: exported.
/// tracer.on_sched_event(&SchedEvent::switch(
///     Nanos::ZERO, Cpu::new(0),
///     Pid::new(10), Priority::NORMAL, ThreadState::Runnable,
///     Pid::new(99), Priority::NORMAL,
/// ));
/// // Unrelated threads: filtered out in "kernel space".
/// tracer.on_sched_event(&SchedEvent::switch(
///     Nanos::ZERO, Cpu::new(0),
///     Pid::new(98), Priority::NORMAL, ThreadState::Runnable,
///     Pid::new(99), Priority::NORMAL,
/// ));
/// assert_eq!(tracer.drain_segment().len(), 1);
/// ```
#[derive(Debug)]
pub struct KernelTracer {
    enabled: bool,
    filter: Option<PidFilterMap>,
    /// Lock-free snapshot of the filter map as a PID bitmap. The handler
    /// fires for *every* scheduler event, so paying the map's read lock
    /// (twice, for a switch) per event dominates the handler; the bitmap
    /// answers with one shift and is revalidated against the map's
    /// generation counter with a single atomic load.
    filter_cache: FilterCache,
    record_wakeups: bool,
    perf: PerfBuffer<SchedEvent>,
    overhead: OverheadModel,
    seen: u64,
    exported: u64,
}

/// See [`KernelTracer::filter_cache`].
#[derive(Debug, Default)]
struct FilterCache {
    /// Map generation the bitmap was built at; `None` until the first
    /// query builds it.
    generation: Option<u64>,
    bits: Vec<u64>,
}

impl FilterCache {
    /// Brings the bitmap up to date with `map` (cheap no-op when the
    /// generation is unchanged) and tests `pid`.
    fn contains(&mut self, map: &PidFilterMap, pid: rtms_trace::Pid) -> bool {
        let generation = map.generation();
        if self.generation != Some(generation) {
            self.generation = Some(generation);
            self.bits.clear();
            for key in map.keys() {
                let (word, bit) = (key.get() as usize / 64, key.get() % 64);
                if self.bits.len() <= word {
                    self.bits.resize(word + 1, 0);
                }
                self.bits[word] |= 1u64 << bit;
            }
        }
        let (word, bit) = (pid.get() as usize / 64, pid.get() % 64);
        self.bits.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }
}

impl KernelTracer {
    /// Creates the tracer. With `Some(filter)`, only events involving a PID
    /// in the map are exported (the paper's configuration); with `None`,
    /// everything is exported (the baseline of the footprint experiment).
    ///
    /// # Errors
    ///
    /// Returns the verifier's findings if the tracepoint program is
    /// rejected.
    pub fn new(filter: Option<PidFilterMap>) -> Result<Self, Vec<VerifyError>> {
        // Two constant program variants (filtering on/off), two constant
        // verdicts: verify each once per process.
        static VERIFIED: [std::sync::OnceLock<Result<(), Vec<VerifyError>>>; 2] =
            [std::sync::OnceLock::new(), std::sync::OnceLock::new()];
        let filtered = filter.is_some();
        VERIFIED[usize::from(filtered)]
            .get_or_init(|| {
                let mut program = ProgramSpec::new(Probe::SchedSwitch, AttachPoint::Entry, 260)
                    .with_helpers([
                        Helper::KtimeGetNs,
                        Helper::ProbeReadKernel,
                        Helper::PerfEventOutput,
                    ]);
                if filtered {
                    program = program
                        .with_helpers([
                            Helper::KtimeGetNs,
                            Helper::ProbeReadKernel,
                            Helper::MapLookup,
                            Helper::PerfEventOutput,
                        ])
                        .with_maps(["ros2_pids"]);
                }
                Verifier::default().verify_all(std::slice::from_ref(&program))
            })
            .clone()?;
        Ok(KernelTracer {
            enabled: false,
            filter,
            filter_cache: FilterCache::default(),
            record_wakeups: false,
            perf: PerfBuffer::new(KN_BUFFER_BYTES),
            overhead: OverheadModel::new(),
            seen: 0,
            exported: 0,
        })
    }

    /// Also exports `sched_wakeup` events (the Sec. VII extension for
    /// waiting-time measurement). Off by default, as in the paper.
    pub fn with_wakeups(mut self) -> Self {
        self.record_wakeups = true;
        self
    }

    /// Starts exporting events.
    pub fn start(&mut self) {
        self.enabled = true;
    }

    /// Stops exporting events.
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Observes one scheduler event (the tracepoint handler). Runs the
    /// filter in "kernel space": the handler is charged for every event, but
    /// only matching events reach the perf buffer.
    pub fn on_sched_event(&mut self, event: &SchedEvent) {
        if !self.enabled {
            return;
        }
        self.seen += 1;
        let cache = &mut self.filter_cache;
        let (is_wakeup, matches) = match &event.kind {
            SchedEventKind::Switch { prev_pid, next_pid, .. } => {
                let m = match &self.filter {
                    Some(f) => cache.contains(f, *prev_pid) || cache.contains(f, *next_pid),
                    None => true,
                };
                (false, m)
            }
            SchedEventKind::Wakeup { pid, .. } => {
                let m = match &self.filter {
                    Some(f) => cache.contains(f, *pid),
                    None => true,
                };
                (true, m)
            }
        };
        // Handler cost: clock read + kernel struct reads (+ up to two map
        // lookups when filtering).
        let helpers = if self.filter.is_some() { 5 } else { 3 };
        self.overhead.charge(Probe::SchedSwitch, helpers);
        if is_wakeup && !self.record_wakeups {
            return;
        }
        if matches {
            self.exported += 1;
            self.perf.push(event.clone());
        }
    }

    /// Drains the buffered events (one trace segment).
    pub fn drain_segment(&mut self) -> Vec<SchedEvent> {
        self.perf.drain()
    }

    /// Drains the buffered events directly into an event sink (generic:
    /// a concrete sink type gets a monomorphized, dispatch-free drain).
    pub fn drain_segment_into<S: rtms_trace::EventSink + ?Sized>(&mut self, sink: &mut S) {
        self.perf.drain_into(sink);
    }

    /// Scheduler events observed by the handler (filtered or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events that passed the filter and were exported.
    pub fn exported(&self) -> u64 {
        self.exported
    }

    /// Perf-buffer statistics.
    pub fn perf(&self) -> &PerfBuffer<SchedEvent> {
        &self.perf
    }

    /// Overhead accounting of the tracepoint handler.
    pub fn overhead(&self) -> &OverheadModel {
        &self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::pid_filter_map;
    use rtms_trace::{Cpu, Nanos, Pid, Priority, ThreadState};

    fn sw(prev: u32, next: u32) -> SchedEvent {
        SchedEvent::switch(
            Nanos::ZERO,
            Cpu::new(0),
            Pid::new(prev),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(next),
            Priority::NORMAL,
        )
    }

    #[test]
    fn filtering_reduces_export() {
        let filter = pid_filter_map();
        filter.update(Pid::new(1), ()).expect("insert");
        let mut tr = KernelTracer::new(Some(filter)).expect("verified");
        tr.start();
        tr.on_sched_event(&sw(1, 2)); // involves traced pid
        tr.on_sched_event(&sw(3, 4)); // noise
        tr.on_sched_event(&sw(5, 1)); // involves traced pid
        assert_eq!(tr.seen(), 3);
        assert_eq!(tr.exported(), 2);
        assert_eq!(tr.drain_segment().len(), 2);
    }

    #[test]
    fn unfiltered_exports_everything() {
        let mut tr = KernelTracer::new(None).expect("verified");
        tr.start();
        for i in 0..10 {
            tr.on_sched_event(&sw(i, i + 1));
        }
        assert_eq!(tr.exported(), 10);
    }

    #[test]
    fn wakeups_dropped_unless_enabled() {
        let filter = pid_filter_map();
        filter.update(Pid::new(1), ()).expect("insert");
        let mut tr = KernelTracer::new(Some(filter.clone())).expect("verified");
        tr.start();
        tr.on_sched_event(&SchedEvent::wakeup(Nanos::ZERO, Cpu::new(0), Pid::new(1), Priority::NORMAL));
        assert_eq!(tr.drain_segment().len(), 0);

        let mut tr = KernelTracer::new(Some(filter)).expect("verified").with_wakeups();
        tr.start();
        tr.on_sched_event(&SchedEvent::wakeup(Nanos::ZERO, Cpu::new(0), Pid::new(1), Priority::NORMAL));
        assert_eq!(tr.drain_segment().len(), 1);
    }

    #[test]
    fn handler_charged_even_for_filtered_events() {
        let filter = pid_filter_map();
        let mut tr = KernelTracer::new(Some(filter)).expect("verified");
        tr.start();
        tr.on_sched_event(&sw(3, 4)); // filtered out
        assert_eq!(tr.exported(), 0);
        assert_eq!(tr.overhead().total_firings(), 1, "filter cost is paid in kernel");
    }

    #[test]
    fn disabled_tracer_sees_nothing() {
        let mut tr = KernelTracer::new(None).expect("verified");
        tr.on_sched_event(&sw(1, 2));
        assert_eq!(tr.seen(), 0);
    }

    #[test]
    fn late_pid_registration_takes_effect() {
        // The INIT tracer fills the map while the kernel tracer is already
        // attached: subsequent events must match.
        let filter = pid_filter_map();
        let mut tr = KernelTracer::new(Some(filter.clone())).expect("verified");
        tr.start();
        tr.on_sched_event(&sw(7, 8));
        assert_eq!(tr.exported(), 0);
        filter.update(Pid::new(7), ()).expect("insert");
        tr.on_sched_event(&sw(7, 8));
        assert_eq!(tr.exported(), 1);
    }
}
