//! eBPF-like tracing substrate.
//!
//! The paper attaches eBPF programs (written in restricted C, compiled with
//! LLVM/BCC, checked by the kernel verifier) to ROS2 middleware functions
//! via uprobes/uretprobes, and to the scheduler via a tracepoint. The
//! programs communicate through BPF maps and export events through a perf
//! buffer. This crate reproduces those *mechanics* over the simulated stack:
//!
//! - [`program::ProgramSpec`] describes a probe program (attachment target,
//!   estimated instruction count, helpers used, maps accessed) and
//!   [`verifier::Verifier`] statically validates it, modeling the kernel's
//!   load-time checks.
//! - [`map::BpfMap`] is a bounded hash map with the update/lookup/delete
//!   API; [`map::PidFilterMap`] is the shared map through which the
//!   ROS2-INIT tracer publishes traced PIDs to the kernel tracer
//!   (Sec. III-B).
//! - [`perf::PerfBuffer`] is a bounded ring with drop accounting, standing
//!   in for the per-CPU perf event array.
//! - [`overhead::OverheadModel`] accounts the CPU cost of every probe
//!   firing, so the Sec. VI overhead experiment ("0.008 CPU cores, 0.3 % of
//!   application load") can be regenerated.
//! - The three tracers of Fig. 1 are [`Ros2InitTracer`] (P1),
//!   [`Ros2RtTracer`] (P2–P16) and [`KernelTracer`] (`sched_switch`,
//!   optionally `sched_wakeup`).
//!
//! [`vm`] additionally provides a bytecode-level BPF virtual machine with
//! its own load-time verifier; the Table I programs are expressed in its
//! instruction set and tested for agreement with the native tracer path.
//!
//! The middleware simulator (`rtms-ros2`) drives the tracers by reporting
//! every traced function entry/exit as a [`call::FunctionCall`]; argument
//! values that a uretprobe can only observe at function exit (the
//! by-reference source timestamp of `rmw_take_*`) are only present in the
//! exit call, and the RT tracer reconstructs them with the
//! store-the-address-in-a-map technique the paper describes.

#![warn(missing_docs)]

pub mod call;
pub mod map;
pub mod overhead;
pub mod perf;
pub mod program;
pub mod tracer_init;
pub mod tracer_kernel;
pub mod tracer_rt;
pub mod verifier;
pub mod vm;

pub use call::{AttachPoint, FunctionArgs, FunctionCall, SrcTsRef};
pub use map::{BpfMap, MapError, PidFilterMap};
pub use overhead::{OverheadModel, OverheadReport};
pub use perf::{PerfBuffer, PerfRecord};
pub use program::{Helper, ProgramSpec};
pub use tracer_init::Ros2InitTracer;
pub use tracer_kernel::KernelTracer;
pub use tracer_rt::Ros2RtTracer;
pub use verifier::{Verifier, VerifyError};
pub use vm::{Insn, Program, VmEnv, VmFault, VmVerifyError};
