//! Property-based tests of the eBPF substrate: buffer accounting, map
//! capacity, and tracer dispatch invariants.

use proptest::prelude::*;
use rtms_ebpf::{map, BpfMap, FunctionArgs, FunctionCall, KernelTracer, PerfBuffer, Ros2RtTracer, SrcTsRef};
use rtms_trace::{
    CallbackId, CallbackKind, Cpu, Nanos, Pid, Priority, RosEvent, RosPayload, SchedEvent,
    SourceTimestamp, ThreadState, Topic,
};

fn small_event() -> RosEvent {
    RosEvent::new(Nanos::ZERO, Pid::new(1), RosPayload::SyncSubscribe)
}

proptest! {
    /// pushed + dropped always equals the number of offered records, and
    /// the buffer never holds more bytes than its capacity.
    #[test]
    fn perf_buffer_accounting(capacity_records in 1usize..64, offered in 0usize..200) {
        let one = small_event().encoded_size();
        let mut buf = PerfBuffer::new(capacity_records * one);
        let mut accepted = 0u64;
        for _ in 0..offered {
            if buf.push(small_event()) {
                accepted += 1;
            }
        }
        prop_assert_eq!(buf.pushed(), accepted);
        prop_assert_eq!(buf.pushed() + buf.dropped(), offered as u64);
        prop_assert!(buf.peak_bytes() <= buf.capacity_bytes());
        prop_assert_eq!(buf.len() as u64, accepted);
        let drained = buf.drain();
        prop_assert_eq!(drained.len() as u64, accepted);
        prop_assert!(buf.is_empty());
    }

    /// A map never exceeds its capacity and lookup reflects the last
    /// update for any interleaving of operations.
    #[test]
    fn bpf_map_capacity_and_consistency(
        ops in proptest::collection::vec((0u32..16, 0u64..100, any::<bool>()), 0..200),
        cap in 1usize..8,
    ) {
        let m: BpfMap<u32, u64> = BpfMap::new("m", cap);
        let mut model = std::collections::HashMap::new();
        for (key, value, is_insert) in ops {
            if is_insert {
                match m.update(key, value) {
                    Ok(()) => { model.insert(key, value); }
                    Err(_) => {
                        prop_assert!(model.len() >= cap && !model.contains_key(&key));
                    }
                }
            } else {
                prop_assert_eq!(m.delete(&key), model.remove(&key));
            }
            prop_assert!(m.len() <= cap);
        }
        for (k, v) in &model {
            prop_assert_eq!(m.lookup(k), Some(*v));
        }
    }

    /// For any interleaving of per-thread take entry/exit pairs, the RT
    /// tracer emits exactly one event per completed pair, with the exit
    /// value.
    #[test]
    fn rt_tracer_take_pairing(pids in proptest::collection::vec(1u32..6, 1..40)) {
        let mut tracer = Ros2RtTracer::new().expect("programs verify");
        tracer.start();
        let mut open: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut completed = 0usize;
        let mut addr = 0x1000u64;
        for pid in pids {
            match open.remove(&pid) {
                None => {
                    addr += 0x10;
                    open.insert(pid, addr);
                    tracer.on_function(&FunctionCall::entry(
                        Nanos::ZERO,
                        Pid::new(pid),
                        FunctionArgs::RmwTakeInt {
                            subscription: CallbackId::new(u64::from(pid)),
                            topic: Topic::plain("/t"),
                            src_ts: SrcTsRef::pending(addr),
                        },
                    ));
                }
                Some(a) => {
                    completed += 1;
                    tracer.on_function(&FunctionCall::exit(
                        Nanos::ZERO,
                        Pid::new(pid),
                        FunctionArgs::RmwTakeInt {
                            subscription: CallbackId::new(u64::from(pid)),
                            topic: Topic::plain("/t"),
                            src_ts: SrcTsRef::resolved(a, SourceTimestamp::new(a)),
                        },
                    ));
                }
            }
        }
        let events = tracer.drain_segment();
        prop_assert_eq!(events.len(), completed);
        for e in events {
            match e.payload {
                RosPayload::TakeData { src_ts, .. } => prop_assert!(src_ts.get() >= 0x1000),
                other => prop_assert!(false, "unexpected payload {:?}", other),
            }
        }
    }

    /// The kernel tracer's export set is exactly the filter predicate
    /// applied to the input stream.
    #[test]
    fn kernel_filter_is_exact(
        switches in proptest::collection::vec((0u32..32, 0u32..32), 0..200),
        traced in proptest::collection::vec(0u32..32, 0..8),
    ) {
        let filter = map::pid_filter_map();
        for &p in &traced {
            filter.update(Pid::new(p), ()).expect("room");
        }
        let mut tracer = KernelTracer::new(Some(filter)).expect("program verifies");
        tracer.start();
        let mut expected = 0u64;
        for (prev, next) in switches {
            if traced.contains(&prev) || traced.contains(&next) {
                expected += 1;
            }
            tracer.on_sched_event(&SchedEvent::switch(
                Nanos::ZERO,
                Cpu::new(0),
                Pid::new(prev),
                Priority::NORMAL,
                ThreadState::Runnable,
                Pid::new(next),
                Priority::NORMAL,
            ));
        }
        prop_assert_eq!(tracer.exported(), expected);
    }

    /// Callback start/end dispatch is kind-faithful for every kind.
    #[test]
    fn execute_probes_preserve_kind(kind_sel in 0usize..4, entries in 1usize..20) {
        let (args, kind) = match kind_sel {
            0 => (FunctionArgs::ExecuteTimer, CallbackKind::Timer),
            1 => (FunctionArgs::ExecuteSubscription, CallbackKind::Subscriber),
            2 => (FunctionArgs::ExecuteService, CallbackKind::Service),
            _ => (FunctionArgs::ExecuteClient, CallbackKind::Client),
        };
        let mut tracer = Ros2RtTracer::new().expect("programs verify");
        tracer.start();
        for i in 0..entries {
            tracer.on_function(&FunctionCall::entry(
                Nanos::from_nanos(i as u64),
                Pid::new(1),
                args.clone(),
            ));
            tracer.on_function(&FunctionCall::exit(
                Nanos::from_nanos(i as u64 + 1),
                Pid::new(1),
                args.clone(),
            ));
        }
        let events = tracer.drain_segment();
        prop_assert_eq!(events.len(), entries * 2);
        for pair in events.chunks(2) {
            prop_assert_eq!(&pair[0].payload, &RosPayload::CallbackStart { kind });
            prop_assert_eq!(&pair[1].payload, &RosPayload::CallbackEnd { kind });
        }
    }
}
