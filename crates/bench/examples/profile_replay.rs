//! Profiles the replay hot path stage by stage: decode-only, fused
//! decode+feed (the path `SynthesisSession::feed_reader` takes), and
//! feed-only over pre-decoded segments. Useful for attributing a change
//! in the `perf` binary's replay column to the decoder or the walker —
//! see the "Current numbers" breakdown in `docs/PERFORMANCE.md`.
//!
//! Run with `cargo run --release -p rtms-bench --example profile_replay`.

use rtms_bench::{bench_world, RecordMeta};
use rtms_core::SynthesisSession;
use rtms_trace::{Nanos, SegmentReader, SegmentWriter, TraceSegment};
use std::time::Instant;

fn main() {
    let meta = RecordMeta { secs: 20, apps: 2, seed: 0, segment_ms: 250, profile: Default::default() };
    let mut world = bench_world(meta.apps, meta.seed);
    let mut segments: Vec<TraceSegment> = Vec::new();
    world.trace_segments(
        Nanos::from_secs(meta.secs),
        Nanos::from_millis(meta.segment_ms),
        |s| segments.push(std::mem::take(s)),
    );
    let events: u64 = segments.iter().map(|s| s.len() as u64).sum();

    let mut writer = SegmentWriter::new(Vec::new()).expect("header");
    for s in &segments {
        writer.write_segment(s).expect("encode");
    }
    let (file, stats) = writer.finish().expect("finish");
    println!(
        "{} events, {} bytes ({:.2} B/event)",
        events,
        stats.bytes,
        stats.bytes as f64 / events as f64
    );

    // Event mix: which payloads dominate the stream.
    let mut reader = SegmentReader::new(file.as_slice()).expect("header");
    let mut ros = [0u64; 16];
    let mut sched = 0u64;
    while reader
        .next_segment_events(|e| match e {
            rtms_trace::OwnedSegmentEvent::Ros(e) => {
                use rtms_trace::RosPayload as P;
                let slot = match e.payload {
                    P::NodeInit { .. } => 0,
                    P::CallbackStart { .. } => 1,
                    P::TimerCall { .. } => 2,
                    P::CallbackEnd { .. } => 3,
                    P::TakeData { .. } => 4,
                    P::SyncSubscribe => 5,
                    P::TakeRequest { .. } => 6,
                    P::TakeResponse { .. } => 7,
                    P::ClientDispatch { .. } => 8,
                    P::DdsWrite { .. } => 9,
                };
                ros[slot] += 1;
            }
            rtms_trace::OwnedSegmentEvent::Sched(_) => sched += 1,
        })
        .expect("decode")
        .is_some()
    {}
    let names = [
        "NodeInit", "CbStart", "TimerCall", "CbEnd", "TakeData", "SyncSub", "TakeReq", "TakeResp",
        "ClientDisp", "DdsWrite",
    ];
    for (name, count) in names.iter().zip(ros.iter()) {
        println!("  {name:<10} {count}");
    }
    println!("  {:<10} {sched}", "Sched");

    let reps = 20;

    // Decode-only, batch into a reused segment.
    let t = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        let mut seg = TraceSegment::new();
        while reader.read_segment_into(&mut seg).expect("decode") {
            sink += seg.len() as u64;
        }
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;
    println!(
        "decode-only (batch): {:>7.1} ns/event  {:.0} ev/s  ({sink})",
        secs * 1e9 / events as f64,
        events as f64 / secs
    );

    // Decode-only, streaming (no segment materialization).
    let t = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        while let Some((_, len)) = reader.next_segment_events(|_e| {}).expect("decode") {
            sink += len as u64;
        }
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;
    println!(
        "decode-only (stream): {:>6.1} ns/event  {:.0} ev/s  ({sink})",
        secs * 1e9 / events as f64,
        events as f64 / secs
    );

    // Feed-only, by-ref cursor over pre-collected segments.
    let t = Instant::now();
    let mut model = None;
    for _ in 0..reps {
        let mut session = SynthesisSession::new();
        for s in &segments {
            session.feed_segment(s);
        }
        model = Some(session.model());
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;
    println!(
        "feed-only (cursor): {:>8.1} ns/event  {:.0} ev/s  ({} vertices)",
        secs * 1e9 / events as f64,
        events as f64 / secs,
        model.as_ref().map(|m| m.vertices().len()).unwrap_or(0)
    );

    // Fused decode+feed.
    let t = Instant::now();
    let mut replay = None;
    for _ in 0..reps {
        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        let mut session = SynthesisSession::new();
        session.feed_reader(&mut reader).expect("replay");
        replay = Some(session.model());
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;
    println!(
        "fused decode+feed: {:>9.1} ns/event  {:.0} ev/s",
        secs * 1e9 / events as f64,
        events as f64 / secs
    );
    assert_eq!(replay, model, "fused replay model diverged");

    // Model-build cost alone (fixed per rep).
    let mut session = SynthesisSession::new();
    for s in &segments {
        session.feed_segment(s);
    }
    let t = Instant::now();
    for _ in 0..reps {
        let _ = session.model();
    }
    let secs = t.elapsed().as_secs_f64() / reps as f64;
    println!("model() alone: {:>13.1} us/call", secs * 1e6);
}
