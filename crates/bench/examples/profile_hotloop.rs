//! Scratch profiling driver: repeats the default-scenario collect loop
//! long enough for a sampling profiler to see it.
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::{generate_app, GeneratorConfig};

fn main() {
    let reps: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let apps: Vec<_> =
        (0..2u64).map(|i| generate_app(1000 + i, &GeneratorConfig::default())).collect();
    let mut n = 0u64;
    for _ in 0..reps {
        let mut b = WorldBuilder::new(4).seed(0);
        for app in &apps {
            b = b.app(app.clone());
        }
        let mut w = b.build().unwrap();
        w.trace_segments_sequential(Nanos::from_millis(2000), Nanos::from_millis(250), |s| {
            n += s.len() as u64;
        });
    }
    println!("{n}");
}
