//! Profiles the collect hot path stage by stage: bare simulation (tracers
//! never started), simulation with tracers on (drained once at the end),
//! and the full segmented collect loop. Useful for attributing a change
//! in the `perf` binary's collect column to the simulator, the probe
//! dispatch, or the drain — see "Current numbers" in
//! `docs/PERFORMANCE.md`.
//!
//! Run with `cargo run --release -p rtms-bench --example profile_collect`.
use rtms_ros2::WorldBuilder;
use rtms_trace::{Nanos, TraceSegment};
use rtms_workloads::{generate_app, GeneratorConfig};
use std::time::Instant;

fn world() -> rtms_ros2::Ros2World {
    let mut b = WorldBuilder::new(4).seed(0);
    for i in 0..2u64 {
        b = b.app(generate_app(1000 + i, &GeneratorConfig::default()));
    }
    b.build().unwrap()
}

fn main() {
    let dur = Nanos::from_millis(2000);
    // sim only: tracers never started
    for i in 0..3 {
        let mut w = world();
        w.announce_nodes();
        let t = Instant::now();
        w.run_for(dur);
        println!("sim only: {:?}", t.elapsed());
        if i == 2 {
            let stats = w.simulator().stats();
            println!(
                "sim stats: {} events, {} heap pushes, {} stale pops, \
                 {} slice arms (+{} suppressed), {} rebalances (+{} skipped), {} switches",
                stats.events,
                stats.heap_pushes,
                stats.stale_pops,
                stats.slice_arms,
                stats.slice_suppressed,
                stats.rebalance_runs,
                stats.rebalance_skipped,
                stats.switches,
            );
        }
    }
    // sim + tracers on, no drain until end
    for _ in 0..3 {
        let mut w = world();
        w.announce_nodes();
        let t = Instant::now();
        w.start_runtime_tracers();
        w.run_for(dur);
        w.stop_runtime_tracers();
        let el = t.elapsed();
        let mut seg = TraceSegment::new();
        w.collect_segment_into(&mut seg);
        println!("sim+trace: {:?} ({} events)", el, seg.len());
    }
    // full collect loop (segmented, sorted)
    for _ in 0..3 {
        let mut w = world();
        let mut n = 0u64;
        let t = Instant::now();
        w.trace_segments_sequential(dur, Nanos::from_millis(250), |s| n += s.len() as u64);
        println!("collect loop: {:?} ({n} events)", t.elapsed());
    }
}
