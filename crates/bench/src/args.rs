//! The one `key=value` argument surface shared by every experiment binary.
//!
//! Each binary in `crates/bench/src/bin/` accepts the same core keys and
//! parses them through [`ExperimentArgs`], so the command line behaves
//! identically across the whole experiment suite (documented in
//! `docs/EXPERIMENTS.md`):
//!
//! | key       | meaning                                   | default        |
//! |-----------|-------------------------------------------|----------------|
//! | `runs`    | independent simulation runs               | per binary     |
//! | `secs`    | simulated seconds per run                 | per binary     |
//! | `seed`    | base seed; run *i* uses `seed + i`        | per binary     |
//! | `threads` | worker threads for the run fan-out        | all cores      |
//! | `format`  | `text` (human tables) or `json` (machine) | `text`         |
//!
//! Binary-specific keys (e.g. the scaling experiment's `apps`/`nodes`) are
//! declared per binary and validated: an unknown key is a usage error, not
//! silently ignored. Every binary additionally accepts `help` (also
//! `help=…`, `--help`, `-h`), which prints its documented key list and
//! exits successfully.

use std::collections::HashMap;
use std::fmt;

/// Output mode of an experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable tables mirroring the paper (the default).
    #[default]
    Text,
    /// One machine-readable JSON document on stdout, for capturing
    /// perf/accuracy trajectories across commits.
    Json,
}

/// Per-binary defaults for the core keys.
///
/// The paper-scale configuration (50 runs × 80 s) is expensive; each binary
/// picks the defaults matching the table or figure it regenerates.
#[derive(Debug, Clone, Copy)]
pub struct Defaults {
    /// Default number of independent runs.
    pub runs: usize,
    /// Default simulated seconds per run.
    pub secs: u64,
    /// Default base seed.
    pub seed: u64,
}

impl Defaults {
    /// Defaults for a single-run experiment (`runs=1`).
    pub const fn single_run(secs: u64, seed: u64) -> Defaults {
        Defaults { runs: 1, secs, seed }
    }
}

/// Errors detected while parsing experiment arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An argument is not of the form `key=value`.
    Malformed(String),
    /// A known key's value failed to parse.
    BadValue {
        /// The offending key.
        key: String,
        /// The unparsable value.
        value: String,
    },
    /// A key this binary does not declare.
    UnknownKey(String),
    /// The user asked for the key list (`help`, `help=…`, `--help`, `-h`).
    /// Not an error condition: [`ExperimentArgs::parse_or_exit`] prints
    /// the usage line and exits with status 0.
    Help,
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Malformed(a) => write!(f, "argument {a:?} is not of the form key=value"),
            ArgError::BadValue { key, value } => {
                write!(f, "value {value:?} for key {key:?} does not parse")
            }
            ArgError::UnknownKey(k) => write!(f, "unknown key {k:?}"),
            ArgError::Help => write!(f, "help requested"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed experiment arguments: the core keys plus any binary-specific
/// extras declared at parse time.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    runs: usize,
    secs: u64,
    seed: u64,
    threads: usize,
    format: OutputFormat,
    extras: HashMap<String, String>,
}

/// The core keys every binary understands.
const CORE_KEYS: [&str; 5] = ["runs", "secs", "seed", "threads", "format"];

impl ExperimentArgs {
    /// Parses the process's command line with the given per-binary
    /// `defaults`; `extra_keys` lists the binary-specific keys allowed in
    /// addition to the core ones.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] for malformed `key=value` pairs, unparsable
    /// values of known keys, and undeclared keys.
    pub fn parse(defaults: Defaults, extra_keys: &[&str]) -> Result<ExperimentArgs, ArgError> {
        ExperimentArgs::from_iter(std::env::args().skip(1), defaults, extra_keys)
    }

    /// Like [`ExperimentArgs::parse`], but exits with the usage line and
    /// status 2 on error — the behaviour every binary wants. A `help` key
    /// (also `help=…`, `--help`, `-h`) instead prints the binary's
    /// documented key list on stdout and exits with status 0.
    pub fn parse_or_exit(usage: &str, defaults: Defaults, extra_keys: &[&str]) -> ExperimentArgs {
        match ExperimentArgs::parse(defaults, extra_keys) {
            Ok(a) => a,
            Err(ArgError::Help) => {
                println!("usage: {usage}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument iterator (testable without a process
    /// command line).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExperimentArgs::parse`].
    pub fn from_iter<I, S>(
        args: I,
        defaults: Defaults,
        extra_keys: &[&str],
    ) -> Result<ExperimentArgs, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut map: HashMap<String, String> = HashMap::new();
        for a in args {
            let a = a.as_ref();
            if a == "help" || a == "--help" || a == "-h" || a.starts_with("help=") {
                return Err(ArgError::Help);
            }
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| ArgError::Malformed(a.to_string()))?;
            if !CORE_KEYS.contains(&k) && !extra_keys.contains(&k) {
                return Err(ArgError::UnknownKey(k.to_string()));
            }
            map.insert(k.to_string(), v.to_string());
        }
        let parse_u64 = |map: &HashMap<String, String>, key: &str, default: u64| match map.get(key)
        {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
            }),
        };
        let runs = match parse_u64(&map, "runs", defaults.runs as u64)? {
            0 => {
                return Err(ArgError::BadValue {
                    key: "runs".to_string(),
                    value: "0".to_string(),
                })
            }
            r => r as usize,
        };
        let secs = parse_u64(&map, "secs", defaults.secs)?;
        let seed = parse_u64(&map, "seed", defaults.seed)?;
        let threads = match map.get("threads") {
            None => default_threads(),
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&t| t > 0)
                .ok_or_else(|| ArgError::BadValue {
                    key: "threads".to_string(),
                    value: v.clone(),
                })?,
        };
        let format = match map.get("format").map(String::as_str) {
            None | Some("text") => OutputFormat::Text,
            Some("json") => OutputFormat::Json,
            Some(v) => {
                return Err(ArgError::BadValue {
                    key: "format".to_string(),
                    value: v.to_string(),
                })
            }
        };
        let extras = map
            .into_iter()
            .filter(|(k, _)| !CORE_KEYS.contains(&k.as_str()))
            .collect();
        Ok(ExperimentArgs { runs, secs, seed, threads, format, extras })
    }

    /// Number of independent simulation runs.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Simulated seconds per run.
    pub fn secs(&self) -> u64 {
        self.secs
    }

    /// Per-run duration as [`rtms_trace::Nanos`].
    pub fn duration(&self) -> rtms_trace::Nanos {
        rtms_trace::Nanos::from_secs(self.secs)
    }

    /// Base seed; run *i* is simulated with seed `seed + i`.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads for the run fan-out (defaults to all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Selected output format.
    pub fn format(&self) -> OutputFormat {
        self.format
    }

    /// Whether JSON output was requested.
    pub fn json(&self) -> bool {
        self.format == OutputFormat::Json
    }

    /// A binary-specific `u64` key, with a default. An unparsable value is
    /// a usage error: the process exits with status 2, like
    /// [`ExperimentArgs::parse_or_exit`] does for core keys.
    pub fn extra_u64(&self, key: &str, default: u64) -> u64 {
        self.extra_parsed(key, default)
    }

    /// A binary-specific `f64` key, with a default. An unparsable value is
    /// a usage error: the process exits with status 2.
    pub fn extra_f64(&self, key: &str, default: f64) -> f64 {
        self.extra_parsed(key, default)
    }

    /// A binary-specific free-form string key (e.g. an output path), if
    /// given.
    pub fn extra_string(&self, key: &str) -> Option<String> {
        self.extras.get(key).cloned()
    }

    fn extra_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.extras.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                let e = ArgError::BadValue { key: key.to_string(), value: v.clone() };
                eprintln!("error: {e}");
                std::process::exit(2);
            }),
        }
    }
}

/// Default worker-thread count: every core the machine offers.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Defaults = Defaults { runs: 50, secs: 80, seed: 0 };

    #[test]
    fn defaults_apply_when_unset() {
        let a = ExperimentArgs::from_iter(std::iter::empty::<&str>(), D, &[]).expect("ok");
        assert_eq!(a.runs(), 50);
        assert_eq!(a.secs(), 80);
        assert_eq!(a.seed(), 0);
        assert!(a.threads() >= 1);
        assert_eq!(a.format(), OutputFormat::Text);
    }

    #[test]
    fn core_keys_parse() {
        let a = ExperimentArgs::from_iter(
            ["runs=8", "secs=2", "seed=3", "threads=4", "format=json"],
            D,
            &[],
        )
        .expect("ok");
        assert_eq!(a.runs(), 8);
        assert_eq!(a.secs(), 2);
        assert_eq!(a.duration(), rtms_trace::Nanos::from_secs(2));
        assert_eq!(a.seed(), 3);
        assert_eq!(a.threads(), 4);
        assert!(a.json());
    }

    #[test]
    fn extras_are_declared_and_typed() {
        let a = ExperimentArgs::from_iter(["apps=3", "load=0.5"], D, &["apps", "load"])
            .expect("ok");
        assert_eq!(a.extra_u64("apps", 1), 3);
        assert!((a.extra_f64("load", 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(a.extra_u64("nodes", 6), 6);
    }

    #[test]
    fn help_is_recognized_in_every_spelling() {
        for spelling in ["help", "help=1", "help=anything", "--help", "-h"] {
            assert_eq!(
                ExperimentArgs::from_iter([spelling], D, &[]).unwrap_err(),
                ArgError::Help,
                "{spelling} must request help"
            );
        }
        // Even alongside other keys.
        assert_eq!(
            ExperimentArgs::from_iter(["runs=3", "help"], D, &[]).unwrap_err(),
            ArgError::Help
        );
        assert!(ArgError::Help.to_string().contains("help"));
    }

    #[test]
    fn unknown_key_rejected() {
        let e = ExperimentArgs::from_iter(["thread=4"], D, &[]).unwrap_err();
        assert_eq!(e, ArgError::UnknownKey("thread".to_string()));
        assert!(e.to_string().contains("unknown key"));
    }

    #[test]
    fn malformed_and_bad_values_rejected() {
        assert_eq!(
            ExperimentArgs::from_iter(["runs"], D, &[]).unwrap_err(),
            ArgError::Malformed("runs".to_string())
        );
        assert!(matches!(
            ExperimentArgs::from_iter(["runs=many"], D, &[]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            ExperimentArgs::from_iter(["threads=0"], D, &[]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            ExperimentArgs::from_iter(["runs=0"], D, &[]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert!(matches!(
            ExperimentArgs::from_iter(["format=xml"], D, &[]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }
}
