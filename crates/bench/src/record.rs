//! Shared record/replay plumbing for the experiment binaries.
//!
//! The `record` binary (and `perf record=`) traces a seeded world into a
//! binary segment file; the `replay` binary (and `perf replay=`) feeds
//! such a file back through a [`SynthesisSession`]. Both sides construct
//! the world the same way from the same parameters, carried inside the
//! file as its meta frame ([`RecordMeta`]) — so a replayed file knows how
//! to rebuild its own live twin for equivalence checking.

use rtms_core::{Dag, SynthesisSession};
use rtms_ros2::{QosSpec, Ros2World, WorldBuilder};
use rtms_trace::{CodecError, Nanos, SegmentFileStats, SegmentReader, SegmentWriter};
use rtms_workloads::{generate_app, GeneratorConfig, WorldProfile};
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::Path;

/// The parameters a recording was produced with, stored as the segment
/// file's meta frame (as JSON). Enough to rebuild the identical world:
/// the bench worlds are fully determined by `(apps, seed, profile)` and
/// the run by `(secs, segment_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Simulated seconds recorded.
    pub secs: u64,
    /// Number of generated applications co-deployed.
    pub apps: u64,
    /// World seed.
    pub seed: u64,
    /// Segment length in simulated milliseconds.
    pub segment_ms: u64,
    /// World construction recipe. Omitted from the JSON when standard,
    /// so recordings of standard worlds keep the exact meta bytes older
    /// readers pinned — and frames written before profiles existed parse
    /// as standard.
    pub profile: WorldProfile,
}

// Manual impls (the vendored serde derive has no `default` /
// `skip_serializing_if`): the profile field is optional on the wire.
impl Serialize for RecordMeta {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("secs".to_string(), self.secs.to_value()),
            ("apps".to_string(), self.apps.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("segment_ms".to_string(), self.segment_ms.to_value()),
        ];
        if !self.profile.is_standard() {
            fields.push(("profile".to_string(), self.profile.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for RecordMeta {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = serde::expect_object(v)?;
        Ok(RecordMeta {
            secs: u64::from_value(serde::expect_field(obj, "secs")?)?,
            apps: u64::from_value(serde::expect_field(obj, "apps")?)?,
            seed: u64::from_value(serde::expect_field(obj, "seed")?)?,
            segment_ms: u64::from_value(serde::expect_field(obj, "segment_ms")?)?,
            profile: match obj.iter().find(|(k, _)| k == "profile") {
                Some((_, v)) => WorldProfile::from_value(v)?,
                None => WorldProfile::Standard,
            },
        })
    }
}

impl RecordMeta {
    /// Serializes to the JSON stored in the meta frame.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("meta serializes")
    }

    /// Parses a meta frame written by [`RecordMeta::to_json`].
    pub fn from_json(json: &str) -> Option<RecordMeta> {
        serde_json::from_str(json).ok()
    }
}

/// The standard bench world: `apps` generated applications on a 4-CPU
/// machine, fully determined by `(apps, seed)`. Shared by `perf`,
/// `record`, and `replay` so a recorded file's live twin is exactly the
/// world the recording came from.
pub fn bench_world(apps: u64, seed: u64) -> Ros2World {
    bench_world_profiled(apps, seed, WorldProfile::Standard)
}

/// [`bench_world`] under a scenario [`WorldProfile`]: multi-threaded
/// executors, degraded QoS, or bursty publishers. The standard profile is
/// exactly the classic bench world.
pub fn bench_world_profiled(apps: u64, seed: u64, profile: WorldProfile) -> Ros2World {
    let config = match profile {
        WorldProfile::Standard | WorldProfile::Lossy => GeneratorConfig::default(),
        WorldProfile::MultiThreaded => GeneratorConfig::multi_threaded(),
        WorldProfile::Bursty => GeneratorConfig::bursty(),
    };
    let mut b = WorldBuilder::new(4).seed(seed);
    if profile == WorldProfile::Lossy {
        b = b.qos(QosSpec {
            drop_prob: 0.15,
            reorder_bound: 2,
            jitter: Nanos::from_micros(200),
        });
    }
    for i in 0..apps {
        b = b.app(generate_app(seed.wrapping_add(1000 + i), &config));
    }
    b.build().expect("generated apps deploy")
}

/// Records the world described by `meta` into a segment file at `path`.
///
/// # Errors
///
/// Returns the first encode or I/O error.
pub fn record_to_file(path: impl AsRef<Path>, meta: RecordMeta) -> Result<SegmentFileStats, CodecError> {
    let mut world = bench_world_profiled(meta.apps, meta.seed, meta.profile);
    let mut writer = SegmentWriter::create(path)?;
    writer.set_meta(&meta.to_json())?;
    world.record_segments(
        &mut writer,
        Nanos::from_secs(meta.secs),
        Nanos::from_millis(meta.segment_ms),
    )?;
    let (_, stats) = writer.finish()?;
    Ok(stats)
}

/// What a replay produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The synthesized model.
    pub model: Dag,
    /// Segments replayed.
    pub segments: usize,
    /// Events replayed.
    pub events: u64,
    /// The file's recording parameters, if its meta frame parses.
    pub meta: Option<RecordMeta>,
}

/// Replays a recorded segment file into a fresh [`SynthesisSession`] and
/// returns the synthesized model.
///
/// # Errors
///
/// Returns the first decode or I/O error.
pub fn replay_path(path: impl AsRef<Path>) -> Result<ReplayOutcome, CodecError> {
    let mut reader = SegmentReader::open(path)?;
    let mut session = SynthesisSession::new();
    let segments = session.feed_reader(&mut reader)?;
    Ok(ReplayOutcome {
        model: session.model(),
        segments,
        events: session.events_fed(),
        meta: reader.meta().and_then(RecordMeta::from_json),
    })
}

/// Synthesizes the model of `meta`'s world live (trace and feed, no
/// file), for byte-identical comparison against a replayed model.
pub fn live_model(meta: RecordMeta) -> Dag {
    let mut world = bench_world_profiled(meta.apps, meta.seed, meta.profile);
    let mut session = SynthesisSession::new();
    world.trace_segments(
        Nanos::from_secs(meta.secs),
        Nanos::from_millis(meta.segment_ms),
        |segment| session.feed_segment(segment),
    );
    session.model()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_through_json() {
        let meta =
            RecordMeta { secs: 2, apps: 2, seed: 7, segment_ms: 250, profile: WorldProfile::Standard };
        assert_eq!(RecordMeta::from_json(&meta.to_json()), Some(meta));
        assert_eq!(RecordMeta::from_json("not json"), None);
    }

    #[test]
    fn standard_meta_bytes_and_legacy_frames_are_stable() {
        // A standard recording's meta frame must not mention the profile
        // at all (older files are byte-identical), and frames written
        // before profiles existed must parse as standard.
        let meta =
            RecordMeta { secs: 1, apps: 1, seed: 3, segment_ms: 250, profile: WorldProfile::Standard };
        assert!(!meta.to_json().contains("profile"), "{}", meta.to_json());
        let legacy = r#"{"secs":1,"apps":1,"seed":3,"segment_ms":250}"#;
        assert_eq!(RecordMeta::from_json(legacy), Some(meta));

        let mt = RecordMeta { profile: WorldProfile::MultiThreaded, ..meta };
        assert!(mt.to_json().contains("multi-threaded"), "{}", mt.to_json());
        assert_eq!(RecordMeta::from_json(&mt.to_json()), Some(mt));
    }

    #[test]
    fn profiled_worlds_record_and_replay_byte_identically() {
        let dir = std::env::temp_dir()
            .join(format!("rtms-bench-profiled-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for (i, profile) in
            [WorldProfile::MultiThreaded, WorldProfile::Lossy, WorldProfile::Bursty]
                .into_iter()
                .enumerate()
        {
            let path = dir.join(format!("p{i}.seg"));
            let meta = RecordMeta { secs: 1, apps: 1, seed: 41 + i as u64, segment_ms: 250, profile };
            record_to_file(&path, meta).expect("record");
            let outcome = replay_path(&path).expect("replay");
            assert_eq!(outcome.meta, Some(meta));
            assert_eq!(
                serde_json::to_string(&outcome.model).expect("ser"),
                serde_json::to_string(&live_model(meta)).expect("ser"),
                "{profile:?}: replayed model must be byte-identical to the live one"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_then_replay_matches_live() {
        let dir = std::env::temp_dir()
            .join(format!("rtms-bench-record-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.seg");
        let meta =
            RecordMeta { secs: 1, apps: 1, seed: 3, segment_ms: 250, profile: WorldProfile::Standard };
        let stats = record_to_file(&path, meta).expect("record");
        assert!(stats.segments > 0);
        assert!(stats.events > 0);

        let outcome = replay_path(&path).expect("replay");
        assert_eq!(outcome.meta, Some(meta));
        assert_eq!(outcome.events, stats.events);
        assert_eq!(outcome.segments, stats.segments);
        let live = live_model(meta);
        assert_eq!(
            serde_json::to_string(&outcome.model).expect("ser"),
            serde_json::to_string(&live).expect("ser"),
            "replayed model must be byte-identical to the live one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
