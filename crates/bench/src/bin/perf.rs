//! Perf baseline: throughput of the trace→synthesis pipeline over a fixed
//! scenario matrix, as a machine-readable record of the repo's speed.
//!
//! Each scenario co-deploys `apps` generated applications (seeded, so the
//! matrix is identical across machines and commits) and measures, in
//! events per wall-clock second:
//!
//! - **collect** — segmented trace collection only
//!   ([`Ros2World::trace_segments_sequential`] into a dropped segment);
//! - **synthesize** — feeding pre-collected segments through a
//!   [`SynthesisSession`] and reading the model;
//! - **end-to-end** — the full pipeline ([`Ros2World::trace_segments`],
//!   which overlaps collection and synthesis when a second core exists);
//! - **replay** — decoding a recorded binary segment file (see
//!   `docs/TRACE_FORMAT.md`) and synthesizing from it, the
//!   record-once/analyze-many path. Replay skips the simulation
//!   entirely, so its throughput over the e2e number
//!   (`replay_over_e2e`) is the payoff of recording a run.
//!
//! ## Replay columns (bench_format ≥ 2)
//!
//! Three report fields describe the record/replay economics; they are
//! documented here and in docs/EXPERIMENTS.md ("Reading the replay
//! columns"), which cross-links back:
//!
//! - `replay_events_per_sec` / `default_replay_events_per_sec` — events
//!   per second synthesizing from the recorded file (decode + feed,
//!   fastest of ≥5 reps).
//! - `encoded_bytes` — size of the recorded segment file for the
//!   scenario, i.e. what a stored run costs on disk (about 9 B/event).
//! - `replay_over_e2e` — `default_replay / default_e2e`. CI fails if
//!   this ratio drops below **1.5**: replaying a recording must stay
//!   decisively faster than re-simulating, or recording loses its point.
//!
//! ## Fleet columns (bench_format ≥ 4)
//!
//! The report's `fleet` object tracks the sharded multi-tenant ingestion
//! service (`rtms-fleet`, see docs/FLEET.md) on a fixed small scenario —
//! 64 tenants (4 faulted) on 2 shards:
//!
//! - `fleet_events_per_sec` — aggregate ingestion throughput across all
//!   shards. CI fails if this drops more than 2x below the committed
//!   baseline, like the e2e column.
//! - `fleet_p50_ingest_us` / `fleet_p99_ingest_us` — ingest-to-model
//!   latency percentiles (producer handoff → shard has folded the
//!   segment into the tenant's model and judged it). Informational.
//! - `fleet_dedup_ratio` — alerts per distinct cause in the cross-tenant
//!   rollup; gated above 1 (the faulted tenants share one faulty image,
//!   so causes must collapse).
//!
//! ## Scheduler columns (bench_format ≥ 5)
//!
//! The report's `sim` object profiles the discrete-event scheduler alone:
//! the default scenario's world is run bare — tracers never started — and
//! the engine's own [`rtms_sched::SimStats`] counters are reported next
//! to the wall-clock event rate:
//!
//! - `sim_events_per_sec` — bare simulation throughput (fastest of
//!   [`REPS`]), the ceiling the collect column can approach.
//! - `events`, `heap_pushes`, `switches` — totals for the run.
//! - `stale_pop_ratio` — `stale_pops / events`, heap churn from
//!   invalidated slice checks. **Gated in CI** (≤ 0.05): a regression
//!   here means timer-slot invalidation stopped working and the heap is
//!   filling with dead events again.
//! - `rebalance_skip_ratio` — share of scheduling passes the dirty gate
//!   skipped; `slice_arms` / `slice_suppressed` account the slice-check
//!   suppression the same way. Informational.
//!
//! ## Allocation probe (bench_format ≥ 3)
//!
//! The report's `alloc_probe` object proves the recycled-slab segment
//! transport allocates nothing in steady state. The bench binary installs
//! a counting global allocator (thread-local counters, so threads don't
//! contaminate each other) and runs the default scenario through the
//! pipelined path with a consumer that only inspects segments:
//!
//! - `transport_allocs_steady` — allocations on the consumer/transport
//!   thread between the first and last segment: sort, hand-back, slab
//!   recycle. **Gated at exactly 0 in CI.**
//! - `feeding_allocs_per_segment` — informational: the same path with a
//!   live `SynthesisSession` consuming events. Synthesis legitimately
//!   allocates (its per-write tables grow with the model), so this is
//!   reported, not gated; see "Pipeline internals" in
//!   docs/PERFORMANCE.md for the scoping argument.
//!
//! Every timed phase runs several times and reports its fastest run
//! (see [`REPS`]) so the columns — and the ratios between them — stay
//! meaningful on a noisy shared machine.
//!
//! A harness sweep additionally reports multi-run aggregate throughput at
//! 1 and `threads` worker threads. `out=<path>` writes the JSON report to
//! a file — `out=BENCH_9.json` at the repo root is the committed baseline
//! this PR's CI gate compares against (see docs/PERFORMANCE.md).
//!
//! `record=<path>` and `replay=<path>` short-circuit the matrix: the
//! former records the default scenario to a segment file, the latter
//! measures replay throughput from such a file — together they give the
//! same numbers as the matrix's replay column, but against a real
//! on-disk file.
//!
//! Usage: `cargo run --release -p rtms-bench --bin perf -- [secs=2]
//! [apps=2] [seed=0] [threads=N] [segment_ms=250] [out=path]
//! [record=path] [replay=path] [format=text|json]`

use rtms_bench::{record_to_file, replay_path, Defaults, ExperimentArgs, Harness, RecordMeta};
use rtms_core::SynthesisSession;
use rtms_ros2::{Ros2World, WorldBuilder};
use rtms_trace::{Nanos, SegmentReader, SegmentWriter, TraceSegment};
use rtms_workloads::{generate_app, GeneratorConfig};
use serde::Serialize;
use std::time::Instant;

/// A [`std::alloc::System`] wrapper that counts allocations per thread.
/// The counters are thread-local so the probe can attribute allocations
/// to the pipeline's consumer thread alone — the producer thread runs the
/// simulation, whose state (ground-truth log, DDS queues) legitimately
/// grows with the run.
struct CountingAlloc;

thread_local! {
    /// Allocation events (alloc + realloc) on this thread. `const`
    /// initialization keeps the TLS access itself allocation-free.
    static THREAD_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

// SAFETY: pure pass-through to `System`; the only addition is bumping a
// thread-local counter, which cannot allocate or unwind.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: std::alloc::Layout,
        new_size: usize,
    ) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation events so far on the calling thread.
fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(std::cell::Cell::get)
}

/// Segment lengths of the scenario matrix, in simulated milliseconds.
const SEGMENT_MS: [u64; 2] = [50, 250];

#[derive(Serialize)]
struct Scenario {
    name: String,
    apps: u64,
    segment_ms: u64,
    events: u64,
    segments: usize,
    collect_events_per_sec: f64,
    synthesize_events_per_sec: f64,
    e2e_events_per_sec: f64,
    replay_events_per_sec: f64,
    encoded_bytes: u64,
    peak_watermark: usize,
    model_vertices: usize,
}

#[derive(Serialize)]
struct HarnessSweep {
    threads: usize,
    runs: usize,
    events: u64,
    events_per_sec: f64,
}

/// Result of the steady-state allocation probe (see the module docs).
#[derive(Serialize)]
struct AllocProbe {
    /// Segments the probe run produced.
    segments: u64,
    /// Consumer-thread allocations between the first and last segment of
    /// a transport-only run (sort + hand-back + slab recycle). The CI
    /// gate requires exactly 0: steady state must run entirely on
    /// recycled slabs.
    transport_allocs_steady: u64,
    /// Consumer-thread allocations over the whole transport-only run,
    /// including thread startup and the first segment. Informational.
    transport_allocs_total: u64,
    /// Consumer-thread allocations per segment when a live
    /// `SynthesisSession` consumes the events — includes the synthesis
    /// state machine's own (legitimate, model-growth) allocations.
    /// Informational, not gated.
    feeding_allocs_per_segment: f64,
}

/// Scheduler-core columns (see the module docs): the default scenario's
/// world run bare, with the engine's own work counters.
#[derive(Serialize)]
struct SimPerf {
    /// Heap events popped over the run.
    events: u64,
    heap_pushes: u64,
    /// Popped events that were already invalidated. The ratio below is
    /// the gated form.
    stale_pops: u64,
    slice_arms: u64,
    slice_suppressed: u64,
    rebalance_runs: u64,
    rebalance_skipped: u64,
    switches: u64,
    /// `stale_pops / events`; gated ≤ 0.05 in CI.
    stale_pop_ratio: f64,
    /// `rebalance_skipped / (runs + skipped)` — the dirty gate's hit rate.
    rebalance_skip_ratio: f64,
    /// Bare-simulation throughput, fastest of [`REPS`] runs.
    sim_events_per_sec: f64,
}

/// Fleet-service columns (see the module docs): the fixed 64-tenant
/// scenario's throughput, latency percentiles, and rollup dedup ratio.
#[derive(Serialize)]
struct FleetPerf {
    tenants: usize,
    shards: usize,
    faults: usize,
    events: u64,
    /// Aggregate ingestion throughput; gated in CI against the committed
    /// baseline with the same 2x slack as the e2e column.
    fleet_events_per_sec: f64,
    fleet_p50_ingest_us: f64,
    fleet_p99_ingest_us: f64,
    alerts: u64,
    /// Alerts per distinct rollup cause; gated > 1 in CI.
    fleet_dedup_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    bench_format: u32,
    secs: u64,
    apps: u64,
    seed: u64,
    threads: usize,
    scenarios: Vec<Scenario>,
    harness: Vec<HarnessSweep>,
    /// Throughput of the default scenario (`apps` apps, 250 ms segments),
    /// end-to-end — the single number the CI regression gate tracks.
    default_e2e_events_per_sec: f64,
    /// Replay throughput of the default scenario: decoding its recorded
    /// segment file and synthesizing from it.
    default_replay_events_per_sec: f64,
    /// `default_replay / default_e2e` — how much faster re-analyzing a
    /// recorded run is than collecting and synthesizing it live.
    replay_over_e2e: f64,
    /// Steady-state allocation counts for the pipelined segment
    /// transport; `transport_allocs_steady` is gated at 0 in CI.
    alloc_probe: AllocProbe,
    /// Bare scheduler profile of the default scenario (bench_format ≥ 5);
    /// `stale_pop_ratio` is gated in CI.
    sim: SimPerf,
    /// Sharded multi-tenant ingestion service columns (bench_format ≥ 4).
    fleet: FleetPerf,
}

fn world(apps: u64, seed: u64) -> Ros2World {
    let mut b = WorldBuilder::new(4).seed(seed);
    for i in 0..apps {
        b = b.app(generate_app(seed.wrapping_add(1000 + i), &GeneratorConfig::default()));
    }
    b.build().expect("generated apps deploy")
}

/// Repetitions per timed phase. Every phase reports its *fastest* run:
/// on a shared machine timing noise is strictly additive, so the minimum
/// is the least-contaminated sample, and taking it symmetrically for
/// every column keeps ratios between columns meaningful.
const REPS: usize = 3;

fn run_scenario(apps: u64, segment_ms: u64, args: &ExperimentArgs) -> Scenario {
    let duration = args.duration();
    let seg_len = Nanos::from_millis(segment_ms);

    // Collection only: segments are produced, sorted, and dropped. The
    // world is rebuilt per rep (tracing consumes it) outside the timer.
    let mut collect_secs = f64::INFINITY;
    let mut collected = 0u64;
    for _ in 0..REPS {
        let mut w = world(apps, args.seed());
        collected = 0;
        let t = Instant::now();
        w.trace_segments_sequential(duration, seg_len, |segment| {
            collected += segment.len() as u64;
        });
        collect_secs = collect_secs.min(t.elapsed().as_secs_f64());
    }

    // Synthesis only, over pre-collected segments of a fresh identical
    // world (same seed => same trace).
    let mut w = world(apps, args.seed());
    let mut segments: Vec<TraceSegment> = Vec::new();
    w.trace_segments_sequential(duration, seg_len, |segment| {
        segments.push(std::mem::take(segment));
    });
    let events: u64 = segments.iter().map(|s| s.len() as u64).sum();
    assert_eq!(collected, events, "same seed must produce the same trace");
    let mut synth_secs = f64::INFINITY;
    let mut session = SynthesisSession::new();
    let mut model = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let mut s = SynthesisSession::new();
        for segment in &segments {
            s.feed_segment(segment);
        }
        let m = s.model();
        synth_secs = synth_secs.min(t.elapsed().as_secs_f64());
        session = s;
        model = Some(m);
    }
    let model = model.expect("REPS >= 1");

    // End to end: the adaptive pipeline into a fresh session. Feeding is
    // deliberately by reference — the owned path re-sorts the segment and
    // pays per-event `Arc` refcount churn when the moved events drop, and
    // measures slower; by-ref with `Arc<str>` payloads is already
    // clone-free.
    let mut e2e_secs = f64::INFINITY;
    for _ in 0..REPS {
        let mut w = world(apps, args.seed());
        let mut e2e_session = SynthesisSession::new();
        let t = Instant::now();
        w.trace_segments(duration, seg_len, |segment| {
            e2e_session.feed_segment(segment);
        });
        let e2e_model = e2e_session.model();
        e2e_secs = e2e_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(e2e_model, model, "pipelined model diverged from the sequential one");
    }

    // Replay: encode the pre-collected segments into an in-memory segment
    // file (not timed — that cost belongs to recording), then time
    // decode + synthesize from it.
    let mut writer = SegmentWriter::new(Vec::new()).expect("in-memory header");
    for segment in &segments {
        writer.write_segment(segment).expect("in-memory encode");
    }
    let (file, stats) = writer.finish().expect("in-memory finish");
    let mut replay_secs = f64::INFINITY;
    let mut replay_model = None;
    for _ in 0..REPS.max(5) {
        let t = Instant::now();
        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        let mut replay_session = SynthesisSession::new();
        replay_session.feed_reader(&mut reader).expect("replay decode");
        let m = replay_session.model();
        replay_secs = replay_secs.min(t.elapsed().as_secs_f64());
        replay_model = Some(m);
    }
    assert_eq!(
        replay_model.expect("at least one rep"),
        model,
        "replayed model diverged from the live one"
    );

    let eps = |secs: f64| events as f64 / secs.max(1e-12);
    Scenario {
        name: format!("apps{apps}_seg{segment_ms}"),
        apps,
        segment_ms,
        events,
        segments: session.segments_fed(),
        collect_events_per_sec: eps(collect_secs),
        synthesize_events_per_sec: eps(synth_secs),
        e2e_events_per_sec: eps(e2e_secs),
        replay_events_per_sec: eps(replay_secs),
        encoded_bytes: stats.bytes,
        peak_watermark: session.peak_watermark(),
        model_vertices: model.vertices().len(),
    }
}

/// Runs the default scenario through the pipelined segment transport
/// twice — once with an observing consumer, once with a live session —
/// and reports what the consumer thread allocated (see the module docs).
///
/// The thread-local counter starts at 0 on the freshly spawned consumer
/// thread, so the value at the *last* callback is the thread's lifetime
/// total, and the delta from the *first* callback is the steady-state
/// window: every sort, hand-back, and slab recycle between the first and
/// last segment. The gate requires that window to allocate nothing.
fn run_alloc_probe(apps: u64, args: &ExperimentArgs) -> AllocProbe {
    let duration = args.duration();
    let seg_len = Nanos::from_millis(250);

    // Transport-only pass: the consumer just observes each segment, so
    // every allocation the counter sees belongs to the transport itself.
    let mut w = world(apps, args.seed());
    let (mut segments, mut at_first, mut at_last) = (0u64, 0u64, 0u64);
    w.trace_segments_pipelined(duration, seg_len, |segment| {
        std::hint::black_box(segment.len());
        if segments == 0 {
            at_first = thread_allocs();
        }
        at_last = thread_allocs();
        segments += 1;
    });
    let transport_allocs_steady = at_last - at_first;
    let transport_allocs_total = at_last;

    // Feeding pass: same transport, but a live session consumes the
    // events — the per-segment rate here is synthesis' own allocation
    // appetite on top of the (zero-alloc) transport.
    let mut w = world(apps, args.seed());
    let mut session = SynthesisSession::new();
    let (mut fed, mut fed_first, mut fed_last) = (0u64, 0u64, 0u64);
    w.trace_segments_pipelined(duration, seg_len, |segment| {
        session.feed_segment(segment);
        if fed == 0 {
            fed_first = thread_allocs();
        }
        fed_last = thread_allocs();
        fed += 1;
    });
    let _ = session.model();

    AllocProbe {
        segments,
        transport_allocs_steady,
        transport_allocs_total,
        feeding_allocs_per_segment: (fed_last - fed_first) as f64 / fed.saturating_sub(1).max(1) as f64,
    }
}

/// Runs the default scenario's world bare — tracers never started — and
/// reports the scheduler engine's own work counters beside the wall-clock
/// event rate. The counters are identical across reps (the simulation is
/// deterministic); only the timing takes the fastest-of-[`REPS`] minimum.
fn run_sim_perf(apps: u64, args: &ExperimentArgs) -> SimPerf {
    let duration = args.duration();
    let mut best_secs = f64::INFINITY;
    let mut stats = rtms_sched::SimStats::default();
    for _ in 0..REPS {
        let mut w = world(apps, args.seed());
        w.announce_nodes();
        let t = Instant::now();
        w.run_for(duration);
        best_secs = best_secs.min(t.elapsed().as_secs_f64());
        stats = w.simulator().stats();
    }
    let passes = stats.rebalance_runs + stats.rebalance_skipped;
    SimPerf {
        events: stats.events,
        heap_pushes: stats.heap_pushes,
        stale_pops: stats.stale_pops,
        slice_arms: stats.slice_arms,
        slice_suppressed: stats.slice_suppressed,
        rebalance_runs: stats.rebalance_runs,
        rebalance_skipped: stats.rebalance_skipped,
        switches: stats.switches,
        stale_pop_ratio: stats.stale_pops as f64 / stats.events.max(1) as f64,
        rebalance_skip_ratio: stats.rebalance_skipped as f64 / passes.max(1) as f64,
        sim_events_per_sec: stats.events as f64 / best_secs.max(1e-12),
    }
}

/// Runs the fixed fleet scenario (64 tenants, 4 of them faulted, on 2
/// shards) and reports its throughput/latency/dedup columns. The fastest
/// of [`REPS`] runs is reported, like every other timed phase.
fn run_fleet_perf(args: &ExperimentArgs) -> FleetPerf {
    let mut config = rtms_fleet::FleetConfig::new(64, 2);
    config.faults = 4;
    config.secs = args.secs().max(1);
    config.seed = args.seed();
    let mut best: Option<rtms_fleet::FleetReport> = None;
    for _ in 0..REPS {
        let outcome = rtms_fleet::run(&config).expect("fleet perf scenario runs");
        let better = best
            .as_ref()
            .is_none_or(|b| outcome.report.events_per_sec > b.events_per_sec);
        if better {
            best = Some(outcome.report);
        }
    }
    let r = best.expect("REPS >= 1");
    FleetPerf {
        tenants: r.tenants,
        shards: r.shards,
        faults: r.faults,
        events: r.events,
        fleet_events_per_sec: r.events_per_sec,
        fleet_p50_ingest_us: r.p50_ingest_us,
        fleet_p99_ingest_us: r.p99_ingest_us,
        alerts: r.alerts,
        fleet_dedup_ratio: r.dedup_ratio,
    }
}

fn run_harness_sweep(threads: usize, args: &ExperimentArgs) -> HarnessSweep {
    let runs = 4;
    let apps = args.extra_u64("apps", 2);
    let seed = args.seed();
    let harness = Harness::new(runs, args.duration(), seed).threads(threads);
    let t = Instant::now();
    let events: u64 = harness
        .for_each_run(|plan| {
            let mut w = world(apps, plan.seed);
            let mut session = SynthesisSession::new();
            w.trace_segments(args.duration(), Nanos::from_millis(250), |segment| {
                session.feed_segment(segment);
            });
            let _ = session.model();
            session.events_fed()
        })
        .iter()
        .sum();
    let secs = t.elapsed().as_secs_f64();
    HarnessSweep { threads, runs, events, events_per_sec: events as f64 / secs.max(1e-12) }
}

/// `perf record=<path>`: records the default scenario to a segment file.
fn record_mode(path: &str, args: &ExperimentArgs) {
    let meta = RecordMeta {
        secs: args.secs(),
        apps: args.extra_u64("apps", 2).max(1),
        seed: args.seed(),
        segment_ms: args.extra_u64("segment_ms", 250).max(1),
        profile: Default::default(),
    };
    let t = Instant::now();
    let stats = record_to_file(path, meta).unwrap_or_else(|e| panic!("recording {path}: {e}"));
    println!(
        "recorded {} events in {} segments to {path} ({} bytes) in {:.3}s",
        stats.events,
        stats.segments,
        stats.bytes,
        t.elapsed().as_secs_f64()
    );
}

/// `perf replay=<path>`: measures replay throughput from a recorded file.
fn replay_mode(path: &str) {
    let t = Instant::now();
    let outcome = replay_path(path).unwrap_or_else(|e| panic!("replaying {path}: {e}"));
    let secs = t.elapsed().as_secs_f64();
    println!(
        "replayed {} events in {} segments from {path} in {:.4}s ({:.0} events/s)",
        outcome.events,
        outcome.segments,
        secs,
        outcome.events as f64 / secs.max(1e-12)
    );
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "perf [secs=2] [apps=2] [seed=0] [threads=N] [segment_ms=250] [out=path] [record=path] [replay=path] [format=text|json]",
        Defaults::single_run(2, 0),
        &["apps", "out", "record", "replay", "segment_ms"],
    );
    if let Some(path) = args.extra_string("record") {
        record_mode(&path, &args);
        return;
    }
    if let Some(path) = args.extra_string("replay") {
        replay_mode(&path);
        return;
    }
    let apps = args.extra_u64("apps", 2).max(1);
    let out = args.extra_string("out");

    eprintln!(
        "perf: scenario matrix over {} generated apps x {:?} ms segments, {}s each ...",
        apps,
        SEGMENT_MS,
        args.secs()
    );

    let mut scenarios = Vec::new();
    for a in [1, apps] {
        for seg in SEGMENT_MS {
            scenarios.push(run_scenario(a, seg, &args));
        }
        if apps == 1 {
            break; // apps=1 would duplicate the first row
        }
    }

    let mut harness = vec![run_harness_sweep(1, &args)];
    if args.threads() > 1 {
        harness.push(run_harness_sweep(args.threads(), &args));
    }

    let alloc_probe = run_alloc_probe(apps, &args);
    let sim = run_sim_perf(apps, &args);
    let fleet = run_fleet_perf(&args);

    let default_scenario = scenarios.iter().find(|s| s.apps == apps && s.segment_ms == 250);
    let default_e2e = default_scenario.map(|s| s.e2e_events_per_sec).unwrap_or_default();
    let default_replay = default_scenario.map(|s| s.replay_events_per_sec).unwrap_or_default();
    let report = Report {
        bench_format: 5,
        secs: args.secs(),
        apps,
        seed: args.seed(),
        threads: args.threads(),
        scenarios,
        harness,
        default_e2e_events_per_sec: default_e2e,
        default_replay_events_per_sec: default_replay,
        replay_over_e2e: default_replay / default_e2e.max(1e-12),
        alloc_probe,
        sim,
        fleet,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("perf: wrote {path}");
    }
    if args.json() {
        println!("{json}");
        return;
    }

    println!("Perf baseline: {} simulated seconds per scenario, seed {}", report.secs, report.seed);
    println!();
    println!(
        "scenario        events  collect ev/s  synthesize ev/s  end-to-end ev/s  replay ev/s  watermark"
    );
    for s in &report.scenarios {
        println!(
            "{:<14} {:>7}  {:>12.0}  {:>15.0}  {:>15.0}  {:>11.0}  {:>9}",
            s.name,
            s.events,
            s.collect_events_per_sec,
            s.synthesize_events_per_sec,
            s.e2e_events_per_sec,
            s.replay_events_per_sec,
            s.peak_watermark
        );
    }
    println!();
    for h in &report.harness {
        println!(
            "harness: {} runs at {} thread(s): {} events, {:.0} ev/s aggregate",
            h.runs, h.threads, h.events, h.events_per_sec
        );
    }
    println!();
    println!("default scenario end-to-end: {:.0} events/s", report.default_e2e_events_per_sec);
    println!(
        "default scenario replay: {:.0} events/s ({:.1}x end-to-end)",
        report.default_replay_events_per_sec, report.replay_over_e2e
    );
    println!(
        "alloc probe: {} consumer-thread allocs across {} steady-state segments ({} total incl. warmup; {:.1}/segment with live synthesis)",
        report.alloc_probe.transport_allocs_steady,
        report.alloc_probe.segments,
        report.alloc_probe.transport_allocs_total,
        report.alloc_probe.feeding_allocs_per_segment
    );
    println!(
        "sim: {:.0} bare events/s, {} events ({} pushes, {} stale pops = {:.4} ratio), {:.0}% rebalances skipped, {} slice arms / {} suppressed",
        report.sim.sim_events_per_sec,
        report.sim.events,
        report.sim.heap_pushes,
        report.sim.stale_pops,
        report.sim.stale_pop_ratio,
        report.sim.rebalance_skip_ratio * 100.0,
        report.sim.slice_arms,
        report.sim.slice_suppressed
    );
    println!(
        "fleet ({} tenants / {} shards, {} faulted): {:.0} events/s, P50 {:.0} us, P99 {:.0} us, dedup {:.2}",
        report.fleet.tenants,
        report.fleet.shards,
        report.fleet.faults,
        report.fleet.fleet_events_per_sec,
        report.fleet.fleet_p50_ingest_us,
        report.fleet.fleet_p99_ingest_us,
        report.fleet.fleet_dedup_ratio
    );
}
