//! Perf baseline: throughput of the trace→synthesis pipeline over a fixed
//! scenario matrix, as a machine-readable record of the repo's speed.
//!
//! Each scenario co-deploys `apps` generated applications (seeded, so the
//! matrix is identical across machines and commits) and measures, in
//! events per wall-clock second:
//!
//! - **collect** — segmented trace collection only
//!   ([`Ros2World::trace_segments_sequential`] into a dropped segment);
//! - **synthesize** — feeding pre-collected segments through a
//!   [`SynthesisSession`] and reading the model;
//! - **end-to-end** — the full pipeline ([`Ros2World::trace_segments`],
//!   which overlaps collection and synthesis when a second core exists).
//!
//! A harness sweep additionally reports multi-run aggregate throughput at
//! 1 and `threads` worker threads. `out=<path>` writes the JSON report to
//! a file — `out=BENCH_5.json` at the repo root is the committed baseline
//! this PR's CI gate compares against (see docs/PERFORMANCE.md).
//!
//! Usage: `cargo run --release -p rtms-bench --bin perf -- [secs=2]
//! [apps=2] [seed=0] [threads=N] [out=path] [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs, Harness};
use rtms_core::SynthesisSession;
use rtms_ros2::{Ros2World, WorldBuilder};
use rtms_trace::{Nanos, TraceSegment};
use rtms_workloads::{generate_app, GeneratorConfig};
use serde::Serialize;
use std::time::Instant;

/// Segment lengths of the scenario matrix, in simulated milliseconds.
const SEGMENT_MS: [u64; 2] = [50, 250];

#[derive(Serialize)]
struct Scenario {
    name: String,
    apps: u64,
    segment_ms: u64,
    events: u64,
    segments: usize,
    collect_events_per_sec: f64,
    synthesize_events_per_sec: f64,
    e2e_events_per_sec: f64,
    peak_watermark: usize,
    model_vertices: usize,
}

#[derive(Serialize)]
struct HarnessSweep {
    threads: usize,
    runs: usize,
    events: u64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    bench_format: u32,
    secs: u64,
    apps: u64,
    seed: u64,
    threads: usize,
    scenarios: Vec<Scenario>,
    harness: Vec<HarnessSweep>,
    /// Throughput of the default scenario (`apps` apps, 250 ms segments),
    /// end-to-end — the single number the CI regression gate tracks.
    default_e2e_events_per_sec: f64,
}

fn world(apps: u64, seed: u64) -> Ros2World {
    let mut b = WorldBuilder::new(4).seed(seed);
    for i in 0..apps {
        b = b.app(generate_app(seed.wrapping_add(1000 + i), &GeneratorConfig::default()));
    }
    b.build().expect("generated apps deploy")
}

fn run_scenario(apps: u64, segment_ms: u64, args: &ExperimentArgs) -> Scenario {
    let duration = args.duration();
    let seg_len = Nanos::from_millis(segment_ms);

    // Collection only: segments are produced, sorted, and dropped.
    let mut w = world(apps, args.seed());
    let t = Instant::now();
    let mut collected = 0u64;
    w.trace_segments_sequential(duration, seg_len, |segment| {
        collected += segment.len() as u64;
    });
    let collect_secs = t.elapsed().as_secs_f64();

    // Synthesis only, over pre-collected segments of a fresh identical
    // world (same seed => same trace).
    let mut w = world(apps, args.seed());
    let mut segments: Vec<TraceSegment> = Vec::new();
    w.trace_segments_sequential(duration, seg_len, |segment| segments.push(segment));
    let events: u64 = segments.iter().map(|s| s.len() as u64).sum();
    let t = Instant::now();
    let mut session = SynthesisSession::new();
    for segment in &segments {
        session.feed_segment(segment);
    }
    let model = session.model();
    let synth_secs = t.elapsed().as_secs_f64();

    // End to end: the adaptive pipeline into a fresh session. Feeding is
    // deliberately by reference — the owned path re-sorts the segment and
    // pays per-event `Arc` refcount churn when the moved events drop, and
    // measures slower; by-ref with `Arc<str>` payloads is already
    // clone-free.
    let mut w = world(apps, args.seed());
    let mut e2e_session = SynthesisSession::new();
    let t = Instant::now();
    w.trace_segments(duration, seg_len, |segment| {
        e2e_session.feed_segment(&segment);
    });
    let e2e_model = e2e_session.model();
    let e2e_secs = t.elapsed().as_secs_f64();
    assert_eq!(e2e_model, model, "pipelined model diverged from the sequential one");
    assert_eq!(collected, events, "same seed must produce the same trace");

    let eps = |secs: f64| events as f64 / secs.max(1e-12);
    Scenario {
        name: format!("apps{apps}_seg{segment_ms}"),
        apps,
        segment_ms,
        events,
        segments: session.segments_fed(),
        collect_events_per_sec: eps(collect_secs),
        synthesize_events_per_sec: eps(synth_secs),
        e2e_events_per_sec: eps(e2e_secs),
        peak_watermark: session.peak_watermark(),
        model_vertices: model.vertices().len(),
    }
}

fn run_harness_sweep(threads: usize, args: &ExperimentArgs) -> HarnessSweep {
    let runs = 4;
    let apps = args.extra_u64("apps", 2);
    let seed = args.seed();
    let harness = Harness::new(runs, args.duration(), seed).threads(threads);
    let t = Instant::now();
    let events: u64 = harness
        .for_each_run(|plan| {
            let mut w = world(apps, plan.seed);
            let mut session = SynthesisSession::new();
            w.trace_segments(args.duration(), Nanos::from_millis(250), |segment| {
                session.feed_segment(&segment);
            });
            let _ = session.model();
            session.events_fed()
        })
        .iter()
        .sum();
    let secs = t.elapsed().as_secs_f64();
    HarnessSweep { threads, runs, events, events_per_sec: events as f64 / secs.max(1e-12) }
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "perf [secs=2] [apps=2] [seed=0] [threads=N] [out=path] [format=text|json]",
        Defaults::single_run(2, 0),
        &["apps", "out"],
    );
    let apps = args.extra_u64("apps", 2).max(1);
    let out = args.extra_string("out");

    eprintln!(
        "perf: scenario matrix over {} generated apps x {:?} ms segments, {}s each ...",
        apps,
        SEGMENT_MS,
        args.secs()
    );

    let mut scenarios = Vec::new();
    for a in [1, apps] {
        for seg in SEGMENT_MS {
            scenarios.push(run_scenario(a, seg, &args));
        }
        if apps == 1 {
            break; // apps=1 would duplicate the first row
        }
    }

    let mut harness = vec![run_harness_sweep(1, &args)];
    if args.threads() > 1 {
        harness.push(run_harness_sweep(args.threads(), &args));
    }

    let default_e2e = scenarios
        .iter()
        .find(|s| s.apps == apps && s.segment_ms == 250)
        .map(|s| s.e2e_events_per_sec)
        .unwrap_or_default();
    let report = Report {
        bench_format: 1,
        secs: args.secs(),
        apps,
        seed: args.seed(),
        threads: args.threads(),
        scenarios,
        harness,
        default_e2e_events_per_sec: default_e2e,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    if let Some(path) = out {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("perf: wrote {path}");
    }
    if args.json() {
        println!("{json}");
        return;
    }

    println!("Perf baseline: {} simulated seconds per scenario, seed {}", report.secs, report.seed);
    println!();
    println!("scenario        events  collect ev/s  synthesize ev/s  end-to-end ev/s  watermark");
    for s in &report.scenarios {
        println!(
            "{:<14} {:>7}  {:>12.0}  {:>15.0}  {:>15.0}  {:>9}",
            s.name,
            s.events,
            s.collect_events_per_sec,
            s.synthesize_events_per_sec,
            s.e2e_events_per_sec,
            s.peak_watermark
        );
    }
    println!();
    for h in &report.harness {
        println!(
            "harness: {} runs at {} thread(s): {} events, {:.0} ev/s aggregate",
            h.runs, h.threads, h.events, h.events_per_sec
        );
    }
    println!();
    println!("default scenario end-to-end: {:.0} events/s", report.default_e2e_events_per_sec);
}
