//! Records a traced run to a binary segment file (see
//! `docs/TRACE_FORMAT.md`), or regenerates the committed replay corpus.
//!
//! Default mode traces the standard bench world (`apps` generated
//! applications, fully determined by `apps`/`seed`) for `secs` simulated
//! seconds in `segment_ms` segments and writes the segment file to
//! `out=`. The file carries its own recording parameters in a meta
//! frame, so `replay compare=live` can rebuild the identical world.
//!
//! `corpus=<dir>` instead records every case of the fixed corpus matrix
//! ([`rtms_workloads::CORPUS_CASES`]) into `<dir>` and writes a
//! `MANIFEST.json` with each case's parameters, file size, event count,
//! and synthesized-model digest. Run it against `tests/corpus/` only
//! when *intentionally* changing the wire format or synthesis semantics;
//! the corpus regression suite exists to make accidental changes loud.
//!
//! Usage: `cargo run --release -p rtms-bench --bin record --
//! out=run.seg [secs=2] [apps=2] [seed=0] [segment_ms=250]
//! [corpus=dir] [format=text|json]`

use rtms_bench::{record_to_file, replay_path, Defaults, ExperimentArgs, RecordMeta};
use rtms_workloads::{WorldProfile, CORPUS_CASES};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct RecordReport {
    path: String,
    secs: u64,
    apps: u64,
    seed: u64,
    segment_ms: u64,
    segments: usize,
    events: u64,
    bytes: u64,
    topics: usize,
    record_secs: f64,
    bytes_per_event: f64,
}

struct ManifestEntry {
    name: String,
    file: String,
    secs: u64,
    apps: u64,
    seed: u64,
    segment_ms: u64,
    /// World construction recipe; omitted for standard worlds so the
    /// manifest entries of pre-profile cases keep their exact bytes.
    profile: WorldProfile,
    segments: usize,
    events: u64,
    bytes: u64,
    /// FNV-1a 64 of the replayed model's canonical JSON, in hex.
    model_digest: String,
}

// Manual impl: the vendored serde derive cannot omit the profile field
// for standard worlds.
impl serde::Serialize for ManifestEntry {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("file".to_string(), self.file.to_value()),
            ("secs".to_string(), self.secs.to_value()),
            ("apps".to_string(), self.apps.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("segment_ms".to_string(), self.segment_ms.to_value()),
        ];
        if !self.profile.is_standard() {
            fields.push(("profile".to_string(), self.profile.to_value()));
        }
        fields.push(("segments".to_string(), self.segments.to_value()));
        fields.push(("events".to_string(), self.events.to_value()));
        fields.push(("bytes".to_string(), self.bytes.to_value()));
        fields.push(("model_digest".to_string(), self.model_digest.to_value()));
        serde::Value::Object(fields)
    }
}

fn record_one(path: &str, meta: RecordMeta) -> RecordReport {
    let t = Instant::now();
    let stats = record_to_file(path, meta).unwrap_or_else(|e| panic!("recording {path}: {e}"));
    let record_secs = t.elapsed().as_secs_f64();
    RecordReport {
        path: path.to_string(),
        secs: meta.secs,
        apps: meta.apps,
        seed: meta.seed,
        segment_ms: meta.segment_ms,
        segments: stats.segments,
        events: stats.events,
        bytes: stats.bytes,
        topics: stats.topics,
        record_secs,
        bytes_per_event: stats.bytes as f64 / (stats.events.max(1)) as f64,
    }
}

fn regenerate_corpus(dir: &str, args: &ExperimentArgs) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {dir}: {e}"));
    let mut manifest = Vec::new();
    for case in CORPUS_CASES {
        let file = case.file_name();
        let path = format!("{dir}/{file}");
        let meta = RecordMeta {
            secs: case.secs,
            apps: case.apps,
            seed: case.seed,
            segment_ms: case.segment_ms,
            profile: case.profile,
        };
        let report = record_one(&path, meta);
        let outcome = replay_path(&path).unwrap_or_else(|e| panic!("replaying {path}: {e}"));
        manifest.push(ManifestEntry {
            name: case.name.to_string(),
            file,
            secs: case.secs,
            apps: case.apps,
            seed: case.seed,
            segment_ms: case.segment_ms,
            profile: case.profile,
            segments: report.segments,
            events: report.events,
            bytes: report.bytes,
            model_digest: format!("{:016x}", outcome.model.digest()),
        });
        if !args.json() {
            println!(
                "{:<8} {:>6} events  {:>6} bytes  digest {}",
                case.name,
                report.events,
                report.bytes,
                manifest.last().expect("just pushed").model_digest
            );
        }
    }
    let json = serde_json::to_string(&manifest).expect("manifest serializes");
    let manifest_path = format!("{dir}/MANIFEST.json");
    std::fs::write(&manifest_path, format!("{json}\n"))
        .unwrap_or_else(|e| panic!("writing {manifest_path}: {e}"));
    if args.json() {
        println!("{json}");
    } else {
        println!("wrote {} cases to {dir}", manifest.len());
    }
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "record out=run.seg [secs=2] [apps=2] [seed=0] [segment_ms=250] [corpus=dir] [format=text|json]",
        Defaults::single_run(2, 0),
        &["apps", "out", "segment_ms", "corpus"],
    );

    if let Some(dir) = args.extra_string("corpus") {
        regenerate_corpus(&dir, &args);
        return;
    }

    let Some(out) = args.extra_string("out") else {
        eprintln!("error: record needs out=<path> (or corpus=<dir>)");
        std::process::exit(2);
    };
    let meta = RecordMeta {
        secs: args.secs(),
        apps: args.extra_u64("apps", 2).max(1),
        seed: args.seed(),
        segment_ms: args.extra_u64("segment_ms", 250).max(1),
        profile: Default::default(),
    };
    let report = record_one(&out, meta);
    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }
    println!(
        "recorded {} events in {} segments to {} ({} bytes, {:.1} B/event, {} topics) in {:.3}s",
        report.events,
        report.segments,
        report.path,
        report.bytes,
        report.bytes_per_event,
        report.topics,
        report.record_secs
    );
}
