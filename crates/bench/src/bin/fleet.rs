//! Fleet experiment: the sharded multi-tenant ingestion service of
//! `rtms-fleet` at configurable scale, with self-asserted correctness.
//!
//! `tenants` independently seeded application instances (rotating over
//! `images` generated images: standard / multi-threaded / bursty / city
//! presets) stream trace segments into `shards` shard workers through
//! per-producer SPSC lanes; each shard owns its tenants' synthesis
//! sessions, baselines, and monitors. The first `faults` tenants run one
//! shared faulty image (two injected faults activating right after the
//! baseline phase), the realistic bad-rollout shape the cross-tenant
//! alert rollup is built to collapse.
//!
//! Reported: aggregate ingestion throughput (events/s), P50/P99
//! ingest-to-model latency, alert throughput, the rollup's dedup ratio,
//! fleet model size, and the memory watermarks (session event-equivalents,
//! baseline bytes, retained monitor episodes).
//!
//! Self-asserted, exiting non-zero on violation:
//!
//! - every fault-free tenant stays silent (zero alerts);
//! - with `faults >= 1`, every faulted tenant's recall is exactly 1.0;
//! - with `faults >= 2`, the rollup collapses repeated causes
//!   (dedup ratio > 1).
//!
//! Usage: `cargo run --release -p rtms-bench --bin fleet --
//! [tenants=64] [shards=2] [producers=shards] [images=4] [faults=0]
//! [secs=2] [segment_ms=500] [seed=0] [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_fleet::{per_tenant_recall, FleetConfig, FleetOutcome, TenantDirectory};
use serde::Serialize;

#[derive(Serialize)]
struct FleetJson {
    report: rtms_fleet::FleetReport,
    rollup: rtms_monitor::AlertRollup,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "fleet [tenants=64] [shards=2] [producers=shards] [images=4] [faults=0] [secs=2] [segment_ms=500] [seed=0] [format=text|json]",
        Defaults::single_run(2, 0),
        &["tenants", "shards", "producers", "images", "faults", "segment_ms"],
    );
    let shards = args.extra_u64("shards", 2).max(1) as usize;
    let mut config = FleetConfig::new(args.extra_u64("tenants", 64).max(1) as usize, shards);
    config.producers = args.extra_u64("producers", shards as u64).max(1) as usize;
    config.images = args.extra_u64("images", 4).max(1) as usize;
    config.faults = args.extra_u64("faults", 0) as usize;
    config.secs = args.secs();
    config.segment_ms = args.extra_u64("segment_ms", 500).max(1);
    config.seed = args.seed();

    eprintln!(
        "fleet: {} tenants ({} faulted) x {}s on {} shards / {} producers ...",
        config.tenants, config.faulted_tenants(), config.secs, config.shards, config.producers
    );
    let outcome = rtms_fleet::run(&config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    assert_contract(&config, &outcome);

    let report = &outcome.report;
    if args.json() {
        let json = serde_json::to_string(&FleetJson {
            report: report.clone(),
            rollup: outcome.rollup.clone(),
        })
        .expect("fleet report serializes");
        println!("{json}");
        return;
    }

    println!(
        "Fleet: {} tenants ({} faulted, {} images) on {} shards, {} producers, {}x{} ms segments",
        report.tenants,
        report.faults,
        config.images,
        report.shards,
        report.producers,
        report.segments / report.tenants.max(1) as u64,
        config.segment_ms,
    );
    println!();
    println!(
        "ingest: {} events in {} segments over {:.2}s wall = {:.0} events/s",
        report.events, report.segments, report.wall_secs, report.events_per_sec
    );
    println!(
        "latency (ingest-to-model): P50 {:.0} us, P99 {:.0} us",
        report.p50_ingest_us, report.p99_ingest_us
    );
    println!(
        "alerts: {} raised ({:.1}/s), {} distinct causes, dedup ratio {:.2}",
        report.alerts, report.alerts_per_sec, report.distinct_causes, report.dedup_ratio
    );
    println!(
        "detection: recall {:.3} over {} faulted tenants, {} alerts from healthy tenants",
        report.recall, report.faults, report.healthy_alerts
    );
    println!(
        "memory: session watermark {} event-equivalents, baselines {} bytes peak, {} retained episodes peak",
        report.peak_session_watermark, report.peak_baseline_bytes, report.peak_retained_episodes
    );
    println!(
        "fleet model: {} vertices, {} edges",
        report.model_vertices, report.model_edges
    );
    if !outcome.rollup.entries.is_empty() {
        println!();
        println!("rollup (ranked):");
        for e in &outcome.rollup.entries {
            println!(
                "  [{:?}] {} x{} across {} tenants (exemplar: tenant {}): {}",
                e.severity, e.kind, e.alerts, e.tenants, e.exemplar_tenant, e.cause
            );
        }
    }
}

/// The fleet detection contract, mirrored from the `monitoring`
/// experiment's self-assertions: silence on healthy tenants, full recall
/// on faulted ones, and a collapsing rollup once a cause repeats.
fn assert_contract(config: &FleetConfig, outcome: &FleetOutcome) {
    let report = &outcome.report;
    assert_eq!(
        report.healthy_alerts, 0,
        "fault-free tenants must stay silent, saw {} alerts",
        report.healthy_alerts
    );
    if config.faulted_tenants() > 0 {
        let dir = TenantDirectory::new(config);
        for (tenant, recall) in per_tenant_recall(&dir, config.plan().segment, &outcome.alerts) {
            assert_eq!(recall, 1.0, "tenant {tenant}: recall {recall} < 1.0");
        }
        assert_eq!(report.recall, 1.0, "fleet recall {} < 1.0", report.recall);
    }
    if config.faulted_tenants() >= 2 {
        assert!(
            report.dedup_ratio > 1.0,
            "{} faulted tenants share one faulty image, so the rollup must collapse \
             repeated causes (dedup ratio {} <= 1)",
            config.faulted_tenants(),
            report.dedup_ratio
        );
    }
}
