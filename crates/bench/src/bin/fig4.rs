//! Regenerates Fig. 4: the evolution of mWCET/mACET/mBCET estimates for
//! cb1 (filter_rear), cb2 (filter_front), cb5 (voxel_grid) and cb6
//! (localizer) as DAGs from more runs are merged.
//!
//! Usage: `cargo run -p rtms-bench --bin fig4 [runs=50] [secs=80] [seed=7]`

use rtms_bench::{arg_u64, avp_vertex_key, parse_args};
use rtms_core::ConvergenceSeries;
use rtms_trace::Nanos;
use rtms_workloads::synthesize_runs;

fn main() {
    let args = parse_args();
    let runs = arg_u64(&args, "runs", 50) as usize;
    let secs = arg_u64(&args, "secs", 80);
    let seed = arg_u64(&args, "seed", 7);

    eprintln!("simulating {runs} runs x {secs}s of AVP + SYN ...");
    let dags = synthesize_runs(runs, Nanos::from_secs(secs), seed);

    println!("Fig. 4: estimation of timing attributes improves with more traces");
    println!("        ({runs} runs x {secs}s; values in ms)");
    for (cb, label) in [
        ("cb6", "localizer (cb6)"),
        ("cb2", "filter_front (cb2)"),
        ("cb1", "filter_rear (cb1)"),
        ("cb5", "voxel_grid (cb5)"),
    ] {
        let key = avp_vertex_key(&dags[0], cb).expect("vertex in first run");
        let series = ConvergenceSeries::track(&key, &dags);
        println!();
        println!("--- {label} ---");
        println!("{:>5}{:>12}{:>12}{:>12}", "runs", "mBCET", "mACET", "mWCET");
        for (run, b, a, w) in &series.points {
            println!(
                "{:>5}{:>12.2}{:>12.2}{:>12.2}",
                run,
                b.as_millis_f64(),
                a.as_millis_f64(),
                w.as_millis_f64()
            );
        }
        match series.mwcet_stabilizes_at() {
            Some(run) => {
                let first = series.points.first().expect("points").3.as_millis_f64();
                let last = series.points.last().expect("points").3.as_millis_f64();
                println!(
                    "mWCET stabilizes after run {run} ({:.1}% above the run-1 estimate)",
                    (last - first) / first * 100.0
                );
            }
            None => println!("mWCET did not stabilize within {runs} runs"),
        }
    }
}
