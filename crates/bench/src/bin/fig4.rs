//! Regenerates Fig. 4: the evolution of mWCET/mACET/mBCET estimates for
//! cb1 (filter_rear), cb2 (filter_front), cb5 (voxel_grid) and cb6
//! (localizer) as DAGs from more runs are merged.
//!
//! Usage: `cargo run -p rtms-bench --bin fig4 -- [runs=50] [secs=80]
//! [seed=0] [threads=N] [format=text|json]`

use rtms_bench::{avp_vertex_key, Defaults, ExperimentArgs, Harness};
use rtms_core::ConvergenceSeries;
use rtms_workloads::{case_study_run_conditions, case_study_world_for_run};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    runs: usize,
    mbcet_ms: f64,
    macet_ms: f64,
    mwcet_ms: f64,
}

#[derive(Serialize)]
struct Series {
    cb: String,
    label: String,
    points: Vec<Point>,
    mwcet_stabilizes_at_run: Option<usize>,
}

#[derive(Serialize)]
struct Report {
    runs: usize,
    secs: u64,
    seed: u64,
    series: Vec<Series>,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "fig4 [runs=50] [secs=80] [seed=0] [threads=N] [format=text|json]",
        Defaults { runs: 50, secs: 80, seed: 0 },
        &[],
    );

    eprintln!(
        "simulating {} runs x {}s of AVP + SYN on {} threads ...",
        args.runs(),
        args.secs(),
        args.threads()
    );
    let conditions = case_study_run_conditions(args.runs(), args.seed());
    let dags = Harness::from_args(&args)
        .dags(|plan| case_study_world_for_run(args.seed(), plan.index, conditions[plan.index]));

    let series: Vec<Series> = [
        ("cb6", "localizer (cb6)"),
        ("cb2", "filter_front (cb2)"),
        ("cb1", "filter_rear (cb1)"),
        ("cb5", "voxel_grid (cb5)"),
    ]
    .into_iter()
    .map(|(cb, label)| {
        let key = avp_vertex_key(&dags[0], cb).expect("vertex in first run");
        let tracked = ConvergenceSeries::track(&key, &dags);
        Series {
            cb: cb.to_string(),
            label: label.to_string(),
            points: tracked
                .points
                .iter()
                .map(|&(run, b, a, w)| Point {
                    runs: run,
                    mbcet_ms: b.as_millis_f64(),
                    macet_ms: a.as_millis_f64(),
                    mwcet_ms: w.as_millis_f64(),
                })
                .collect(),
            mwcet_stabilizes_at_run: tracked.mwcet_stabilizes_at(),
        }
    })
    .collect();

    let report = Report { runs: args.runs(), secs: args.secs(), seed: args.seed(), series };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!("Fig. 4: estimation of timing attributes improves with more traces");
    println!("        ({} runs x {}s; values in ms)", report.runs, report.secs);
    for s in &report.series {
        println!();
        println!("--- {} ---", s.label);
        println!("{:>5}{:>12}{:>12}{:>12}", "runs", "mBCET", "mACET", "mWCET");
        for p in &s.points {
            println!(
                "{:>5}{:>12.2}{:>12.2}{:>12.2}",
                p.runs, p.mbcet_ms, p.macet_ms, p.mwcet_ms
            );
        }
        match s.mwcet_stabilizes_at_run {
            Some(run) => {
                let first = s.points.first().expect("points").mwcet_ms;
                let last = s.points.last().expect("points").mwcet_ms;
                println!(
                    "mWCET stabilizes after run {run} ({:.1}% above the run-1 estimate)",
                    (last - first) / first * 100.0
                );
            }
            None => println!("mWCET did not stabilize within {} runs", report.runs),
        }
    }
}
