//! Ablation over the trace-processing options of Sec. V / Fig. 2:
//! (i) merge all traces, then synthesize one DAG; versus
//! (ii) synthesize a DAG per trace, then merge the DAGs (the paper's
//! choice). Both must agree on structure and on the pooled statistics.
//!
//! Usage: `cargo run -p rtms-bench --bin ablation_merge [runs=5] [secs=20] [seed=0]`

use rtms_bench::{arg_u64, avp_vertex_key, parse_args, structure_summary};
use rtms_core::{merge_dags, node_name_map, synthesize, synthesize_with_names};
use rtms_trace::{Nanos, Trace};
use rtms_workloads::case_study_world;

fn main() {
    let args = parse_args();
    let runs = arg_u64(&args, "runs", 5) as usize;
    let secs = arg_u64(&args, "secs", 20);
    let seed = arg_u64(&args, "seed", 0);

    eprintln!("simulating {runs} runs x {secs}s ...");
    let mut traces: Vec<Trace> = Vec::new();
    for i in 0..runs {
        let mut world = case_study_world(seed + i as u64, 1.0);
        traces.push(world.trace_run(Nanos::from_secs(secs)));
    }

    // Option (ii): DAG per trace, merge DAGs.
    let dag_per_run = merge_dags(traces.iter().map(synthesize));

    // Option (i): merge traces, synthesize once. Timestamps of different
    // runs overlap, which is exactly what happens when sessions share a
    // database; Algorithm 1 is per-PID and our PIDs coincide across runs,
    // so option (i) is only sound for *segments of the same run* — the
    // paper's option (iii) merges per-run traces first for that reason.
    // We therefore demonstrate option (i) on the segments of ONE run.
    let mut world = case_study_world(seed + 999, 1.0);
    world.announce_nodes();
    world.start_runtime_tracers();
    let mut seg_traces = Vec::new();
    for _ in 0..4 {
        world.run_for(Nanos::from_secs(secs / 4));
        seg_traces.push(world.collect_segment());
    }
    world.stop_runtime_tracers();
    let mut merged_trace = Trace::new();
    for s in &seg_traces {
        merged_trace.merge(s.clone());
    }
    let from_merged_trace = synthesize(&merged_trace);
    // Later segments carry no P1 events (TR_IN stopped after startup), so
    // the node-name map from the first segment travels with them.
    let names = node_name_map(&seg_traces[0]);
    let from_segments =
        merge_dags(seg_traces.iter().map(|t| synthesize_with_names(t, &names)));

    println!("Option (ii) DAG-per-run, merged over {runs} runs:");
    println!("  {}", structure_summary(&dag_per_run));
    println!();
    println!("Option (i) merge-traces-then-synthesize (4 segments of one run):");
    println!("  {}", structure_summary(&from_merged_trace));
    println!("Option (ii) on the same segments:");
    println!("  {}", structure_summary(&from_segments));
    println!();

    // Compare statistics for cb6 between the two options on one run.
    let key = avp_vertex_key(&from_merged_trace, "cb6").expect("cb6");
    let a = from_merged_trace
        .vertices()
        .iter()
        .find(|v| v.merge_key() == key)
        .expect("cb6 (i)");
    let b = from_segments
        .vertices()
        .iter()
        .find(|v| v.merge_key() == key)
        .expect("cb6 (ii)");
    println!("cb6, option (i):  {}", a.stats);
    println!("cb6, option (ii): {}", b.stats);
    println!(
        "options agree on structure: {}",
        from_merged_trace.vertices().len() == from_segments.vertices().len()
            && from_merged_trace.edges().len() == from_segments.edges().len()
    );
}
