//! Ablation over the trace-processing options of Sec. V / Fig. 2:
//! (i) merge all traces, then synthesize one DAG; versus
//! (ii) synthesize a DAG per trace, then merge the DAGs (the paper's
//! choice). Both must agree on structure and on the pooled statistics.
//!
//! Usage: `cargo run -p rtms-bench --bin ablation_merge -- [runs=5]
//! [secs=20] [seed=0] [threads=N] [format=text|json]`

use rtms_bench::{avp_vertex_key, structure_summary, Defaults, ExperimentArgs, Harness};
use rtms_core::{merge_dags, node_name_map, synthesize, synthesize_with_names};
use rtms_trace::{Nanos, Trace};
use rtms_workloads::case_study_world;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    runs: usize,
    secs: u64,
    seed: u64,
    dag_per_run_structure: String,
    merged_trace_structure: String,
    segment_dags_structure: String,
    cb6_stats_option_i: String,
    cb6_stats_option_ii: String,
    options_agree_on_structure: bool,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "ablation_merge [runs=5] [secs=20] [seed=0] [threads=N] [format=text|json]",
        Defaults { runs: 5, secs: 20, seed: 0 },
        &[],
    );
    let secs = args.secs();

    eprintln!(
        "simulating {} runs x {secs}s on {} threads ...",
        args.runs(),
        args.threads()
    );
    let traces =
        Harness::from_args(&args).traces(|plan| case_study_world(plan.seed, 1.0));

    // Option (ii): DAG per trace, merge DAGs.
    let dag_per_run = merge_dags(traces.iter().map(synthesize));

    // Option (i): merge traces, synthesize once. Timestamps of different
    // runs overlap, which is exactly what happens when sessions share a
    // database; Algorithm 1 is per-PID and our PIDs coincide across runs,
    // so option (i) is only sound for *segments of the same run* — the
    // paper's option (iii) merges per-run traces first for that reason.
    // We therefore demonstrate option (i) on the segments of ONE run.
    let mut world = case_study_world(args.seed() + 999, 1.0);
    world.announce_nodes();
    world.start_runtime_tracers();
    let mut seg_traces = Vec::new();
    for _ in 0..4 {
        world.run_for(Nanos::from_secs(secs / 4));
        seg_traces.push(world.collect_segment());
    }
    world.stop_runtime_tracers();
    let mut merged_trace = Trace::new();
    for s in &seg_traces {
        merged_trace.merge(s.clone());
    }
    let from_merged_trace = synthesize(&merged_trace);
    // Later segments carry no P1 events (TR_IN stopped after startup), so
    // the node-name map from the first segment travels with them.
    let names = node_name_map(&seg_traces[0]);
    let from_segments =
        merge_dags(seg_traces.iter().map(|t| synthesize_with_names(t, &names)));

    // Compare statistics for cb6 between the two options on one run.
    let key = avp_vertex_key(&from_merged_trace, "cb6").expect("cb6");
    let a = from_merged_trace
        .vertices()
        .iter()
        .find(|v| v.merge_key() == key)
        .expect("cb6 (i)");
    let b = from_segments
        .vertices()
        .iter()
        .find(|v| v.merge_key() == key)
        .expect("cb6 (ii)");

    let report = Report {
        runs: args.runs(),
        secs,
        seed: args.seed(),
        dag_per_run_structure: structure_summary(&dag_per_run),
        merged_trace_structure: structure_summary(&from_merged_trace),
        segment_dags_structure: structure_summary(&from_segments),
        cb6_stats_option_i: a.stats.to_string(),
        cb6_stats_option_ii: b.stats.to_string(),
        options_agree_on_structure: from_merged_trace.vertices().len()
            == from_segments.vertices().len()
            && from_merged_trace.edges().len() == from_segments.edges().len(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!("Option (ii) DAG-per-run, merged over {} runs:", report.runs);
    println!("  {}", report.dag_per_run_structure);
    println!();
    println!("Option (i) merge-traces-then-synthesize (4 segments of one run):");
    println!("  {}", report.merged_trace_structure);
    println!("Option (ii) on the same segments:");
    println!("  {}", report.segment_dags_structure);
    println!();
    println!("cb6, option (i):  {}", report.cb6_stats_option_i);
    println!("cb6, option (ii): {}", report.cb6_stats_option_ii);
    println!("options agree on structure: {}", report.options_agree_on_structure);
}
