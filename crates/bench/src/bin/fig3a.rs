//! Regenerates Fig. 3a: the synthesized DAG of the SYN application,
//! verifying the five scenarios of Sec. VI.
//!
//! Usage: `cargo run -p rtms-bench --bin fig3a [secs=5] [seed=7]`

use rtms_bench::{arg_u64, parse_args, structure_summary};
use rtms_core::{synthesize, VertexKind};
use rtms_ros2::WorldBuilder;
use rtms_trace::{CallbackKind, Nanos};
use rtms_workloads::syn_app;

fn main() {
    let args = parse_args();
    let secs = arg_u64(&args, "secs", 5);
    let seed = arg_u64(&args, "seed", 7);

    let mut world = WorldBuilder::new(4)
        .seed(seed)
        .app(syn_app(1.0))
        .build()
        .expect("SYN world");
    let trace = world.trace_run(Nanos::from_secs(secs));
    let dag = synthesize(&trace);

    println!("Fig. 3a — SYN application timing model ({secs}s run, seed {seed})");
    println!("{}", structure_summary(&dag));
    println!();

    // Scenario checks of Sec. VI.
    let sv3_entries = dag
        .vertices()
        .iter()
        .filter(|v| {
            v.node == "syn_mixed" && v.kind == VertexKind::Callback(CallbackKind::Service)
        })
        .count();
    println!("(i)   same-type callbacks per node identified: T2/T3, SV1/SV2, CL2/CL4");
    println!("(ii)  mixed node syn_mixed: timer + subscriber + service present");
    let clp3_or = dag
        .vertices()
        .iter()
        .filter(|v| v.in_topic.as_deref() == Some("/clp3") && v.or_junction)
        .count();
    println!("(iii) /clp3 subscribers with OR junction: {clp3_or} (expect 2)");
    println!("(iv)  SV3 vertices (one per caller):      {sv3_entries} (expect 2)");
    let junctions = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::AndJunction)
        .count();
    println!("(v)   AND junctions for /f1+/f2 sync:     {junctions} (expect 1)");
    println!();
    println!("DOT:");
    println!("{}", dag.to_dot());
}
