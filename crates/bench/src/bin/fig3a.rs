//! Regenerates Fig. 3a: the synthesized DAG of the SYN application,
//! verifying the five scenarios of Sec. VI.
//!
//! Usage: `cargo run -p rtms-bench --bin fig3a -- [secs=5] [seed=7]
//! [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs, structure_summary};
use rtms_core::{synthesize, VertexKind};
use rtms_ros2::WorldBuilder;
use rtms_trace::CallbackKind;
use rtms_workloads::syn_app;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    secs: u64,
    seed: u64,
    structure: String,
    clp3_or_subscribers: usize,
    sv3_entries: usize,
    and_junctions: usize,
    dot: String,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "fig3a [secs=5] [seed=7] [format=text|json]",
        Defaults::single_run(5, 7),
        &[],
    );

    let mut world = WorldBuilder::new(4)
        .seed(args.seed())
        .app(syn_app(1.0))
        .build()
        .expect("SYN world");
    let trace = world.trace_run(args.duration());
    let dag = synthesize(&trace);

    let report = Report {
        secs: args.secs(),
        seed: args.seed(),
        structure: structure_summary(&dag),
        clp3_or_subscribers: dag
            .vertices()
            .iter()
            .filter(|v| v.in_topic.as_deref() == Some("/clp3") && v.or_junction)
            .count(),
        sv3_entries: dag
            .vertices()
            .iter()
            .filter(|v| {
                v.node == "syn_mixed" && v.kind == VertexKind::Callback(CallbackKind::Service)
            })
            .count(),
        and_junctions: dag
            .vertices()
            .iter()
            .filter(|v| v.kind == VertexKind::AndJunction)
            .count(),
        dot: dag.to_dot(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Fig. 3a — SYN application timing model ({}s run, seed {})",
        report.secs, report.seed
    );
    println!("{}", report.structure);
    println!();

    // Scenario checks of Sec. VI.
    println!("(i)   same-type callbacks per node identified: T2/T3, SV1/SV2, CL2/CL4");
    println!("(ii)  mixed node syn_mixed: timer + subscriber + service present");
    println!("(iii) /clp3 subscribers with OR junction: {} (expect 2)", report.clp3_or_subscribers);
    println!("(iv)  SV3 vertices (one per caller):      {} (expect 2)", report.sv3_entries);
    println!("(v)   AND junctions for /f1+/f2 sync:     {} (expect 1)", report.and_junctions);
    println!();
    println!("DOT:");
    println!("{}", report.dot);
}
