//! Streaming synthesis experiment: trace one long run as bounded segments,
//! synthesize incrementally, and assert the memory watermark.
//!
//! The run is `secs` of the SYN application collected as `segment_ms`
//! segments (the Fig. 2 stop/store/restart cycle). Each segment is fed to a
//! `SynthesisSession` and dropped, so peak retained memory is bounded by
//! the segment size — asserted via the session's watermark counter, not
//! wall-clock guesswork. With `compare=1` (the default) the run is *also*
//! accumulated into one monolithic trace, batch-synthesized, and checked
//! byte-identical against the streamed model, reporting the wall-clock of
//! both paths.
//!
//! Usage: `cargo run --release -p rtms-bench --bin streaming -- [secs=20]
//! [segment_ms=250] [seed=0] [compare=1] [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_core::{synthesize, SynthesisSession};
use rtms_ros2::WorldBuilder;
use rtms_trace::{Nanos, Trace};
use rtms_workloads::syn_app;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    secs: u64,
    segment_ms: u64,
    seed: u64,
    segments: usize,
    events_total: u64,
    peak_segment_events: usize,
    peak_watermark: usize,
    watermark_bound: usize,
    watermark_ok: bool,
    retention_ratio: f64,
    model_vertices: usize,
    model_edges: usize,
    streaming_synth_ms: f64,
    /// Wall-clock of the whole pipelined collect→synthesize run, from
    /// first segment collection to the final model.
    e2e_ms: f64,
    /// Events through the end-to-end pipeline per wall-clock second.
    e2e_events_per_sec: f64,
    compared: bool,
    batch_synth_ms: f64,
    models_equal: bool,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "streaming [secs=20] [segment_ms=250] [seed=0] [compare=1] [format=text|json]",
        Defaults::single_run(20, 0),
        &["segment_ms", "compare"],
    );
    let segment_ms = args.extra_u64("segment_ms", 250).max(1);
    let compare = args.extra_u64("compare", 1) != 0;

    eprintln!(
        "streaming: SYN app, {}s as {}ms segments (compare={}) ...",
        args.secs(),
        segment_ms,
        u64::from(compare)
    );

    let mut world = WorldBuilder::new(4)
        .seed(args.seed())
        .app(syn_app(1.0))
        .build()
        .expect("SYN app is valid");

    let mut session = SynthesisSession::new();
    // Comparison bookkeeping stays off the timed path: segments are kept
    // by move (no per-event clones inside the e2e window) and the
    // reference trace is assembled afterwards.
    let mut kept: Vec<rtms_trace::TraceSegment> = Vec::new();
    let mut streaming_synth = 0.0f64;
    let e2e_start = Instant::now();
    world.trace_segments(args.duration(), Nanos::from_millis(segment_ms), |segment| {
        let t = Instant::now();
        session.feed_segment(segment);
        streaming_synth += t.elapsed().as_secs_f64();
        if compare {
            kept.push(std::mem::take(segment));
        }
    });
    let t = Instant::now();
    let streamed = session.model();
    streaming_synth += t.elapsed().as_secs_f64();
    let e2e = e2e_start.elapsed().as_secs_f64();

    let (batch_synth_ms, models_equal) = match compare {
        true => {
            let (mut ros, mut sched) = (Vec::new(), Vec::new());
            for segment in kept {
                let (r, s) = segment.into_trace().into_events();
                ros.extend(r);
                sched.extend(s);
            }
            let mut full = Trace::from_events(ros, sched);
            full.sort_by_time();
            let t = Instant::now();
            let batch = synthesize(&full);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            let a = serde_json::to_string(&batch).expect("model serializes");
            let b = serde_json::to_string(&streamed).expect("model serializes");
            (ms, a == b)
        }
        false => (0.0, true),
    };

    // The retained-memory contract: the session's peak watermark (segment
    // events + carried derived entries) is bounded by the segment size —
    // the slack covers in-flight interactions straddling a boundary.
    let watermark_bound = 2 * session.peak_segment_events() + 64;
    let watermark_ok = session.peak_watermark() <= watermark_bound;
    let report = Report {
        secs: args.secs(),
        segment_ms,
        seed: args.seed(),
        segments: session.segments_fed(),
        events_total: session.events_fed(),
        peak_segment_events: session.peak_segment_events(),
        peak_watermark: session.peak_watermark(),
        watermark_bound,
        watermark_ok,
        retention_ratio: session.events_fed() as f64 / session.peak_watermark().max(1) as f64,
        model_vertices: streamed.vertices().len(),
        model_edges: streamed.edges().len(),
        streaming_synth_ms: streaming_synth * 1e3,
        e2e_ms: e2e * 1e3,
        e2e_events_per_sec: session.events_fed() as f64 / e2e.max(1e-12),
        compared: compare,
        batch_synth_ms,
        models_equal,
    };

    assert!(
        report.watermark_ok,
        "peak watermark {} exceeds the segment-size bound {}",
        report.peak_watermark, report.watermark_bound
    );
    assert!(report.models_equal, "streamed model diverged from batch synthesis");

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Streaming synthesis: {}s of SYN as {} segments of {} ms",
        report.secs, report.segments, report.segment_ms
    );
    println!();
    println!(
        "events:    {} total, largest segment {}",
        report.events_total, report.peak_segment_events
    );
    println!(
        "memory:    peak watermark {} event-equivalents (bound {}), {:.0}x smaller than the run",
        report.peak_watermark, report.watermark_bound, report.retention_ratio
    );
    println!(
        "model:     {} vertices, {} edges",
        report.model_vertices, report.model_edges
    );
    println!("synthesis: streaming {:.2} ms", report.streaming_synth_ms);
    println!(
        "e2e:       {:.2} ms collect+synthesize pipelined, {:.0} events/s",
        report.e2e_ms, report.e2e_events_per_sec
    );
    if report.compared {
        println!(
            "           batch     {:.2} ms on the materialized trace (models byte-identical: {})",
            report.batch_synth_ms, report.models_equal
        );
    }
}
