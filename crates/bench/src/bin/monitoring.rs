//! Online monitoring experiment: drive generated fault scenarios through
//! the streaming pipeline and score the monitor against ground truth.
//!
//! For each of `apps` scenarios (seeds `seed..seed+apps`), a random
//! application with `faults` injected faults (slowdown / timer stutter /
//! muted publisher / message drop, activating just after the baseline
//! phase) is traced as
//! `segment_ms` segments for `secs` simulated seconds. The first third of
//! the segments (at least two) feed a cumulative `SynthesisSession` whose
//! model becomes the healthy `Baseline`; every later segment is
//! synthesized into a per-window snapshot and fed to the `Monitor`. The
//! report scores detection latency (in segments), precision, and recall
//! of the emitted alert stream against the injected ground truth — and
//! asserts full recall with latency ≤ 2 segments, the contract the
//! monitor subsystem is built around.
//!
//! `drop_pct=`/`reorder=`/`jitter_us=` degrade the transport QoS of every
//! scenario world (best-effort drops, bounded reorder, latency jitter), so
//! the detection contract is scored over a lossy transport too: the
//! baseline is learned under the same degraded QoS, and injected faults
//! must still be caught through the background loss.
//!
//! Usage: `cargo run --release -p rtms-bench --bin monitoring --
//! [secs=12] [segment_ms=500] [apps=4] [faults=2] [seed=0] [drop_pct=0]
//! [reorder=0] [jitter_us=0] [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_ros2::{QosSpec, WorldBuilder};
use rtms_trace::Nanos;
use rtms_workloads::{generate_fault_scenario, monitor_run, ExpectedAlert, FaultScenarioConfig};
use serde::Serialize;

/// One scored fault of one scenario.
#[derive(Serialize)]
struct FaultReport {
    callback: String,
    vertex_key: String,
    kind: String,
    expected_alert: &'static str,
    at_ms: f64,
    fault_segment: usize,
    detected: bool,
    latency_segments: Option<usize>,
    alert: Option<String>,
}

/// One scenario (one generated app with faults).
#[derive(Serialize)]
struct AppReport {
    seed: u64,
    nodes: usize,
    callbacks: usize,
    injected: usize,
    detected: usize,
    alerts: usize,
    matched_alerts: usize,
    faults: Vec<FaultReport>,
}

#[derive(Serialize)]
struct Report {
    secs: u64,
    segment_ms: u64,
    apps: u64,
    faults: u64,
    seed: u64,
    drop_pct: u64,
    reorder: u64,
    jitter_us: u64,
    baseline_segments: usize,
    monitored_segments: usize,
    injected_total: usize,
    detected_total: usize,
    alerts_total: usize,
    true_positive_alerts: usize,
    precision: f64,
    recall: f64,
    mean_latency_segments: f64,
    max_latency_segments: usize,
    per_app: Vec<AppReport>,
}

fn expected_name(e: ExpectedAlert) -> &'static str {
    match e {
        ExpectedAlert::ExecDrift => "exec_drift",
        ExpectedAlert::PeriodDrift => "period_drift",
        ExpectedAlert::TopologyChange => "topology_change",
        ExpectedAlert::MessageLoss => "message_loss",
    }
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "monitoring [secs=12] [segment_ms=500] [apps=4] [faults=2] [seed=0] [drop_pct=0] [reorder=0] [jitter_us=0] [format=text|json]",
        Defaults::single_run(12, 0),
        &["segment_ms", "apps", "faults", "drop_pct", "reorder", "jitter_us"],
    );
    let segment_ms = args.extra_u64("segment_ms", 500).max(1);
    let apps = args.extra_u64("apps", 4).max(1);
    let faults = args.extra_u64("faults", 2);
    let drop_pct = args.extra_u64("drop_pct", 0);
    let reorder = args.extra_u64("reorder", 0);
    let jitter_us = args.extra_u64("jitter_us", 0);
    if drop_pct >= 100 {
        eprintln!("error: drop_pct={drop_pct} must be below 100");
        std::process::exit(2);
    }
    if drop_pct > 0 && reorder == 0 {
        eprintln!(
            "error: drop_pct={drop_pct} needs reorder>=1 (a reliable spec never drops; \
             reorder marks the spec best-effort)"
        );
        std::process::exit(2);
    }
    let qos = QosSpec {
        drop_prob: drop_pct as f64 / 100.0,
        reorder_bound: reorder as usize,
        jitter: Nanos::from_micros(jitter_us),
    };
    let segment = Nanos::from_millis(segment_ms);

    let total_segments = ((args.secs() * 1_000).div_ceil(segment_ms) as usize).max(4);
    let baseline_segments = (total_segments / 3).max(2);
    let monitored_segments = total_segments - baseline_segments;
    let baseline_end = Nanos::from_nanos(segment.as_nanos() * baseline_segments as u64);
    // Faults activate inside the first monitored window, so the ≤2-segment
    // detection-latency contract is exercised even on short smoke runs.
    let window = (baseline_end, baseline_end + Nanos::from_nanos(segment.as_nanos() / 4));

    eprintln!(
        "monitoring: {apps} scenarios x {faults} faults, {} segments of {segment_ms} ms \
         ({baseline_segments} baseline) ...",
        total_segments
    );

    let mut per_app = Vec::new();
    let (mut injected_total, mut detected_total) = (0usize, 0usize);
    let (mut alerts_total, mut matched_total) = (0usize, 0usize);
    let mut latencies: Vec<usize> = Vec::new();

    for a in 0..apps {
        let scenario_seed = args.seed() + a;
        let scenario = generate_fault_scenario(
            scenario_seed,
            &FaultScenarioConfig::new(faults as usize, window),
        );
        let mut world = WorldBuilder::new(4)
            .seed(scenario_seed)
            .qos(qos)
            .app(scenario.app.clone())
            .fault_plan(scenario.plan.clone())
            .build()
            .expect("generated scenario is valid");
        let (_, alerts) = monitor_run(&mut world, segment, baseline_segments, total_segments);

        let mut fault_reports = Vec::new();
        let mut detected = 0usize;
        for fault in &scenario.truth {
            let fault_segment = (fault.at.as_nanos() / segment.as_nanos()) as usize;
            let hit = alerts
                .iter()
                .find(|(seg, alert)| *seg >= fault_segment && fault.is_detected_by(alert));
            let latency = hit.map(|(seg, _)| seg - fault_segment);
            if hit.is_some() {
                detected += 1;
            }
            if let Some(l) = latency {
                latencies.push(l);
            }
            fault_reports.push(FaultReport {
                callback: fault.callback.clone(),
                vertex_key: fault.vertex_key.clone(),
                kind: fault.fault.to_string(),
                expected_alert: expected_name(fault.expected),
                at_ms: fault.at.as_millis_f64(),
                fault_segment,
                detected: hit.is_some(),
                latency_segments: latency,
                alert: hit.map(|(_, a)| a.to_string()),
            });
        }
        let matched = alerts
            .iter()
            .filter(|(_, alert)| scenario.truth.iter().any(|f| f.accounts_for(alert)))
            .count();

        injected_total += scenario.truth.len();
        detected_total += detected;
        alerts_total += alerts.len();
        matched_total += matched;
        per_app.push(AppReport {
            seed: scenario_seed,
            nodes: scenario.app.nodes.len(),
            callbacks: scenario.app.nodes.iter().map(|n| n.callbacks.len()).sum(),
            injected: scenario.truth.len(),
            detected,
            alerts: alerts.len(),
            matched_alerts: matched,
            faults: fault_reports,
        });
    }

    let report = Report {
        secs: args.secs(),
        segment_ms,
        apps,
        faults,
        seed: args.seed(),
        drop_pct,
        reorder,
        jitter_us,
        baseline_segments,
        monitored_segments,
        injected_total,
        detected_total,
        alerts_total,
        true_positive_alerts: matched_total,
        precision: if alerts_total == 0 { 1.0 } else { matched_total as f64 / alerts_total as f64 },
        recall: if injected_total == 0 {
            1.0
        } else {
            detected_total as f64 / injected_total as f64
        },
        mean_latency_segments: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<usize>() as f64 / latencies.len() as f64
        },
        max_latency_segments: latencies.iter().copied().max().unwrap_or(0),
        per_app,
    };

    // The contract the subsystem is built around: every injected fault is
    // caught, with the right alert kind, within two segments.
    assert!(
        (report.recall - 1.0).abs() < f64::EPSILON,
        "missed faults: {} of {} detected",
        report.detected_total,
        report.injected_total
    );
    assert!(
        report.max_latency_segments <= 2,
        "detection latency {} segments exceeds the 2-segment contract",
        report.max_latency_segments
    );

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Monitoring: {} scenarios, {} injected faults, {} baseline + {} monitored segments of {} ms",
        report.apps, report.injected_total, report.baseline_segments, report.monitored_segments,
        report.segment_ms
    );
    if !qos.is_reliable() {
        println!(
            "  lossy transport: {}% drops, reorder bound {}, jitter {} us",
            report.drop_pct, report.reorder, report.jitter_us
        );
    }
    println!();
    println!("  seed  nodes  cbs  injected  detected  alerts  matched");
    for app in &report.per_app {
        println!(
            "  {:>4}  {:>5}  {:>3}  {:>8}  {:>8}  {:>6}  {:>7}",
            app.seed, app.nodes, app.callbacks, app.injected, app.detected, app.alerts,
            app.matched_alerts
        );
        for f in &app.faults {
            println!(
                "        {} on {} at {:.0} ms (segment {}) -> {} (latency {} segments)",
                f.kind,
                f.callback,
                f.at_ms,
                f.fault_segment,
                if f.detected { f.expected_alert } else { "MISSED" },
                f.latency_segments.map_or_else(|| "-".to_string(), |l| l.to_string()),
            );
        }
    }
    println!();
    println!(
        "recall {:.2}  precision {:.2}  latency mean {:.2} / max {} segments  ({} alerts, {} matched)",
        report.recall,
        report.precision,
        report.mean_latency_segments,
        report.max_latency_segments,
        report.alerts_total,
        report.true_positive_alerts
    );
}
