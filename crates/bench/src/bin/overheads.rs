//! Regenerates the Sec. VI tracing-overhead experiment: run SYN and AVP
//! localization together for 60 s and report (i) the generated trace
//! volume (paper: 9 MB) and (ii) the probes' CPU usage (paper: 0.008 cores
//! on average, 0.3 % of the applications' computational load).
//!
//! Usage: `cargo run -p rtms-bench --bin overheads -- [secs=60] [seed=0]
//! [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_workloads::case_study_world;
use serde::Serialize;

#[derive(Serialize)]
struct ProbeRow {
    probe: String,
    run_cnt: u64,
    run_time_ns: u64,
}

#[derive(Serialize)]
struct Report {
    secs: u64,
    seed: u64,
    trace_volume_bytes: usize,
    ros_events: usize,
    sched_events_exported: u64,
    sched_events_seen: u64,
    probe_avg_cores: f64,
    probe_frac_of_app_load: f64,
    probe_total_firings: u64,
    probe_total_time_ns: u64,
    per_probe: Vec<ProbeRow>,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "overheads [secs=60] [seed=0] [format=text|json]",
        Defaults::single_run(60, 0),
        &[],
    );

    let mut world = case_study_world(args.seed(), 1.0);
    let trace = world.trace_run(args.duration());

    let volume = world.trace_volume_bytes();
    let ohr = world.overhead_report();
    let (seen, exported) = world.kernel_filter_stats();

    let report = Report {
        secs: args.secs(),
        seed: args.seed(),
        trace_volume_bytes: volume,
        ros_events: trace.ros_events().len(),
        sched_events_exported: exported,
        sched_events_seen: seen,
        probe_avg_cores: ohr.avg_cores,
        probe_frac_of_app_load: ohr.frac_of_app_load,
        probe_total_firings: ohr.total_firings,
        probe_total_time_ns: ohr.total_time.as_nanos(),
        per_probe: ohr
            .per_probe
            .iter()
            .map(|(probe, (count, time))| ProbeRow {
                probe: probe.to_string(),
                run_cnt: *count,
                run_time_ns: time.as_nanos(),
            })
            .collect(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!("Tracing overheads over {}s of SYN + AVP localization", report.secs);
    println!();
    println!(
        "trace volume:        {:.1} MB   (paper: ~9 MB per 60 s)",
        report.trace_volume_bytes as f64 / 1e6
    );
    println!("  ros events:        {}", report.ros_events);
    println!(
        "  sched events:      {} exported of {} seen",
        report.sched_events_exported, report.sched_events_seen
    );
    println!();
    println!(
        "probe CPU usage:     {:.4} cores on average   (paper: 0.008 cores)",
        report.probe_avg_cores
    );
    println!(
        "  as fraction of app load: {:.2}%   (paper: 0.3%)",
        report.probe_frac_of_app_load * 100.0
    );
    println!("  total probe firings:     {}", report.probe_total_firings);
    println!("  total probe runtime:     {} ns", report.probe_total_time_ns);
    println!();
    println!("per-probe accounting (bpftool-style):");
    println!("{:>14}{:>12}{:>16}", "probe", "run_cnt", "run_time_ns");
    for row in &report.per_probe {
        println!("{:>14}{:>12}{:>16}", row.probe, row.run_cnt, row.run_time_ns);
    }
}
