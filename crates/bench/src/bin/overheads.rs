//! Regenerates the Sec. VI tracing-overhead experiment: run SYN and AVP
//! localization together for 60 s and report (i) the generated trace
//! volume (paper: 9 MB) and (ii) the probes' CPU usage (paper: 0.008 cores
//! on average, 0.3 % of the applications' computational load).
//!
//! Usage: `cargo run -p rtms-bench --bin overheads [secs=60] [seed=0]`

use rtms_bench::{arg_u64, parse_args};
use rtms_trace::Nanos;
use rtms_workloads::case_study_world;

fn main() {
    let args = parse_args();
    let secs = arg_u64(&args, "secs", 60);
    let seed = arg_u64(&args, "seed", 0);

    let mut world = case_study_world(seed, 1.0);
    let trace = world.trace_run(Nanos::from_secs(secs));

    let volume = world.trace_volume_bytes();
    let report = world.overhead_report();
    let (seen, exported) = world.kernel_filter_stats();

    println!("Tracing overheads over {secs}s of SYN + AVP localization");
    println!();
    println!(
        "trace volume:        {:.1} MB   (paper: ~9 MB per 60 s)",
        volume as f64 / 1e6
    );
    println!("  ros events:        {}", trace.ros_events().len());
    println!("  sched events:      {} exported of {} seen", exported, seen);
    println!();
    println!(
        "probe CPU usage:     {:.4} cores on average   (paper: 0.008 cores)",
        report.avg_cores
    );
    println!(
        "  as fraction of app load: {:.2}%   (paper: 0.3%)",
        report.frac_of_app_load * 100.0
    );
    println!("  total probe firings:     {}", report.total_firings);
    println!("  total probe runtime:     {}", report.total_time);
    println!();
    println!("per-probe accounting (bpftool-style):");
    println!("{:>14}{:>12}{:>16}", "probe", "run_cnt", "run_time_ns");
    for (probe, (count, time)) in &report.per_probe {
        println!("{:>14}{:>12}{:>16}", probe.to_string(), count, time.as_nanos());
    }
}
