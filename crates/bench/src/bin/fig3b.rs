//! Regenerates Fig. 3b: the synthesized DAG of AVP localization.
//!
//! Usage: `cargo run -p rtms-bench --bin fig3b [secs=80] [seed=1]`

use rtms_bench::{arg_u64, parse_args, structure_summary};
use rtms_core::{synthesize, VertexKind};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::avp_localization_app;

fn main() {
    let args = parse_args();
    let secs = arg_u64(&args, "secs", 80);
    let seed = arg_u64(&args, "seed", 1);

    let mut world = WorldBuilder::new(12)
        .seed(seed)
        .app(avp_localization_app())
        .build()
        .expect("AVP world");
    let trace = world.trace_run(Nanos::from_secs(secs));
    let dag = synthesize(&trace);

    println!("Fig. 3b — AVP localization timing model ({secs}s run, seed {seed})");
    println!("{}", structure_summary(&dag));
    println!("(The two 10 Hz LIDAR driver timers stand in for the sensors; the");
    println!(" paper's figure shows only the six localization callbacks.)");
    println!();

    // Print the chain structure.
    for v in dag.vertex_ids() {
        let vert = dag.vertex(v);
        let succ: Vec<String> = dag
            .successors(v)
            .into_iter()
            .map(|s| format!("{}({})", dag.vertex(s).node, dag.vertex(s).kind))
            .collect();
        println!(
            "  {}({}) [{}] -> {}",
            vert.node,
            vert.kind,
            vert.stats,
            if succ.is_empty() { "(sink)".to_string() } else { succ.join(", ") }
        );
    }
    println!();
    let junction = dag
        .vertex_ids()
        .find(|&v| dag.vertex(v).kind == VertexKind::AndJunction);
    println!(
        "fusion '&' junction present: {} (zero execution time, AND semantics)",
        junction.is_some()
    );
    println!();
    println!("DOT:");
    println!("{}", dag.to_dot());
}
