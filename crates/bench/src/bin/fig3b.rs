//! Regenerates Fig. 3b: the synthesized DAG of AVP localization.
//!
//! Usage: `cargo run -p rtms-bench --bin fig3b -- [secs=80] [seed=1]
//! [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs, structure_summary};
use rtms_core::{synthesize, VertexKind};
use rtms_ros2::WorldBuilder;
use rtms_workloads::avp_localization_app;
use serde::Serialize;

#[derive(Serialize)]
struct Vertex {
    node: String,
    kind: String,
    stats: String,
    successors: Vec<String>,
}

#[derive(Serialize)]
struct Report {
    secs: u64,
    seed: u64,
    structure: String,
    vertices: Vec<Vertex>,
    fusion_junction_present: bool,
    dot: String,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "fig3b [secs=80] [seed=1] [format=text|json]",
        Defaults::single_run(80, 1),
        &[],
    );

    let mut world = WorldBuilder::new(12)
        .seed(args.seed())
        .app(avp_localization_app())
        .build()
        .expect("AVP world");
    let trace = world.trace_run(args.duration());
    let dag = synthesize(&trace);

    let report = Report {
        secs: args.secs(),
        seed: args.seed(),
        structure: structure_summary(&dag),
        vertices: dag
            .vertex_ids()
            .map(|v| {
                let vert = dag.vertex(v);
                Vertex {
                    node: vert.node.clone(),
                    kind: vert.kind.to_string(),
                    stats: vert.stats.to_string(),
                    successors: dag
                        .successors(v)
                        .into_iter()
                        .map(|s| format!("{}({})", dag.vertex(s).node, dag.vertex(s).kind))
                        .collect(),
                }
            })
            .collect(),
        fusion_junction_present: dag
            .vertex_ids()
            .any(|v| dag.vertex(v).kind == VertexKind::AndJunction),
        dot: dag.to_dot(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Fig. 3b — AVP localization timing model ({}s run, seed {})",
        report.secs, report.seed
    );
    println!("{}", report.structure);
    println!("(The two 10 Hz LIDAR driver timers stand in for the sensors; the");
    println!(" paper's figure shows only the six localization callbacks.)");
    println!();

    // Print the chain structure.
    for v in &report.vertices {
        println!(
            "  {}({}) [{}] -> {}",
            v.node,
            v.kind,
            v.stats,
            if v.successors.is_empty() {
                "(sink)".to_string()
            } else {
                v.successors.join(", ")
            }
        );
    }
    println!();
    println!(
        "fusion '&' junction present: {} (zero execution time, AND semantics)",
        report.fusion_junction_present
    );
    println!();
    println!("DOT:");
    println!("{}", report.dot);
}
