//! Regenerates the Sec. III-B kernel-trace footprint experiment: recording
//! every `sched_switch` event versus filtering by the PIDs of ROS2 nodes
//! (shared from the INIT tracer through a BPF map). The paper reports a
//! reduction of "an order of three or more" with busy co-located
//! workloads.
//!
//! Usage: `cargo run -p rtms-bench --bin filtering [secs=30] [seed=0]`

use rtms_bench::{arg_u64, parse_args};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::{avp_localization_app, syn_app};

fn build(filtered: bool, seed: u64) -> rtms_ros2::Ros2World {
    let mut b = WorldBuilder::new(12)
        .seed(seed)
        .app(avp_localization_app())
        .app(syn_app(1.0))
        // Non-ROS2 system activity: browsers, logging, build jobs ...
        .background_load(Nanos::from_millis(2), Nanos::from_micros(200), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(3), Nanos::from_micros(200), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(5), Nanos::from_micros(500), Nanos::from_millis(2))
        .background_load(Nanos::from_millis(7), Nanos::from_micros(500), Nanos::from_millis(3));
    if !filtered {
        b = b.unfiltered_kernel_tracer();
    }
    b.build().expect("world")
}

fn main() {
    let args = parse_args();
    let secs = arg_u64(&args, "secs", 30);
    let seed = arg_u64(&args, "seed", 0);

    let mut unfiltered = build(false, seed);
    let t_unf = unfiltered.trace_run(Nanos::from_secs(secs));
    let mut filtered = build(true, seed);
    let t_fil = filtered.trace_run(Nanos::from_secs(secs));

    let unf_events = t_unf.sched_events().len();
    let fil_events = t_fil.sched_events().len();
    let unf_bytes: usize = t_unf.sched_events().iter().map(|e| e.encoded_size()).sum();
    let fil_bytes: usize = t_fil.sched_events().iter().map(|e| e.encoded_size()).sum();

    println!("Kernel trace footprint over {secs}s (SYN + AVP + background load)");
    println!();
    println!("{:<22}{:>14}{:>14}", "", "events", "bytes");
    println!("{:<22}{:>14}{:>14}", "unfiltered", unf_events, unf_bytes);
    println!("{:<22}{:>14}{:>14}", "PID-filtered", fil_events, fil_bytes);
    println!();
    println!(
        "reduction: {:.1}x events, {:.1}x bytes   (paper: 3x or more)",
        unf_events as f64 / fil_events.max(1) as f64,
        unf_bytes as f64 / fil_bytes.max(1) as f64
    );
}
