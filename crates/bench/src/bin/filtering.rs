//! Regenerates the Sec. III-B kernel-trace footprint experiment: recording
//! every `sched_switch` event versus filtering by the PIDs of ROS2 nodes
//! (shared from the INIT tracer through a BPF map). The paper reports a
//! reduction of "an order of three or more" with busy co-located
//! workloads.
//!
//! Usage: `cargo run -p rtms-bench --bin filtering -- [secs=30] [seed=0]
//! [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::{avp_localization_app, syn_app};
use serde::Serialize;

fn build(filtered: bool, seed: u64) -> rtms_ros2::Ros2World {
    let mut b = WorldBuilder::new(12)
        .seed(seed)
        .app(avp_localization_app())
        .app(syn_app(1.0))
        // Non-ROS2 system activity: browsers, logging, build jobs ...
        .background_load(Nanos::from_millis(2), Nanos::from_micros(200), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(3), Nanos::from_micros(200), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(5), Nanos::from_micros(500), Nanos::from_millis(2))
        .background_load(Nanos::from_millis(7), Nanos::from_micros(500), Nanos::from_millis(3));
    if !filtered {
        b = b.unfiltered_kernel_tracer();
    }
    b.build().expect("world")
}

#[derive(Serialize)]
struct Footprint {
    events: usize,
    bytes: usize,
}

#[derive(Serialize)]
struct Report {
    secs: u64,
    seed: u64,
    unfiltered: Footprint,
    filtered: Footprint,
    event_reduction: f64,
    byte_reduction: f64,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "filtering [secs=30] [seed=0] [format=text|json]",
        Defaults::single_run(30, 0),
        &[],
    );

    let footprint = |filtered: bool| {
        let mut world = build(filtered, args.seed());
        let trace = world.trace_run(args.duration());
        Footprint {
            events: trace.sched_events().len(),
            bytes: trace.sched_events().iter().map(|e| e.encoded_size()).sum(),
        }
    };
    let unfiltered = footprint(false);
    let filtered = footprint(true);

    let report = Report {
        secs: args.secs(),
        seed: args.seed(),
        event_reduction: unfiltered.events as f64 / filtered.events.max(1) as f64,
        byte_reduction: unfiltered.bytes as f64 / filtered.bytes.max(1) as f64,
        unfiltered,
        filtered,
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Kernel trace footprint over {}s (SYN + AVP + background load)",
        report.secs
    );
    println!();
    println!("{:<22}{:>14}{:>14}", "", "events", "bytes");
    println!(
        "{:<22}{:>14}{:>14}",
        "unfiltered", report.unfiltered.events, report.unfiltered.bytes
    );
    println!(
        "{:<22}{:>14}{:>14}",
        "PID-filtered", report.filtered.events, report.filtered.bytes
    );
    println!();
    println!(
        "reduction: {:.1}x events, {:.1}x bytes   (paper: 3x or more)",
        report.event_reduction, report.byte_reduction
    );
}
