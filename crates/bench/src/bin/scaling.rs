//! Scaling experiment beyond the paper's fixed case study: synthesis over
//! *generated* applications, fanned out across threads.
//!
//! Builds `apps` random-but-valid applications from the scenario seed (the
//! applications are identical across runs; only the run seed varies), runs
//! the multi-run experiment in parallel, merges the per-run models, and
//! reports structure, spec coverage, mean per-node loads, and fan-out
//! throughput.
//!
//! `preset=` selects a scenario generator instead of the default
//! `scaled(scale)` mix: `city` (100+-node AD pipelines mixing
//! multi-threaded executors and bursty publishers), `multi-threaded`, or
//! `bursty`.
//!
//! Usage: `cargo run --release -p rtms-bench --bin scaling -- [runs=8]
//! [secs=10] [seed=0] [threads=N] [apps=2] [scale=1] [cores=12]
//! [preset=standard|city|multi-threaded|bursty] [format=text|json]`

use rtms_analysis::node_loads_across_runs;
use rtms_bench::{structure_summary, Defaults, ExperimentArgs, Harness};
use rtms_core::{merge_dag_refs, VertexKind};
use rtms_ros2::{AppSpec, WorldBuilder};
use rtms_workloads::{generate_app, GeneratorConfig};
use serde::Serialize;

#[derive(Serialize)]
struct NodeLoadRow {
    node: String,
    load_pct: f64,
}

#[derive(Serialize)]
struct Report {
    runs: usize,
    secs: u64,
    seed: u64,
    threads: usize,
    apps: usize,
    scale: usize,
    preset: String,
    spec_nodes: usize,
    spec_callbacks: usize,
    model_vertices: usize,
    model_edges: usize,
    model_callbacks: usize,
    model_and_junctions: usize,
    structure: String,
    wall_secs: f64,
    simulated_secs_per_wall_sec: f64,
    top_node_loads: Vec<NodeLoadRow>,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "scaling [runs=8] [secs=10] [seed=0] [threads=N] [apps=2] [scale=1] [cores=12] [preset=standard|city|multi-threaded|bursty] [format=text|json]",
        Defaults { runs: 8, secs: 10, seed: 0 },
        &["apps", "scale", "cores", "preset"],
    );
    let n_apps = args.extra_u64("apps", 2).max(1) as usize;
    let scale = args.extra_u64("scale", 1).max(1) as usize;
    let cores = args.extra_u64("cores", 12).max(1) as usize;
    let preset = args.extra_string("preset").unwrap_or_else(|| "standard".to_string());

    // The scenario is fixed by `seed`: the same apps in every run. Distinct
    // per-app seeds keep co-deployed names and services collision-free.
    let cfg = match preset.as_str() {
        "standard" => GeneratorConfig::scaled(scale),
        "city" => GeneratorConfig::city(),
        "multi-threaded" => GeneratorConfig::multi_threaded(),
        "bursty" => GeneratorConfig::bursty(),
        other => {
            eprintln!(
                "error: unknown preset {other:?} (expected standard, city, multi-threaded, or bursty)"
            );
            std::process::exit(2);
        }
    };
    let specs: Vec<AppSpec> =
        (0..n_apps).map(|k| generate_app(args.seed() + 7919 * k as u64, &cfg)).collect();
    let spec_nodes: usize = specs.iter().map(|a| a.nodes.len()).sum();
    let spec_callbacks: usize =
        specs.iter().map(|a| a.nodes.iter().map(|n| n.callbacks.len()).sum::<usize>()).sum();

    eprintln!(
        "scaling: {} apps ({} nodes, {} callbacks), {} runs x {}s on {} threads ...",
        n_apps,
        spec_nodes,
        spec_callbacks,
        args.runs(),
        args.secs(),
        args.threads()
    );

    let started = std::time::Instant::now();
    let dags = Harness::from_args(&args).dags(|plan| {
        let mut builder = WorldBuilder::new(cores).seed(plan.seed);
        for spec in &specs {
            builder = builder.app(spec.clone());
        }
        builder.build().expect("generated apps are valid")
    });
    let wall = started.elapsed().as_secs_f64();
    let merged = merge_dag_refs(&dags);

    let loads = node_loads_across_runs(&dags, args.duration());
    let report = Report {
        runs: args.runs(),
        secs: args.secs(),
        seed: args.seed(),
        threads: args.threads(),
        apps: n_apps,
        scale,
        preset: preset.clone(),
        spec_nodes,
        spec_callbacks,
        model_vertices: merged.vertices().len(),
        model_edges: merged.edges().len(),
        model_callbacks: merged
            .vertices()
            .iter()
            .filter(|v| matches!(v.kind, VertexKind::Callback(_)))
            .count(),
        model_and_junctions: merged
            .vertices()
            .iter()
            .filter(|v| v.kind == VertexKind::AndJunction)
            .count(),
        structure: structure_summary(&merged),
        wall_secs: wall,
        simulated_secs_per_wall_sec: (args.runs() as u64 * args.secs()) as f64 / wall.max(1e-9),
        top_node_loads: loads
            .into_iter()
            .take(5)
            .map(|nl| NodeLoadRow { node: nl.node, load_pct: nl.load * 100.0 })
            .collect(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!(
        "Scaling: {} generated apps (scale {}, preset {}), {} runs x {}s, {} threads",
        report.apps, report.scale, report.preset, report.runs, report.secs, report.threads
    );
    println!();
    println!("spec:  {} nodes, {} callbacks", report.spec_nodes, report.spec_callbacks);
    println!("model: {}", report.structure);
    println!(
        "       {} callback vertices from {} spec callbacks (multi-caller services split per caller)",
        report.model_callbacks, report.spec_callbacks
    );
    println!();
    println!(
        "fan-out: {:.2}s wall clock, {:.1} simulated seconds per wall second",
        report.wall_secs, report.simulated_secs_per_wall_sec
    );
    println!();
    println!("busiest nodes (mean load across runs):");
    for row in &report.top_node_loads {
        println!("  {:<28}{:>7.2}%", row.node, row.load_pct);
    }
}
