//! Regenerates Table I: the probe catalog.

use rtms_trace::PROBE_CATALOG;

fn main() {
    println!("Table I: Inserted probes in ROS2 Foxy");
    println!("{:<14}{:<22}{:<28}{:<11}Purpose", "No.", "ROS2 lib", "Function", "Attach");
    for spec in PROBE_CATALOG {
        println!(
            "{:<14}{:<22}{:<28}{:<11}{}",
            spec.probe.to_string(),
            spec.library,
            spec.function,
            spec.attachment.to_string(),
            spec.purpose
        );
    }
}
