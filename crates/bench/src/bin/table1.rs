//! Regenerates Table I: the probe catalog.
//!
//! Usage: `cargo run -p rtms-bench --bin table1 -- [format=text|json]`

use rtms_bench::{Defaults, ExperimentArgs};
use rtms_trace::PROBE_CATALOG;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    probe: String,
    library: String,
    function: String,
    attachment: String,
    purpose: String,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "table1 [format=text|json]",
        Defaults::single_run(0, 0),
        &[],
    );

    if args.json() {
        let rows: Vec<Row> = PROBE_CATALOG
            .iter()
            .map(|spec| Row {
                probe: spec.probe.to_string(),
                library: spec.library.to_string(),
                function: spec.function.to_string(),
                attachment: spec.attachment.to_string(),
                purpose: spec.purpose.to_string(),
            })
            .collect();
        println!("{}", serde_json::to_string(&rows).expect("rows serialize"));
        return;
    }

    println!("Table I: Inserted probes in ROS2 Foxy");
    println!("{:<14}{:<22}{:<28}{:<11}Purpose", "No.", "ROS2 lib", "Function", "Attach");
    for spec in PROBE_CATALOG {
        println!(
            "{:<14}{:<22}{:<28}{:<11}{}",
            spec.probe.to_string(),
            spec.library,
            spec.function,
            spec.attachment.to_string(),
            spec.purpose
        );
    }
}
