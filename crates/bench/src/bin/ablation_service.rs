//! Ablation of the service model (Sec. IV): count the chains of the SYN
//! model with the paper's per-caller service splitting versus the naive
//! single-vertex service model, which manufactures spurious cross-caller
//! chains like `SC3 -> SV3 -> CL4`.
//!
//! Usage: `cargo run -p rtms-bench --bin ablation_service -- [secs=5]
//! [seed=7] [format=text|json]`

use rtms_analysis::{enumerate_chains, spurious_chain_report};
use rtms_bench::{Defaults, ExperimentArgs};
use rtms_core::synthesize;
use rtms_ros2::WorldBuilder;
use rtms_workloads::syn_app;
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    secs: u64,
    seed: u64,
    split_chains: usize,
    single_vertex_chains: usize,
    spurious_chains: usize,
    chains: Vec<String>,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "ablation_service [secs=5] [seed=7] [format=text|json]",
        Defaults::single_run(5, 7),
        &[],
    );

    let mut world = WorldBuilder::new(4)
        .seed(args.seed())
        .app(syn_app(1.0))
        .build()
        .expect("SYN world");
    let trace = world.trace_run(args.duration());
    let dag = synthesize(&trace);

    let chain_report = spurious_chain_report(&dag);
    let report = Report {
        secs: args.secs(),
        seed: args.seed(),
        split_chains: chain_report.split_chains,
        single_vertex_chains: chain_report.single_vertex_chains,
        spurious_chains: chain_report.spurious(),
        chains: enumerate_chains(&dag).iter().map(|c| c.describe(&dag)).collect(),
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!("Service-model ablation on SYN ({}s run)", report.secs);
    println!();
    println!(
        "chains with per-caller service vertices (paper's model): {}",
        report.split_chains
    );
    println!(
        "chains with single-vertex services (naive model):        {}",
        report.single_vertex_chains
    );
    println!(
        "spurious cross-caller chains:                            {}",
        report.spurious_chains
    );
    println!();
    println!("chains of the correct model:");
    for chain in &report.chains {
        println!("  {chain}");
    }
}
