//! Ablation of the service model (Sec. IV): count the chains of the SYN
//! model with the paper's per-caller service splitting versus the naive
//! single-vertex service model, which manufactures spurious cross-caller
//! chains like `SC3 -> SV3 -> CL4`.
//!
//! Usage: `cargo run -p rtms-bench --bin ablation_service [secs=5] [seed=7]`

use rtms_analysis::{enumerate_chains, spurious_chain_report};
use rtms_bench::{arg_u64, parse_args};
use rtms_core::synthesize;
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::syn_app;

fn main() {
    let args = parse_args();
    let secs = arg_u64(&args, "secs", 5);
    let seed = arg_u64(&args, "seed", 7);

    let mut world = WorldBuilder::new(4)
        .seed(seed)
        .app(syn_app(1.0))
        .build()
        .expect("SYN world");
    let trace = world.trace_run(Nanos::from_secs(secs));
    let dag = synthesize(&trace);

    let report = spurious_chain_report(&dag);
    println!("Service-model ablation on SYN ({secs}s run)");
    println!();
    println!("chains with per-caller service vertices (paper's model): {}", report.split_chains);
    println!("chains with single-vertex services (naive model):        {}", report.single_vertex_chains);
    println!("spurious cross-caller chains:                            {}", report.spurious());
    println!();
    println!("chains of the correct model:");
    for chain in enumerate_chains(&dag) {
        println!("  {}", chain.describe(&dag));
    }
}
