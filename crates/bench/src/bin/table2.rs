//! Regenerates Table II: measured execution times (mBCET/mACET/mWCET) of
//! the six AVP localization callbacks over repeated runs of AVP + SYN,
//! merged per the deployment flow of Fig. 2 (DAG per run, then merge).
//!
//! Usage: `cargo run -p rtms-bench --bin table2 [runs=50] [secs=80] [seed=0]`
//! (The paper uses 50 runs of 80 s; scale down for a quick look.)

use rtms_bench::{arg_u64, avp_vertex_key, parse_args};
use rtms_core::merge_dags;
use rtms_trace::Nanos;
use rtms_workloads::{synthesize_runs, AVP_CALLBACKS};

fn main() {
    let args = parse_args();
    let runs = arg_u64(&args, "runs", 50) as usize;
    let secs = arg_u64(&args, "secs", 80);
    let seed = arg_u64(&args, "seed", 0);

    eprintln!("simulating {runs} runs x {secs}s of AVP + SYN ...");
    let dags = synthesize_runs(runs, Nanos::from_secs(secs), seed);
    let merged = merge_dags(dags);

    println!("Table II: execution times (in ms) of callbacks in AVP localization");
    println!("          ({runs} runs x {secs}s; paper values in parentheses)");
    println!(
        "{:<6}{:<30}{:>18}{:>18}{:>18}{:>8}",
        "CB", "Node", "mBCET", "mACET", "mWCET", "n"
    );
    for (cb, node, p_bcet, p_acet, p_wcet) in AVP_CALLBACKS {
        let key = avp_vertex_key(&merged, cb).expect("vertex present");
        let v = merged
            .vertices()
            .iter()
            .find(|v| v.merge_key() == key)
            .expect("vertex by key");
        let fmt = |x: Option<Nanos>, paper: f64| match x {
            Some(n) => format!("{:>7.2} ({:>6.2})", n.as_millis_f64(), paper),
            None => format!("{:>7} ({:>6.2})", "-", paper),
        };
        println!(
            "{:<6}{:<30}{:>18}{:>18}{:>18}{:>8}",
            cb,
            node,
            fmt(v.stats.mbcet(), p_bcet),
            fmt(v.stats.macet(), p_acet),
            fmt(v.stats.mwcet(), p_wcet),
            v.stats.count()
        );
    }
    println!();
    println!(
        "cb2 average processor load at 10 Hz: {:.1}% (paper: 27%)",
        merged
            .vertices()
            .iter()
            .find(|v| v.merge_key() == avp_vertex_key(&merged, "cb2").expect("cb2"))
            .and_then(|v| v.stats.macet())
            .map(|a| a.as_millis_f64() / 100.0 * 100.0)
            .unwrap_or(0.0)
    );
}
