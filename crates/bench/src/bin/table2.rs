//! Regenerates Table II: measured execution times (mBCET/mACET/mWCET) of
//! the six AVP localization callbacks over repeated runs of AVP + SYN,
//! merged per the deployment flow of Fig. 2 (DAG per run, then merge).
//!
//! Usage: `cargo run -p rtms-bench --bin table2 -- [runs=50] [secs=80]
//! [seed=0] [threads=N] [format=text|json]`
//! (The paper uses 50 runs of 80 s; scale down for a quick look. Runs fan
//! out across threads; output is identical for any `threads` value.)

use rtms_bench::{Defaults, ExperimentArgs, Harness};
use rtms_trace::Nanos;
use rtms_workloads::{case_study_run_conditions, case_study_world_for_run, AVP_CALLBACKS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cb: String,
    node: String,
    mbcet_ms: Option<f64>,
    macet_ms: Option<f64>,
    mwcet_ms: Option<f64>,
    samples: u64,
    paper_mbcet_ms: f64,
    paper_macet_ms: f64,
    paper_mwcet_ms: f64,
}

#[derive(Serialize)]
struct Report {
    runs: usize,
    secs: u64,
    seed: u64,
    rows: Vec<Row>,
    cb2_load_pct_at_10hz: f64,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "table2 [runs=50] [secs=80] [seed=0] [threads=N] [format=text|json]",
        Defaults { runs: 50, secs: 80, seed: 0 },
        &[],
    );

    eprintln!(
        "simulating {} runs x {}s of AVP + SYN on {} threads ...",
        args.runs(),
        args.secs(),
        args.threads()
    );
    let conditions = case_study_run_conditions(args.runs(), args.seed());
    let merged = Harness::from_args(&args)
        .merged(|plan| case_study_world_for_run(args.seed(), plan.index, conditions[plan.index]));

    let ms = |x: Option<Nanos>| x.map(|n| n.as_millis_f64());
    let rows: Vec<Row> = AVP_CALLBACKS
        .iter()
        .map(|&(cb, node, p_bcet, p_acet, p_wcet)| {
            let key = rtms_bench::avp_vertex_key(&merged, cb).expect("vertex present");
            let v = merged
                .vertices()
                .iter()
                .find(|v| v.merge_key() == key)
                .expect("vertex by key");
            Row {
                cb: cb.to_string(),
                node: node.to_string(),
                mbcet_ms: ms(v.stats.mbcet()),
                macet_ms: ms(v.stats.macet()),
                mwcet_ms: ms(v.stats.mwcet()),
                samples: v.stats.count(),
                paper_mbcet_ms: p_bcet,
                paper_macet_ms: p_acet,
                paper_mwcet_ms: p_wcet,
            }
        })
        .collect();
    // cb2 at 10 Hz: average execution time over a 100 ms period.
    let cb2_load = rows
        .iter()
        .find(|r| r.cb == "cb2")
        .and_then(|r| r.macet_ms)
        .map(|a| a / 100.0 * 100.0)
        .unwrap_or(0.0);

    let report = Report {
        runs: args.runs(),
        secs: args.secs(),
        seed: args.seed(),
        rows,
        cb2_load_pct_at_10hz: cb2_load,
    };

    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }

    println!("Table II: execution times (in ms) of callbacks in AVP localization");
    println!(
        "          ({} runs x {}s; paper values in parentheses)",
        report.runs, report.secs
    );
    println!(
        "{:<6}{:<30}{:>18}{:>18}{:>18}{:>8}",
        "CB", "Node", "mBCET", "mACET", "mWCET", "n"
    );
    for r in &report.rows {
        let fmt = |x: Option<f64>, paper: f64| match x {
            Some(v) => format!("{v:>7.2} ({paper:>6.2})"),
            None => format!("{:>7} ({paper:>6.2})", "-"),
        };
        println!(
            "{:<6}{:<30}{:>18}{:>18}{:>18}{:>8}",
            r.cb,
            r.node,
            fmt(r.mbcet_ms, r.paper_mbcet_ms),
            fmt(r.macet_ms, r.paper_macet_ms),
            fmt(r.mwcet_ms, r.paper_mwcet_ms),
            r.samples
        );
    }
    println!();
    println!(
        "cb2 average processor load at 10 Hz: {:.1}% (paper: 27%)",
        report.cb2_load_pct_at_10hz
    );
}
