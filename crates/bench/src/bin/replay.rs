//! Replays a recorded binary segment file (see `docs/TRACE_FORMAT.md`)
//! through a fresh synthesis session and reports the model and the
//! replay throughput.
//!
//! `compare=live` additionally rebuilds the world the file was recorded
//! from (using the recording parameters in the file's meta frame),
//! synthesizes the same run live, and asserts the two models are
//! byte-identical — the end-to-end record→replay equivalence check the
//! CI smoke job runs.
//!
//! Usage: `cargo run --release -p rtms-bench --bin replay --
//! in=run.seg [compare=live] [format=text|json]`

use rtms_bench::{live_model, replay_path, Defaults, ExperimentArgs};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ReplayReport {
    path: String,
    segments: usize,
    events: u64,
    replay_secs: f64,
    replay_events_per_sec: f64,
    model_vertices: usize,
    model_digest: String,
    compared_to_live: bool,
}

fn main() {
    let args = ExperimentArgs::parse_or_exit(
        "replay in=run.seg [compare=live] [format=text|json]",
        Defaults::single_run(2, 0),
        &["in", "compare"],
    );
    let Some(path) = args.extra_string("in") else {
        eprintln!("error: replay needs in=<path>");
        std::process::exit(2);
    };
    let compare = match args.extra_string("compare").as_deref() {
        None => false,
        Some("live") => true,
        Some(other) => {
            eprintln!("error: compare={other:?} is not supported (try compare=live)");
            std::process::exit(2);
        }
    };

    let t = Instant::now();
    let outcome = replay_path(&path).unwrap_or_else(|e| panic!("replaying {path}: {e}"));
    let replay_secs = t.elapsed().as_secs_f64();

    if compare {
        let meta = outcome.meta.unwrap_or_else(|| {
            eprintln!("error: {path} has no parseable meta frame; cannot rebuild the live world");
            std::process::exit(2);
        });
        let live = live_model(meta);
        let live_json = serde_json::to_string(&live).expect("model serializes");
        let replay_json = serde_json::to_string(&outcome.model).expect("model serializes");
        assert_eq!(
            replay_json, live_json,
            "replayed model differs from the live model of the same world"
        );
        if !args.json() {
            println!("replayed model is byte-identical to the live model");
        }
    }

    let report = ReplayReport {
        path,
        segments: outcome.segments,
        events: outcome.events,
        replay_secs,
        replay_events_per_sec: outcome.events as f64 / replay_secs.max(1e-12),
        model_vertices: outcome.model.vertices().len(),
        model_digest: format!("{:016x}", outcome.model.digest()),
        compared_to_live: compare,
    };
    if args.json() {
        println!("{}", serde_json::to_string(&report).expect("report serializes"));
        return;
    }
    println!(
        "replayed {} events in {} segments from {} in {:.4}s ({:.0} events/s)",
        report.events, report.segments, report.path, report.replay_secs, report.replay_events_per_sec
    );
    println!("model: {} vertices, digest {}", report.model_vertices, report.model_digest);
}
