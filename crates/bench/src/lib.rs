//! Shared infrastructure for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! - [`args`]: the one documented `key=value` argument surface
//!   (`runs`/`secs`/`seed`/`threads`/`format`) every binary parses through.
//! - [`harness`]: the parallel multi-run harness — N seeded simulation runs
//!   fanned out across worker threads, results collected in run order so
//!   output is identical for any `threads` setting.
//! - [`record`]: record/replay plumbing shared by the `record`, `replay`,
//!   and `perf` binaries — one world construction, one meta-frame schema.
//! - AVP helpers ([`avp_vertex_key`], [`structure_summary`]) shared by the
//!   table/figure binaries.
//!
//! Every binary accepts `key=value` arguments (e.g. `runs=10 secs=20`) to
//! scale the experiment down from the paper's full 50 × 80 s configuration;
//! defaults match the paper. See `docs/EXPERIMENTS.md` for the catalog.

pub mod args;
pub mod harness;
pub mod record;

pub use args::{ArgError, Defaults, ExperimentArgs, OutputFormat};
pub use harness::{Harness, RunPlan};
pub use record::{
    bench_world, bench_world_profiled, live_model, record_to_file, replay_path, RecordMeta,
    ReplayOutcome,
};

use rtms_core::{Dag, VertexKind};
use rtms_trace::CallbackKind;

/// Finds the merge key of a Table II callback in an AVP model: the fusion
/// node hosts two subscribers (cb3 ⊂ rear, cb4 ⊂ front); all other rows
/// are the unique non-junction vertex of their node.
pub fn avp_vertex_key(dag: &Dag, cb: &str) -> Option<String> {
    let (node, topic_hint): (&str, Option<&str>) = match cb {
        "cb1" => ("filter_transform_vlp16_rear", None),
        "cb2" => ("filter_transform_vlp16_front", None),
        "cb3" => ("point_cloud_fusion", Some("/lidar_rear/points_filtered")),
        "cb4" => ("point_cloud_fusion", Some("/lidar_front/points_filtered")),
        "cb5" => ("voxel_grid_cloud_node", None),
        "cb6" => ("p2d_ndt_localizer_node", None),
        _ => return None,
    };
    dag.vertices()
        .iter()
        .find(|v| {
            v.node == node
                && v.kind != VertexKind::AndJunction
                && topic_hint.is_none_or(|t| v.in_topic.as_deref() == Some(t))
        })
        .map(|v| v.merge_key())
}

/// Summarizes a model's structure for the figure binaries.
pub fn structure_summary(dag: &Dag) -> String {
    let callbacks = dag
        .vertices()
        .iter()
        .filter(|v| matches!(v.kind, VertexKind::Callback(_)))
        .count();
    let junctions = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::AndJunction)
        .count();
    let ors = dag.vertices().iter().filter(|v| v.or_junction).count();
    let timers = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::Callback(CallbackKind::Timer))
        .count();
    let services = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::Callback(CallbackKind::Service))
        .count();
    format!(
        "{} vertices ({} callbacks [{} timers, {} service entries], {} AND junctions, {} OR-marked), {} edges",
        dag.vertices().len(),
        callbacks,
        timers,
        services,
        junctions,
        ors,
        dag.edges().len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::Nanos;
    use rtms_workloads::{case_study_world, run_and_synthesize};

    #[test]
    fn avp_vertex_keys_resolve_for_all_six_rows() {
        let mut world = case_study_world(1, 1.0);
        let dag = run_and_synthesize(&mut world, Nanos::from_secs(2));
        for cb in ["cb1", "cb2", "cb3", "cb4", "cb5", "cb6"] {
            assert!(avp_vertex_key(&dag, cb).is_some(), "key for {cb}");
        }
        assert!(avp_vertex_key(&dag, "cb7").is_none());
        let s = structure_summary(&dag);
        assert!(s.contains("vertices"), "{s}");
    }
}
