//! Parallel multi-run experiment orchestration.
//!
//! The paper's results are multi-run artifacts (50 runs × 80 s per table or
//! figure), and each run is an independent simulation — so the harness fans
//! the runs out across worker threads. The simulator itself is
//! `Rc`/`RefCell`-based and not `Send`, which dictates the design: each
//! worker thread builds its **own** [`Ros2World`] from a seeded [`RunPlan`]
//! and only the plain-data [`Trace`]s / [`Dag`]s it produces cross thread
//! boundaries.
//!
//! Determinism contract: run *i* always simulates with seed `base_seed + i`
//! and results are collected **in run order**, so the same `seed` and
//! `runs` produce identical traces — and an identical merged model —
//! regardless of `threads`.
//!
//! # Example
//!
//! ```
//! use rtms_bench::Harness;
//! use rtms_ros2::WorldBuilder;
//! use rtms_trace::Nanos;
//! use rtms_workloads::syn_app;
//!
//! let harness = Harness::new(2, Nanos::from_secs(1), 7).threads(2);
//! let merged = harness.merged(|plan| {
//!     WorldBuilder::new(4).seed(plan.seed).app(syn_app(1.0)).build().expect("valid")
//! });
//! assert!(merged.is_acyclic());
//! ```

use crate::args::ExperimentArgs;
use rtms_core::{merge_dags, synthesize, Dag};
use rtms_ros2::Ros2World;
use rtms_trace::{Nanos, Trace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The identity of one run within a multi-run experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPlan {
    /// Zero-based run index.
    pub index: usize,
    /// The seed this run's world must be built with (`base_seed + index`).
    pub seed: u64,
}

/// Fans N seeded simulation runs out across worker threads and collects
/// their results in run order.
#[derive(Debug, Clone)]
pub struct Harness {
    runs: usize,
    duration: Nanos,
    base_seed: u64,
    threads: usize,
}

impl Harness {
    /// A harness for `runs` runs of `duration` each, with run *i* seeded
    /// `base_seed + i`. Uses all cores unless [`Harness::threads`] says
    /// otherwise.
    pub fn new(runs: usize, duration: Nanos, base_seed: u64) -> Harness {
        Harness { runs, duration, base_seed, threads: crate::args::default_threads() }
    }

    /// A harness configured from parsed experiment arguments
    /// (`runs`/`secs`/`seed`/`threads`).
    pub fn from_args(args: &ExperimentArgs) -> Harness {
        Harness::new(args.runs(), args.duration(), args.seed()).threads(args.threads())
    }

    /// Sets the worker-thread count (clamped to at least 1; more threads
    /// than runs are never spawned).
    pub fn threads(mut self, threads: usize) -> Harness {
        self.threads = threads.max(1);
        self
    }

    /// The per-run duration.
    pub fn duration(&self) -> Nanos {
        self.duration
    }

    /// The configured worker-thread count. Defaults to
    /// `std::thread::available_parallelism()` — never a hard-coded
    /// constant — so the fan-out uses every core the machine actually
    /// offers; results are byte-identical for any value (see the module
    /// docs and `tests/determinism.rs`).
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// The seeded plan of every run, in run order.
    pub fn plans(&self) -> Vec<RunPlan> {
        (0..self.runs)
            .map(|index| RunPlan { index, seed: self.base_seed + index as u64 })
            .collect()
    }

    /// Builds one world per run with `build`, traces each for the
    /// configured duration, and returns the traces in run order.
    pub fn traces<F>(&self, build: F) -> Vec<Trace>
    where
        F: Fn(&RunPlan) -> Ros2World + Sync,
    {
        self.for_each_run(|plan| build(plan).trace_run(self.duration))
    }

    /// Like [`Harness::traces`], but synthesizes each run's timing model in
    /// the worker thread — the "DAG per run" half of the paper's deployment
    /// option (ii).
    pub fn dags<F>(&self, build: F) -> Vec<Dag>
    where
        F: Fn(&RunPlan) -> Ros2World + Sync,
    {
        self.for_each_run(|plan| synthesize(&build(plan).trace_run(self.duration)))
    }

    /// The full deployment option (ii) of Fig. 2: a DAG per run, merged in
    /// run order. Byte-identical output for any `threads` setting.
    pub fn merged<F>(&self, build: F) -> Dag
    where
        F: Fn(&RunPlan) -> Ros2World + Sync,
    {
        merge_dags(self.dags(build))
    }

    /// Runs `work` once per plan, on up to `threads` workers, and returns
    /// the results in run order. Workers pull the next run index from a
    /// shared counter, so long and short runs balance automatically.
    pub fn for_each_run<T, F>(&self, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&RunPlan) -> T + Sync,
    {
        let plans = self.plans();
        let workers = self.threads.min(plans.len());
        if workers <= 1 {
            return plans.iter().map(work).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> =
            Mutex::new(plans.iter().map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(plan) = plans.get(i) else { break };
                    let result = work(plan);
                    slots.lock().expect("result lock")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result lock")
            .into_iter()
            .map(|r| r.expect("every run completed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_ros2::WorldBuilder;
    use rtms_workloads::syn_app;

    fn syn_world(plan: &RunPlan) -> Ros2World {
        WorldBuilder::new(2)
            .seed(plan.seed)
            .app(syn_app(1.0))
            .build()
            .expect("SYN world")
    }

    #[test]
    fn plans_are_seeded_sequentially() {
        let h = Harness::new(3, Nanos::from_secs(1), 10);
        let plans = h.plans();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0], RunPlan { index: 0, seed: 10 });
        assert_eq!(plans[2], RunPlan { index: 2, seed: 12 });
    }

    #[test]
    fn results_come_back_in_run_order_regardless_of_threads() {
        let h = Harness::new(8, Nanos::from_secs(1), 0).threads(4);
        let indices = h.for_each_run(|plan| plan.index);
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_traces_match_sequential() {
        let seq = Harness::new(3, Nanos::from_millis(300), 5).threads(1).traces(syn_world);
        let par = Harness::new(3, Nanos::from_millis(300), 5).threads(3).traces(syn_world);
        assert_eq!(seq, par);
        assert!(seq.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn merged_model_independent_of_thread_count() {
        let a = Harness::new(4, Nanos::from_millis(300), 1).threads(1).merged(syn_world);
        let b = Harness::new(4, Nanos::from_millis(300), 1).threads(4).merged(syn_world);
        assert_eq!(a.to_dot(), b.to_dot());
    }
}
