//! The fleet service's determinism contract: the merged fleet model, the
//! alert rollup JSON, and the per-tenant alert stream are **byte-identical
//! for any shard or producer count**. Shards merge tenant models in
//! completion order and drain alerts in arrival order — both racy — so
//! this only holds because [`rtms_core::Dag::canonicalize`] makes the
//! serialized model a pure function of the merged multiset, the alert
//! stream is sorted into the [`rtms_fleet::TenantAlert`] total order, and
//! the rollup is add-order independent.

use rtms_fleet::FleetConfig;

/// One fleet run's deterministic fingerprint: canonical model JSON,
/// rollup JSON, and the sorted `(tenant, segment, alert)` stream.
fn fingerprint(shards: usize, producers: usize) -> (String, String, String, f64, u64) {
    let mut config = FleetConfig::new(12, shards);
    config.producers = producers;
    config.faults = 3;
    config.secs = 2;
    config.seed = 42;
    let outcome = rtms_fleet::run(&config).expect("fleet runs");
    (
        serde_json::to_string(&outcome.model).expect("model serializes"),
        outcome.rollup.to_json(),
        serde_json::to_string(&outcome.alerts).expect("alerts serialize"),
        outcome.report.recall,
        outcome.report.healthy_alerts,
    )
}

#[test]
fn fleet_output_identical_across_shard_and_producer_counts() {
    let reference = fingerprint(1, 1);
    assert!(!reference.0.is_empty());
    assert_ne!(reference.1, "", "faulted run must produce a rollup");
    assert_eq!(reference.3, 1.0, "recall 1.0 on the faulted subset");
    assert_eq!(reference.4, 0, "healthy tenants stay silent");
    for (shards, producers) in [(2, 1), (2, 2), (2, 3), (4, 2), (4, 4)] {
        let got = fingerprint(shards, producers);
        assert_eq!(
            got.0, reference.0,
            "fleet model diverged at shards={shards} producers={producers}"
        );
        assert_eq!(
            got.1, reference.1,
            "rollup JSON diverged at shards={shards} producers={producers}"
        );
        assert_eq!(
            got.2, reference.2,
            "alert stream diverged at shards={shards} producers={producers}"
        );
    }
}

/// Re-running the identical configuration is also byte-stable (the
/// simulation, hashing, and merge are all seeded/deterministic — nothing
/// depends on wall-clock timing even though latencies are measured).
#[test]
fn fleet_output_stable_across_repeat_runs() {
    let a = fingerprint(2, 2);
    let b = fingerprint(2, 2);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
