//! The harness's determinism contract: the same `seed` and `runs` produce
//! a byte-identical merged model regardless of `threads`.

use rtms_bench::{Defaults, ExperimentArgs, Harness};
use rtms_ros2::WorldBuilder;
use rtms_trace::Nanos;
use rtms_workloads::{case_study_run_conditions, case_study_world_for_run, syn_app};

/// SYN workload, threads=1 versus threads=4: merged DAG DOT must be
/// byte-identical.
#[test]
fn syn_merged_dot_identical_across_thread_counts() {
    let dot = |threads: usize| {
        Harness::new(4, Nanos::from_secs(1), 7)
            .threads(threads)
            .merged(|plan| {
                WorldBuilder::new(4)
                    .seed(plan.seed)
                    .app(syn_app(1.0))
                    .build()
                    .expect("SYN world")
            })
            .to_dot()
    };
    let sequential = dot(1);
    let parallel = dot(4);
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel);
}

/// The default worker-thread count is the machine's actual parallelism —
/// not a hard-coded constant — and the merged model at that default is
/// byte-identical to the single-threaded one, whatever the count turns
/// out to be on the machine running this test.
#[test]
fn default_threads_track_available_parallelism_and_stay_deterministic() {
    let harness = Harness::new(3, Nanos::from_millis(300), 11);
    let expected =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    assert_eq!(harness.worker_threads(), expected);

    let build = |plan: &rtms_bench::RunPlan| {
        WorldBuilder::new(4).seed(plan.seed).app(syn_app(1.0)).build().expect("SYN world")
    };
    let at_default = harness.merged(build).to_dot();
    let at_one = Harness::new(3, Nanos::from_millis(300), 11).threads(1).merged(build).to_dot();
    assert_eq!(at_default, at_one);
}

/// The table2 path (AVP + SYN with per-run conditions, configured through
/// the shared parser) is equally thread-count-invariant.
#[test]
fn case_study_merged_dot_identical_across_thread_counts() {
    let dot = |threads: &str| {
        let args = ExperimentArgs::from_iter(
            ["runs=3", "secs=1", "seed=0", threads],
            Defaults { runs: 50, secs: 80, seed: 0 },
            &[],
        )
        .expect("valid args");
        let conditions = case_study_run_conditions(args.runs(), args.seed());
        Harness::from_args(&args)
            .merged(|plan| {
                case_study_world_for_run(args.seed(), plan.index, conditions[plan.index])
            })
            .to_dot()
    };
    assert_eq!(dot("threads=1"), dot("threads=4"));
}
