//! Cost of DAG synthesis from callback lists as the application grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtms_core::{CallbackRecord, CbList, Dag, ExecStats};
use rtms_trace::{CallbackId, CallbackKind, Nanos, Pid};
use std::collections::HashMap;
use std::hint::black_box;

/// Builds `nodes` chained nodes with `cbs_per_node` subscriber callbacks
/// each, every callback feeding the next node.
fn chained_lists(nodes: usize, cbs_per_node: usize) -> (Vec<(Pid, CbList)>, HashMap<Pid, String>) {
    let mut lists = Vec::new();
    let mut names = HashMap::new();
    let mut id = 1u64;
    for n in 0..nodes {
        let pid = Pid::new(n as u32 + 1);
        names.insert(pid, format!("node{n}"));
        let mut list = CbList::new();
        for c in 0..cbs_per_node {
            list.add_instance(CallbackRecord {
                pid,
                id: CallbackId::new(id),
                kind: CallbackKind::Subscriber,
                in_topic: Some(format!("/hop{n}_{c}").into()),
                out_topics: vec![format!("/hop{}_{c}", n + 1).into()],
                is_sync_subscriber: false,
                stats: ExecStats::from_samples([Nanos::from_millis(1)]),
                exec_times: vec![Nanos::from_millis(1)],
                start_times: vec![Nanos::ZERO],
            });
            id += 1;
        }
        lists.push((pid, list));
    }
    (lists, names)
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_synthesis");
    for (nodes, cbs) in [(10usize, 4usize), (50, 4), (100, 8)] {
        let (lists, names) = chained_lists(nodes, cbs);
        group.bench_with_input(
            BenchmarkId::new("from_cblists", format!("{nodes}n_x_{cbs}cb")),
            &(lists, names),
            |b, (lists, names)| b.iter(|| black_box(Dag::from_cblists(lists, names))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dag);
criterion_main!(benches);
