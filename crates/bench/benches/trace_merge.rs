//! Cost of the two merge paths of Fig. 2: merging raw traces versus
//! merging synthesized DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtms_core::{merge_dags, synthesize, Dag};
use rtms_trace::{Nanos, Trace};
use rtms_workloads::case_study_world;
use std::hint::black_box;

fn run_traces(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| {
            let mut world = case_study_world(i as u64, 1.0);
            world.trace_run(Nanos::from_secs(2))
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let traces = run_traces(8);
    let dags: Vec<Dag> = traces.iter().map(synthesize).collect();

    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("traces", n), &traces[..n], |b, ts| {
            b.iter(|| {
                let mut acc = Trace::new();
                for t in ts {
                    acc.merge(t.clone());
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("dags", n), &dags[..n], |b, ds| {
            b.iter(|| black_box(merge_dags(ds.iter().cloned())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
