//! What online monitoring costs on top of streaming synthesis.
//!
//! `window_synthesis` is the per-segment baseline work a streaming
//! deployment already does: synthesize one window's model from its
//! segment. `window_synthesis_monitored` adds the monitor: the same
//! synthesis plus `Monitor::observe` on the snapshot. The difference is
//! the per-snapshot monitoring overhead; `observe_only` isolates it.

use criterion::{criterion_group, criterion_main, Criterion};
use rtms_core::SynthesisSession;
use rtms_monitor::{Baseline, Monitor};
use rtms_ros2::WorldBuilder;
use rtms_trace::{Nanos, TraceSegment};
use rtms_workloads::syn_app;
use std::hint::black_box;

fn bench_monitor(c: &mut Criterion) {
    let mut world = WorldBuilder::new(4).seed(7).app(syn_app(1.0)).build().expect("SYN app");

    // Healthy baseline from the first second.
    let mut baseline_session = SynthesisSession::new();
    world.trace_into(&mut baseline_session, Nanos::from_secs(1));
    baseline_session.flush();
    let baseline = Baseline::from_dag(&baseline_session.model());

    // One observation window's segment, pre-collected.
    let mut segment = TraceSegment::new();
    world.trace_into(&mut segment, Nanos::from_millis(500));
    segment.sort_by_time();
    let names = baseline_session.names().clone();
    let window = Nanos::from_millis(500);
    let snapshot = {
        let mut s = SynthesisSession::with_names(names.clone());
        s.feed_segment(&segment);
        s.model()
    };

    let mut group = c.benchmark_group("monitor_overhead");
    group.bench_function("window_synthesis", |b| {
        b.iter(|| {
            let mut s = SynthesisSession::with_names(names.clone());
            s.feed_segment(&segment);
            black_box(s.model())
        })
    });
    group.bench_function("window_synthesis_monitored", |b| {
        let mut monitor = Monitor::new(baseline.clone());
        b.iter(|| {
            let mut s = SynthesisSession::with_names(names.clone());
            s.feed_segment(&segment);
            let snap = s.model();
            black_box(monitor.observe(&snap, window))
        })
    });
    group.bench_function("observe_only", |b| {
        let mut monitor = Monitor::new(baseline.clone());
        b.iter(|| black_box(monitor.observe(&snapshot, window)))
    });
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
